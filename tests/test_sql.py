"""Tests for the SQL-subset front-end (§2.1 query class as text)."""

from __future__ import annotations

import pytest

from repro.core.config import SketchParameters
from repro.errors import QueryError
from repro.streams.engine import StreamEngine
from repro.streams.query import (
    JoinAverageQuery,
    JoinCountQuery,
    JoinSumQuery,
    MultiJoinCountQuery,
    PointQuery,
    RangePredicate,
    SelfJoinQuery,
)
from repro.streams.sql import ParsedQuery, parse_query, tokenize

DOMAIN = 1 << 10


class TestTokenizer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select Count ( * ) from f")
        assert [t.text for t in tokens if t.kind == "keyword"] == [
            "SELECT",
            "COUNT",
            "FROM",
        ]

    def test_operators(self):
        tokens = tokenize("a <= 5 AND b != 3")
        ops = [t.text for t in tokens if t.kind == "op"]
        assert ops == ["<=", "!="]

    def test_rejects_junk(self):
        with pytest.raises(QueryError):
            tokenize("SELECT @")


class TestParseAggregates:
    def test_join_count(self):
        parsed = parse_query("SELECT COUNT(*) FROM f JOIN g")
        assert parsed.query == JoinCountQuery("f", "g")
        assert parsed.predicates == {}

    def test_self_join(self):
        parsed = parse_query("SELECT COUNT(*) FROM f JOIN f")
        assert parsed.query == SelfJoinQuery("f")

    def test_multi_join(self):
        parsed = parse_query("SELECT COUNT(*) FROM r1 JOIN r2 JOIN r3")
        assert parsed.query == MultiJoinCountQuery(relations=("r1", "r2", "r3"))

    def test_sum(self):
        parsed = parse_query("SELECT SUM(f_rev) FROM f JOIN g")
        assert parsed.query == JoinSumQuery("f", "g", measure_stream="f_rev")

    def test_avg(self):
        parsed = parse_query("SELECT AVG(f_rev) FROM f JOIN g")
        assert parsed.query == JoinAverageQuery("f", "g", measure_stream="f_rev")

    def test_freq(self):
        parsed = parse_query("SELECT FREQ(42) FROM f")
        assert parsed.query == PointQuery("f", 42)

    def test_count_requires_join(self):
        with pytest.raises(QueryError):
            parse_query("SELECT COUNT(*) FROM f")

    def test_sum_requires_exactly_two(self):
        with pytest.raises(QueryError):
            parse_query("SELECT SUM(m) FROM a JOIN b JOIN c")

    def test_freq_single_stream_only(self):
        with pytest.raises(QueryError):
            parse_query("SELECT FREQ(1) FROM f JOIN g")


class TestParseErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "SELECT",
            "COUNT(*) FROM f JOIN g",
            "SELECT COUNT(*) f JOIN g",
            "SELECT COUNT(f) FROM f JOIN g",
            "SELECT MAX(*) FROM f JOIN g",
            "SELECT COUNT(*) FROM f JOIN g extra",
            "SELECT COUNT(*) FROM f JOIN g WHERE f <",
            "SELECT COUNT(*) FROM f JOIN g WHERE < 3",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(QueryError):
            parse_query(bad)


class TestWhereClauses:
    def test_range_conditions_compile_to_range_predicate(self):
        parsed = parse_query(
            "SELECT COUNT(*) FROM f JOIN g WHERE f >= 10 AND f < 100"
        )
        assert parsed.predicates["f"] == RangePredicate(10, 100)

    def test_le_and_gt(self):
        parsed = parse_query("SELECT COUNT(*) FROM f JOIN g WHERE f <= 9 AND f > 2")
        assert parsed.predicates["f"] == RangePredicate(3, 10)

    def test_conditions_split_per_stream(self):
        parsed = parse_query(
            "SELECT COUNT(*) FROM f JOIN g WHERE f < 50 AND g >= 5"
        )
        assert set(parsed.predicates) == {"f", "g"}

    def test_equality_conditions(self):
        parsed = parse_query("SELECT COUNT(*) FROM f JOIN g WHERE f = 7")
        predicate = parsed.predicates["f"]
        assert predicate.accepts(7)
        assert not predicate.accepts(8)

    def test_not_equal(self):
        parsed = parse_query("SELECT COUNT(*) FROM f JOIN g WHERE f != 7 AND f < 10")
        predicate = parsed.predicates["f"]
        assert predicate.accepts(6)
        assert not predicate.accepts(7)
        assert not predicate.accepts(11)

    def test_unsatisfiable_rejected(self):
        with pytest.raises(QueryError):
            parse_query("SELECT COUNT(*) FROM f JOIN g WHERE f < 5 AND f > 9")


class TestEngineIntegration:
    def make_engine(self):
        return StreamEngine(
            DOMAIN, SketchParameters(width=128, depth=7), synopsis="skimmed", seed=3
        )

    def test_answer_sql_end_to_end(self):
        engine = self.make_engine()
        engine.register_stream("f")
        engine.register_stream("g")
        for _ in range(20):
            engine.process("f", 7)
        for _ in range(5):
            engine.process("g", 7)
        answer = engine.answer_sql("SELECT COUNT(*) FROM f JOIN g")
        assert answer == pytest.approx(100.0, rel=0.1)

    def test_prepare_sql_registers_streams_with_predicates(self):
        engine = self.make_engine()
        parsed = engine.prepare_sql(
            "SELECT COUNT(*) FROM f JOIN g WHERE f < 100"
        )
        assert isinstance(parsed, ParsedQuery)
        assert set(engine.streams()) == {"f", "g"}
        engine.process("f", 50)
        engine.process("f", 500)  # dropped by the WHERE predicate
        seen, dropped = engine.stream_stats("f")
        assert (seen, dropped) == (2, 1)
        engine.process("g", 50)
        assert engine.answer(parsed.query) == pytest.approx(1.0, abs=0.5)

    def test_answer_sql_rejects_where(self):
        engine = self.make_engine()
        engine.register_stream("f")
        engine.register_stream("g")
        with pytest.raises(QueryError):
            engine.answer_sql("SELECT COUNT(*) FROM f JOIN g WHERE f < 5")

    def test_prepare_sql_rejects_predicate_on_live_stream(self):
        engine = self.make_engine()
        engine.register_stream("f")
        with pytest.raises(QueryError):
            engine.prepare_sql("SELECT COUNT(*) FROM f JOIN g WHERE f < 5")

    def test_prepare_sql_reuses_existing_streams(self):
        engine = self.make_engine()
        engine.register_stream("f")
        parsed = engine.prepare_sql("SELECT COUNT(*) FROM f JOIN g")
        assert set(engine.streams()) == {"f", "g"}
        assert parsed.predicates == {}

    def test_sum_query_via_sql(self):
        engine = self.make_engine()
        for name in ("f", "f_rev", "g"):
            engine.register_stream(name)
        engine.process("f", 7)
        engine.process("f_rev", 7, 30.0)
        engine.process("g", 7)
        engine.process("g", 7)
        answer = engine.answer_sql("SELECT SUM(f_rev) FROM f JOIN g")
        assert answer == pytest.approx(60.0, rel=0.1)

    def test_freq_via_sql(self):
        engine = self.make_engine()
        engine.register_stream("f")
        for _ in range(9):
            engine.process("f", 3)
        assert engine.answer_sql("SELECT FREQ(3) FROM f") == pytest.approx(9.0)