"""Tests for ``repro.analysis.flow`` and the interprocedural passes.

Covers: call-graph name resolution (imports, relative imports, package
re-exports, CHA method dispatch), reachability and call-path queries,
the dtype lattice (hypothesis-checked algebraic laws) and abstract
interpreter, R9/R10/R11 finding messages naming the offending call
path, SARIF 2.1.0 export, and the suppressions audit (including the
tokenize-based docstring-example exclusion and ``--strict`` gating).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import analyze_paths, analyze_source
from repro.analysis.cli import main
from repro.analysis.context import FileContext
from repro.analysis.flow import (
    BOTTOM,
    DTYPES,
    UNKNOWN,
    CallGraph,
    DtypeInterpreter,
    ProjectContext,
    join,
    module_name_for_path,
)
from repro.analysis.rules.r9_linearity import classify_purity
from repro.analysis.sarif import to_sarif
from repro.analysis.suppress import audit, collect_suppressions

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"


def _project(*files: tuple[str, str]) -> ProjectContext:
    return ProjectContext(
        [FileContext.from_source(path, source) for path, source in files]
    )


class TestModuleNames:
    @pytest.mark.parametrize(
        "path,expected",
        [
            ("src/repro/sketches/hash_sketch.py", "repro.sketches.hash_sketch"),
            ("src/repro/hashing/__init__.py", "repro.hashing"),
            ("src/repro/errors.py", "repro.errors"),
            (
                "tests/analysis_fixtures/src/repro/sketches/bad_r9.py",
                "repro.sketches.bad_r9",
            ),
            ("benchmarks/bench_update.py", "bench_update"),
        ],
    )
    def test_module_name_for_path(self, path, expected):
        assert module_name_for_path(path) == expected


class TestCallGraphResolution:
    def test_absolute_import_resolves_cross_module(self):
        project = _project(
            (
                "src/repro/hashing/util.py",
                "def helper():\n    return 1\n",
            ),
            (
                "src/repro/sketches/mod.py",
                "from repro.hashing.util import helper\n"
                "def caller():\n    return helper()\n",
            ),
        )
        graph = project.graph
        assert graph.edges["repro.sketches.mod.caller"] == {
            "repro.hashing.util.helper"
        }

    def test_relative_import_resolves(self):
        project = _project(
            ("src/repro/alpha/util.py", "def helper():\n    return 1\n"),
            (
                "src/repro/alpha/mod.py",
                "from .util import helper\n"
                "def caller():\n    return helper()\n",
            ),
        )
        assert project.graph.edges["repro.alpha.mod.caller"] == {
            "repro.alpha.util.helper"
        }

    def test_package_reexport_followed(self):
        project = _project(
            ("src/repro/alpha/util.py", "def helper():\n    return 1\n"),
            ("src/repro/alpha/__init__.py", "from .util import helper\n"),
            (
                "src/repro/beta.py",
                "from repro.alpha import helper\n"
                "def caller():\n    return helper()\n",
            ),
        )
        assert project.graph.edges["repro.beta.caller"] == {
            "repro.alpha.util.helper"
        }

    def test_self_dispatch_includes_subclass_overrides(self):
        project = _project(
            (
                "src/repro/alpha/mod.py",
                "class Base:\n"
                "    def run(self):\n"
                "        return self.step()\n"
                "    def step(self):\n"
                "        return 0\n"
                "class Child(Base):\n"
                "    def step(self):\n"
                "        return 1\n",
            ),
        )
        graph = project.graph
        assert graph.edges["repro.alpha.mod.Base.run"] == {
            "repro.alpha.mod.Base.step",
            "repro.alpha.mod.Child.step",
        }

    def test_unknown_receiver_uses_cha(self):
        project = _project(
            (
                "src/repro/alpha/mod.py",
                "class A:\n"
                "    def poke(self):\n"
                "        return 1\n"
                "def caller(obj):\n"
                "    return obj.poke()\n",
            ),
        )
        assert project.graph.edges["repro.alpha.mod.caller"] == {
            "repro.alpha.mod.A.poke"
        }

    def test_callable_reference_argument_is_an_edge(self):
        project = _project(
            (
                "src/repro/alpha/mod.py",
                "def task():\n    return 1\n"
                "def submit(fn):\n    return fn\n"
                "def caller():\n    return submit(task)\n",
            ),
        )
        assert "repro.alpha.mod.task" in project.graph.edges[
            "repro.alpha.mod.caller"
        ]

    def test_instantiation_links_init(self):
        project = _project(
            (
                "src/repro/alpha/mod.py",
                "class Thing:\n"
                "    def __init__(self):\n"
                "        self.x = 1\n"
                "def build():\n    return Thing()\n",
            ),
        )
        assert project.graph.edges["repro.alpha.mod.build"] == {
            "repro.alpha.mod.Thing.__init__"
        }

    def test_reachability_and_call_path(self):
        project = _project(
            (
                "src/repro/alpha/mod.py",
                "def leaf():\n    return 1\n"
                "def middle():\n    return leaf()\n"
                "def entry():\n    return middle()\n",
            ),
        )
        graph = project.graph
        reach = graph.reachable_from(["repro.alpha.mod.entry"])
        assert reach == {
            "repro.alpha.mod.entry",
            "repro.alpha.mod.middle",
            "repro.alpha.mod.leaf",
        }
        assert graph.call_path_to("repro.alpha.mod.leaf") == [
            "repro.alpha.mod.entry",
            "repro.alpha.mod.middle",
            "repro.alpha.mod.leaf",
        ]


_ELEMENTS = st.sampled_from([BOTTOM, UNKNOWN, *DTYPES])


class TestDtypeLattice:
    @given(_ELEMENTS, _ELEMENTS)
    def test_join_commutative(self, a, b):
        assert join(a, b) == join(b, a)

    @given(_ELEMENTS)
    def test_join_idempotent(self, a):
        assert join(a, a) == a

    @given(_ELEMENTS, _ELEMENTS, _ELEMENTS)
    def test_join_associative(self, a, b, c):
        assert join(join(a, b), c) == join(a, join(b, c))

    @given(_ELEMENTS)
    def test_bottom_is_identity_and_unknown_absorbs(self, a):
        assert join(BOTTOM, a) == a
        assert join(UNKNOWN, a) == UNKNOWN

    def test_numpy_promotion_cases(self):
        assert join("int64", "float64") == "float64"
        assert join("bool", "int8") == "int8"
        assert join("uint64", "bool") == "uint64"
        assert join("uint64", "int64") == "float64"


class TestDtypeInterpreter:
    def _analyze(self, source: str, qualname: str):
        project = _project(("src/repro/sketches/toy.py", source))
        interp = DtypeInterpreter(project.graph)
        return interp, project.graph.functions[qualname]

    def test_locals_and_astype(self):
        interp, fn = self._analyze(
            "import numpy as np\n"
            "def f(n):\n"
            "    x = np.zeros(n, dtype=np.int64)\n"
            "    return x.astype(np.float64)\n",
            "repro.sketches.toy.f",
        )
        assert interp.analyze(fn).return_value.dtype == "float64"

    def test_interprocedural_summary(self):
        interp, fn = self._analyze(
            "import numpy as np\n"
            "def make(n):\n"
            "    return np.zeros(n, dtype=np.int64)\n"
            "def g(n):\n"
            "    return make(n) + make(n)\n",
            "repro.sketches.toy.g",
        )
        assert interp.analyze(fn).return_value.dtype == "int64"

    def test_branch_join_promotes(self):
        interp, fn = self._analyze(
            "import numpy as np\n"
            "def f(n, flag):\n"
            "    x = np.zeros(n, dtype=np.int64)\n"
            "    if flag:\n"
            "        x = np.zeros(n, dtype=np.float64)\n"
            "    return x\n",
            "repro.sketches.toy.f",
        )
        assert interp.analyze(fn).return_value.dtype == "float64"

    def test_tuple_returns_unpack(self):
        interp, fn = self._analyze(
            "import numpy as np\n"
            "def pair(n):\n"
            "    return np.zeros(n, dtype=np.int64), np.zeros(n, dtype=np.float64)\n"
            "def g(n):\n"
            "    a, b = pair(n)\n"
            "    return b\n",
            "repro.sketches.toy.g",
        )
        assert interp.analyze(fn).return_value.dtype == "float64"

    def test_unknown_stays_unknown(self):
        interp, fn = self._analyze(
            "def f(x):\n    return x\n",
            "repro.sketches.toy.f",
        )
        assert interp.analyze(fn).return_value.dtype == UNKNOWN


class TestInterproceduralRuleMessages:
    def test_r9_names_the_call_path(self):
        report = analyze_paths([str(FIXTURES / "src/repro/sketches/bad_r9.py")])
        messages = [f.message for f in report.findings if f.rule == "R9"]
        assert any(
            "rebalance -> repro.sketches.bad_r9.sneaky_boost" in m
            for m in messages
        )

    def test_r10_names_the_strategy_seed(self):
        report = analyze_paths([str(FIXTURES / "src/repro/parallel/bad_r10.py")])
        messages = [f.message for f in report.findings if f.rule == "R10"]
        assert any(
            "_EagerStrategy.ingest -> repro.parallel.bad_r10._record" in m
            for m in messages
        )

    def test_r11_names_the_dtype_origin(self):
        report = analyze_paths([str(FIXTURES / "src/repro/sketches/bad_r11.py")])
        messages = [f.message for f in report.findings if f.rule == "R11"]
        assert any("np.asarray(dtype=...)" in m for m in messages)
        assert any("call path:" in m for m in messages)

    def test_r9_suppressible_with_noqa(self):
        findings, suppressed = analyze_source(
            "import numpy as np\n"
            "def sneaky(sketch):\n"
            "    sketch._counters[0] += 1.0  # repro: noqa[R9] -- test\n",
            path="src/repro/sketches/fake.py",
        )
        assert not any(f.rule == "R9" for f in findings)
        assert suppressed == 1

    def test_purity_classification(self):
        report = analyze_paths([str(FIXTURES / "src/repro/sketches/bad_r9.py")])
        purity = classify_purity(report.project)
        assert purity["repro.sketches.bad_r9.sneaky_boost"] == "mutates-counters"
        assert purity["repro.sketches.bad_r9.rebalance"] == "calls-mutator"


class TestSarifExport:
    def test_sarif_schema_and_results(self):
        report = analyze_paths([str(FIXTURES / "src/repro/sketches/bad_r1.py")])
        sarif = to_sarif(report)
        assert sarif["version"] == "2.1.0"
        assert "sarif-2.1.0" in sarif["$schema"]
        run = sarif["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"R1", "R9", "R10", "R11"} <= rule_ids
        assert len(run["results"]) == len(report.findings) == 3
        for result in run["results"]:
            assert result["ruleId"] == "R1"
            assert result["level"] == "error"
            region = result["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] >= 1
            assert region["startColumn"] >= 1

    def test_cli_writes_sarif_file(self, tmp_path):
        out = tmp_path / "out.sarif"
        bad = FIXTURES / "src/repro/sketches/bad_r1.py"
        assert main(["--sarif", str(out), str(bad)]) == 1
        sarif = json.loads(out.read_text())
        assert sarif["version"] == "2.1.0"
        assert len(sarif["runs"][0]["results"]) == 3

    def test_cli_graph_out(self, tmp_path):
        out = tmp_path / "graph.json"
        bad = FIXTURES / "src/repro/sketches/bad_r9.py"
        assert main(["--graph-out", str(out), str(bad)]) == 1
        graph = json.loads(out.read_text())
        assert graph["version"] == 1
        by_name = {f["qualname"]: f for f in graph["functions"]}
        assert (
            by_name["repro.sketches.bad_r9.sneaky_boost"]["purity"]
            == "mutates-counters"
        )
        assert [
            "repro.sketches.bad_r9.rebalance",
            "repro.sketches.bad_r9.sneaky_boost",
        ] in graph["edges"]


class TestSuppressionsAudit:
    def test_collect_parses_rules_and_reason(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "x = 1  # repro: noqa[R1] -- dispatch gate\n"
            "y = 2  # repro: noqa\n"
        )
        sites = collect_suppressions([str(target)], with_age=False)
        assert [(s.line, s.rules, s.reason) for s in sites] == [
            (1, ("R1",), "dispatch gate"),
            (2, (), ""),
        ]

    def test_docstring_examples_are_not_suppressions(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            '"""Docs.\n\nExample::\n\n    x = 1  # repro: noqa[R1]\n"""\n'
        )
        assert collect_suppressions([str(target)], with_age=False) == []

    def test_strict_fails_on_reasonless(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("y = 2  # repro: noqa[R2]\n")
        _, exit_code = audit([str(target)], strict=True, with_age=False)
        assert exit_code == 1
        _, exit_code = audit([str(target)], strict=False, with_age=False)
        assert exit_code == 0

    def test_cli_subcommand(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text("x = 1  # repro: noqa[R1] -- why not\n")
        assert main(["suppressions", str(target), "--strict", "--no-blame"]) == 0
        out = capsys.readouterr().out
        assert "noqa[R1]" in out
        assert "why not" in out

    def test_cli_subcommand_json(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text("x = 1  # repro: noqa[R1]\n")
        assert (
            main(["suppressions", str(target), "--json", "--no-blame"]) == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["suppressions"][0]["rules"] == ["R1"]
        assert payload["suppressions"][0]["reason"] == ""

    def test_repo_suppressions_all_have_reasons(self):
        _, exit_code = audit(
            [
                str(REPO_ROOT / "src"),
                str(REPO_ROOT / "tests"),
                str(REPO_ROOT / "examples"),
                str(REPO_ROOT / "benchmarks"),
            ],
            strict=True,
            with_age=False,
        )
        assert exit_code == 0


class TestInterproceduralRepoIsClean:
    def test_new_passes_clean_on_repo(self):
        report = analyze_paths(
            [
                str(REPO_ROOT / "src"),
                str(REPO_ROOT / "tests"),
                str(REPO_ROOT / "examples"),
                str(REPO_ROOT / "benchmarks"),
            ],
            select=["R9", "R10", "R11"],
        )
        assert report.findings == [], "\n".join(
            f.render() for f in report.findings
        )
