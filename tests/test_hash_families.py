"""Unit + statistical tests for the k-wise hash and sign families."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing import (
    FourWiseSignFamily,
    KWiseHashFamily,
    MERSENNE_PRIME_31,
    PairwiseBucketHash,
)


class TestKWiseHashFamily:
    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            KWiseHashFamily(0, 2, rng)
        with pytest.raises(ValueError):
            KWiseHashFamily(1, 0, rng)

    def test_deterministic_given_seed(self):
        a = KWiseHashFamily(5, 4, np.random.default_rng(9))
        b = KWiseHashFamily(5, 4, np.random.default_rng(9))
        assert a == b
        values = np.arange(100)
        assert np.array_equal(a.evaluate(values), b.evaluate(values))

    def test_different_seeds_differ(self):
        a = KWiseHashFamily(5, 4, np.random.default_rng(1))
        b = KWiseHashFamily(5, 4, np.random.default_rng(2))
        assert a != b

    def test_evaluate_one_matches_row(self):
        family = KWiseHashFamily(6, 4, np.random.default_rng(3))
        values = np.arange(50)
        full = family.evaluate(values)
        for i in range(6):
            assert np.array_equal(family.evaluate_one(i, values), full[i])

    def test_scalar_input(self):
        family = KWiseHashFamily(3, 2, np.random.default_rng(4))
        out = family.evaluate(42)
        assert out.shape == (3, 1)

    def test_outputs_in_field(self):
        family = KWiseHashFamily(4, 4, np.random.default_rng(5))
        out = family.evaluate(np.arange(1000))
        assert out.max() < MERSENNE_PRIME_31

    def test_state_words(self):
        family = KWiseHashFamily(7, 4, np.random.default_rng(6))
        assert family.state_words() == 7 * 4

    def test_hashable(self):
        a = KWiseHashFamily(2, 2, np.random.default_rng(7))
        b = KWiseHashFamily(2, 2, np.random.default_rng(7))
        assert hash(a) == hash(b)

    def test_empirical_uniformity(self):
        """Hash values should spread evenly over the field (coarse bins)."""
        family = KWiseHashFamily(1, 2, np.random.default_rng(8))
        out = family.evaluate(np.arange(20_000))[0]
        bins = (out * np.uint64(16)) // np.uint64(MERSENNE_PRIME_31)
        counts = np.bincount(bins.astype(np.int64), minlength=16)
        # Expected 1250 per bin; allow wide slack.
        assert counts.min() > 900
        assert counts.max() < 1700


class TestPairwiseBucketHash:
    def test_range(self):
        hashes = PairwiseBucketHash(5, 17, np.random.default_rng(0))
        buckets = hashes.buckets(np.arange(1000))
        assert buckets.min() >= 0
        assert buckets.max() < 17
        assert buckets.shape == (5, 1000)

    def test_buckets_one_matches_row(self):
        hashes = PairwiseBucketHash(4, 32, np.random.default_rng(1))
        values = np.arange(200)
        full = hashes.buckets(values)
        for i in range(4):
            assert np.array_equal(hashes.buckets_one(i, values), full[i])

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            PairwiseBucketHash(3, 0, np.random.default_rng(0))

    def test_roughly_uniform_over_buckets(self):
        hashes = PairwiseBucketHash(1, 8, np.random.default_rng(2))
        buckets = hashes.buckets(np.arange(8_000))[0]
        counts = np.bincount(buckets, minlength=8)
        assert counts.min() > 700
        assert counts.max() < 1300

    def test_tables_are_independent(self):
        """Different tables' hashes of the same values must not coincide."""
        hashes = PairwiseBucketHash(2, 1024, np.random.default_rng(3))
        buckets = hashes.buckets(np.arange(2000))
        agreement = np.mean(buckets[0] == buckets[1])
        assert agreement < 0.05  # expect ~1/1024

    def test_equality_by_content(self):
        a = PairwiseBucketHash(3, 16, np.random.default_rng(4))
        b = PairwiseBucketHash(3, 16, np.random.default_rng(4))
        assert a == b and hash(a) == hash(b)


class TestFourWiseSignFamily:
    def test_values_are_plus_minus_one(self):
        family = FourWiseSignFamily(3, np.random.default_rng(0))
        signs = family.signs(np.arange(500))
        assert set(np.unique(signs)) == {-1.0, 1.0}

    def test_signs_one_matches_row(self):
        family = FourWiseSignFamily(5, np.random.default_rng(1))
        values = np.arange(100)
        full = family.signs(values)
        for i in range(5):
            assert np.array_equal(family.signs_one(i, values), full[i])

    def test_mean_near_zero(self):
        family = FourWiseSignFamily(1, np.random.default_rng(2))
        signs = family.signs(np.arange(50_000))[0]
        assert abs(signs.mean()) < 0.02

    def test_pairwise_decorrelation(self):
        """E[xi(u) xi(v)] ~ 0 for u != v (implied by 4-wise independence)."""
        family = FourWiseSignFamily(1, np.random.default_rng(3))
        signs = family.signs(np.arange(40_000))[0]
        correlation = np.mean(signs[:-1] * signs[1:])
        assert abs(correlation) < 0.03

    def test_fourth_moment_structure(self):
        """E[xi(a)xi(b)xi(c)xi(d)] ~ 0 for distinct a,b,c,d.

        This is the property the AGMS variance analysis needs beyond
        pairwise independence; we average products over many independent
        families at fixed distinct points.
        """
        num_families = 4000
        family = FourWiseSignFamily(num_families, np.random.default_rng(4))
        signs = family.signs(np.asarray([10, 20, 30, 40]))
        products = signs.prod(axis=1)
        assert abs(products.mean()) < 0.06

    def test_deterministic_given_seed(self):
        a = FourWiseSignFamily(2, np.random.default_rng(5))
        b = FourWiseSignFamily(2, np.random.default_rng(5))
        assert a == b and hash(a) == hash(b)
        assert np.array_equal(a.signs(np.arange(64)), b.signs(np.arange(64)))
