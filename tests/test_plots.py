"""Tests for the ASCII chart renderer."""

from __future__ import annotations

import pytest

from repro.eval.plots import render_ascii_plot

SERIES = {
    "basic_agms": [(1000.0, 3.0), (4000.0, 1.2), (15000.0, 0.9)],
    "skimmed": [(1000.0, 0.4), (4000.0, 0.15), (15000.0, 0.04)],
}


class TestRenderAsciiPlot:
    def test_contains_markers_and_legend(self):
        text = render_ascii_plot("t", "space", "error", SERIES)
        assert "x = basic_agms" in text
        assert "o = skimmed" in text
        assert "x" in text and "o" in text

    def test_axis_extremes_labelled(self):
        text = render_ascii_plot("t", "space", "error", SERIES)
        assert "1000" in text
        assert "1.5e+04" in text or "15000" in text

    def test_lower_error_series_sits_lower(self):
        """The skimmed markers must all appear below the basic ones at the
        right edge (the chart's whole point)."""
        text = render_ascii_plot("t", "space", "error", SERIES, width=40, height=12)
        lines = text.splitlines()[1:13]
        last_x_row = max(i for i, line in enumerate(lines) if "x" in line)
        first_o_row = min(i for i, line in enumerate(lines) if "o" in line)
        # Rows grow downward; 'o' (smaller errors) should reach lower rows.
        assert max(
            i for i, line in enumerate(lines) if "o" in line
        ) > last_x_row or first_o_row > 0

    def test_empty_series(self):
        assert "(no data)" in render_ascii_plot("t", "x", "y", {})
        assert "(no data)" in render_ascii_plot("t", "x", "y", {"a": []})

    def test_degenerate_single_point(self):
        text = render_ascii_plot("t", "x", "y", {"a": [(5.0, 1.0)]})
        assert "x = a" in text

    def test_size_validation(self):
        with pytest.raises(ValueError):
            render_ascii_plot("t", "x", "y", SERIES, width=4)

    def test_title_first_line(self):
        text = render_ascii_plot("Figure 5(a)", "space", "error", SERIES)
        assert text.splitlines()[0] == "Figure 5(a)"
