"""Tests for the synopsis health diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimator import SkimmedSketchSchema
from repro.eval.diagnostics import sketch_health
from repro.streams.generators import uniform_frequencies, zipf_frequencies

DOMAIN = 1 << 11


def make_sketch(freqs=None, dyadic=False, width=256, depth=7):
    schema = SkimmedSketchSchema(width, depth, DOMAIN, seed=5, dyadic=dyadic)
    sketch = schema.create_sketch()
    if freqs is not None:
        sketch.ingest_frequency_vector(freqs)
    return sketch


class TestSketchHealth:
    def test_empty_sketch(self):
        report = sketch_health(make_sketch())
        assert report.stream_size == 0.0
        assert report.dense_value_count == 0
        assert report.skew_score == 0.0
        assert report.recommended_width is None

    def test_uniform_stream_has_low_skew_score(self):
        report = sketch_health(make_sketch(uniform_frequencies(DOMAIN, 50_000)))
        assert report.skew_score == pytest.approx(1.0, rel=0.3)

    def test_skewed_stream_has_high_skew_score(self):
        report = sketch_health(make_sketch(zipf_frequencies(DOMAIN, 50_000, 1.4)))
        assert report.skew_score > 50.0
        assert report.dense_value_count >= 1
        assert 0.0 < report.dense_mass_fraction <= 1.0

    def test_threshold_matches_formula(self):
        sketch = make_sketch(zipf_frequencies(DOMAIN, 40_000, 1.2))
        report = sketch_health(sketch)
        assert report.skim_threshold == pytest.approx(40_000 / 16.0)

    def test_sizing_recommendation(self):
        sketch = make_sketch(zipf_frequencies(DOMAIN, 10_000, 1.0))
        report = sketch_health(
            sketch, target_error=0.1, target_join_size=1e7
        )
        assert report.recommended_width == int(np.ceil(1e8 / 1e6))

    def test_sizing_validation(self):
        sketch = make_sketch()
        with pytest.raises(ValueError):
            sketch_health(sketch, target_error=0.0, target_join_size=1.0)

    def test_dyadic_mode_inspected_via_base(self):
        report = sketch_health(
            make_sketch(zipf_frequencies(DOMAIN, 20_000, 1.3), dyadic=True)
        )
        assert report.stream_size == pytest.approx(20_000)

    def test_describe_mentions_key_fields(self):
        report = sketch_health(
            make_sketch(zipf_frequencies(DOMAIN, 50_000, 1.4)),
            target_error=0.1,
            target_join_size=1e8,
        )
        text = report.describe()
        for token in ("stream size", "skew score", "skim threshold", "sizing"):
            assert token in text

    def test_describe_flags_undersized(self):
        report = sketch_health(
            make_sketch(zipf_frequencies(DOMAIN, 100_000, 1.0), width=32),
            target_error=0.01,
            target_join_size=1e6,
        )
        assert "undersized" in report.describe()
