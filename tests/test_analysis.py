"""Tests for ``repro.analysis`` — the domain-invariant linter.

Covers: every rule firing on a bad fixture and staying quiet on a good
one, suppression comments, role classification, CLI exit-code semantics
(0 clean / 1 findings / 2 usage error), the JSON report schema, the
docstring-derived catalogue, the dependency-free import constraint, and
a meta-test asserting the shipped repository lints clean.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    Role,
    all_rules,
    analyze_paths,
    analyze_source,
    classify,
)
from repro.analysis.cli import main
from repro.analysis.context import parse_suppressions, subpackage
from repro.analysis.engine import iter_python_files

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"
RULE_IDS = [
    "R1",
    "R10",
    "R11",
    "R12",
    "R13",
    "R2",
    "R3",
    "R4",
    "R5",
    "R6",
    "R7",
    "R8",
    "R9",
]

#: rule id -> (bad fixture, expected finding count, good fixture)
FIXTURE_MAP = {
    "R1": ("src/repro/sketches/bad_r1.py", 3, "src/repro/sketches/good_r1.py"),
    "R2": ("src/repro/sketches/bad_r2.py", 4, "src/repro/sketches/good_r2.py"),
    "R3": ("src/repro/streams/bad_r3.py", 2, "src/repro/streams/good_r3.py"),
    "R4": ("src/repro/streams/bad_r4.py", 2, "src/repro/streams/good_r4.py"),
    "R5": ("src/repro/streams/bad_r5.py", 2, "src/repro/streams/good_r5.py"),
    "R6": ("src/repro/streams/bad_r6.py", 3, "src/repro/streams/good_r6.py"),
    "R7": ("src/repro/streams/bad_r7.py", 2, "src/repro/streams/good_r7.py"),
    "R8": ("src/repro/streams/bad_r8.py", 2, "src/repro/streams/good_r8.py"),
    "R9": ("src/repro/sketches/bad_r9.py", 2, "src/repro/sketches/good_r9.py"),
    "R10": ("src/repro/parallel/bad_r10.py", 3, "src/repro/parallel/good_r10.py"),
    "R11": ("src/repro/sketches/bad_r11.py", 3, "src/repro/sketches/good_r11.py"),
    "R12": ("src/repro/streams/bad_r12.py", 2, "src/repro/streams/good_r12.py"),
    "R13": (
        "src/repro/distributed/bad_r13.py",
        2,
        "src/repro/distributed/good_r13.py",
    ),
}


def run_cli(*argv: str) -> subprocess.CompletedProcess:
    """The CLI exactly as `make lint` / CI invoke it (module subprocess)."""
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *argv],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
    )


class TestRegistry:
    def test_all_rules_registered(self):
        assert [r.rule_id for r in all_rules()] == RULE_IDS

    def test_rules_have_titles_and_docstrings(self):
        for rule in all_rules():
            assert rule.title, rule.rule_id
            assert rule.__doc__ and "Example violation" in rule.__doc__


class TestRulesOnFixtures:
    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_bad_fixture_fires(self, rule_id):
        bad, expected, _ = FIXTURE_MAP[rule_id]
        report = analyze_paths([str(FIXTURES / bad)])
        assert {f.rule for f in report.findings} == {rule_id}
        assert len(report.findings) == expected

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_good_fixture_is_clean(self, rule_id):
        _, _, good = FIXTURE_MAP[rule_id]
        report = analyze_paths([str(FIXTURES / good)])
        assert report.findings == []

    def test_findings_carry_location(self):
        bad, _, _ = FIXTURE_MAP["R1"]
        report = analyze_paths([str(FIXTURES / bad)])
        for finding in report.findings:
            assert finding.line > 0
            assert finding.path.endswith("bad_r1.py")
            assert "dtype" in finding.message

    def test_syntax_error_reported_as_e1(self):
        report = analyze_paths([str(FIXTURES / "src/repro/streams/bad_syntax.py")])
        assert [f.rule for f in report.findings] == ["E1"]

    def test_test_role_is_exempt(self):
        report = analyze_paths([str(FIXTURES / "tests/test_role_exempt.py")])
        assert report.findings == []


class TestWorkloadsPackageFixtures:
    """R6 coverage for the repro.workloads corpus package.

    The seeded-RNG rule is load-bearing there: an unseeded generator in a
    family builder would break corpus byte-determinism and with it the
    whole ACCURACY compare gate.
    """

    def test_unseeded_corpus_builder_fires_r6(self):
        report = analyze_paths(
            [str(FIXTURES / "src/repro/workloads/bad_r6.py")]
        )
        assert [f.rule for f in report.findings] == ["R6"]

    def test_seeded_corpus_builder_is_clean(self):
        report = analyze_paths(
            [str(FIXTURES / "src/repro/workloads/good_r6.py")]
        )
        assert report.findings == []


class TestSuppression:
    def test_noqa_comments_suppress(self):
        report = analyze_paths([str(FIXTURES / "src/repro/sketches/suppressed.py")])
        assert report.findings == []
        assert report.suppressed == 2

    def test_noqa_is_rule_specific(self):
        findings, suppressed = analyze_source(
            "import numpy as np\n"
            "x = np.zeros(3)  # repro: noqa[R5]\n",
            path="src/repro/sketches/fake.py",
        )
        assert [f.rule for f in findings] == ["R1"]
        assert suppressed == 0

    def test_parse_suppressions_forms(self):
        sup = parse_suppressions(
            "a = 1  # repro: noqa\n"
            "b = 2  # repro: noqa[R1,R3]\n"
            "c = 3  # unrelated comment\n"
        )
        assert sup[1] is None
        assert sup[2] == frozenset({"R1", "R3"})
        assert 3 not in sup


class TestClassification:
    @pytest.mark.parametrize(
        "path,role",
        [
            ("src/repro/sketches/hash_sketch.py", Role.KERNEL),
            ("src/repro/hashing/kwise.py", Role.KERNEL),
            ("src/repro/core/skim.py", Role.KERNEL),
            ("src/repro/streams/engine.py", Role.LIBRARY),
            ("src/repro/errors.py", Role.LIBRARY),
            ("tests/test_skim.py", Role.TEST),
            ("tests/conftest.py", Role.TEST),
            ("examples/quickstart.py", Role.SCRIPT),
            ("benchmarks/bench_update.py", Role.SCRIPT),
            ("setup.py", Role.UNKNOWN),
            ("src/repro/workloads/corpus.py", Role.LIBRARY),
            # Fixtures mirror the repo layout below the marker.
            ("tests/analysis_fixtures/src/repro/sketches/bad_r1.py", Role.KERNEL),
            ("tests/analysis_fixtures/tests/test_role_exempt.py", Role.TEST),
        ],
    )
    def test_classify(self, path, role):
        assert classify(path) is role

    def test_subpackage(self):
        assert subpackage("src/repro/sketches/hash_sketch.py") == "sketches"
        assert subpackage("src/repro/errors.py") == ""
        assert subpackage("examples/quickstart.py") is None

    def test_walk_skips_fixture_dirs(self):
        files = list(iter_python_files(["tests"]))
        assert files, "tests directory should contain python files"
        assert not any("analysis_fixtures" in f for f in files)


class TestCLI:
    def test_exit_zero_on_clean_file(self, capsys):
        _, _, good = FIXTURE_MAP["R1"]
        assert main([str(FIXTURES / good)]) == 0
        assert "clean" in capsys.readouterr().err

    def test_exit_one_on_findings(self, capsys):
        bad, expected, _ = FIXTURE_MAP["R5"]
        assert main([str(FIXTURES / bad)]) == 1
        out = capsys.readouterr().out
        assert out.count(" R5 ") == expected

    def test_exit_two_on_unknown_flag(self):
        with pytest.raises(SystemExit) as exc:
            main(["--frobnicate"])
        assert exc.value.code == 2

    def test_exit_two_on_missing_path(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["no/such/path.py"])
        assert exc.value.code == 2

    def test_exit_two_on_unknown_rule(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--select", "R99", "src"])
        assert exc.value.code == 2

    def test_select_restricts_rules(self, capsys):
        bad, _, _ = FIXTURE_MAP["R1"]
        assert main(["--select", "R5", str(FIXTURES / bad)]) == 0

    def test_catalogue_lists_every_rule(self, capsys):
        assert main(["--catalogue"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_IDS:
            assert f"{rule_id} — " in out

    def test_json_report_schema(self, capsys):
        bad, expected, _ = FIXTURE_MAP["R3"]
        assert main(["--json", str(FIXTURES / bad)]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == 1
        assert report["files_scanned"] == 1
        assert report["counts"] == {"R3": expected}
        assert len(report["findings"]) == expected
        for finding in report["findings"]:
            assert set(finding) == {"rule", "path", "line", "col", "message"}

    def test_module_invocation_matches_make_lint(self):
        proc = run_cli("src", "tests")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_module_invocation_exit_one(self):
        bad, _, _ = FIXTURE_MAP["R2"]
        proc = run_cli(str(FIXTURES / bad))
        assert proc.returncode == 1


class TestRepositoryIsClean:
    def test_shipped_repo_lints_clean(self):
        report = analyze_paths([str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")])
        assert report.findings == [], "\n".join(
            f.render() for f in report.findings
        )

    def test_examples_and_benchmarks_lint_clean(self):
        report = analyze_paths(
            [str(REPO_ROOT / "examples"), str(REPO_ROOT / "benchmarks")]
        )
        assert report.findings == [], "\n".join(
            f.render() for f in report.findings
        )


def _mypy_available() -> bool:
    try:
        import mypy  # noqa: F401
    except ImportError:
        return False
    return True


@pytest.mark.skipif(
    not _mypy_available(), reason="mypy not installed (pip install -e .[lint])"
)
def test_mypy_strict_on_kernels():
    """`[tool.mypy]` in pyproject.toml holds: kernels pass strict mode."""
    proc = subprocess.run(
        [sys.executable, "-m", "mypy"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


class TestDependencyFreedom:
    """repro.analysis must be importable with no numpy and no repro deps."""

    def _analysis_parent_dir(self) -> str:
        import repro.analysis

        return str(Path(repro.analysis.__file__).resolve().parent.parent)

    def test_analysis_does_not_import_numpy(self):
        code = (
            "import sys; sys.path.insert(0, {path!r}); import analysis; "
            "assert 'numpy' not in sys.modules, "
            "'repro.analysis must not import numpy'; "
            "assert 'repro' not in sys.modules, "
            "'repro.analysis must not import the parent package'"
        ).format(path=self._analysis_parent_dir())
        subprocess.run([sys.executable, "-c", code], check=True)

    def test_standalone_analysis_still_lints(self, tmp_path):
        bad = FIXTURES / "src/repro/sketches/bad_r1.py"
        code = (
            "import sys; sys.path.insert(0, {path!r}); import analysis; "
            "report = analysis.analyze_paths([{bad!r}]); "
            "assert len(report.findings) == 3, report.findings"
        ).format(path=self._analysis_parent_dir(), bad=str(bad))
        subprocess.run([sys.executable, "-c", code], check=True)
