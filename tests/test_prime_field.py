"""Unit tests for GF(2^31 - 1) arithmetic."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.prime_field import (
    MERSENNE_PRIME_31,
    addmod,
    as_field_elements,
    mulmod,
    poly_eval,
    poly_eval_many,
    random_coefficients,
)

P = MERSENNE_PRIME_31


class TestAsFieldElements:
    def test_reduces_mod_p(self):
        values = np.asarray([0, 1, P, P + 5, 2 * P + 3], dtype=np.uint64)
        out = as_field_elements(values)
        assert out.tolist() == [0, 1, 0, 5, 3]

    def test_accepts_scalars_and_lists(self):
        assert as_field_elements(7) == np.uint64(7)
        assert as_field_elements([1, 2]).tolist() == [1, 2]

    def test_rejects_floats(self):
        with pytest.raises(TypeError):
            as_field_elements(np.asarray([1.5]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            as_field_elements(np.asarray([-1]))


class TestModularOps:
    def test_mulmod_matches_python_ints(self):
        a = np.asarray([P - 1, 12345, 0], dtype=np.uint64)
        b = np.asarray([P - 1, 67890, 99], dtype=np.uint64)
        expected = [(int(x) * int(y)) % P for x, y in zip(a, b)]
        assert mulmod(a, b).tolist() == expected

    def test_mulmod_no_overflow_at_extremes(self):
        a = np.asarray([P - 1], dtype=np.uint64)
        assert mulmod(a, a)[0] == pow(P - 1, 2, P)

    def test_addmod(self):
        a = np.asarray([P - 1], dtype=np.uint64)
        assert addmod(a, a)[0] == (2 * (P - 1)) % P


class TestPolyEval:
    def test_matches_python_reference(self):
        coeffs = np.asarray([3, 1, 4, 1], dtype=np.uint64)  # 3x^3 + x^2 + 4x + 1
        points = np.asarray([0, 1, 2, 10**6], dtype=np.uint64)
        expected = [
            (3 * x**3 + x**2 + 4 * x + 1) % P for x in points.tolist()
        ]
        assert poly_eval(coeffs, points).tolist() == expected

    def test_constant_polynomial(self):
        coeffs = np.asarray([42], dtype=np.uint64)
        points = np.asarray([0, 5, 100], dtype=np.uint64)
        assert poly_eval(coeffs, points).tolist() == [42, 42, 42]

    def test_rejects_empty_coefficients(self):
        with pytest.raises(ValueError):
            poly_eval(np.zeros(0, dtype=np.uint64), np.asarray([1], dtype=np.uint64))

    @given(
        coeffs=st.lists(st.integers(0, P - 1), min_size=1, max_size=5),
        x=st.integers(0, P - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_matches_horner_over_ints(self, coeffs, x):
        arr = np.asarray(coeffs, dtype=np.uint64)
        pts = np.asarray([x], dtype=np.uint64)
        acc = 0
        for c in coeffs:
            acc = (acc * x + c) % P
        assert int(poly_eval(arr, pts)[0]) == acc


class TestPolyEvalMany:
    def test_agrees_with_single_eval(self):
        rng = np.random.default_rng(0)
        coeffs = random_coefficients(rng, num_polys=7, degree=3)
        points = np.asarray([0, 1, 99, 12345], dtype=np.uint64)
        many = poly_eval_many(coeffs, points)
        for i in range(7):
            assert np.array_equal(many[i], poly_eval(coeffs[i], points))

    def test_output_shape(self):
        rng = np.random.default_rng(0)
        coeffs = random_coefficients(rng, num_polys=4, degree=1)
        out = poly_eval_many(coeffs, np.asarray([5, 6, 7], dtype=np.uint64))
        assert out.shape == (4, 3)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            poly_eval_many(
                np.zeros((2, 0), dtype=np.uint64), np.asarray([1], dtype=np.uint64)
            )


class TestRandomCoefficients:
    def test_shape_and_range(self):
        rng = np.random.default_rng(1)
        coeffs = random_coefficients(rng, num_polys=100, degree=3)
        assert coeffs.shape == (100, 4)
        assert coeffs.max() < P

    def test_leading_coefficient_nonzero(self):
        rng = np.random.default_rng(2)
        coeffs = random_coefficients(rng, num_polys=500, degree=2)
        assert (coeffs[:, 0] > 0).all()

    def test_degree_zero_allows_zero(self):
        rng = np.random.default_rng(3)
        coeffs = random_coefficients(rng, num_polys=10, degree=0)
        assert coeffs.shape == (10, 1)

    def test_rejects_negative_degree(self):
        with pytest.raises(ValueError):
            random_coefficients(np.random.default_rng(0), 1, -1)

    def test_deterministic_given_seed(self):
        a = random_coefficients(np.random.default_rng(7), 5, 3)
        b = random_coefficients(np.random.default_rng(7), 5, 3)
        assert np.array_equal(a, b)
