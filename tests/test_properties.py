"""Property-based tests (hypothesis) for the library's core invariants.

These pin down the *algebraic* guarantees every estimator's correctness
rests on: sketches are linear projections (additivity, delete-inverse),
skimming is exact subtraction, bulk and element maintenance coincide, and
shared schemas imply identical randomness.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.skim import skim_dense
from repro.sketches.agms import AGMSSchema
from repro.sketches.hash_sketch import HashSketchSchema
from repro.streams.model import FrequencyVector

DOMAIN = 64

counts_strategy = st.lists(
    st.integers(min_value=-30, max_value=30), min_size=DOMAIN, max_size=DOMAIN
)
updates_strategy = st.lists(
    st.tuples(
        st.integers(0, DOMAIN - 1),
        st.sampled_from([-2.0, -1.0, 1.0, 2.0, 0.5]),
    ),
    max_size=60,
)


def hash_schema(seed=0, width=16, depth=3):
    return HashSketchSchema(width, depth, DOMAIN, seed=seed)


def to_vector(counts) -> FrequencyVector:
    return FrequencyVector(np.asarray(counts, dtype=np.float64))


@given(counts=counts_strategy, other=counts_strategy)
@settings(max_examples=40, deadline=None)
def test_hash_sketch_is_additive(counts, other):
    """sketch(f + g) == sketch(f) + sketch(g), counter by counter."""
    schema = hash_schema()
    f, g = to_vector(counts), to_vector(other)
    merged = schema.sketch_of(f).merged_with(schema.sketch_of(g))
    direct = schema.sketch_of(f + g)
    assert np.allclose(merged.counters, direct.counters)


@given(updates=updates_strategy)
@settings(max_examples=40, deadline=None)
def test_hash_sketch_deletes_invert_inserts(updates):
    """Applying every update then its negation returns the zero sketch."""
    schema = hash_schema(seed=1)
    sketch = schema.create_sketch()
    for value, weight in updates:
        sketch.update(value, weight)
    for value, weight in updates:
        sketch.update(value, -weight)
    assert np.allclose(sketch.counters, 0.0)


@given(updates=updates_strategy)
@settings(max_examples=30, deadline=None)
def test_hash_sketch_order_invariance(updates):
    """Stream order never matters (the model allows arbitrary arrival)."""
    schema = hash_schema(seed=2)
    forward = schema.create_sketch()
    for value, weight in updates:
        forward.update(value, weight)
    backward = schema.create_sketch()
    for value, weight in reversed(updates):
        backward.update(value, weight)
    assert np.allclose(forward.counters, backward.counters)


@given(updates=updates_strategy)
@settings(max_examples=30, deadline=None)
def test_hash_sketch_bulk_equals_elementwise(updates):
    schema = hash_schema(seed=3)
    loop = schema.create_sketch()
    for value, weight in updates:
        loop.update(value, weight)
    bulk = schema.create_sketch()
    if updates:
        values = np.asarray([v for v, _ in updates], dtype=np.int64)
        weights = np.asarray([w for _, w in updates])
        bulk.update_bulk(values, weights)
    assert np.allclose(loop.counters, bulk.counters)


@given(counts=counts_strategy)
@settings(max_examples=30, deadline=None)
def test_agms_bulk_equals_elementwise(counts):
    schema = AGMSSchema(4, 3, DOMAIN, seed=4)
    freqs = to_vector(counts)
    bulk = schema.sketch_of(freqs)
    loop = schema.create_sketch()
    for value, freq in freqs.nonzero_items():
        loop.update(value, freq)
    assert np.allclose(bulk.atomic_sketches, loop.atomic_sketches)


@given(
    counts=st.lists(st.integers(0, 50), min_size=DOMAIN, max_size=DOMAIN),
    threshold=st.floats(1.0, 40.0),
)
@settings(max_examples=30, deadline=None)
def test_skim_residual_is_exact_subtraction(counts, threshold):
    """For any stream and threshold, the skimmed sketch is exactly the
    sketch of (f - extracted)."""
    schema = hash_schema(seed=5, width=32, depth=5)
    freqs = to_vector(counts)
    sketch = schema.sketch_of(freqs)
    result, skimmed = skim_dense(sketch, threshold=threshold)
    residual = freqs.copy()
    if result.dense_count:
        residual.apply_bulk(result.dense_values, -result.dense_frequencies)
    assert np.allclose(skimmed.counters, schema.sketch_of(residual).counters)


@given(counts=st.lists(st.integers(0, 50), min_size=DOMAIN, max_size=DOMAIN))
@settings(max_examples=30, deadline=None)
def test_skim_extracted_frequencies_meet_threshold(counts):
    schema = hash_schema(seed=6, width=32, depth=5)
    sketch = schema.sketch_of(to_vector(counts))
    result, _ = skim_dense(sketch, threshold=10.0)
    assert (result.dense_frequencies >= 10.0).all()


@given(seed=st.integers(0, 1000))
@settings(max_examples=25, deadline=None)
def test_same_seed_same_sketch(seed):
    """Schema determinism: equal seeds produce identical projections."""
    freqs = to_vector([1] * DOMAIN)
    a = HashSketchSchema(16, 3, DOMAIN, seed=seed).sketch_of(freqs)
    b = HashSketchSchema(16, 3, DOMAIN, seed=seed).sketch_of(freqs)
    assert np.array_equal(a.counters, b.counters)


@given(counts=counts_strategy, scalar=st.sampled_from([2.0, 3.0, -1.0]))
@settings(max_examples=30, deadline=None)
def test_hash_sketch_homogeneity(counts, scalar):
    """sketch(c * f) == c * sketch(f): full linearity, not just additivity."""
    schema = hash_schema(seed=7)
    freqs = to_vector(counts)
    scaled = FrequencyVector(freqs.counts * scalar)
    assert np.allclose(
        schema.sketch_of(scaled).counters,
        scalar * schema.sketch_of(freqs).counters,
    )


@given(counts=counts_strategy)
@settings(max_examples=30, deadline=None)
def test_agms_self_join_estimate_non_negative_with_averaging(counts):
    """Averaged squares of atomic sketches are non-negative estimates."""
    schema = AGMSSchema(4, 3, DOMAIN, seed=8)
    sketch = schema.sketch_of(to_vector(counts))
    assert sketch.est_self_join_size() >= 0.0
