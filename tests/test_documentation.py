"""Meta-tests: every public item in the library carries a docstring.

Documentation is a deliverable, not a hope; this test walks the package
and fails on any public module, class, function or method without one.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import repro

#: Dunder/infra methods that inherit well-known semantics.
_EXEMPT_METHODS = {
    "__init__",  # documented via the class docstring's Parameters section
    "__repr__",
    "__eq__",
    "__hash__",
    "__len__",
    "__getitem__",
    "__add__",
    "__sub__",
    "__post_init__",
    "__str__",
}


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def _is_local(obj, module) -> bool:
    return getattr(obj, "__module__", None) == module.__name__


def test_all_modules_have_docstrings():
    missing = [m.__name__ for m in _iter_modules() if not inspect.getdoc(m)]
    assert not missing, f"modules without docstrings: {missing}"


def test_all_public_classes_and_functions_have_docstrings():
    missing: list[str] = []
    for module in _iter_modules():
        for name, obj in vars(module).items():
            if name.startswith("_") or not _is_local(obj, module):
                continue
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not inspect.getdoc(obj):
                    missing.append(f"{module.__name__}.{name}")
    assert not missing, f"public items without docstrings: {missing}"


def test_all_public_methods_have_docstrings():
    missing: list[str] = []
    for module in _iter_modules():
        for class_name, cls in vars(module).items():
            if class_name.startswith("_") or not inspect.isclass(cls):
                continue
            if not _is_local(cls, module):
                continue
            for method_name, method in vars(cls).items():
                if method_name.startswith("_") and method_name not in _EXEMPT_METHODS:
                    continue
                if method_name in _EXEMPT_METHODS:
                    continue
                is_callable = inspect.isfunction(method) or isinstance(
                    method, (property, staticmethod, classmethod)
                )
                if not is_callable:
                    continue
                target = method.fget if isinstance(method, property) else method
                if not inspect.getdoc(target):
                    missing.append(f"{module.__name__}.{class_name}.{method_name}")
    assert not missing, f"public methods without docstrings: {missing}"


def test_public_api_exports_resolve():
    """Every name in a package's __all__ actually exists."""
    for module in _iter_modules():
        exported = getattr(module, "__all__", [])
        for name in exported:
            assert hasattr(module, name), f"{module.__name__}.__all__ lists {name}"
