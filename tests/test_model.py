"""Unit + property tests for the stream data model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DomainError
from repro.streams.model import FrequencyVector, Update, iter_stream


class TestUpdate:
    def test_defaults_to_insert(self):
        update = Update(5)
        assert update.weight == 1.0

    def test_rejects_negative_value(self):
        with pytest.raises(DomainError):
            Update(-1)

    def test_frozen(self):
        update = Update(1, 2.0)
        with pytest.raises(AttributeError):
            update.value = 3  # type: ignore[misc]


class TestFrequencyVectorConstruction:
    def test_zeros(self):
        vec = FrequencyVector.zeros(10)
        assert vec.domain_size == 10
        assert vec.total_count() == 0

    def test_zeros_rejects_empty_domain(self):
        with pytest.raises(ValueError):
            FrequencyVector.zeros(0)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            FrequencyVector(np.zeros((2, 2)))

    def test_from_updates(self):
        vec = FrequencyVector.from_updates(
            [Update(1), Update(1), Update(2), Update(1, -1.0)], 4
        )
        assert vec[1] == 1.0
        assert vec[2] == 1.0
        assert vec[0] == 0.0

    def test_from_values(self):
        vec = FrequencyVector.from_values([0, 0, 3], 4)
        assert vec.counts.tolist() == [2.0, 0.0, 0.0, 1.0]

    def test_from_values_domain_check(self):
        with pytest.raises(DomainError):
            FrequencyVector.from_values([5], 4)

    def test_counts_are_read_only(self):
        vec = FrequencyVector.zeros(4)
        with pytest.raises(ValueError):
            vec.counts[0] = 1.0

    def test_copy_is_independent(self):
        vec = FrequencyVector.from_values([1], 4)
        clone = vec.copy()
        clone.apply(Update(1))
        assert vec[1] == 1.0
        assert clone[1] == 2.0


class TestMutation:
    def test_apply_out_of_domain(self):
        vec = FrequencyVector.zeros(4)
        with pytest.raises(DomainError):
            vec.apply(Update(4))

    def test_apply_bulk_matches_loop(self):
        values = np.asarray([0, 1, 1, 3, 3, 3])
        weights = np.asarray([1.0, 2.0, -1.0, 0.5, 0.5, 1.0])
        bulk = FrequencyVector.zeros(4)
        bulk.apply_bulk(values, weights)
        loop = FrequencyVector.zeros(4)
        for v, w in zip(values, weights):
            loop.apply(Update(int(v), float(w)))
        assert bulk == loop

    def test_apply_bulk_default_weights(self):
        vec = FrequencyVector.zeros(4)
        vec.apply_bulk(np.asarray([2, 2]))
        assert vec[2] == 2.0

    def test_apply_bulk_empty(self):
        vec = FrequencyVector.zeros(4)
        vec.apply_bulk(np.zeros(0, dtype=np.int64))
        assert vec.total_count() == 0

    def test_apply_bulk_shape_mismatch(self):
        vec = FrequencyVector.zeros(4)
        with pytest.raises(ValueError):
            vec.apply_bulk(np.asarray([1]), np.asarray([1.0, 2.0]))


class TestAggregates:
    def test_join_size_is_inner_product(self):
        f = FrequencyVector(np.asarray([1.0, 2.0, 0.0]))
        g = FrequencyVector(np.asarray([3.0, 4.0, 5.0]))
        assert f.join_size(g) == 1 * 3 + 2 * 4

    def test_join_size_domain_mismatch(self):
        with pytest.raises(ValueError):
            FrequencyVector.zeros(3).join_size(FrequencyVector.zeros(4))

    def test_self_join_size(self):
        f = FrequencyVector(np.asarray([3.0, 4.0]))
        assert f.self_join_size() == 25.0

    def test_absolute_mass_with_deletes(self):
        f = FrequencyVector(np.asarray([-2.0, 3.0]))
        assert f.total_count() == 1.0
        assert f.absolute_mass() == 5.0

    def test_support_and_items(self):
        f = FrequencyVector(np.asarray([0.0, 2.0, 0.0, -1.0]))
        assert f.support().tolist() == [1, 3]
        assert list(f.nonzero_items()) == [(1, 2.0), (3, -1.0)]


class TestAlgebra:
    def test_add_sub(self):
        f = FrequencyVector(np.asarray([1.0, 2.0]))
        g = FrequencyVector(np.asarray([3.0, 4.0]))
        assert (f + g).counts.tolist() == [4.0, 6.0]
        assert (g - f).counts.tolist() == [2.0, 2.0]

    def test_eq(self):
        f = FrequencyVector(np.asarray([1.0]))
        assert f == FrequencyVector(np.asarray([1.0]))
        assert f != FrequencyVector(np.asarray([2.0]))
        assert f != "not a vector"


class TestIterStream:
    def test_round_trip(self):
        original = FrequencyVector(np.asarray([2.0, 0.0, 3.0, -1.0]))
        rebuilt = FrequencyVector.from_updates(iter_stream(original), 4)
        assert rebuilt == original

    def test_round_trip_shuffled(self):
        original = FrequencyVector(np.asarray([5.0, 1.0, 0.0, 2.0]))
        rebuilt = FrequencyVector.from_updates(
            iter_stream(original, np.random.default_rng(0)), 4
        )
        assert rebuilt == original

    def test_fractional_weights(self):
        original = FrequencyVector(np.asarray([2.5]))
        updates = list(iter_stream(original))
        assert len(updates) == 3  # two unit inserts + one 0.5 insert
        rebuilt = FrequencyVector.from_updates(updates, 1)
        assert rebuilt == original


@given(
    counts=st.lists(
        st.integers(min_value=-20, max_value=20), min_size=1, max_size=30
    )
)
@settings(max_examples=60, deadline=None)
def test_property_iter_stream_round_trip(counts):
    original = FrequencyVector(np.asarray(counts, dtype=np.float64))
    rebuilt = FrequencyVector.from_updates(
        iter_stream(original), original.domain_size
    )
    assert rebuilt == original


@given(
    counts=st.lists(st.floats(-100, 100), min_size=1, max_size=20),
    other=st.lists(st.floats(-100, 100), min_size=1, max_size=20),
)
@settings(max_examples=60, deadline=None)
def test_property_join_commutes(counts, other):
    size = max(len(counts), len(other))
    f = FrequencyVector(np.asarray(counts + [0.0] * (size - len(counts))))
    g = FrequencyVector(np.asarray(other + [0.0] * (size - len(other))))
    assert f.join_size(g) == pytest.approx(g.join_size(f))
