"""Tests for multi-join COUNT estimation (Dobra et al. composition)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DomainError, IncompatibleSketchError, QueryError
from repro.streams.multijoin import (
    MultiJoinSchema,
    est_multi_join_count,
    validate_join_graph,
)

DOMAINS = {"a": 64, "b": 64}


def exact_chain_count(r1, r2, r3, domains=(64, 64)):
    """Brute-force COUNT(R1(a) join R2(a,b) join R3(b)) from tuple lists."""
    f = np.zeros(domains[0])
    for (a,) in r1:
        f[a] += 1
    g = np.zeros(domains)
    for a, b in r2:
        g[a, b] += 1
    h = np.zeros(domains[1])
    for (b,) in r3:
        h[b] += 1
    return float(f @ g @ h)


def make_relations(schema):
    return (
        schema.create_relation(("a",)),
        schema.create_relation(("a", "b")),
        schema.create_relation(("b",)),
    )


class TestSchema:
    def test_validation(self):
        with pytest.raises(ValueError):
            MultiJoinSchema(0, 1, DOMAINS)
        with pytest.raises(ValueError):
            MultiJoinSchema(1, 0, DOMAINS)
        with pytest.raises(ValueError):
            MultiJoinSchema(1, 1, {})
        with pytest.raises(ValueError):
            MultiJoinSchema(1, 1, {"a": 0})

    def test_relation_validation(self):
        schema = MultiJoinSchema(4, 3, DOMAINS)
        with pytest.raises(QueryError):
            schema.create_relation(("z",))
        with pytest.raises(QueryError):
            schema.create_relation(("a", "a"))
        with pytest.raises(ValueError):
            schema.create_relation(())


class TestMaintenance:
    def test_update_and_bulk_agree(self):
        schema = MultiJoinSchema(8, 5, DOMAINS, seed=1)
        tuples = np.random.default_rng(0).integers(0, 64, size=(50, 2))
        bulk = schema.create_relation(("a", "b"))
        bulk.update_bulk(tuples)
        loop = schema.create_relation(("a", "b"))
        for row in tuples:
            loop.update(tuple(int(x) for x in row))
        assert np.allclose(bulk.atomic_sketches, loop.atomic_sketches)

    def test_shape_check(self):
        schema = MultiJoinSchema(2, 2, DOMAINS)
        relation = schema.create_relation(("a", "b"))
        with pytest.raises(ValueError):
            relation.update_bulk(np.asarray([[1, 2, 3]]))

    def test_domain_check(self):
        schema = MultiJoinSchema(2, 2, DOMAINS)
        relation = schema.create_relation(("a",))
        with pytest.raises(DomainError):
            relation.update((64,))

    def test_deletes_cancel(self):
        schema = MultiJoinSchema(3, 3, DOMAINS, seed=2)
        relation = schema.create_relation(("a", "b"))
        relation.update((1, 2))
        relation.update((1, 2), -1.0)
        assert np.allclose(relation.atomic_sketches, 0.0)

    def test_size_accounting(self):
        schema = MultiJoinSchema(8, 5, DOMAINS)
        assert schema.create_relation(("a",)).size_in_counters() == 40


class TestJoinGraphValidation:
    def test_valid_chain_passes(self):
        schema = MultiJoinSchema(2, 2, DOMAINS)
        validate_join_graph(make_relations(schema))

    def test_attribute_in_three_relations_rejected(self):
        schema = MultiJoinSchema(2, 2, DOMAINS)
        relations = [schema.create_relation(("a",)) for _ in range(3)]
        with pytest.raises(QueryError):
            validate_join_graph(relations)

    def test_single_relation_rejected(self):
        schema = MultiJoinSchema(2, 2, DOMAINS)
        with pytest.raises(QueryError):
            validate_join_graph([schema.create_relation(("a",))])

    def test_mixed_schemas_rejected(self):
        r1 = MultiJoinSchema(2, 2, DOMAINS, seed=1).create_relation(("a",))
        r2 = MultiJoinSchema(2, 2, DOMAINS, seed=2).create_relation(("a",))
        with pytest.raises(IncompatibleSketchError):
            validate_join_graph([r1, r2])


class TestEstimation:
    def test_single_shared_tuple_chain(self):
        """One matching path: count must be estimated exactly on expectation
        and, with a decent grid, very accurately."""
        schema = MultiJoinSchema(64, 11, DOMAINS, seed=3)
        r1, r2, r3 = make_relations(schema)
        for _ in range(5):
            r1.update((7,))
        r2.update((7, 9))
        for _ in range(3):
            r3.update((9,))
        estimate = est_multi_join_count([r1, r2, r3])
        assert estimate == pytest.approx(15.0, rel=0.35)

    def test_unbiasedness_across_schemas(self):
        rng = np.random.default_rng(4)
        t1 = [(int(a),) for a in rng.integers(0, 8, 30)]
        t2 = [(int(a), int(b)) for a, b in rng.integers(0, 8, size=(40, 2))]
        t3 = [(int(b),) for b in rng.integers(0, 8, 30)]
        actual = exact_chain_count(t1, t2, t3, (64, 64))
        estimates = []
        for seed in range(200):
            schema = MultiJoinSchema(1, 1, DOMAINS, seed=seed)
            r1, r2, r3 = make_relations(schema)
            for t in t1:
                r1.update(t)
            for t in t2:
                r2.update(t)
            for t in t3:
                r3.update(t)
            estimates.append(est_multi_join_count([r1, r2, r3]))
        assert np.mean(estimates) == pytest.approx(actual, rel=0.3)

    def test_binary_join_special_case(self):
        """A 2-relation multi-join reduces to plain AGMS join estimation."""
        schema = MultiJoinSchema(64, 9, {"a": 64}, seed=5)
        r1 = schema.create_relation(("a",))
        r2 = schema.create_relation(("a",))
        for _ in range(10):
            r1.update((3,))
        for _ in range(6):
            r2.update((3,))
        assert est_multi_join_count([r1, r2]) == pytest.approx(60.0, rel=0.2)
