"""Integration tests: checkpoint/restore workflows across modules."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro import load_sketch, save_sketch
from repro.core.estimator import SkimmedSketchSchema
from repro.eval.metrics import join_error
from repro.streams.generators import element_stream, shifted_zipf_pair

DOMAIN = 1 << 11


class TestCheckpointWorkflow:
    def test_checkpoint_mid_stream_then_resume(self):
        """A process restart mid-stream loses nothing: checkpoint, restore,
        keep streaming, and the final estimate matches the uninterrupted
        run exactly."""
        schema = SkimmedSketchSchema(128, 7, DOMAIN, seed=4)
        f, g = shifted_zipf_pair(DOMAIN, 30_000, 1.2, 10)
        stream = element_stream(f, np.random.default_rng(0))
        half = len(stream) // 2

        # Uninterrupted run.
        uninterrupted = schema.create_sketch()
        uninterrupted.consume(stream)

        # Interrupted run: first half, checkpoint, restore, second half.
        first_half = schema.create_sketch()
        first_half.consume(stream[:half])
        buffer = io.BytesIO()
        save_sketch(first_half, buffer)
        buffer.seek(0)
        resumed = load_sketch(buffer)
        resumed.consume(stream[half:])

        sketch_g = schema.sketch_of(g)
        assert resumed.est_join_size(sketch_g) == pytest.approx(
            uninterrupted.est_join_size(sketch_g)
        )

    def test_restored_sketch_joins_against_live_peer(self):
        """Ship a sketch to a coordinator: the receiver rebuilds the schema
        from the archive and joins it against locally-built sketches."""
        schema = SkimmedSketchSchema(256, 7, DOMAIN, seed=9)
        f, g = shifted_zipf_pair(DOMAIN, 50_000, 1.2, 10)
        actual = f.join_size(g)

        # "Site F" builds and ships its sketch.
        buffer = io.BytesIO()
        save_sketch(schema.sketch_of(f), buffer)
        buffer.seek(0)

        # "Coordinator" restores it — no access to the original schema
        # object — and joins with its own sketch of G (same parameters).
        restored_f = load_sketch(buffer)
        local_schema = SkimmedSketchSchema(256, 7, DOMAIN, seed=9)
        sketch_g = local_schema.sketch_of(g)
        estimate = restored_f.est_join_size(sketch_g)
        assert join_error(estimate, actual) < 0.25

    def test_merged_checkpoints_equal_union_stream(self):
        """Two sites sketch disjoint substreams, ship archives, and the
        coordinator's merge equals a single sketch over the union."""
        schema = SkimmedSketchSchema(128, 5, DOMAIN, seed=12)
        f, _ = shifted_zipf_pair(DOMAIN, 20_000, 1.1, 0)
        stream = element_stream(f, np.random.default_rng(1))
        half = len(stream) // 2

        archives = []
        for part in (stream[:half], stream[half:]):
            sketch = schema.create_sketch()
            sketch.consume(part)
            buffer = io.BytesIO()
            save_sketch(sketch, buffer)
            buffer.seek(0)
            archives.append(buffer)

        restored = [load_sketch(archive) for archive in archives]
        merged = restored[0].merged_with(restored[1])
        whole = schema.create_sketch()
        whole.consume(stream)
        assert merged.est_self_join_size() == pytest.approx(
            whole.est_self_join_size()
        )