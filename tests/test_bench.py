"""Tests for the ``repro.bench`` performance-trajectory harness."""

from __future__ import annotations

import copy
import pathlib

import pytest

from repro.bench import (
    BENCH_VERSION,
    SCENARIOS,
    compare_bench,
    read_bench,
    record_key,
    run_scenario,
    run_suite,
    scenarios_for,
    suite_names,
    validate_bench,
    write_bench,
)
from repro.bench.__main__ import main as bench_main

_BASELINE = str(
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "baselines"
    / "BENCH_baseline.json"
)


def _doc(records=None, revision="abc1234", suite="smoke") -> dict:
    if records is None:
        records = [_record()]
    return {
        "version": BENCH_VERSION,
        "kind": "repro.bench",
        "suite": suite,
        "revision": revision,
        "records": records,
    }


def _record(
    scenario="update.hash",
    params=None,
    median=0.010,
    relative_error=0.05,
    sketch_bytes=1024,
) -> dict:
    return {
        "scenario": scenario,
        "params": dict(params or {"n": 1000}),
        "wall_clock": {"median": median, "iqr": 0.001, "repeats": 5},
        "updates_per_sec": 1000 / median,
        "relative_error": relative_error,
        "sketch_bytes": sketch_bytes,
    }


class TestSchema:
    def test_valid_document_passes(self):
        doc = _doc()
        assert validate_bench(doc) is doc

    def test_null_optional_metrics_are_valid(self):
        record = _record()
        record["relative_error"] = None
        record["sketch_bytes"] = None
        record["updates_per_sec"] = None
        validate_bench(_doc([record]))

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda d: d.update(version=99), "version"),
            (lambda d: d.update(kind="nope"), "kind"),
            (lambda d: d.update(revision=""), "revision"),
            (lambda d: d.update(records=[]), "records"),
            (lambda d: d["records"][0].pop("scenario"), "scenario"),
            (lambda d: d["records"][0].update(params=[]), "params"),
            (lambda d: d["records"][0]["wall_clock"].pop("median"), "median"),
            (
                lambda d: d["records"][0]["wall_clock"].update(median=-1),
                "median",
            ),
            (lambda d: d["records"][0].pop("relative_error"), "relative_error"),
            (
                lambda d: d["records"][0].update(sketch_bytes="big"),
                "sketch_bytes",
            ),
        ],
    )
    def test_malformed_documents_rejected(self, mutate, message):
        doc = _doc()
        mutate(doc)
        with pytest.raises(ValueError, match=message):
            validate_bench(doc)

    def test_duplicate_record_keys_rejected(self):
        doc = _doc([_record(), _record()])
        with pytest.raises(ValueError, match="duplicates"):
            validate_bench(doc)

    def test_record_key_canonicalises_param_order(self):
        a = _record(params={"n": 1, "width": 2})
        b = _record(params={"width": 2, "n": 1})
        assert record_key(a) == record_key(b)
        assert record_key(a) != record_key(_record(params={"n": 2, "width": 2}))

    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        doc = _doc()
        write_bench(str(path), doc)
        assert read_bench(str(path)) == doc

    def test_write_refuses_invalid(self, tmp_path):
        with pytest.raises(ValueError):
            write_bench(str(tmp_path / "bad.json"), {"version": 99})


class TestCompare:
    def test_identical_documents_have_no_regressions(self):
        base = _doc()
        rows, regressions = compare_bench(base, copy.deepcopy(base))
        assert regressions == []
        (row,) = rows
        assert row["status"] == "matched"
        assert row["wall_clock"]["ratio"] == pytest.approx(1.0)

    def test_slowdown_flagged_and_gateable(self):
        base = _doc([_record(median=0.010)])
        cur = _doc([_record(median=0.050)])
        _, regressions = compare_bench(base, cur, max_slowdown=2.0)
        assert len(regressions) == 1 and "wall-clock" in regressions[0]
        # max_slowdown <= 0 disables the timing gate (cross-machine CI).
        _, regressions = compare_bench(base, cur, max_slowdown=0)
        assert regressions == []

    def test_error_growth_flagged(self):
        base = _doc([_record(relative_error=0.05)])
        cur = _doc([_record(relative_error=0.20)])
        _, regressions = compare_bench(base, cur, max_slowdown=0)
        assert len(regressions) == 1 and "relative error" in regressions[0]
        _, ok = compare_bench(base, cur, max_slowdown=0, max_error_increase=0.5)
        assert ok == []

    def test_bytes_growth_flagged(self):
        base = _doc([_record(sketch_bytes=1000)])
        cur = _doc([_record(sketch_bytes=1200)])
        _, regressions = compare_bench(base, cur, max_slowdown=0)
        assert len(regressions) == 1 and "bytes" in regressions[0]

    def test_removed_scenario_is_a_regression_added_is_not(self):
        base = _doc([_record(), _record(scenario="skim.flat")])
        cur = _doc([_record(), _record(scenario="join.skimmed")])
        rows, regressions = compare_bench(base, cur, max_slowdown=0)
        statuses = {row["key"].split("::")[0]: row["status"] for row in rows}
        assert statuses["skim.flat"] == "removed"
        assert statuses["join.skimmed"] == "added"
        assert len(regressions) == 1 and "disappeared" in regressions[0]


class TestRunner:
    def test_registry_suites(self):
        assert set(suite_names()) == {"smoke", "full"}
        assert scenarios_for("smoke")
        names = {s.name for s in SCENARIOS}
        assert {
            "update.hash",
            "update.agms",
            "skim.flat",
            "skim.dyadic",
            "join.skimmed",
            "join.agms",
            "join.hash",
        } <= names

    def test_run_scenario_produces_valid_record(self):
        scenario = next(s for s in SCENARIOS if s.name == "update.hash")
        params = dict(scenario.suites["smoke"])
        params["n"] = 2_000  # keep the unit test cheap
        record = run_scenario(scenario, params, repeats=2)
        validate_bench(_doc([record]))
        assert record["wall_clock"]["repeats"] == 2
        assert record["updates_per_sec"] > 0
        assert record["sketch_bytes"] > 0

    def test_run_scenario_extras_are_deterministic(self):
        scenario = next(s for s in SCENARIOS if s.name == "join.skimmed")
        params = dict(scenario.suites["smoke"])
        first = run_scenario(scenario, params, repeats=1)
        second = run_scenario(scenario, params, repeats=1)
        assert first["relative_error"] == second["relative_error"]
        assert first["sketch_bytes"] == second["sketch_bytes"]

    def test_run_suite_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown suite"):
            run_suite("nope")

    def test_bad_repeats_rejected(self):
        scenario = SCENARIOS[0]
        with pytest.raises(ValueError, match="repeats"):
            run_scenario(scenario, dict(scenario.suites["smoke"]), repeats=0)


class TestBenchCLI:
    def test_list(self, capsys):
        assert bench_main(["list"]) == 0
        out = capsys.readouterr().out
        for scenario in SCENARIOS:
            assert scenario.name in out

    def test_compare_exit_codes(self, tmp_path, capsys):
        base_path = tmp_path / "base.json"
        slow_path = tmp_path / "slow.json"
        write_bench(str(base_path), _doc([_record(median=0.010)]))
        write_bench(str(slow_path), _doc([_record(median=0.100)]))
        # Regression -> non-zero exit.
        assert bench_main(["compare", str(base_path), str(slow_path)]) == 1
        assert "REGRESSIONS" in capsys.readouterr().out
        # Timing gate disabled -> pass.
        assert (
            bench_main(
                ["compare", str(base_path), str(slow_path), "--max-slowdown", "0"]
            )
            == 0
        )
        assert "no regressions" in capsys.readouterr().out

    def test_compare_rejects_bad_files(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        write_bench(str(good), _doc())
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert bench_main(["compare", str(good), str(bad)]) == 1
        assert bench_main(["compare", str(good), str(tmp_path / "nope.json")]) == 1

    def test_committed_baseline_is_valid(self):
        doc = read_bench(_BASELINE)
        assert doc["suite"] == "smoke"
        names = {r["scenario"] for r in doc["records"]}
        assert "join.skimmed" in names

    def test_baseline_tells_the_papers_story(self):
        """The committed baseline must reproduce the headline result:
        skimming beats basic AGMS beats unskimmed hash estimates."""
        doc = read_bench(_BASELINE)
        err = {
            r["scenario"]: r["relative_error"]
            for r in doc["records"]
            if r["scenario"].startswith("join.")
        }
        assert err["join.skimmed"] < err["join.agms"] < err["join.hash"]
