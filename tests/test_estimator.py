"""Tests for the public SkimmedSketch API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SketchParameters
from repro.core.estimator import SkimmedSketch, SkimmedSketchSchema
from repro.errors import IncompatibleSketchError
from repro.streams.generators import shifted_zipf_pair
from repro.streams.model import FrequencyVector

DOMAIN = 1 << 12


def make_schema(**kwargs):
    defaults = dict(width=256, depth=7, domain_size=DOMAIN, seed=0)
    defaults.update(kwargs)
    return SkimmedSketchSchema(**defaults)


class TestSchema:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_schema(threshold_multiplier=0.0)

    def test_from_parameters(self):
        params = SketchParameters(width=100, depth=5, threshold_multiplier=1.5)
        schema = SkimmedSketchSchema.from_parameters(params, DOMAIN, seed=3)
        assert schema.width == 100
        assert schema.depth == 5
        assert schema.threshold_multiplier == 1.5

    def test_dyadic_requires_power_of_two(self):
        with pytest.raises(ValueError):
            SkimmedSketchSchema(64, 5, 1000, dyadic=True)

    def test_compatibility(self):
        assert make_schema().is_compatible(make_schema())
        assert not make_schema().is_compatible(make_schema(seed=1))
        assert not make_schema().is_compatible(make_schema(dyadic=True))
        assert not make_schema().is_compatible(
            make_schema(threshold_multiplier=2.0)
        )


class TestQuickstartFlow:
    def test_streaming_join_estimate(self):
        schema = make_schema()
        f, g = schema.create_sketch(), schema.create_sketch()
        for _ in range(100):
            f.update(17)
            g.update(17)
        g.update(23, -1.0)
        estimate = f.est_join_size(g)
        assert estimate == pytest.approx(10_000.0, rel=0.05)

    def test_deletes_supported_end_to_end(self):
        schema = make_schema()
        f, g = schema.create_sketch(), schema.create_sketch()
        f.update_bulk(np.asarray([5] * 50))
        g.update_bulk(np.asarray([5] * 30))
        g.update_bulk(np.asarray([5] * 10), np.asarray([-1.0] * 10))
        assert f.est_join_size(g) == pytest.approx(50.0 * 20.0, rel=0.1)

    def test_absolute_mass_tracks_stream_volume(self):
        schema = make_schema()
        sketch = schema.create_sketch()
        sketch.update(1, 2.0)
        sketch.update(1, -2.0)
        assert sketch.absolute_mass == pytest.approx(4.0)


class TestEstimates:
    def test_join_accuracy(self):
        schema = make_schema(width=256, depth=11)
        f, g = shifted_zipf_pair(DOMAIN, 100_000, 1.2, 10)
        estimate = schema.sketch_of(f).est_join_size(schema.sketch_of(g))
        assert estimate == pytest.approx(f.join_size(g), rel=0.15)

    def test_self_join_accuracy(self):
        schema = make_schema(width=256, depth=11)
        f, _ = shifted_zipf_pair(DOMAIN, 100_000, 1.2, 0)
        estimate = schema.sketch_of(f).est_self_join_size()
        assert estimate == pytest.approx(f.self_join_size(), rel=0.15)

    def test_point_estimate(self):
        schema = make_schema()
        sketch = schema.create_sketch()
        sketch.update_bulk(np.asarray([9] * 25))
        assert sketch.point_estimate(9) == pytest.approx(25.0)

    def test_breakdown_exposed(self):
        schema = make_schema()
        f, g = shifted_zipf_pair(DOMAIN, 50_000, 1.3, 5)
        breakdown = schema.sketch_of(f).join_breakdown(schema.sketch_of(g))
        assert breakdown.estimate == pytest.approx(
            breakdown.dense_dense
            + breakdown.dense_sparse
            + breakdown.sparse_dense
            + breakdown.sparse_sparse
        )

    def test_skim_threshold_formula(self):
        schema = make_schema(width=100, threshold_multiplier=2.0)
        sketch = schema.create_sketch()
        sketch.update_bulk(np.asarray([1] * 500))
        assert sketch.skim_threshold() == pytest.approx(2.0 * 500 / 10.0)

    def test_explicit_threshold_override(self):
        schema = make_schema()
        f, g = shifted_zipf_pair(DOMAIN, 50_000, 1.3, 5)
        sf, sg = schema.sketch_of(f), schema.sketch_of(g)
        breakdown = sf.join_breakdown(sg, threshold=1e12)
        assert breakdown.f_skim.dense_count == 0

    def test_dyadic_mode(self):
        schema = make_schema(dyadic=True, width=256, depth=7)
        f, g = shifted_zipf_pair(DOMAIN, 50_000, 1.2, 10)
        estimate = schema.sketch_of(f).est_join_size(schema.sketch_of(g))
        assert estimate == pytest.approx(f.join_size(g), rel=0.2)

    def test_dyadic_point_estimate(self):
        schema = make_schema(dyadic=True)
        sketch = schema.create_sketch()
        sketch.update_bulk(np.asarray([3] * 40))
        assert sketch.point_estimate(3) == pytest.approx(40.0)


class TestAlgebraAndErrors:
    def test_merge(self):
        schema = make_schema()
        a, b = schema.create_sketch(), schema.create_sketch()
        a.update_bulk(np.asarray([1] * 10))
        b.update_bulk(np.asarray([1] * 5))
        merged = a.merged_with(b)
        assert merged.point_estimate(1) == pytest.approx(15.0)

    def test_copy_independent(self):
        schema = make_schema()
        sketch = schema.create_sketch()
        sketch.update(1)
        clone = sketch.copy()
        clone.update(2)
        assert clone.absolute_mass != sketch.absolute_mass

    def test_incompatible_join_rejected(self):
        a = make_schema(seed=1).create_sketch()
        b = make_schema(seed=2).create_sketch()
        with pytest.raises(IncompatibleSketchError):
            a.est_join_size(b)

    def test_wrong_type_rejected(self):
        sketch = make_schema().create_sketch()
        with pytest.raises(IncompatibleSketchError):
            sketch.est_join_size(42)  # type: ignore[arg-type]

    def test_size_in_counters(self):
        assert make_schema(width=64, depth=5).create_sketch().size_in_counters() == 320

    def test_sketch_of_convenience(self):
        schema = make_schema()
        freqs = FrequencyVector.from_values([1, 1, 2], DOMAIN)
        sketch = schema.sketch_of(freqs)
        assert sketch.absolute_mass == pytest.approx(3.0)

    def test_repr_mentions_shape(self):
        text = repr(make_schema(width=64, depth=5).create_sketch())
        assert "width=64" in text and "depth=5" in text
