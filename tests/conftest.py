"""Shared fixtures for the test suite.

Conventions: every randomised test pins its seed; statistical assertions
use generous tolerances chosen so that the pinned seeds pass with a wide
margin (they check *behaviour*, not luck).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.monitor import AUDIT
from repro.obs import METRICS
from repro.profile import PROFILER, RECORDER
from repro.streams.generators import shifted_zipf_pair, zipf_frequencies
from repro.streams.model import FrequencyVector
from repro.trace import TRACER

SMALL_DOMAIN = 256
MEDIUM_DOMAIN = 4096


def _reset_observability():
    METRICS.disable()
    METRICS.reset()
    TRACER.disable()
    TRACER.reset()
    AUDIT.disable()
    AUDIT.reset()
    PROFILER.stop()  # joins the sampling thread if a test left it running
    PROFILER.disable()
    PROFILER.reset()
    RECORDER.stop()
    RECORDER.disable()
    RECORDER.reset()


@pytest.fixture(autouse=True)
def _obs_isolation():
    """Keep the global metrics registry, tracer, audit log, profiler and
    flight recorder disabled and empty between tests."""
    _reset_observability()
    yield
    _reset_observability()


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def skewed_pair() -> tuple[FrequencyVector, FrequencyVector]:
    """A deterministic moderately-skewed workload (Zipf 1.0, shift 20)."""
    return shifted_zipf_pair(MEDIUM_DOMAIN, 100_000, 1.0, 20)


@pytest.fixture
def very_skewed_pair() -> tuple[FrequencyVector, FrequencyVector]:
    """A deterministic highly-skewed workload (Zipf 1.5, shift 5)."""
    return shifted_zipf_pair(MEDIUM_DOMAIN, 100_000, 1.5, 5)


@pytest.fixture
def small_zipf() -> FrequencyVector:
    """A small deterministic Zipf stream for cheap tests."""
    return zipf_frequencies(SMALL_DOMAIN, 10_000, 1.2)
