"""Unit and property tests for the ``repro.obs`` metrics subsystem."""

from __future__ import annotations

import json
import math
import pathlib
import re
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.obs
from repro.obs import (
    METRICS,
    MetricsRegistry,
    capturing,
    diff_snapshots,
    render_diff,
    snapshot_from_json,
    snapshot_to_json,
    snapshot_to_prometheus,
    validate_snapshot,
    write_snapshot,
)
from repro.obs.registry import Counter, Gauge, Histogram


bounded_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestCounterGauge:
    def test_counter_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_gauge_last_write_wins(self):
        g = Gauge("x")
        assert g.value == 0.0
        g.set(7)
        g.set(-1.5)
        assert g.value == -1.5

    @given(st.lists(bounded_floats))
    def test_counter_matches_running_sum(self, increments):
        c = Counter("x")
        for amount in increments:
            c.inc(amount)
        assert c.value == pytest.approx(sum(increments), abs=1e-6)


class TestHistogram:
    @given(st.lists(bounded_floats, min_size=1))
    @settings(max_examples=50)
    def test_summary_invariants(self, values):
        h = Histogram("h")
        for v in values:
            h.record(v)
        s = h.summary()
        assert s["count"] == len(values)
        assert s["sum"] == pytest.approx(math.fsum(values), abs=1e-5)
        assert s["min"] == min(values)
        assert s["max"] == max(values)
        assert s["mean"] == pytest.approx(math.fsum(values) / len(values), abs=1e-5)
        assert s["min"] <= s["p50"] <= s["p95"] <= s["p99"] <= s["max"]

    def test_empty_summary_is_all_zero(self):
        s = Histogram("h").summary()
        assert s == {
            "count": 0,
            "sum": 0.0,
            "min": 0.0,
            "max": 0.0,
            "mean": 0.0,
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
        }

    def test_reservoir_is_bounded(self):
        h = Histogram("h", reservoir_size=16)
        for i in range(10_000):
            h.record(float(i))
        assert len(h._samples) == 16  # noqa: SLF001
        assert h.count == 10_000
        assert h.min == 0.0 and h.max == 9999.0

    @given(st.lists(bounded_floats, min_size=1, max_size=200))
    def test_recording_is_deterministic(self, values):
        a, b = Histogram("same", reservoir_size=32), Histogram("same", reservoir_size=32)
        for v in values:
            a.record(v)
            b.record(v)
        assert a.summary() == b.summary()

    def test_percentile_validates_range(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(101)

    def test_exact_percentiles_on_small_sample(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 3.0):
            h.record(v)
        assert h.percentile(0) == 1.0
        assert h.percentile(50) == 2.0
        assert h.percentile(100) == 3.0


class TestRegistry:
    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.count("a")
        reg.gauge("b", 3.0)
        reg.observe("c", 1.0)
        snap = reg.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"].get("b", 0.0) == 0.0
        assert snap["histograms"].get("c", {"count": 0})["count"] == 0

    def test_enable_disable_toggle(self):
        reg = MetricsRegistry()
        assert not reg.enabled
        reg.enable()
        reg.count("a", 2)
        reg.disable()
        reg.count("a", 100)
        assert reg.counter_value("a") == 2.0

    def test_reset_clears_values_but_keeps_switch(self):
        reg = MetricsRegistry(enabled=True)
        reg.count("a")
        reg.gauge("g", 5)
        reg.observe("h", 1.0)
        reg.reset()
        assert reg.enabled
        assert list(reg.metric_names()) == []
        assert reg.counter_value("a") == 0.0
        assert reg.gauge_value("g") == 0.0

    def test_unknown_metrics_read_as_zero(self):
        reg = MetricsRegistry()
        assert reg.counter_value("nope") == 0.0
        assert reg.gauge_value("nope") == 0.0

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["count", "gauge", "observe"]),
                st.sampled_from(["m1", "m2", "m3"]),
                bounded_floats,
            ),
            max_size=200,
        )
    )
    @settings(max_examples=50)
    def test_snapshot_matches_model(self, ops):
        reg = MetricsRegistry(enabled=True)
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        observations: dict[str, list[float]] = {}
        for kind, name, value in ops:
            if kind == "count":
                reg.count(name, value)
                counters[name] = counters.get(name, 0.0) + value
            elif kind == "gauge":
                reg.gauge(name, value)
                gauges[name] = value
            else:
                reg.observe(name, value)
                observations.setdefault(name, []).append(value)
        snap = reg.snapshot()
        assert set(snap["counters"]) == set(counters)
        for name, total in counters.items():
            assert snap["counters"][name] == pytest.approx(total, abs=1e-6)
        assert snap["gauges"] == {n: pytest.approx(v) for n, v in gauges.items()}
        for name, values in observations.items():
            assert snap["histograms"][name]["count"] == len(values)

    def test_snapshot_readable_while_disabled(self):
        reg = MetricsRegistry(enabled=True)
        reg.count("a", 4)
        reg.disable()
        assert reg.snapshot()["counters"] == {"a": 4.0}


class TestTimer:
    def test_records_into_histogram_when_enabled(self):
        reg = MetricsRegistry(enabled=True)
        with reg.timer("t.seconds") as t:
            pass
        assert t.elapsed is not None and t.elapsed >= 0.0
        assert reg.snapshot()["histograms"]["t.seconds"]["count"] == 1

    def test_elapsed_available_while_disabled_but_not_recorded(self):
        reg = MetricsRegistry(enabled=False)
        with reg.timer("t.seconds") as t:
            pass
        assert t.elapsed is not None
        assert "t.seconds" not in reg.snapshot()["histograms"]

    def test_decorator_times_each_call(self):
        reg = MetricsRegistry(enabled=True)

        @reg.timer("fn.seconds")
        def fn(x):
            return x * 2

        assert fn(21) == 42
        assert fn(1) == 2
        assert reg.snapshot()["histograms"]["fn.seconds"]["count"] == 2

    def test_records_even_when_block_raises(self):
        reg = MetricsRegistry(enabled=True)
        with pytest.raises(RuntimeError):
            with reg.timer("t.seconds"):
                raise RuntimeError("boom")
        assert reg.snapshot()["histograms"]["t.seconds"]["count"] == 1


class TestGlobalHelpers:
    def test_capturing_restores_previous_state(self):
        METRICS.disable()
        with capturing() as reg:
            assert reg is METRICS
            assert METRICS.enabled
            METRICS.count("inside")
        assert not METRICS.enabled
        assert METRICS.counter_value("inside") == 1.0

    def test_capturing_fresh_resets(self):
        METRICS.enable()
        METRICS.count("stale")
        with capturing(fresh=True):
            assert METRICS.counter_value("stale") == 0.0
        assert METRICS.enabled  # previous state restored

    def test_module_level_switch(self):
        repro.obs.enable()
        assert repro.obs.is_enabled()
        repro.obs.disable()
        assert not repro.obs.is_enabled()
        repro.obs.reset()
        assert repro.obs.snapshot()["counters"] == {}


class TestExporters:
    def _populated(self) -> MetricsRegistry:
        reg = MetricsRegistry(enabled=True)
        reg.count("sketch.update.elements", 100)
        reg.count("skim.passes", 2)
        reg.gauge("skim.threshold", 12.5)
        for v in (0.001, 0.002, 0.004):
            reg.observe("skim.seconds", v)
        return reg

    def test_json_round_trip(self):
        snap = self._populated().snapshot()
        assert snapshot_from_json(snapshot_to_json(snap)) == snap

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["count", "gauge", "observe"]),
                st.sampled_from(["a.b", "c-d", "e f", "g"]),
                bounded_floats,
            ),
            max_size=100,
        )
    )
    @settings(max_examples=50)
    def test_json_round_trip_property(self, ops):
        reg = MetricsRegistry(enabled=True)
        for kind, name, value in ops:
            getattr(reg, kind)(name, value)
        snap = reg.snapshot()
        assert snapshot_from_json(snapshot_to_json(snap)) == snap

    def test_json_round_trip_with_nonfinite_gauge(self):
        reg = MetricsRegistry(enabled=True)
        reg.gauge("skim.threshold", float("inf"))
        snap = reg.snapshot()
        restored = snapshot_from_json(snapshot_to_json(snap))
        assert restored["gauges"]["skim.threshold"] == float("inf")

    def test_write_snapshot_is_valid_json_file(self, tmp_path):
        path = tmp_path / "m.json"
        write_snapshot(str(path), self._populated().snapshot())
        assert snapshot_from_json(path.read_text())["counters"]["skim.passes"] == 2.0

    def test_prometheus_rendering(self):
        text = snapshot_to_prometheus(self._populated().snapshot())
        assert "# TYPE repro_sketch_update_elements_total counter" in text
        assert "repro_sketch_update_elements_total 100.0" in text
        assert "# TYPE repro_skim_threshold gauge" in text
        assert "# TYPE repro_skim_seconds summary" in text
        assert 'repro_skim_seconds{quantile="0.5"}' in text
        assert "repro_skim_seconds_count 3" in text
        # exposition names must be [a-zA-Z0-9_:]
        for line in text.splitlines():
            metric = line.split()[1 if line.startswith("#") else 0]
            name = metric.split("{")[0]
            assert all(c.isalnum() or c == "_" for c in name), line

    @pytest.mark.parametrize(
        "bad",
        [
            42,
            {},
            {"version": 99, "counters": {}, "gauges": {}, "histograms": {}},
            {"version": 1, "counters": [], "gauges": {}, "histograms": {}},
            {"version": 1, "counters": {"a": "x"}, "gauges": {}, "histograms": {}},
            {"version": 1, "counters": {}, "gauges": {}, "histograms": {"h": {}}},
            {
                "version": 1,
                "counters": {},
                "gauges": {},
                "histograms": {"h": {f: -1.5 for f in
                               ("count", "sum", "min", "max", "mean",
                                "p50", "p95", "p99")}},
            },
        ],
    )
    def test_validate_rejects_malformed_snapshots(self, bad):
        with pytest.raises(ValueError):
            validate_snapshot(bad)

    def test_validate_accepts_registry_snapshots(self):
        snap = self._populated().snapshot()
        assert validate_snapshot(snap) is snap


#: ``name value`` or ``name{label="x",...} value`` — the sample-line shape
#: of the Prometheus text exposition format.
_PROM_SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?:[a-zA-Z_][a-zA-Z0-9_]*="[^"]*",?)+\})?'
    r" (?P<value>[^ ]+)$"
)


class TestPrometheusExposition:
    """Format correctness of the text exposition output."""

    def _registry_with_awkward_names(self) -> MetricsRegistry:
        reg = MetricsRegistry(enabled=True)
        reg.count("engine.queries.PointQuery", 3)
        reg.count("dist.bytes-received", 1024)
        reg.gauge("skim threshold", 42.0)
        for v in (0.5, 1.5):
            reg.observe("estimate.term.dense_dense.seconds", v)
        return reg

    def test_names_are_sanitised(self):
        text = snapshot_to_prometheus(self._registry_with_awkward_names().snapshot())
        assert "repro_engine_queries_PointQuery_total" in text
        assert "repro_dist_bytes_received_total" in text
        assert "repro_skim_threshold" in text
        for line in text.splitlines():
            name = line.split()[1 if line.startswith("#") else 0].split("{")[0]
            assert all(c.isalnum() or c == "_" for c in name), line

    def test_exactly_one_type_line_per_family(self):
        text = snapshot_to_prometheus(self._registry_with_awkward_names().snapshot())
        families = [
            line.split()[2] for line in text.splitlines() if line.startswith("# TYPE")
        ]
        assert len(families) == len(set(families))
        # One family per metric: 2 counters + 1 gauge + 1 summary.
        assert len(families) == 4

    def test_family_collision_is_an_error(self):
        reg = MetricsRegistry(enabled=True)
        reg.count("a.b", 1)
        reg.count("a_b", 2)  # sanitises to the same family
        with pytest.raises(ValueError, match="sanitise"):
            snapshot_to_prometheus(reg.snapshot())

    def test_sample_lines_parse_and_round_trip(self):
        snap = self._registry_with_awkward_names().snapshot()
        text = snapshot_to_prometheus(snap)
        samples: dict[str, float] = {}
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            match = _PROM_SAMPLE_RE.match(line)
            assert match, f"unparseable sample line: {line!r}"
            key = line.rsplit(" ", 1)[0]
            samples[key] = float(match.group("value"))
        # Values survive the render: counters, gauges, summary components.
        assert samples["repro_engine_queries_PointQuery_total"] == 3.0
        assert samples["repro_skim_threshold"] == 42.0
        assert samples["repro_estimate_term_dense_dense_seconds_count"] == 2.0
        assert samples["repro_estimate_term_dense_dense_seconds_sum"] == 2.0
        assert (
            samples['repro_estimate_term_dense_dense_seconds{quantile="0.5"}'] == 0.5
        )

    def test_nonfinite_values_use_prometheus_literals(self):
        reg = MetricsRegistry(enabled=True)
        reg.gauge("g", float("inf"))
        text = snapshot_to_prometheus(reg.snapshot())
        assert "repro_g +Inf" in text


class TestDiffSnapshots:
    def _snap(self, n: int) -> dict:
        reg = MetricsRegistry(enabled=True)
        reg.count("engine.queries", n)
        reg.gauge("skim.threshold", 10.0 * n)
        for v in range(n):
            reg.observe("engine.answer.seconds", 0.001 * (v + 1))
        return reg.snapshot()

    def test_counters_subtracted(self):
        diff = diff_snapshots(self._snap(2), self._snap(5))
        entry = diff["counters"]["engine.queries"]
        assert entry == {"old": 2.0, "new": 5.0, "delta": 3.0}

    def test_missing_counter_treated_as_zero(self):
        old = self._snap(1)
        new = self._snap(1)
        new["counters"]["skim.passes"] = 4.0
        diff = diff_snapshots(old, new)
        assert diff["counters"]["skim.passes"]["delta"] == 4.0
        reverse = diff_snapshots(new, old)
        assert reverse["counters"]["skim.passes"]["delta"] == -4.0

    def test_gauges_report_levels_and_delta(self):
        diff = diff_snapshots(self._snap(1), self._snap(3))
        assert diff["gauges"]["skim.threshold"] == {
            "old": 10.0,
            "new": 30.0,
            "delta": 20.0,
        }

    def test_histograms_merged_compared(self):
        diff = diff_snapshots(self._snap(2), self._snap(4))
        entry = diff["histograms"]["engine.answer.seconds"]
        assert entry["count_delta"] == 2
        assert entry["sum_delta"] == pytest.approx(0.01 - 0.003)
        assert entry["p50"]["old"] == pytest.approx(0.001)
        assert entry["p50"]["new"] == pytest.approx(0.003)

    def test_histogram_only_on_one_side(self):
        old = self._snap(1)
        new = self._snap(1)
        del old["histograms"]["engine.answer.seconds"]
        diff = diff_snapshots(old, new)
        entry = diff["histograms"]["engine.answer.seconds"]
        assert "count_delta" not in entry
        assert entry["mean"]["old"] is None
        assert entry["mean"]["new"] is not None

    def test_render_diff_is_readable(self):
        text = render_diff(diff_snapshots(self._snap(1), self._snap(2)))
        assert "engine.queries: 1 -> 2 (+1)" in text
        assert "histograms:" in text

    def test_diff_validates_inputs(self):
        with pytest.raises(ValueError):
            diff_snapshots({}, self._snap(1))


class TestDiffCLISchemaVersion:
    """``repro.obs diff`` must refuse to compare mismatched schemas."""

    def _write_raw(self, path, version) -> None:
        snap = {"version": version, "counters": {}, "gauges": {}, "histograms": {}}
        path.write_text(json.dumps(snap))

    def test_version_mismatch_exits_nonzero(self, tmp_path, capsys):
        from repro.obs.__main__ import main as obs_main

        before, after = tmp_path / "v1.json", tmp_path / "v2.json"
        self._write_raw(before, 1)
        self._write_raw(after, 2)
        assert obs_main(["diff", str(before), str(after)]) == 1
        err = capsys.readouterr().err
        assert "schema-version mismatch" in err
        assert "version 1" in err and "version 2" in err

    def test_mismatch_detected_before_validation(self, tmp_path, capsys):
        """Both files unsupported but *different* is still a mismatch, not
        a generic validation failure blamed on one file."""
        from repro.obs.__main__ import main as obs_main

        before, after = tmp_path / "v2.json", tmp_path / "v3.json"
        self._write_raw(before, 2)
        self._write_raw(after, 3)
        assert obs_main(["diff", str(before), str(after)]) == 1
        assert "schema-version mismatch" in capsys.readouterr().err

    def test_matching_versions_still_diff(self, tmp_path, capsys):
        from repro.obs.__main__ import main as obs_main

        before, after = tmp_path / "a.json", tmp_path / "b.json"
        self._write_raw(before, 1)
        self._write_raw(after, 1)
        assert obs_main(["diff", str(before), str(after)]) == 0


class TestImportCost:
    """`repro.obs` must stay importable without heavy dependencies."""

    def _obs_package_dir(self) -> str:
        return str(pathlib.Path(repro.obs.__file__).parent.parent)

    def test_obs_does_not_import_numpy(self):
        code = (
            "import sys; sys.path.insert(0, {path!r}); import obs; "
            "assert 'numpy' not in sys.modules, "
            "'repro.obs must not import numpy'"
        ).format(path=self._obs_package_dir())
        subprocess.run([sys.executable, "-c", code], check=True)

    def test_obs_import_time_stays_small(self):
        code = (
            "import sys, time; sys.path.insert(0, {path!r}); "
            "t = time.perf_counter(); import obs; "
            "print(time.perf_counter() - t)"
        ).format(path=self._obs_package_dir())
        out = subprocess.run(
            [sys.executable, "-c", code], check=True, capture_output=True, text=True
        )
        elapsed = float(out.stdout.strip())
        assert elapsed < 0.5, f"repro.obs import took {elapsed:.3f}s"
