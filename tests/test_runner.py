"""Tests for the sweep runner and schema cache (§5.1 methodology)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.runner import (
    SchemaCache,
    SweepConfig,
    SweepResult,
    TrialRecord,
    make_estimators,
    run_sweep,
)
from repro.streams.generators import shifted_zipf_pair

DOMAIN = 1 << 10

TINY = SweepConfig(
    widths=(32, 64),
    depths=(3, 5),
    space_budgets=(128, 384),
    trials=2,
    seed=7,
)


def tiny_workload(trial_seed: int):
    rng = np.random.default_rng(trial_seed)
    return shifted_zipf_pair(DOMAIN, 20_000, 1.1, 5, rng)


class TestSweepConfig:
    def test_shapes_respect_budget(self):
        shapes = TINY.shapes()
        assert (32, 3) in shapes
        assert (64, 5) in shapes
        assert all(w * d <= 384 for w, d in shapes)

    def test_budget_of(self):
        assert TINY.budget_of(32, 3) == 128
        assert TINY.budget_of(64, 5) == 384

    def test_budget_of_oversized_rejected(self):
        with pytest.raises(ValueError):
            TINY.budget_of(1000, 1000)

    def test_default_grids_match_paper(self):
        config = SweepConfig()
        assert config.widths == (50, 100, 150, 200, 250)
        assert config.depths == (11, 23, 35, 47, 59)


class TestSchemaCache:
    def test_reuses_schema_objects(self):
        cache = SchemaCache(DOMAIN)
        assert cache.skimmed(32, 3, 0) is cache.skimmed(32, 3, 0)
        assert cache.hash(32, 3, 0) is cache.hash(32, 3, 0)
        assert cache.agms(32, 3, 0) is cache.agms(32, 3, 0)

    def test_distinct_shapes_distinct_schemas(self):
        cache = SchemaCache(DOMAIN)
        assert cache.skimmed(32, 3, 0) is not cache.skimmed(64, 3, 0)

    def test_agms_projection_prebuilt(self):
        cache = SchemaCache(DOMAIN, enable_agms_projection=True)
        assert cache.agms(16, 3, 0).projection_cache_enabled()

    def test_agms_projection_disabled(self):
        cache = SchemaCache(DOMAIN, enable_agms_projection=False)
        assert not cache.agms(16, 3, 0).projection_cache_enabled()

    def test_clear(self):
        cache = SchemaCache(DOMAIN)
        first = cache.skimmed(32, 3, 0)
        cache.clear()
        assert cache.skimmed(32, 3, 0) is not first

    def test_bounded_cache_evicts_oldest(self):
        cache = SchemaCache(DOMAIN, max_entries=2)
        first = cache.skimmed(32, 3, 0)
        cache.skimmed(64, 3, 0)
        cache.skimmed(32, 5, 0)  # evicts the (32, 3) entry
        assert cache.skimmed(32, 3, 0) is not first

    def test_bounded_cache_validation(self):
        with pytest.raises(ValueError):
            SchemaCache(DOMAIN, max_entries=0)


class TestMakeEstimators:
    def test_known_methods(self):
        cache = SchemaCache(DOMAIN)
        estimators = make_estimators(cache, ("basic_agms", "skimmed", "fast_agms"))
        assert set(estimators) == {"basic_agms", "skimmed", "fast_agms"}

    def test_unknown_method_rejected(self):
        cache = SchemaCache(DOMAIN)
        with pytest.raises(ValueError):
            make_estimators(cache, ("quantum",))

    def test_estimators_return_floats(self):
        cache = SchemaCache(DOMAIN)
        estimators = make_estimators(cache)
        f, g = tiny_workload(0)
        for estimator in estimators.values():
            assert isinstance(estimator(f, g, 64, 3, 0), float)


class TestRunSweep:
    def test_record_counts(self):
        cache = SchemaCache(DOMAIN)
        estimators = make_estimators(cache, ("skimmed",))
        result = run_sweep(tiny_workload, estimators, TINY)
        assert len(result.records) == TINY.trials * len(TINY.shapes())
        assert all(isinstance(r, TrialRecord) for r in result.records)

    def test_methods_and_series(self):
        cache = SchemaCache(DOMAIN)
        estimators = make_estimators(cache, ("skimmed", "fast_agms"))
        result = run_sweep(tiny_workload, estimators, TINY)
        assert result.methods() == ["skimmed", "fast_agms"]
        series = result.series_by_space()
        assert set(series) == {"skimmed", "fast_agms"}
        for points in series.values():
            budgets = [b for b, _ in points]
            assert budgets == sorted(budgets)
            assert all(e >= 0 for _, e in points)

    def test_paired_trials_share_data(self):
        """All methods score against the same actual per trial."""
        cache = SchemaCache(DOMAIN)
        estimators = make_estimators(cache, ("skimmed", "fast_agms"))
        result = run_sweep(tiny_workload, estimators, TINY)
        by_trial = {}
        for record in result.records:
            by_trial.setdefault(record.trial, set()).add(record.actual)
        for actuals in by_trial.values():
            assert len(actuals) == 1

    def test_summary_and_improvement(self):
        cache = SchemaCache(DOMAIN)
        estimators = make_estimators(cache, ("skimmed", "fast_agms"))
        result = run_sweep(tiny_workload, estimators, TINY)
        summary = result.summary_for("skimmed")
        assert summary.count == len(result.errors_for("skimmed"))
        factors = result.improvement_factors("fast_agms", "skimmed")
        assert len(factors) == 2  # one per budget

    def test_empty_result_methods(self):
        assert SweepResult().methods() == []

    def test_vary_estimator_seed_changes_estimates(self):
        cache = SchemaCache(DOMAIN)
        estimators = make_estimators(cache, ("fast_agms",))
        fixed = run_sweep(tiny_workload, estimators, TINY)
        varied = run_sweep(
            tiny_workload,
            estimators,
            SweepConfig(
                widths=TINY.widths,
                depths=TINY.depths,
                space_budgets=TINY.space_budgets,
                trials=TINY.trials,
                seed=TINY.seed,
                vary_estimator_seed=True,
            ),
        )
        # Trial 0 agrees (same seed); later trials use fresh randomness.
        fixed_t1 = [r.estimate for r in fixed.records if r.trial == 1]
        varied_t1 = [r.estimate for r in varied.records if r.trial == 1]
        assert fixed_t1 != varied_t1

    def test_error_spread_by_space(self):
        cache = SchemaCache(DOMAIN)
        estimators = make_estimators(cache, ("skimmed",))
        result = run_sweep(tiny_workload, estimators, TINY)
        spread = result.error_spread_by_space()
        assert set(spread) == {"skimmed"}
        assert all(value >= 0 for _, value in spread["skimmed"])

    def test_to_csv(self, tmp_path):
        cache = SchemaCache(DOMAIN)
        estimators = make_estimators(cache, ("skimmed",))
        result = run_sweep(tiny_workload, estimators, TINY)
        path = tmp_path / "records.csv"
        result.to_csv(path)
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("method,width,depth")
        assert len(lines) == len(result.records) + 1
