"""Tests for jumping-window sketches (sliding-window substrate)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import IncompatibleSketchError
from repro.streams.windows import WindowedSketch, WindowedSketchSchema

DOMAIN = 1 << 10


def make_schema(window_epochs=3, **kwargs):
    defaults = dict(width=128, depth=5, domain_size=DOMAIN, seed=0)
    defaults.update(kwargs)
    return WindowedSketchSchema(window_epochs=window_epochs, **defaults)


class TestSchema:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_schema(window_epochs=0)

    def test_compatibility(self):
        assert make_schema().is_compatible(make_schema())
        assert not make_schema().is_compatible(make_schema(seed=1))
        assert not make_schema().is_compatible(make_schema(window_epochs=4))


class TestWindowMechanics:
    def test_starts_with_one_epoch(self):
        sketch = make_schema().create_sketch()
        assert sketch.live_epochs == 1
        assert sketch.current_epoch == 0

    def test_advance_grows_until_window_full(self):
        sketch = make_schema(window_epochs=3).create_sketch()
        sketch.advance_epoch()
        assert sketch.live_epochs == 2
        sketch.advance_epoch()
        sketch.advance_epoch()
        assert sketch.live_epochs == 3  # capped at the window length
        assert sketch.current_epoch == 3

    def test_old_epochs_expire_exactly(self):
        """Content older than the window leaves the estimate completely."""
        schema = make_schema(window_epochs=2)
        sketch = schema.create_sketch()
        sketch.update_bulk(np.asarray([7] * 100))  # epoch 0
        sketch.advance_epoch()
        sketch.update_bulk(np.asarray([7] * 10))  # epoch 1
        assert sketch.point_estimate(7) == pytest.approx(110.0)
        sketch.advance_epoch()  # epoch 0 expires
        assert sketch.point_estimate(7) == pytest.approx(10.0)
        sketch.advance_epoch()  # epoch 1 expires too
        assert sketch.point_estimate(7) == pytest.approx(0.0)

    def test_window_sketch_is_sum_of_live_epochs(self):
        schema = make_schema(window_epochs=3)
        sketch = schema.create_sketch()
        sketch.update(1, 5.0)
        sketch.advance_epoch()
        sketch.update(2, 7.0)
        collapsed = sketch.window_sketch()
        reference = schema.inner.create_sketch()
        reference.update(1, 5.0)
        reference.update(2, 7.0)
        assert np.allclose(collapsed.counters, reference.counters)

    def test_size_accounts_full_window(self):
        sketch = make_schema(window_epochs=4, width=16, depth=3).create_sketch()
        assert sketch.size_in_counters() == 4 * 16 * 3


class TestWindowedEstimates:
    def test_join_over_recent_epochs_only(self):
        schema = make_schema(window_epochs=2, width=256, depth=7)
        f, g = schema.create_sketch(), schema.create_sketch()
        # Epoch 0: huge matching mass that must later expire.
        f.update_bulk(np.asarray([3] * 200))
        g.update_bulk(np.asarray([3] * 200))
        f.advance_epoch()
        g.advance_epoch()
        # Epoch 1 and 2: modest matching mass.
        for _ in range(2):
            f.update_bulk(np.asarray([5] * 10))
            g.update_bulk(np.asarray([5] * 20))
            f.advance_epoch()
            g.advance_epoch()
        f.update_bulk(np.asarray([5] * 10))
        g.update_bulk(np.asarray([5] * 20))
        # Window = last 2 epochs: 20 x 40 on value 5; the 200 x 200 on
        # value 3 has fully expired.
        assert f.est_join_size(g) == pytest.approx(800.0, rel=0.1)

    def test_self_join(self):
        sketch = make_schema(width=256, depth=7).create_sketch()
        sketch.update_bulk(np.asarray([1] * 30 + [2] * 40))
        assert sketch.est_self_join_size() == pytest.approx(
            30.0**2 + 40.0**2, rel=0.1
        )

    def test_misaligned_windows_rejected(self):
        schema = make_schema()
        f, g = schema.create_sketch(), schema.create_sketch()
        f.advance_epoch()
        with pytest.raises(IncompatibleSketchError):
            f.est_join_size(g)

    def test_incompatible_schemas_rejected(self):
        f = make_schema(seed=1).create_sketch()
        g = make_schema(seed=2).create_sketch()
        with pytest.raises(IncompatibleSketchError):
            f.est_join_size(g)

    def test_wrong_type_rejected(self):
        sketch = make_schema().create_sketch()
        with pytest.raises(IncompatibleSketchError):
            sketch.est_join_size(object())  # type: ignore[arg-type]

    def test_deletes_within_window(self):
        sketch = make_schema(width=256, depth=7).create_sketch()
        sketch.update_bulk(np.asarray([9] * 50))
        sketch.update_bulk(np.asarray([9] * 20), np.asarray([-1.0] * 20))
        assert sketch.point_estimate(9) == pytest.approx(30.0)
