"""End-to-end integration tests across modules.

These replay the paper's whole pipeline at small scale: generate update
streams (with deletes), maintain synopses one element at a time through
the Figure-1 engine, answer join queries, and check the paper's
qualitative findings (skimming wins, deletes are transparent, decomposed
sub-joins track truth).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import exact_sub_join_sizes
from repro.core.config import SketchParameters
from repro.core.estimator import SkimmedSketchSchema
from repro.eval.metrics import join_error
from repro.sketches.agms import AGMSSchema
from repro.streams.engine import StreamEngine
from repro.streams.generators import (
    insert_delete_stream,
    shifted_zipf_pair,
)
from repro.streams.query import JoinCountQuery

DOMAIN = 1 << 11
TOTAL = 40_000


class TestStreamingPipeline:
    def test_engine_element_at_a_time_matches_bulk(self):
        """Feeding the engine per element equals bulk synopsis loading."""
        f, g = shifted_zipf_pair(DOMAIN, 5_000, 1.1, 5)
        params = SketchParameters(width=128, depth=5)

        streaming = StreamEngine(DOMAIN, params, synopsis="skimmed", seed=2)
        streaming.register_stream("f")
        streaming.register_stream("g")
        rng = np.random.default_rng(0)
        for name, freqs in (("f", f), ("g", g)):
            for update in insert_delete_stream(freqs, 0.2, rng):
                streaming.process(name, update.value, update.weight)

        bulk = StreamEngine(DOMAIN, params, synopsis="skimmed", seed=2)
        bulk.register_stream("f")
        bulk.register_stream("g")
        bulk.synopsis_for("f").ingest_frequency_vector(f)
        bulk.synopsis_for("g").ingest_frequency_vector(g)

        streamed_answer = streaming.answer(JoinCountQuery("f", "g"))
        bulk_answer = bulk.answer(JoinCountQuery("f", "g"))
        # Same final frequency state, same hash functions: the sparse and
        # dense terms match exactly up to skim-threshold differences caused
        # by the churn's extra absolute mass.
        assert streamed_answer == pytest.approx(bulk_answer, rel=0.1)
        assert streamed_answer == pytest.approx(f.join_size(g), rel=0.2)

    def test_delete_churn_is_transparent_to_sketches(self):
        """A linear synopsis ends in the identical state with or without
        transient inserted-then-deleted elements (claim C4)."""
        f, _ = shifted_zipf_pair(DOMAIN, 5_000, 1.1, 0)
        schema = SkimmedSketchSchema(128, 5, DOMAIN, seed=3)
        clean = schema.create_sketch()
        clean.ingest_frequency_vector(f)
        churned = schema.create_sketch()
        for update in insert_delete_stream(f, 0.5, np.random.default_rng(1)):
            churned.update(update.value, update.weight)
        # Counters identical: deletes cancelled exactly.
        assert np.allclose(
            clean._inner.counters, churned._inner.counters  # noqa: SLF001
        )


class TestPaperFindings:
    def test_skimmed_beats_basic_agms_on_skew(self):
        """The paper's headline finding, end to end, paired seeds."""
        width, depth = 128, 7
        skim_errors, agms_errors = [], []
        for trial in range(3):
            rng = np.random.default_rng(100 + trial)
            f, g = shifted_zipf_pair(DOMAIN, TOTAL, 1.5, 5, rng)
            actual = f.join_size(g)

            skim_schema = SkimmedSketchSchema(width, depth, DOMAIN, seed=trial)
            estimate = skim_schema.sketch_of(f).est_join_size(
                skim_schema.sketch_of(g)
            )
            skim_errors.append(join_error(estimate, actual))

            agms_schema = AGMSSchema(width, depth, DOMAIN, seed=trial)
            agms_estimate = agms_schema.sketch_of(f).est_join_size(
                agms_schema.sketch_of(g)
            )
            agms_errors.append(join_error(agms_estimate, actual))
        assert np.mean(skim_errors) < np.mean(agms_errors)
        assert np.mean(skim_errors) < 0.15

    def test_breakdown_terms_track_exact_sub_joins(self):
        """Each estimated sub-join approximates its exact counterpart."""
        f, g = shifted_zipf_pair(DOMAIN, TOTAL, 1.3, 10)
        schema = SkimmedSketchSchema(256, 11, DOMAIN, seed=4)
        sf, sg = schema.sketch_of(f), schema.sketch_of(g)
        breakdown = sf.join_breakdown(sg)
        exact = exact_sub_join_sizes(
            f, g, breakdown.f_skim.threshold, breakdown.g_skim.threshold
        )
        actual = f.join_size(g)
        assert breakdown.dense_dense == pytest.approx(
            exact["dense_dense"], abs=0.05 * actual + 1.0
        )
        assert breakdown.estimate == pytest.approx(actual, rel=0.15)

    def test_error_shrinks_with_space(self):
        """More width means lower error, the Figure-5 trend."""
        f, g = shifted_zipf_pair(DOMAIN, TOTAL, 1.0, 10)
        actual = f.join_size(g)
        errors = {}
        for width in (32, 512):
            errs = []
            for seed in range(3):
                schema = SkimmedSketchSchema(width, 7, DOMAIN, seed=seed)
                estimate = schema.sketch_of(f).est_join_size(schema.sketch_of(g))
                errs.append(join_error(estimate, actual))
            errors[width] = float(np.mean(errs))
        assert errors[512] < errors[32]

    def test_dyadic_and_flat_agree_on_final_estimate(self):
        """Both skim strategies feed the same estimator and should land
        near the same answer (they share no randomness, so compare to
        truth, not to each other)."""
        f, g = shifted_zipf_pair(DOMAIN, TOTAL, 1.2, 10)
        actual = f.join_size(g)
        flat = SkimmedSketchSchema(256, 7, DOMAIN, seed=5)
        dyadic = SkimmedSketchSchema(256, 7, DOMAIN, seed=5, dyadic=True)
        flat_est = flat.sketch_of(f).est_join_size(flat.sketch_of(g))
        dyadic_est = dyadic.sketch_of(f).est_join_size(dyadic.sketch_of(g))
        assert join_error(flat_est, actual) < 0.2
        assert join_error(dyadic_est, actual) < 0.2
