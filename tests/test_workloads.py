"""Tests for the adversarial workload corpus + accuracy gate (repro.workloads).

The corpus doubles as the repo's correctness fuzzer, so the properties
here are the load-bearing ones: byte-determinism per ``(family, params,
seed)``, signed-weight conservation through delete churn, the
near-annihilation limit (residual norm and estimate collapse onto the
tiny exact answer), coalescing round-trips (linearity), shadow-exact
ground-truth agreement, and the ``compare`` CLI's exit-1 gate on a
doctored ACCURACY record.
"""

from __future__ import annotations

import copy
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SkimmedSketchSchema
from repro.core.skim import residual_infinity_norm
from repro.errors import ParameterError, QueryError
from repro.hashing.bulk import coalesce_updates
from repro.sketches.hash_sketch import HashSketchSchema
from repro.sketches.serialize import sketch_state
from repro.streams.model import FrequencyVector
from repro.streams.query import TruePredicate
from repro.workloads import (
    ACCURACY_VERSION,
    FAMILIES,
    WorkloadBatch,
    WorkloadInstance,
    build_workload,
    compare_accuracy,
    family_names,
    run_suite,
    run_workload,
    suite_names,
    validate_accuracy,
    workloads_for,
)
from repro.workloads.__main__ import main as workloads_main

#: Small per-family params so property tests stay fast; every family
#: keeps its adversarial shape, just at toy scale.
SMALL_PARAMS = {
    "skew_drift": {
        "domain": 128, "phases": 3, "per_phase": 300,
        "z_start": 0.3, "z_end": 1.4, "shift": 8,
    },
    "delete_churn": {
        "domain": 128, "waves": 3, "per_wave": 400, "survivors": 12, "z": 1.0,
    },
    "filtered_subset_sum": {
        "domain": 128, "total": 1_200, "chunks": 3, "z": 0.8,
        "range_hi_fraction": 0.5, "modulus": 4, "remainder": 1,
        "inset_step": 3,
    },
    "join_correlated": {"domain": 128, "total": 1_200, "chunks": 3, "z": 1.0},
    "join_anticorrelated": {
        "domain": 128, "total": 1_200, "chunks": 3, "z": 1.0,
    },
}


def small_workload(family: str, seed: int = 0) -> WorkloadInstance:
    return build_workload(family, params=SMALL_PARAMS[family], seed=seed)


def batches_equal(a: WorkloadInstance, b: WorkloadInstance) -> bool:
    if len(a.batches) != len(b.batches):
        return False
    return all(
        x.stream == y.stream
        and np.array_equal(x.values, y.values)
        and np.array_equal(x.weights, y.weights)
        for x, y in zip(a.batches, b.batches)
    )


class TestRegistry:
    def test_expected_families_registered(self):
        assert family_names() == sorted(SMALL_PARAMS)

    def test_every_family_in_smoke_and_full(self):
        assert suite_names() == ["full", "smoke"]
        for family in FAMILIES.values():
            assert set(family.suites) == {"full", "smoke"}

    def test_unknown_family_rejected(self):
        with pytest.raises(ParameterError):
            build_workload("zipf_but_evil")

    def test_unknown_suite_rejected(self):
        with pytest.raises(ParameterError):
            list(workloads_for("chaos"))

    def test_missing_params_rejected(self):
        with pytest.raises(ParameterError):
            build_workload("skew_drift", params={"domain": 64})


class TestDeterminism:
    """Acceptance criterion: every family is seed-deterministic."""

    @pytest.mark.parametrize("family", sorted(SMALL_PARAMS))
    def test_same_seed_is_byte_identical(self, family):
        first = small_workload(family, seed=7)
        again = small_workload(family, seed=7)
        assert first.fingerprint() == again.fingerprint()
        assert batches_equal(first, again)

    @pytest.mark.parametrize("family", sorted(SMALL_PARAMS))
    def test_different_seed_changes_corpus(self, family):
        assert (
            small_workload(family, seed=0).fingerprint()
            != small_workload(family, seed=1).fingerprint()
        )

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_fingerprint_is_a_function_of_the_seed(self, seed):
        family = sorted(SMALL_PARAMS)[seed % len(SMALL_PARAMS)]
        assert (
            small_workload(family, seed=seed).fingerprint()
            == small_workload(family, seed=seed).fingerprint()
        )

    def test_fingerprint_covers_batch_order(self):
        instance = small_workload("join_correlated")
        reordered = WorkloadInstance(
            name=instance.name,
            family=instance.family,
            params=instance.params,
            seed=instance.seed,
            domain_size=instance.domain_size,
            streams=instance.streams,
            batches=list(reversed(instance.batches)),
            queries=instance.queries,
        )
        assert instance.fingerprint() != reordered.fingerprint()


class TestDeleteChurnConservation:
    """Insert/delete waves conserve total signed weight exactly."""

    @given(
        waves=st.integers(min_value=1, max_value=4),
        per_wave=st.integers(min_value=10, max_value=200),
        survivors=st.integers(min_value=0, max_value=10),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_net_weight_is_survivors_per_wave(
        self, waves, per_wave, survivors, seed
    ):
        instance = build_workload(
            "delete_churn",
            params={
                "domain": 64, "waves": waves, "per_wave": per_wave,
                "survivors": survivors, "z": 1.0,
            },
            seed=seed,
        )
        for stream in instance.streams:
            assert instance.net_weight(stream) == waves * survivors
            assert instance.gross_mass(stream) == waves * (
                2 * per_wave - survivors
            )

    def test_deletes_only_remove_inserted_values(self):
        instance = small_workload("delete_churn")
        for stream in instance.streams:
            counts = instance.exact_frequencies(stream).counts
            assert counts.min() >= 0

    def test_survivors_out_of_range_rejected(self):
        with pytest.raises(ParameterError):
            build_workload(
                "delete_churn",
                params={
                    "domain": 64, "waves": 1, "per_wave": 10,
                    "survivors": 11, "z": 1.0,
                },
            )


class TestNearAnnihilation:
    """Satellite property: shrinking ``survivors`` drives the skimmed
    sketch's residual norm toward 0 and the estimate onto the exact
    (small) join size."""

    @staticmethod
    def _sketches(survivors: int, domain: int = 256):
        instance = build_workload(
            "delete_churn",
            params={
                "domain": domain, "waves": 3, "per_wave": 2_000,
                "survivors": survivors, "z": 1.1,
            },
            seed=5,
        )
        schema = SkimmedSketchSchema(128, 5, domain, seed=17)
        sketches = {}
        for stream in instance.streams:
            sketch = schema.create_sketch()
            for batch in instance.batches:
                if batch.stream == stream:
                    sketch.update_bulk(batch.values, batch.weights)
            sketches[stream] = sketch
        return instance, sketches

    def test_full_annihilation_is_the_zero_sketch(self):
        _, sketches = self._sketches(survivors=0)
        for sketch in sketches.values():
            _, residual = sketch.skim()
            assert residual_infinity_norm(residual) == 0.0
        assert sketches["f"].est_join_size(sketches["g"]) == 0.0

    def test_residual_norm_shrinks_with_survivors(self):
        norms = []
        for survivors in (1_000, 100, 2):
            _, sketches = self._sketches(survivors=survivors)
            _, residual = sketches["f"].skim()
            norms.append(residual_infinity_norm(residual))
        assert norms[0] >= norms[1] >= norms[2]

    def test_estimate_converges_on_small_exact_join(self):
        instance, sketches = self._sketches(survivors=10)
        exact = instance.exact_join("f", "g")
        estimate = sketches["f"].est_join_size(sketches["g"])
        # The surviving support is tiny, so after skimming the dense
        # values the estimate is essentially the exact inner product.
        assert exact > 0
        assert abs(estimate - exact) <= 0.25 * exact


class TestCoalesceRoundTrip:
    """Every family's batches survive coalescing unchanged (linearity)."""

    @pytest.mark.parametrize("family", sorted(SMALL_PARAMS))
    def test_coalesced_batches_rebuild_the_same_frequencies(self, family):
        instance = small_workload(family)
        for stream in instance.streams:
            raw = FrequencyVector.zeros(instance.domain_size)
            coalesced = FrequencyVector.zeros(instance.domain_size)
            for batch in instance.batches:
                if batch.stream != stream:
                    continue
                raw.apply_bulk(batch.values, batch.weights)
                uniques, masses = coalesce_updates(batch.values, batch.weights)
                coalesced.apply_bulk(uniques, masses)
            assert raw == coalesced

    @pytest.mark.parametrize("family", sorted(SMALL_PARAMS))
    def test_coalesced_batches_land_sketches_in_the_same_state(self, family):
        instance = small_workload(family)
        schema = HashSketchSchema(64, 3, instance.domain_size, seed=4)
        raw, coalesced = schema.create_sketch(), schema.create_sketch()
        for batch in instance.batches:
            raw.update_bulk(batch.values, batch.weights)
            uniques, masses = coalesce_updates(batch.values, batch.weights)
            coalesced.update_bulk(uniques, masses)
        raw_state, co_state = sketch_state(raw), sketch_state(coalesced)
        assert raw_state.keys() == co_state.keys()
        for key, value in raw_state.items():
            if isinstance(value, np.ndarray):
                assert np.array_equal(value, co_state[key])
            else:
                assert value == co_state[key]

    @pytest.mark.parametrize("family", sorted(SMALL_PARAMS))
    def test_coalescing_preserves_signed_mass(self, family):
        instance = small_workload(family)
        for batch in instance.batches:
            _, masses = coalesce_updates(batch.values, batch.weights)
            assert masses.sum() == pytest.approx(batch.weights.sum())


class TestGroundTruth:
    def test_exact_frequencies_apply_predicates(self):
        instance = small_workload("filtered_subset_sum")
        mod = instance.exact_frequencies("mod")
        predicate = instance.streams["mod"]
        for value, count in mod.nonzero_items():
            assert predicate.accepts(value), (value, count)

    def test_unknown_stream_rejected(self):
        instance = small_workload("skew_drift")
        with pytest.raises(ParameterError):
            instance.exact_frequencies("nope")

    def test_anticorrelated_join_is_small_but_nonzero(self):
        anti = small_workload("join_anticorrelated")
        corr = small_workload("join_correlated")
        assert 0 < anti.exact_join("f", "g") < corr.exact_join("f", "g")

    def test_self_join_matches_frequency_algebra(self):
        instance = small_workload("skew_drift")
        vec = instance.exact_frequencies("f")
        assert instance.exact_join("f", "f") == vec.self_join_size()


class TestHarness:
    """One shadow-exact audit run per family (acceptance criterion)."""

    @pytest.mark.parametrize("family", sorted(SMALL_PARAMS))
    def test_shadow_exact_agrees_with_corpus_ground_truth(self, family):
        instance = small_workload(family)
        record = run_workload(instance, width=64, depth=5)
        assert len(record["queries"]) == len(instance.queries)
        for row in record["queries"]:
            assert row["exact"] == pytest.approx(
                instance.exact_join(row["left"], row["right"])
            )
            assert row["realized_relative_error"] == pytest.approx(
                abs(row["estimate"] - row["exact"]) / abs(row["exact"])
            )

    def test_record_is_deterministic(self):
        first = run_workload(small_workload("delete_churn"), width=64, depth=5)
        again = run_workload(small_workload("delete_churn"), width=64, depth=5)
        assert first == again

    def test_serial_and_sharded_records_match(self):
        serial = run_workload(small_workload("skew_drift"), width=64, depth=5)
        sharded = run_workload(
            small_workload("skew_drift"), width=64, depth=5,
            workers=2, mode="thread",
        )
        assert serial == sharded

    def test_zero_exact_join_raises(self):
        instance = WorkloadInstance(
            name="disjoint",
            family="disjoint",
            params={},
            seed=0,
            domain_size=16,
            streams={"f": TruePredicate(), "g": TruePredicate()},
            batches=[
                WorkloadBatch(
                    "f", np.zeros(4, dtype=np.int64), np.ones(4)
                ),
                WorkloadBatch(
                    "g", np.ones(4, dtype=np.int64), np.ones(4)
                ),
            ],
            queries=[("f", "g")],
        )
        with pytest.raises(ParameterError):
            run_workload(instance, width=64, depth=5)

    def test_audit_log_state_is_restored(self):
        from repro.monitor import AUDIT

        assert not AUDIT.enabled  # conftest isolation
        run_workload(small_workload("join_correlated"), width=64, depth=5)
        assert not AUDIT.enabled
        assert len(AUDIT) == 0


def _tiny_accuracy_doc() -> dict:
    """A minimal valid ACCURACY document for schema/compare tests."""
    return {
        "version": ACCURACY_VERSION,
        "kind": "repro.workloads",
        "suite": "smoke",
        "revision": "abc1234",
        "engine": {"width": 64, "depth": 5, "seed": 101},
        "records": [
            {
                "workload": "delete_churn",
                "family": "delete_churn",
                "params": {"domain": 64},
                "seed": 0,
                "updates": 100,
                "queries": [
                    {
                        "left": "f", "right": "g", "estimate": 11.0,
                        "exact": 10.0, "realized_relative_error": 0.1,
                        "covered": True, "ci_halfwidth": 4.0,
                        "residual_bound_ok": True,
                    }
                ],
                "max_realized_relative_error": 0.1,
                "mean_realized_relative_error": 0.1,
                "coverage_rate": 1.0,
                "residual_ok_rate": 1.0,
                "drift_alerts": 0,
            }
        ],
    }


class TestSchema:
    def test_valid_doc_passes(self):
        assert validate_accuracy(_tiny_accuracy_doc()) is not None

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.update(version=99),
            lambda d: d.update(kind="repro.bench"),
            lambda d: d.update(records=[]),
            lambda d: d["records"][0].update(coverage_rate=1.5),
            lambda d: d["records"][0].update(max_realized_relative_error=-1),
            lambda d: d["records"][0].update(drift_alerts=-1),
            lambda d: d["records"][0].update(updates=-5),
            lambda d: d["records"][0]["queries"][0].pop("exact"),
            lambda d: d["records"][0].update(queries=[]),
        ],
    )
    def test_invalid_doc_rejected(self, mutate):
        doc = _tiny_accuracy_doc()
        mutate(doc)
        with pytest.raises(ParameterError):
            validate_accuracy(doc)

    def test_duplicate_record_key_rejected(self):
        doc = _tiny_accuracy_doc()
        doc["records"].append(copy.deepcopy(doc["records"][0]))
        with pytest.raises(ParameterError):
            validate_accuracy(doc)


class TestCompareGate:
    """Acceptance criterion: compare exits 0 on the PR, 1 on a doctored
    record."""

    def test_identical_docs_pass(self):
        _, regressions = compare_accuracy(
            _tiny_accuracy_doc(), _tiny_accuracy_doc()
        )
        assert regressions == []

    def test_doctored_error_fails(self):
        doctored = _tiny_accuracy_doc()
        doctored["records"][0]["max_realized_relative_error"] = 0.5
        _, regressions = compare_accuracy(_tiny_accuracy_doc(), doctored)
        assert any("max realized relative error" in r for r in regressions)

    def test_doctored_coverage_fails(self):
        doctored = _tiny_accuracy_doc()
        doctored["records"][0]["coverage_rate"] = 0.5
        _, regressions = compare_accuracy(_tiny_accuracy_doc(), doctored)
        assert any("coverage" in r for r in regressions)

    def test_doctored_residual_rate_fails(self):
        doctored = _tiny_accuracy_doc()
        doctored["records"][0]["residual_ok_rate"] = 0.0
        _, regressions = compare_accuracy(_tiny_accuracy_doc(), doctored)
        assert any("residual" in r for r in regressions)

    def test_new_drift_alerts_fail(self):
        doctored = _tiny_accuracy_doc()
        doctored["records"][0]["drift_alerts"] = 3
        _, regressions = compare_accuracy(_tiny_accuracy_doc(), doctored)
        assert any("drift alerts" in r for r in regressions)

    def test_removed_workload_fails(self):
        current = _tiny_accuracy_doc()
        current["records"][0]["workload"] = "something_else"
        _, regressions = compare_accuracy(_tiny_accuracy_doc(), current)
        assert any("disappeared" in r for r in regressions)

    def test_within_tolerance_passes(self):
        current = _tiny_accuracy_doc()
        current["records"][0]["max_realized_relative_error"] = 0.12
        _, regressions = compare_accuracy(
            _tiny_accuracy_doc(), current, max_error_increase=0.05
        )
        assert regressions == []

    def test_cli_exit_codes(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        good = tmp_path / "good.json"
        bad = tmp_path / "bad.json"
        baseline.write_text(json.dumps(_tiny_accuracy_doc()))
        good.write_text(json.dumps(_tiny_accuracy_doc()))
        doctored = _tiny_accuracy_doc()
        doctored["records"][0]["max_realized_relative_error"] = 0.9
        doctored["records"][0]["coverage_rate"] = 0.0
        bad.write_text(json.dumps(doctored))

        assert workloads_main(["compare", str(baseline), str(good)]) == 0
        assert "no accuracy regressions" in capsys.readouterr().out
        assert workloads_main(["compare", str(baseline), str(bad)]) == 1
        assert "ACCURACY REGRESSIONS" in capsys.readouterr().out

    def test_cli_compare_rejects_garbage(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert workloads_main(
            ["compare", str(missing), str(missing)]
        ) == 1
        assert "error:" in capsys.readouterr().err


class TestCli:
    def test_list_names_every_family(self, capsys):
        assert workloads_main(["list"]) == 0
        out = capsys.readouterr().out
        for family in family_names():
            assert family in out

    def test_run_writes_valid_accuracy_doc(self, tmp_path, capsys):
        out_path = tmp_path / "ACCURACY_<rev>.json"
        code = workloads_main(
            [
                "run", "--suite", "smoke", "--quiet", "--width", "64",
                "--json-out", str(out_path),
            ]
        )
        assert code == 0
        written = list(tmp_path.glob("ACCURACY_*.json"))
        assert len(written) == 1
        assert "<rev>" not in written[0].name
        doc = validate_accuracy(json.loads(written[0].read_text()))
        assert {r["workload"] for r in doc["records"]} == set(family_names())
        assert doc["engine"]["width"] == 64

    def test_run_suite_function_validates(self):
        doc = run_suite("smoke", width=64)
        assert validate_accuracy(doc) is doc
        assert doc["version"] == ACCURACY_VERSION


class TestSelfcheckCli:
    def test_selfcheck_passes(self, capsys):
        assert workloads_main(["selfcheck"]) == 0
        out = capsys.readouterr().out
        assert "selfcheck OK" in out
        assert "FAIL" not in out


class TestImportContract:
    """numpy and the engines must load lazily, never at module level.

    ``repro.workloads`` is a library package (it shares ``repro.errors``
    and the predicate AST), so unlike ``repro.bench`` it cannot be
    imported standalone — the enforceable half of the bench contract is
    that listing the corpus executes no numpy code: every ``import
    numpy`` in the package lives inside a function body.
    """

    def test_no_module_level_numpy_imports(self):
        import ast
        from pathlib import Path

        import repro.workloads

        package = Path(repro.workloads.__file__).parent
        for path in sorted(package.glob("*.py")):
            tree = ast.parse(path.read_text())
            for node in ast.walk(tree):
                if isinstance(node, ast.Import):
                    names = [alias.name for alias in node.names]
                elif isinstance(node, ast.ImportFrom):
                    names = [node.module or ""]
                else:
                    continue
                assert not any(n.split(".")[0] == "numpy" for n in names) or (
                    node.col_offset > 0
                ), f"{path.name}:{node.lineno} imports numpy at module level"
