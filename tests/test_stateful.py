"""Stateful property testing: a hash sketch against the exact model.

Hypothesis drives random sequences of operations (inserts, deletes,
weighted updates, merges, skims, epoch churn) against both a
:class:`HashSketch` and an exact :class:`FrequencyVector` model, checking
after every step that the sketch remains the exact linear projection of
the model — the single invariant all estimator guarantees rest on.
"""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.skim import skim_dense
from repro.sketches.hash_sketch import HashSketchSchema
from repro.streams.model import FrequencyVector

DOMAIN = 32
SCHEMA = HashSketchSchema(16, 3, DOMAIN, seed=99)


def _projection_of(model: FrequencyVector) -> np.ndarray:
    """The exact counters the schema assigns to a frequency vector."""
    return SCHEMA.sketch_of(model).counters


class SketchMachine(RuleBasedStateMachine):
    """Random op sequences must keep sketch == projection(model)."""

    def __init__(self):
        super().__init__()
        self.sketch = SCHEMA.create_sketch()
        self.model = FrequencyVector.zeros(DOMAIN)

    @rule(value=st.integers(0, DOMAIN - 1))
    def insert(self, value):
        self.sketch.update(value)
        self.model.apply_bulk(np.asarray([value]))

    @rule(value=st.integers(0, DOMAIN - 1))
    def delete(self, value):
        self.sketch.update(value, -1.0)
        self.model.apply_bulk(np.asarray([value]), np.asarray([-1.0]))

    @rule(
        value=st.integers(0, DOMAIN - 1),
        weight=st.floats(-50.0, 50.0, allow_nan=False),
    )
    def weighted_update(self, value, weight):
        self.sketch.update(value, weight)
        self.model.apply_bulk(np.asarray([value]), np.asarray([weight]))

    @rule(
        values=st.lists(st.integers(0, DOMAIN - 1), min_size=1, max_size=10)
    )
    def bulk_insert(self, values):
        arr = np.asarray(values, dtype=np.int64)
        self.sketch.update_bulk(arr)
        self.model.apply_bulk(arr)

    @rule(
        value=st.integers(0, DOMAIN - 1),
        amount=st.floats(1.0, 20.0, allow_nan=False),
    )
    def subtract_known_frequency(self, value, amount):
        """Skim-style subtraction is just a negative point mass."""
        self.sketch.subtract_frequencies(
            np.asarray([value]), np.asarray([amount])
        )
        self.model.apply_bulk(np.asarray([value]), np.asarray([-amount]))

    @rule(other_value=st.integers(0, DOMAIN - 1))
    def merge_in_singleton(self, other_value):
        other = SCHEMA.create_sketch()
        other.update(other_value, 2.0)
        self.sketch = self.sketch.merged_with(other)
        self.model.apply_bulk(np.asarray([other_value]), np.asarray([2.0]))

    @rule(threshold=st.floats(5.0, 100.0, allow_nan=False))
    def skim_and_track(self, threshold):
        """In-place skim; the model loses the extracted frequencies too."""
        result, _ = skim_dense(self.sketch, threshold=threshold, in_place=True)
        if result.dense_count:
            self.model.apply_bulk(
                result.dense_values, -result.dense_frequencies
            )

    @invariant()
    def sketch_equals_projection_of_model(self):
        assert np.allclose(
            self.sketch.counters, _projection_of(self.model), atol=1e-6
        )


TestSketchMachine = SketchMachine.TestCase
TestSketchMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
