"""Tests for the plain-text experiment reporting."""

from __future__ import annotations

from repro.eval.reporting import format_number, render_series, render_table


class TestFormatNumber:
    def test_integers(self):
        assert format_number(5) == "5"
        assert format_number(True) == "True"

    def test_zero(self):
        assert format_number(0.0) == "0"

    def test_small_uses_scientific(self):
        assert "e" in format_number(1e-6)

    def test_large_uses_scientific(self):
        assert "e" in format_number(1e9)

    def test_mid_range(self):
        assert format_number(0.1234567) == "0.1235"
        assert format_number(123.456) == "123.5"


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(["a", "bb"], [[1, 2.5], [30, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "-" in lines[2]
        assert len(lines) == 5

    def test_empty_rows(self):
        text = render_table(["x"], [])
        assert "x" in text

    def test_string_cells_pass_through(self):
        text = render_table(["m"], [["skimmed"]])
        assert "skimmed" in text


class TestRenderSeries:
    def test_union_of_x_values(self):
        text = render_series(
            "title",
            "space",
            {
                "a": [(1.0, 0.5), (2.0, 0.25)],
                "b": [(2.0, 0.1), (3.0, 0.05)],
            },
        )
        lines = text.splitlines()
        assert lines[0] == "title"
        # x = 1, 2, 3 rows, plus title/header/separator.
        assert len(lines) == 6

    def test_missing_points_blank(self):
        text = render_series("t", "x", {"a": [(1.0, 0.5)], "b": []})
        assert "0.5" in text
