"""Unit, CLI and end-to-end tests for the ``repro.trace`` span tracer."""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

import numpy as np
import pytest

import repro.trace
from repro.trace import (
    TRACER,
    Span,
    SpanTracer,
    capturing,
    read_trace_jsonl,
    render_summary,
    summarize_trace,
    trace_from_jsonl,
    trace_to_chrome,
    trace_to_jsonl,
    validate_trace,
    write_trace_chrome,
    write_trace_jsonl,
)
from repro.trace.__main__ import main as trace_main


class TestSpanTracer:
    def test_disabled_records_nothing_and_yields_none(self):
        tracer = SpanTracer(enabled=False)
        with tracer.span("skim", kind="flat") as sp:
            assert sp is None
        tracer.instant("sketch.update")
        assert tracer.spans() == []

    def test_nesting_and_parent_links(self):
        tracer = SpanTracer(enabled=True)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                tracer.instant("tick")
        spans = {s.name: s for s in tracer.spans()}
        assert spans["outer"].parent_id is None
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["tick"].parent_id == spans["inner"].span_id
        assert tracer.children_of(outer) == [spans["inner"]]
        assert inner.duration >= 0
        # Completion order: children recorded before parents.
        assert [s.name for s in tracer.spans()] == ["tick", "inner", "outer"]

    def test_attributes_and_set(self):
        tracer = SpanTracer(enabled=True)
        with tracer.span("skim", kind="flat", threshold=12.5) as sp:
            sp.set(dense=3)
        (span,) = tracer.find("skim")
        assert span.attributes == {"kind": "flat", "threshold": 12.5, "dense": 3}

    def test_max_spans_bounds_memory(self):
        tracer = SpanTracer(enabled=True, max_spans=2)
        for _ in range(5):
            tracer.instant("e")
        assert tracer.span_count() == 2
        assert tracer.dropped == 3
        assert tracer.snapshot()["dropped"] == 3

    def test_reset_restarts_ids_and_epoch(self):
        tracer = SpanTracer(enabled=True)
        tracer.instant("a")
        tracer.reset()
        tracer.instant("b")
        (span,) = tracer.spans()
        assert span.span_id == 1
        assert span.start < 1.0  # epoch restarted at reset

    def test_exception_still_closes_span(self):
        tracer = SpanTracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        (span,) = tracer.find("boom")
        assert span.end >= span.start
        # The stack unwound: a new span is a root again.
        with tracer.span("after"):
            pass
        assert tracer.find("after")[0].parent_id is None

    def test_capturing_scopes_enablement(self):
        assert not TRACER.enabled
        with capturing() as tracer:
            tracer.instant("inside")
        assert not TRACER.enabled
        assert [s.name for s in TRACER.spans()] == ["inside"]

    def test_bad_max_spans_rejected(self):
        with pytest.raises(ValueError):
            SpanTracer(max_spans=0)


class TestWireFormats:
    def _sample(self) -> dict:
        tracer = SpanTracer(enabled=True)
        with tracer.span("estimate.skim_join", s1=128, s2=5):
            with tracer.span("skim", kind="flat"):
                pass
            tracer.instant("estimate.term", term="dense_dense")
        return tracer.snapshot()

    def test_jsonl_round_trip(self):
        snap = self._sample()
        assert trace_from_jsonl(trace_to_jsonl(snap)) == snap

    def test_jsonl_file_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        snap = self._sample()
        write_trace_jsonl(str(path), snap)
        assert read_trace_jsonl(str(path)) == snap
        # Header is the first line; spans follow one per line.
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["kind"] == "repro.trace"
        assert len(lines) == 1 + len(snap["spans"])

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda s: s.pop("version"),
            lambda s: s.update(kind="wrong"),
            lambda s: s.update(dropped=-1),
            lambda s: s.pop("spans"),
            lambda s: s["spans"][0].pop("name"),
            lambda s: s["spans"][0].update(id=0),
            lambda s: s["spans"][1].update(id=s["spans"][0]["id"]),
            lambda s: s["spans"][0].update(parent=999),
            lambda s: s["spans"][0].update(end=s["spans"][0]["start"] - 1),
            lambda s: s["spans"][0].update(attrs=[]),
        ],
    )
    def test_validate_rejects_malformed(self, mutate):
        snap = json.loads(trace_to_jsonl(self._sample()).splitlines()[0])
        snap["spans"] = self._sample()["spans"]
        mutate(snap)
        with pytest.raises(ValueError):
            validate_trace(snap)

    def test_forward_parent_reference_is_valid(self):
        # Children are recorded before parents, so a parent id later in
        # the list is the normal case, not an error.
        snap = self._sample()
        child_indices = [
            i for i, s in enumerate(snap["spans"]) if s["parent"] is not None
        ]
        assert child_indices, "sample must contain nested spans"
        assert validate_trace(snap) is snap

    def test_chrome_conversion_shape(self):
        chrome = trace_to_chrome(self._sample())
        events = chrome["traceEvents"]
        assert events[0]["ph"] == "M"  # process_name metadata
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert {e["name"] for e in complete} == {"estimate.skim_join", "skim"}
        assert instants[0]["name"] == "estimate.term"
        assert instants[0]["s"] == "t"
        for event in complete:
            assert event["dur"] > 0
            assert event["ts"] >= 0
            assert event["cat"] == event["name"].split(".")[0]
            assert "span_id" in event["args"]
        assert json.dumps(chrome)  # fully serialisable

    def test_summary_aggregates(self):
        tracer = SpanTracer(enabled=True)
        for _ in range(3):
            with tracer.span("skim"):
                pass
        rows = summarize_trace(tracer.snapshot())
        (row,) = rows
        assert row["count"] == 3
        assert row["mean"] == pytest.approx(row["total"] / 3)
        text = render_summary(rows)
        assert "skim" in text and "count" in text


class TestTraceCLI:
    def _write_sample(self, path: pathlib.Path) -> None:
        tracer = SpanTracer(enabled=True)
        with tracer.span("engine.answer", query="JoinSizeQuery"):
            with tracer.span("skim", kind="dyadic"):
                pass
        write_trace_jsonl(str(path), tracer.snapshot())

    def test_validate_ok(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        self._write_sample(path)
        assert trace_main(["validate", str(path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_validate_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"version": 99}\n')
        assert trace_main(["validate", str(bad)]) == 1
        assert trace_main(["validate", str(tmp_path / "missing.jsonl")]) == 1

    def test_convert_produces_loadable_chrome_json(self, tmp_path):
        src = tmp_path / "t.jsonl"
        dst = tmp_path / "t.chrome.json"
        self._write_sample(src)
        assert trace_main(["convert", str(src), str(dst)]) == 0
        chrome = json.loads(dst.read_text())
        assert {e["name"] for e in chrome["traceEvents"]} >= {
            "engine.answer",
            "skim",
        }

    def test_summarize(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        self._write_sample(path)
        assert trace_main(["summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "engine.answer" in out and "skim" in out


class TestEndToEnd:
    """ISSUE acceptance: one traced ``StreamEngine.answer()`` produces the
    full nested span tree and converts to a loadable Perfetto trace."""

    def _traced_answer(self):
        from repro.core.config import SketchParameters
        from repro.streams.engine import StreamEngine
        from repro.streams.query import JoinCountQuery

        engine = StreamEngine(
            domain_size=1 << 10,
            parameters=SketchParameters(width=64, depth=5),
            synopsis="skimmed",
            seed=3,
        )
        engine.register_stream("f")
        engine.register_stream("g")
        rng = np.random.default_rng(7)
        # Skewed streams: three values with frequency 1000 sit well above
        # the skim threshold N/sqrt(width) = 5000/8, so both skims extract
        # dense values and the sparse terms run their median boosting.
        heavy = np.repeat(np.array([3, 5, 9]), 1000)
        for stream in ("f", "g"):
            tail = rng.integers(0, 1 << 10, 2_000)
            engine.process_bulk(stream, np.concatenate([heavy, tail]))
        with capturing() as tracer:
            engine.answer(JoinCountQuery("f", "g"))
        return tracer.snapshot()

    def test_answer_emits_nested_query_path_spans(self):
        snap = self._traced_answer()
        validate_trace(snap)
        by_name: dict[str, list[dict]] = {}
        for span in snap["spans"]:
            by_name.setdefault(span["name"], []).append(span)

        (answer,) = by_name["engine.answer"]
        assert answer["parent"] is None
        assert answer["attrs"]["query"] == "JoinCountQuery"
        assert "estimate" in answer["attrs"]

        (skim_join,) = by_name["estimate.skim_join"]
        assert skim_join["parent"] == answer["id"]
        assert skim_join["attrs"]["s1"] == 64
        assert skim_join["attrs"]["s2"] == 5

        # Both streams' sketches get skimmed under the join estimate.
        assert len(by_name["skim"]) == 2
        for skim in by_name["skim"]:
            assert skim["parent"] == skim_join["id"]
            assert skim["attrs"]["kind"] == "flat"
            assert skim["attrs"]["threshold"] > 0

        # All four ESTSKIMJOINSIZE sub-join terms, in the paper's order.
        terms = [s for s in by_name["estimate.term"] if s["parent"] == skim_join["id"]]
        assert [t["attrs"]["term"] for t in terms] == [
            "dense_dense",
            "dense_sparse",
            "sparse_dense",
            "sparse_sparse",
        ]

        # Per-table median boosting happens under the sparse terms.
        term_ids = {t["id"] for t in terms}
        boosts = by_name["estimate.median_boost"]
        assert boosts
        for boost in boosts:
            assert boost["parent"] in term_ids
            assert boost["attrs"]["tables"] == 5
            assert "median" in boost["attrs"]

    def test_traced_answer_converts_to_perfetto(self, tmp_path):
        snap = self._traced_answer()
        path = tmp_path / "answer.chrome.json"
        write_trace_chrome(str(path), snap)
        chrome = json.loads(path.read_text())
        assert chrome["traceEvents"], "trace must contain events"
        names = {e["name"] for e in chrome["traceEvents"]}
        assert {"engine.answer", "estimate.skim_join", "skim", "estimate.term"} <= names

    def test_ingest_and_sql_spans(self):
        from repro.core.config import SketchParameters
        from repro.streams.engine import StreamEngine

        engine = StreamEngine(
            domain_size=256,
            parameters=SketchParameters(width=32, depth=3),
            synopsis="skimmed",
            seed=1,
        )
        engine.register_stream("f")
        engine.register_stream("g")
        with capturing() as tracer:
            engine.process("f", 7)
            engine.process_bulk("g", np.arange(10))
            engine.answer_sql("SELECT COUNT(*) FROM f JOIN g")
        names = [s.name for s in tracer.spans()]
        assert names.count("engine.ingest") == 2
        assert "engine.sql" in names
        (sql,) = tracer.find("engine.sql")
        assert "JOIN" in sql.attributes["sql"]

    def test_distributed_round_trip_spans(self):
        from repro.core import SkimmedSketchSchema
        from repro.distributed.coordinator import SketchCoordinator
        from repro.distributed.site import SketchSite

        schema = SkimmedSketchSchema(32, 3, 256, seed=2)
        site = SketchSite("site-a", schema, ["f"])
        coordinator = SketchCoordinator(schema)
        site.observe_bulk("f", np.arange(50))
        with capturing() as tracer:
            reports = site.close_round()
            coordinator.receive_all(reports)
        names = [s.name for s in tracer.spans()]
        assert "dist.round" in names
        assert "dist.merge_round" in names
        assert "dist.receive" in names
        (round_span,) = tracer.find("dist.round")
        assert round_span.attributes["site"] == "site-a"
        assert round_span.attributes["bytes"] > 0
        (receive,) = tracer.find("dist.receive")
        assert receive.attributes["bytes"] > 0


class TestImportCost:
    """`repro.trace` must stay importable without heavy dependencies."""

    def _package_parent_dir(self) -> str:
        return str(pathlib.Path(repro.trace.__file__).parent.parent)

    def test_trace_does_not_import_numpy(self):
        # 'trace' collides with the stdlib module of the same name, so
        # import the package via importlib with an explicit location.
        code = (
            "import importlib.util, pathlib, sys; "
            "pkg = pathlib.Path({path!r}) / 'trace' / '__init__.py'; "
            "spec = importlib.util.spec_from_file_location('repro_trace', pkg); "
            "mod = importlib.util.module_from_spec(spec); "
            "sys.modules['repro_trace'] = mod; "
            "spec.loader.exec_module(mod); "
            "assert 'numpy' not in sys.modules, 'repro.trace must not import numpy'"
        ).format(path=self._package_parent_dir())
        subprocess.run([sys.executable, "-c", code], check=True)

    def test_bench_does_not_import_numpy(self):
        code = (
            "import sys; sys.path.insert(0, {path!r}); import bench; "
            "assert 'numpy' not in sys.modules, "
            "'repro.bench must not import numpy'"
        ).format(path=self._package_parent_dir())
        subprocess.run([sys.executable, "-c", code], check=True)
