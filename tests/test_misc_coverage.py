"""Remaining branch coverage across modules (error paths, small helpers)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SketchParameters
from repro.errors import QueryError
from repro.eval.runner import SweepConfig
from repro.sketches.agms import AGMSSchema
from repro.sketches.countsketch import TopKSketch
from repro.sketches.hash_sketch import HashSketchSchema
from repro.streams.engine import StreamEngine
from repro.streams.model import FrequencyVector

DOMAIN = 256


class TestEngineErrorPaths:
    def test_synopsis_for_unknown_stream(self):
        engine = StreamEngine(DOMAIN, SketchParameters(16, 3))
        with pytest.raises(QueryError):
            engine.synopsis_for("ghost")

    def test_stream_stats_unknown_stream(self):
        engine = StreamEngine(DOMAIN, SketchParameters(16, 3))
        with pytest.raises(QueryError):
            engine.stream_stats("ghost")

    def test_repr_lists_streams(self):
        engine = StreamEngine(DOMAIN, SketchParameters(16, 3))
        engine.register_stream("f")
        assert "f" in repr(engine)


class TestIngestValidation:
    def test_hash_sketch_ingest_domain_mismatch(self):
        schema = HashSketchSchema(16, 3, DOMAIN, seed=0)
        sketch = schema.create_sketch()
        with pytest.raises(ValueError):
            sketch.ingest_frequency_vector(FrequencyVector.zeros(DOMAIN * 2))

    def test_agms_ingest_domain_mismatch_cached(self):
        schema = AGMSSchema(4, 3, DOMAIN, seed=0)
        schema.enable_projection_cache()
        with pytest.raises(ValueError):
            schema.create_sketch().ingest_frequency_vector(
                FrequencyVector.zeros(DOMAIN * 2)
            )

    def test_projection_cache_idempotent(self):
        schema = AGMSSchema(4, 3, DOMAIN, seed=1)
        schema.enable_projection_cache()
        schema.enable_projection_cache()  # second call is a no-op
        assert schema.projection_cache_enabled()

    def test_ingest_empty_vector_noop(self):
        schema = HashSketchSchema(16, 3, DOMAIN, seed=2)
        sketch = schema.create_sketch()
        sketch.ingest_frequency_vector(FrequencyVector.zeros(DOMAIN))
        assert sketch.absolute_mass == 0.0


class TestTopKWeighted:
    def test_weighted_bulk_updates(self):
        tracker = TopKSketch(HashSketchSchema(64, 5, DOMAIN, seed=3), k=2)
        tracker.update_bulk(
            np.asarray([7, 9]), np.asarray([50.0, 3.0])
        )
        top = tracker.top_k()
        assert top[0][0] == 7
        assert top[0][1] == pytest.approx(50.0)


class TestSweepConfigEdges:
    def test_shapes_respect_tight_budget(self):
        config = SweepConfig(
            widths=(50, 100), depths=(11, 23), space_budgets=(600,)
        )
        assert config.shapes() == [(50, 11)]

    def test_budget_grid_unsorted_input_ok(self):
        config = SweepConfig(
            widths=(50,), depths=(11,), space_budgets=(2000, 600)
        )
        assert config.budget_of(50, 11) == 600


class TestSchemaReprs:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: HashSketchSchema(16, 3, DOMAIN, seed=0),
            lambda: AGMSSchema(4, 3, DOMAIN, seed=0),
        ],
    )
    def test_repr_contains_shape(self, factory):
        text = repr(factory())
        assert str(DOMAIN) in text
