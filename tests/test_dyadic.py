"""Tests for the dyadic-interval sketch hierarchy (§4.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import IncompatibleSketchError
from repro.sketches.dyadic import DyadicHashSketch, DyadicSketchSchema
from repro.streams.model import FrequencyVector

DOMAIN = 1 << 12  # 4096


def make_schema(width=64, depth=5, seed=0, coarse_cutoff=64):
    return DyadicSketchSchema(
        width, depth, DOMAIN, seed=seed, coarse_cutoff=coarse_cutoff
    )


class TestSchema:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            DyadicSketchSchema(8, 3, 1000)

    def test_rejects_tiny_cutoff(self):
        with pytest.raises(ValueError):
            DyadicSketchSchema(8, 3, DOMAIN, coarse_cutoff=1)

    def test_level_domains_halve(self):
        schema = make_schema(coarse_cutoff=64)
        assert schema.level_domains[0] == DOMAIN
        for a, b in zip(schema.level_domains, schema.level_domains[1:]):
            assert b == a // 2
        assert schema.level_domains[-1] <= 64

    def test_compatibility(self):
        a = make_schema(seed=1)
        assert a.is_compatible(make_schema(seed=1))
        assert not a.is_compatible(make_schema(seed=2))


class TestMaintenance:
    def test_update_reaches_every_level(self):
        schema = make_schema()
        sketch = schema.create_sketch()
        sketch.update(3000)
        for level in range(schema.num_levels):
            assert (sketch.level_sketch(level).counters != 0).any()

    def test_levels_aggregate_dyadic_intervals(self):
        """Level-l frequency of v>>l equals the interval's total frequency."""
        schema = make_schema(width=256, depth=7)
        sketch = schema.create_sketch()
        # Values 8..15 form one level-3 dyadic interval.
        for value in range(8, 16):
            sketch.update(value, 2.0)
        level3 = sketch.level_sketch(3)
        assert level3.point_estimate(1) == pytest.approx(16.0)

    def test_update_bulk_matches_element_updates(self):
        schema = make_schema(seed=3)
        values = np.random.default_rng(0).integers(0, DOMAIN, 200)
        bulk = schema.create_sketch()
        bulk.update_bulk(values)
        loop = schema.create_sketch()
        for v in values:
            loop.update(int(v))
        for level in range(schema.num_levels):
            assert np.allclose(
                bulk.level_sketch(level).counters,
                loop.level_sketch(level).counters,
            )

    def test_size_sums_levels(self):
        schema = make_schema(width=32, depth=3)
        sketch = schema.create_sketch()
        assert sketch.size_in_counters() == 32 * 3 * schema.num_levels


class TestHeavyValues:
    def test_finds_planted_heavy_values(self):
        schema = make_schema(width=256, depth=7, seed=4)
        counts = np.zeros(DOMAIN)
        heavy = [5, 100, 2048, 4095]
        for value in heavy:
            counts[value] = 500.0
        tail = np.random.default_rng(1).choice(DOMAIN, 500, replace=False)
        counts[tail] += 1.0
        sketch = schema.sketch_of(FrequencyVector(counts))
        found = sketch.heavy_values(250.0)
        assert set(heavy) <= set(found.tolist())
        # No wild over-reporting: light values do not pass the threshold.
        assert len(found) <= len(heavy) + 2

    def test_empty_sketch_returns_nothing(self):
        schema = make_schema()
        assert schema.create_sketch().heavy_values(1.0).size == 0

    def test_rejects_non_positive_threshold(self):
        schema = make_schema()
        with pytest.raises(ValueError):
            schema.create_sketch().heavy_values(0.0)

    def test_descent_cost_below_flat_scan(self):
        schema = make_schema(width=256, depth=5, seed=5)
        counts = np.zeros(DOMAIN)
        counts[[7, 77, 777]] = 300.0
        sketch = schema.sketch_of(FrequencyVector(counts))
        cost = sketch.estimated_descent_cost(150.0)
        assert cost < DOMAIN / 4


class TestRangeEstimate:
    def test_exact_on_isolated_mass(self):
        schema = make_schema(width=256, depth=7, seed=20)
        sketch = schema.create_sketch()
        sketch.update_bulk(np.asarray([100] * 50 + [200] * 30))
        assert sketch.range_estimate(100, 201) == pytest.approx(80.0, abs=5.0)
        assert sketch.range_estimate(101, 200) == pytest.approx(0.0, abs=5.0)

    def test_full_domain_equals_stream_size(self):
        schema = make_schema(width=256, depth=7, seed=21)
        sketch = schema.create_sketch()
        values = np.random.default_rng(5).integers(0, DOMAIN, 2_000)
        sketch.update_bulk(values)
        assert sketch.range_estimate(0, DOMAIN) == pytest.approx(2_000.0, rel=0.1)

    def test_accuracy_on_broad_range(self):
        """Dyadic decomposition keeps error logarithmic in range length."""
        schema = make_schema(width=256, depth=7, seed=22)
        counts = np.zeros(DOMAIN)
        rng = np.random.default_rng(6)
        chosen = rng.choice(DOMAIN, 800, replace=False)
        counts[chosen] = rng.integers(1, 20, size=800)
        freqs = FrequencyVector(counts)
        sketch = schema.sketch_of(freqs)
        low, high = 123, 3456
        exact = float(counts[low:high].sum())
        assert sketch.range_estimate(low, high) == pytest.approx(exact, rel=0.2)

    def test_validation(self):
        schema = make_schema()
        sketch = schema.create_sketch()
        with pytest.raises(ValueError):
            sketch.range_estimate(5, 5)
        with pytest.raises(ValueError):
            sketch.range_estimate(-1, 5)
        with pytest.raises(ValueError):
            sketch.range_estimate(0, DOMAIN + 1)

    def test_singleton_range_is_point_estimate(self):
        schema = make_schema(seed=23)
        sketch = schema.create_sketch()
        sketch.update(77, 9.0)
        assert sketch.range_estimate(77, 78) == pytest.approx(
            sketch.base_sketch.point_estimate(77)
        )


class TestLinearity:
    def test_subtract_updates_all_levels(self):
        schema = make_schema(width=128, depth=5, seed=6)
        sketch = schema.create_sketch()
        sketch.update_bulk(np.asarray([100] * 50))
        sketch.subtract_frequencies(np.asarray([100]), np.asarray([50.0]))
        for level in range(schema.num_levels):
            assert np.allclose(sketch.level_sketch(level).counters, 0.0)

    def test_merge(self):
        schema = make_schema(seed=7)
        a, b = schema.create_sketch(), schema.create_sketch()
        a.update(1)
        b.update(2)
        merged = a.merged_with(b)
        direct = schema.create_sketch()
        direct.update(1)
        direct.update(2)
        for level in range(schema.num_levels):
            assert np.allclose(
                merged.level_sketch(level).counters,
                direct.level_sketch(level).counters,
            )

    def test_copy_independent(self):
        schema = make_schema(seed=8)
        sketch = schema.create_sketch()
        sketch.update(5)
        clone = sketch.copy()
        clone.update(9)
        assert clone.absolute_mass != sketch.absolute_mass

    def test_incompatible_merge_rejected(self):
        a = make_schema(seed=1).create_sketch()
        b = make_schema(seed=2).create_sketch()
        with pytest.raises(IncompatibleSketchError):
            a.merged_with(b)

    def test_base_sketch_is_level_zero(self):
        schema = make_schema()
        sketch = schema.create_sketch()
        assert sketch.base_sketch is sketch.level_sketch(0)
