"""Tests for distributed sketch collection (sites -> coordinator)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimator import SkimmedSketchSchema
from repro.distributed import (
    ProtocolError,
    SketchCoordinator,
    SketchReport,
    SketchSite,
)
from repro.errors import IncompatibleSketchError, QueryError
from repro.streams.generators import shifted_zipf_pair

DOMAIN = 1 << 11


def make_schema(seed=0):
    return SkimmedSketchSchema(128, 7, DOMAIN, seed=seed)


def split_counts(counts: np.ndarray, parts: int, seed: int) -> list[np.ndarray]:
    """Randomly split integer counts into ``parts`` non-negative shares."""
    rng = np.random.default_rng(seed)
    remaining = counts.astype(np.int64).copy()
    shares = []
    for part in range(parts - 1):
        draw = rng.binomial(remaining, 1.0 / (parts - part))
        shares.append(draw.astype(np.float64))
        remaining -= draw
    shares.append(remaining.astype(np.float64))
    return shares


class TestSketchSite:
    def test_validation(self):
        schema = make_schema()
        with pytest.raises(ValueError):
            SketchSite("s", schema, [])
        with pytest.raises(ValueError):
            SketchSite("s", schema, ["f", "f"])
        with pytest.raises(ValueError):
            SketchSite("s", schema, ["f"], mode="telepathy")

    def test_unknown_stream_rejected(self):
        site = SketchSite("s", make_schema(), ["f"])
        with pytest.raises(QueryError):
            site.observe("g", 1)
        with pytest.raises(QueryError):
            site.observe_bulk("g", np.asarray([1]))

    def test_close_round_emits_one_report_per_stream(self):
        site = SketchSite("edge1", make_schema(), ["f", "g"])
        site.observe("f", 3)
        reports = site.close_round()
        assert {r.stream for r in reports} == {"f", "g"}
        assert all(r.site == "edge1" and r.round_number == 1 for r in reports)
        assert all(r.size_in_bytes() > 0 for r in reports)

    def test_delta_mode_resets_after_report(self):
        site = SketchSite("edge1", make_schema(), ["f"], mode="delta")
        site.observe("f", 3, 5.0)
        first = site.close_round()[0].open_sketch()
        assert first.absolute_mass == 5.0
        second = site.close_round()[0].open_sketch()
        assert second.absolute_mass == 0.0

    def test_cumulative_mode_keeps_history(self):
        site = SketchSite("edge1", make_schema(), ["f"])
        site.observe("f", 3)
        site.close_round()
        site.observe("f", 3)
        latest = site.close_round()[0].open_sketch()
        assert latest.absolute_mass == 2.0

    def test_parallel_ingest_reports_match_serial_site(self):
        rng = np.random.default_rng(8)
        values = rng.integers(0, DOMAIN, size=4000, dtype=np.int64)
        serial = SketchSite("edge1", make_schema(), ["f"])
        serial.observe_bulk("f", values)
        with SketchSite(
            "edge1", make_schema(), ["f"], parallel_workers=3
        ) as sharded:
            sharded.observe("f", int(values[0]))
            sharded.observe_bulk("f", values[1:])
            report = sharded.close_round()[0]
        reference = serial.close_round()[0]
        assert report.payload == reference.payload

    def test_parallel_delta_mode_resets_ingestors(self):
        with SketchSite(
            "edge1", make_schema(), ["f"], mode="delta", parallel_workers=2
        ) as site:
            site.observe("f", 3, 5.0)
            assert site.close_round()[0].open_sketch().absolute_mass == 5.0
            assert site.close_round()[0].open_sketch().absolute_mass == 0.0

    def test_parallel_parameters_validated(self):
        with pytest.raises(ValueError):
            SketchSite("s", make_schema(), ["f"], parallel_workers=0)
        with pytest.raises(ValueError):
            SketchSite("s", make_schema(), ["f"], parallel_mode="telepathy")


class TestCoordinator:
    def test_merged_estimate_matches_centralised(self):
        """The headline property: distribution introduces zero extra error."""
        schema = make_schema(seed=3)
        f, g = shifted_zipf_pair(DOMAIN, 30_000, 1.2, 10)

        # Centralised reference.
        central_f = schema.sketch_of(f)
        central_g = schema.sketch_of(g)
        central_estimate = central_f.est_join_size(central_g)

        # Three sites each see a random share of the traffic.
        coordinator = SketchCoordinator(schema)
        f_shares = split_counts(f.counts, 3, seed=1)
        g_shares = split_counts(g.counts, 3, seed=2)
        for index, (f_share, g_share) in enumerate(zip(f_shares, g_shares)):
            site = SketchSite(f"site{index}", schema, ["f", "g"])
            site.observe_bulk("f", np.flatnonzero(f_share), f_share[f_share > 0])
            site.observe_bulk("g", np.flatnonzero(g_share), g_share[g_share > 0])
            coordinator.receive_all(site.close_round())

        assert coordinator.est_join_size("f", "g") == pytest.approx(
            central_estimate
        )

    def test_cumulative_reports_replace(self):
        schema = make_schema()
        coordinator = SketchCoordinator(schema)
        site = SketchSite("edge1", schema, ["f"])
        site.observe("f", 5)
        coordinator.receive_all(site.close_round())
        site.observe("f", 5)
        coordinator.receive_all(site.close_round())
        # Cumulative: the second report (2 updates) replaces the first.
        assert coordinator.point_estimate("f", 5) == pytest.approx(2.0)

    def test_delta_reports_add(self):
        schema = make_schema()
        coordinator = SketchCoordinator(schema, delta_sites={"edge1"})
        site = SketchSite("edge1", schema, ["f"], mode="delta")
        site.observe("f", 5)
        coordinator.receive_all(site.close_round())
        site.observe("f", 5)
        coordinator.receive_all(site.close_round())
        assert coordinator.point_estimate("f", 5) == pytest.approx(2.0)

    def test_stale_report_rejected(self):
        schema = make_schema()
        coordinator = SketchCoordinator(schema)
        site = SketchSite("edge1", schema, ["f"])
        reports = site.close_round()
        coordinator.receive_all(reports)
        with pytest.raises(ProtocolError):
            coordinator.receive(reports[0])  # replayed round

    def test_incompatible_schema_rejected(self):
        coordinator = SketchCoordinator(make_schema(seed=1))
        rogue_site = SketchSite("rogue", make_schema(seed=2), ["f"])
        with pytest.raises(IncompatibleSketchError):
            coordinator.receive_all(rogue_site.close_round())

    def test_unknown_stream_query_rejected(self):
        coordinator = SketchCoordinator(make_schema())
        with pytest.raises(QueryError):
            coordinator.global_sketch("ghost")

    def test_round_summary_and_stats(self):
        schema = make_schema()
        coordinator = SketchCoordinator(schema)
        site = SketchSite("edge1", schema, ["f", "g"])
        summary = coordinator.receive_all(site.close_round())
        assert summary.round_number == 1
        assert summary.streams == ("f", "g")
        assert summary.sites_reporting == ("edge1",)
        assert summary.bytes_received > 0
        reports, received = coordinator.communication_stats()
        assert reports == 2
        assert received == summary.bytes_received

    def test_self_join_and_sites_listing(self):
        schema = make_schema()
        coordinator = SketchCoordinator(schema)
        site = SketchSite("edge1", schema, ["f"])
        site.observe_bulk("f", np.asarray([3] * 10))
        coordinator.receive_all(site.close_round())
        assert coordinator.sites_for("f") == ["edge1"]
        assert coordinator.est_self_join_size("f") == pytest.approx(100.0)


class TestTraceContext:
    def test_wire_round_trip(self):
        from repro.distributed import TraceContext

        context = TraceContext(trace_id="fleet-round-000007", round_number=7)
        assert TraceContext.from_dict(context.as_dict()) == context

    @pytest.mark.parametrize(
        "doc",
        [
            {},
            {"trace_id": "", "round_number": 1},
            {"trace_id": "x", "round_number": -1},
            {"trace_id": "x", "round_number": "1"},
        ],
    )
    def test_malformed_context_rejected(self, doc):
        from repro.distributed import TraceContext

        with pytest.raises(ProtocolError):
            TraceContext.from_dict(doc)

    def test_coordinator_mints_sequential_ids(self):
        from repro.distributed import SketchCoordinator

        coordinator = SketchCoordinator(make_schema())
        first = coordinator.mint_trace_context()
        second = coordinator.mint_trace_context()
        assert first.trace_id == "fleet-round-000001"
        assert (second.trace_id, second.round_number) == ("fleet-round-000002", 2)
        explicit = coordinator.mint_trace_context(round_number=42)
        assert explicit.round_number == 42

    def test_reports_echo_minted_context(self):
        from repro.distributed import SketchCoordinator

        schema = make_schema()
        site = SketchSite("a", schema, streams=["R", "S"])
        coordinator = SketchCoordinator(schema)
        site.observe("R", 5)
        context = coordinator.mint_trace_context()
        reports = site.close_round(context)
        assert all(r.trace_context == context.as_dict() for r in reports)
        coordinator.receive_all(reports)  # context-carrying reports merge fine

    def test_legacy_report_shape_still_accepted(self):
        """Pre-federation reports (no context, no telemetry) interoperate."""
        schema = make_schema()
        site = SketchSite("a", schema, streams=["R"])
        site.observe("R", 5)
        report = site.close_round()[0]
        assert report.trace_context is None
        assert report.telemetry is None
        assert report.telemetry_size_in_bytes() == 0
        legacy = SketchReport(
            site=report.site,
            stream=report.stream,
            round_number=report.round_number,
            payload=report.payload,
        )
        coordinator = SketchCoordinator(schema)
        summary = coordinator.receive_all([legacy])
        assert summary.reports_merged == 1
        assert summary.telemetry_bytes == 0
