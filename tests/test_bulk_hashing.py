"""Property tests for the fused bulk-update kernels (repro.hashing.bulk).

Three equivalences carry the whole optimisation:

* ``coalesce_updates`` is just a grouped sum — masses per distinct value;
* ``BulkHashCache.level(l)`` (derived by shifting the level-0 coalesce)
  equals coalescing the shifted values from scratch;
* the fused flat scatter-add in ``HashSketch._apply_point_masses`` (and
  the precompute-table lookup path) equals the straightforward
  one-bincount-per-table kernel it replaced.

Weights are drawn from dyadic rationals so every grouping order sums
bit-identically and the assertions can use exact equality.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.hashing.bulk import BulkHashCache, coalesce_updates
from repro.sketches.hash_sketch import HashSketchSchema

DOMAIN = 1 << 8

updates_strategy = st.lists(
    st.tuples(
        st.integers(0, DOMAIN - 1),
        st.sampled_from([-2.0, -1.0, -0.5, 0.5, 1.0, 2.0]),
    ),
    min_size=1,
    max_size=80,
)


def split(updates):
    values = np.asarray([v for v, _ in updates], dtype=np.int64)
    weights = np.asarray([w for _, w in updates], dtype=np.float64)
    return values, weights


def reference_apply(schema, values, weights):
    """The pre-fusion kernel: one bincount per hash table."""
    counters = np.zeros((schema.depth, schema.width), dtype=np.float64)
    buckets = schema.buckets.buckets(values)
    signs = schema.signs.signs(values)
    for row in range(schema.depth):
        counters[row] += np.bincount(
            buckets[row], weights=signs[row] * weights, minlength=schema.width
        )
    return counters


class TestCoalesce:
    @given(updates=updates_strategy)
    @settings(max_examples=60, deadline=None)
    def test_masses_are_grouped_sums(self, updates):
        values, weights = split(updates)
        uniques, masses = coalesce_updates(values, weights)
        assert np.array_equal(uniques, np.unique(values))
        for value, mass in zip(uniques, masses):
            assert mass == weights[values == value].sum()

    def test_default_weights_count_occurrences(self):
        uniques, masses = coalesce_updates(np.asarray([3, 3, 3, 9], dtype=np.int64))
        assert uniques.tolist() == [3, 9]
        assert masses.tolist() == [3.0, 1.0]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            coalesce_updates(
                np.arange(4, dtype=np.int64), np.ones(3, dtype=np.float64)
            )


class TestBulkHashCache:
    @given(updates=updates_strategy, level=st.integers(0, 8))
    @settings(max_examples=60, deadline=None)
    def test_level_shift_equals_direct_coalesce(self, updates, level):
        values, weights = split(updates)
        cache = BulkHashCache(values, weights)
        level_values, level_masses = cache.level(level)
        direct_values, direct_masses = coalesce_updates(values >> level, weights)
        assert np.array_equal(level_values, direct_values)
        assert np.array_equal(level_masses, direct_masses)

    @given(updates=updates_strategy)
    @settings(max_examples=30, deadline=None)
    def test_stats_match_raw_batch(self, updates):
        values, weights = split(updates)
        cache = BulkHashCache(values, weights)
        assert cache.num_elements == values.size
        assert cache.num_deletions == int((weights < 0).sum())
        assert cache.total_absolute_mass == float(np.abs(weights).sum())


class TestFusedKernel:
    @given(updates=updates_strategy, seed=st.integers(0, 5))
    @settings(max_examples=60, deadline=None)
    def test_fused_equals_per_table_reference(self, updates, seed):
        values, weights = split(updates)
        schema = HashSketchSchema(32, 5, DOMAIN, seed=seed)
        sketch = schema.create_sketch()
        sketch.update_bulk(values, weights)
        assert np.array_equal(
            sketch.counters, reference_apply(schema, values, weights)
        )

    @given(updates=updates_strategy, seed=st.integers(0, 5))
    @settings(max_examples=40, deadline=None)
    def test_precomputed_tables_change_nothing(self, updates, seed):
        values, weights = split(updates)
        plain = HashSketchSchema(32, 5, DOMAIN, seed=seed)
        tabled = HashSketchSchema(32, 5, DOMAIN, seed=seed)
        tabled.precompute()
        assert tabled.precomputed
        plain_sketch = plain.create_sketch()
        tabled_sketch = tabled.create_sketch()
        plain_sketch.update_bulk(values, weights)
        tabled_sketch.update_bulk(values, weights)
        assert np.array_equal(plain_sketch.counters, tabled_sketch.counters)
        probe = np.unique(values)
        assert np.array_equal(
            plain_sketch.point_estimates(probe), tabled_sketch.point_estimates(probe)
        )

    def test_update_coalesced_tracks_observed_mass(self):
        schema = HashSketchSchema(32, 3, DOMAIN, seed=0)
        sketch = schema.create_sketch()
        values = np.asarray([1, 2], dtype=np.int64)
        masses = np.asarray([3.0, -1.0], dtype=np.float64)
        sketch.update_coalesced(values, masses)
        assert sketch.absolute_mass == 4.0
        sketch.update_coalesced(values, masses, observed_mass=10.0)
        assert sketch.absolute_mass == 14.0
        sketch.update_coalesced(values, -masses, 0.0)  # exact subtraction
        assert sketch.absolute_mass == 14.0
