"""Tests for the comparator estimators (exact, sampling, bifocal, partitioned)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.bifocal import BifocalEstimator
from repro.baselines.exact import (
    exact_join_size,
    exact_self_join_size,
    exact_sub_join_sizes,
    exact_top_k,
)
from repro.baselines.partitioned import (
    PartitionedAGMSSchema,
    plan_partitions,
)
from repro.baselines.sampling import ReservoirSample, sample_join_estimate
from repro.errors import DeletionUnsupportedError, IncompatibleSketchError
from repro.streams.generators import shifted_zipf_pair, zipf_frequencies
from repro.streams.model import FrequencyVector

DOMAIN = 1 << 10


class TestExact:
    def test_join_and_self_join(self):
        f = FrequencyVector(np.asarray([1.0, 2.0, 3.0]))
        g = FrequencyVector(np.asarray([4.0, 5.0, 6.0]))
        assert exact_join_size(f, g) == 32.0
        assert exact_self_join_size(f) == 14.0

    def test_sub_join_decomposition_sums_to_join(self):
        f, g = shifted_zipf_pair(DOMAIN, 20_000, 1.2, 10)
        parts = exact_sub_join_sizes(f, g, 50.0, 40.0)
        assert sum(parts.values()) == pytest.approx(f.join_size(g))

    def test_sub_join_all_dense_when_threshold_zero_ish(self):
        f, g = shifted_zipf_pair(DOMAIN, 5_000, 1.0, 5)
        parts = exact_sub_join_sizes(f, g, 1e-9, 1e-9)
        assert parts["dense_dense"] == pytest.approx(f.join_size(g))

    def test_top_k(self):
        f = FrequencyVector(np.asarray([5.0, 0.0, 9.0, 1.0]))
        assert exact_top_k(f, 2) == [(2, 9.0), (0, 5.0)]
        assert exact_top_k(f, 10) == [(2, 9.0), (0, 5.0), (3, 1.0)]


class TestReservoirSample:
    def test_holds_at_most_capacity(self):
        sample = ReservoirSample(10, DOMAIN, seed=0)
        for value in range(100):
            sample.update(value % DOMAIN)
        assert len(sample.sample) == 10
        assert sample.stream_size == 100

    def test_small_stream_kept_entirely(self):
        sample = ReservoirSample(10, DOMAIN, seed=1)
        for value in (1, 2, 3):
            sample.update(value)
        assert sorted(sample.sample) == [1, 2, 3]

    def test_deletions_rejected(self):
        """The paper's §1 point: samples cannot survive deletes."""
        sample = ReservoirSample(5, DOMAIN, seed=2)
        with pytest.raises(DeletionUnsupportedError):
            sample.update(1, -1.0)
        with pytest.raises(DeletionUnsupportedError):
            sample.update_bulk(np.asarray([1]), np.asarray([2.0]))

    def test_roughly_uniform(self):
        """Each element keeps ~capacity/n inclusion probability."""
        hits = np.zeros(100)
        for seed in range(300):
            sample = ReservoirSample(10, DOMAIN, seed=seed)
            for value in range(100):
                sample.update(value)
            for value in sample.sample:
                hits[value] += 1
        # Expected 30 hits per position over 300 runs.
        assert hits.min() > 10
        assert hits.max() < 60

    def test_join_estimate_on_identical_streams(self):
        a = ReservoirSample(50, DOMAIN, seed=3)
        b = ReservoirSample(50, DOMAIN, seed=4)
        for _ in range(200):
            a.update(7)
            b.update(7)
        assert a.est_join_size(b) == pytest.approx(200.0 * 200.0)

    def test_join_estimate_empty(self):
        a = ReservoirSample(5, DOMAIN, seed=5)
        b = ReservoirSample(5, DOMAIN, seed=6)
        assert a.est_join_size(b) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ReservoirSample(0, DOMAIN)
        with pytest.raises(TypeError):
            ReservoirSample(5, DOMAIN).est_join_size("x")  # type: ignore[arg-type]


class TestSampleJoinEstimate:
    def test_unbiased_over_many_draws(self):
        f, g = shifted_zipf_pair(DOMAIN, 10_000, 1.0, 3)
        actual = f.join_size(g)
        rng = np.random.default_rng(7)
        estimates = [
            sample_join_estimate(f.counts, g.counts, 500, rng) for _ in range(300)
        ]
        assert np.mean(estimates) == pytest.approx(actual, rel=0.25)

    def test_empty_stream(self):
        rng = np.random.default_rng(0)
        assert sample_join_estimate(np.zeros(4), np.ones(4), 10, rng) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_join_estimate(np.ones(4), np.ones(4), 0, np.random.default_rng(0))


class TestBifocal:
    def test_validation(self):
        with pytest.raises(ValueError):
            BifocalEstimator(0)
        with pytest.raises(ValueError):
            BifocalEstimator(10, dense_sample_count=0)

    def test_accurate_on_skewed_data(self):
        """With index access (its assumption), bifocal is quite accurate."""
        f, g = shifted_zipf_pair(DOMAIN, 50_000, 1.2, 10)
        actual = f.join_size(g)
        estimator = BifocalEstimator(sample_size=2_000)
        estimates = [
            estimator.estimate(f, g, np.random.default_rng(seed))
            for seed in range(5)
        ]
        assert np.mean(estimates) == pytest.approx(actual, rel=0.3)

    def test_empty_streams(self):
        empty = FrequencyVector.zeros(DOMAIN)
        estimator = BifocalEstimator(10)
        assert estimator.estimate(empty, empty, np.random.default_rng(0)) == 0.0

    def test_size_accounting(self):
        assert BifocalEstimator(123).size_in_counters() == 123


class TestPartitionedAGMS:
    def test_plan_covers_domain(self):
        f, g = shifted_zipf_pair(DOMAIN, 10_000, 1.0, 5)
        plan = plan_partitions(f, g, num_partitions=4, averaging_budget=64)
        assert plan.assignment.size == DOMAIN
        assert set(np.unique(plan.assignment)) <= set(range(plan.num_partitions))
        assert sum(plan.averaging) == 64
        assert min(plan.averaging) >= 1

    def test_plan_validation(self):
        f, g = shifted_zipf_pair(DOMAIN, 1_000, 1.0, 0)
        with pytest.raises(ValueError):
            plan_partitions(f, g, 0, 10)
        with pytest.raises(ValueError):
            plan_partitions(f, g, 8, 4)
        h = zipf_frequencies(DOMAIN // 2, 100, 1.0)
        with pytest.raises(ValueError):
            plan_partitions(f, h, 2, 10)

    def test_estimates_join(self):
        f, g = shifted_zipf_pair(DOMAIN, 50_000, 1.0, 10)
        actual = f.join_size(g)
        plan = plan_partitions(f, g, num_partitions=8, averaging_budget=128)
        schema = PartitionedAGMSSchema(plan, median=7, seed=0)
        estimate = schema.sketch_of(f).est_join_size(schema.sketch_of(g))
        assert estimate == pytest.approx(actual, rel=0.4)

    def test_good_hints_beat_bad_hints(self):
        """The paper's criticism: quality depends on a-priori statistics."""
        f, g = shifted_zipf_pair(DOMAIN, 50_000, 1.2, 10)
        actual = f.join_size(g)
        uniform = FrequencyVector(
            np.full(DOMAIN, f.total_count() / DOMAIN)
        )

        def mean_error(hint_f, hint_g):
            errors = []
            for seed in range(3):
                plan = plan_partitions(hint_f, hint_g, 8, 128)
                schema = PartitionedAGMSSchema(plan, median=7, seed=seed)
                est = schema.sketch_of(f).est_join_size(schema.sketch_of(g))
                errors.append(abs(est - actual) / actual)
            return np.mean(errors)

        assert mean_error(f, g) < mean_error(uniform, uniform)

    def test_mismatched_schemas_rejected(self):
        f, g = shifted_zipf_pair(DOMAIN, 5_000, 1.0, 2)
        plan = plan_partitions(f, g, 4, 32)
        a = PartitionedAGMSSchema(plan, median=3, seed=0)
        b = PartitionedAGMSSchema(plan, median=3, seed=1)
        with pytest.raises(IncompatibleSketchError):
            a.sketch_of(f).est_join_size(b.sketch_of(g))

    def test_update_routing(self):
        f, g = shifted_zipf_pair(DOMAIN, 5_000, 1.0, 2)
        plan = plan_partitions(f, g, 4, 32)
        schema = PartitionedAGMSSchema(plan, median=3, seed=2)
        by_bulk = schema.sketch_of(f)
        by_element = schema.create_sketch()
        for value, count in f.nonzero_items():
            for _ in range(int(count)):
                by_element.update(value)
        assert by_bulk.est_join_size(schema.sketch_of(g)) == pytest.approx(
            by_element.est_join_size(schema.sketch_of(g))
        )

    def test_size_accounting(self):
        f, g = shifted_zipf_pair(DOMAIN, 5_000, 1.0, 2)
        plan = plan_partitions(f, g, 4, 32)
        schema = PartitionedAGMSSchema(plan, median=3, seed=3)
        assert schema.create_sketch().size_in_counters() == 32 * 3
