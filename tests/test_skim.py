"""Tests for SKIMDENSE (flat and dyadic) — Figure 3, Theorems 3-4."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.skim import (
    SkimResult,
    default_threshold,
    skim_dense,
    skim_dense_dyadic,
)
from repro.sketches.dyadic import DyadicSketchSchema
from repro.sketches.hash_sketch import HashSketchSchema
from repro.streams.generators import zipf_frequencies
from repro.streams.model import FrequencyVector

DOMAIN = 1 << 10  # 1024


def planted_vector(heavy: dict[int, float], tail_seed: int = 0) -> FrequencyVector:
    counts = np.zeros(DOMAIN)
    for value, freq in heavy.items():
        counts[value] = freq
    rng = np.random.default_rng(tail_seed)
    tail = rng.choice(DOMAIN, 200, replace=False)
    counts[tail] += 1.0
    return FrequencyVector(counts)


class TestDefaultThreshold:
    def test_formula(self):
        schema = HashSketchSchema(100, 3, DOMAIN, seed=0)
        sketch = schema.create_sketch()
        sketch.update_bulk(np.asarray([1] * 500))
        assert default_threshold(sketch) == pytest.approx(500 / 10.0)

    def test_multiplier(self):
        schema = HashSketchSchema(100, 3, DOMAIN, seed=0)
        sketch = schema.create_sketch()
        sketch.update(1, 100.0)
        assert default_threshold(sketch, 2.0) == pytest.approx(20.0)

    def test_empty_sketch_is_infinite(self):
        schema = HashSketchSchema(100, 3, DOMAIN, seed=0)
        assert default_threshold(schema.create_sketch()) == float("inf")

    def test_rejects_bad_multiplier(self):
        schema = HashSketchSchema(100, 3, DOMAIN, seed=0)
        with pytest.raises(ValueError):
            default_threshold(schema.create_sketch(), 0.0)


class TestSkimResult:
    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            SkimResult(np.asarray([1, 2]), np.asarray([1.0]), 1.0)

    def test_helpers(self):
        result = SkimResult(
            np.asarray([3, 9]), np.asarray([10.0, 20.0]), threshold=5.0
        )
        assert result.dense_count == 2
        assert result.dense_mass() == 30.0
        assert result.frequency_of(9) == 20.0
        assert result.frequency_of(4) == 0.0
        vec = result.as_frequency_vector(16)
        assert vec[3] == 10.0 and vec[9] == 20.0


class TestSkimDenseFlat:
    def test_extracts_planted_dense_values(self):
        freqs = planted_vector({10: 400.0, 500: 300.0, 900: 250.0})
        schema = HashSketchSchema(128, 7, DOMAIN, seed=1)
        sketch = schema.sketch_of(freqs)
        result, skimmed = skim_dense(sketch, threshold=100.0)
        assert {10, 500, 900} <= set(result.dense_values.tolist())
        for value, freq in ((10, 400.0), (500, 300.0), (900, 250.0)):
            assert result.frequency_of(value) == pytest.approx(freq, rel=0.15)

    def test_residual_sketch_equals_sketch_of_residual_vector(self):
        """Skimming is exact linear subtraction (Steps 8-9 of Fig. 3)."""
        freqs = planted_vector({5: 200.0, 50: 150.0})
        schema = HashSketchSchema(128, 5, DOMAIN, seed=2)
        sketch = schema.sketch_of(freqs)
        result, skimmed = skim_dense(sketch, threshold=80.0)
        residual = freqs.copy()
        residual.apply_bulk(result.dense_values, -result.dense_frequencies)
        reference = schema.sketch_of(residual)
        assert np.allclose(skimmed.counters, reference.counters)

    def test_residual_frequencies_bounded(self):
        """Theorem 4: after skimming, residuals stay below ~2*threshold."""
        freqs = zipf_frequencies(DOMAIN, 50_000, 1.2)
        schema = HashSketchSchema(256, 7, DOMAIN, seed=3)
        sketch = schema.sketch_of(freqs)
        threshold = default_threshold(sketch)
        result, skimmed = skim_dense(sketch)
        residual = freqs.copy()
        residual.apply_bulk(result.dense_values, -result.dense_frequencies)
        assert np.abs(residual.counts).max() <= 2.0 * threshold

    def test_default_threshold_used(self):
        freqs = zipf_frequencies(DOMAIN, 50_000, 1.2)
        schema = HashSketchSchema(256, 7, DOMAIN, seed=4)
        sketch = schema.sketch_of(freqs)
        result, _ = skim_dense(sketch)
        assert result.threshold == pytest.approx(default_threshold(sketch))

    def test_not_in_place_by_default(self):
        freqs = planted_vector({10: 300.0})
        schema = HashSketchSchema(64, 5, DOMAIN, seed=5)
        sketch = schema.sketch_of(freqs)
        before = sketch.counters.copy()
        skim_dense(sketch, threshold=100.0)
        assert np.array_equal(sketch.counters, before)

    def test_in_place(self):
        freqs = planted_vector({10: 300.0})
        schema = HashSketchSchema(64, 5, DOMAIN, seed=6)
        sketch = schema.sketch_of(freqs)
        before = sketch.counters.copy()
        _, skimmed = skim_dense(sketch, threshold=100.0, in_place=True)
        assert skimmed is sketch
        assert not np.array_equal(sketch.counters, before)

    def test_empty_sketch_skims_nothing(self):
        schema = HashSketchSchema(64, 5, DOMAIN, seed=7)
        result, skimmed = skim_dense(schema.create_sketch())
        assert result.dense_count == 0

    def test_rejects_non_positive_threshold(self):
        schema = HashSketchSchema(64, 5, DOMAIN, seed=8)
        with pytest.raises(ValueError):
            skim_dense(schema.create_sketch(), threshold=-1.0)

    def test_nothing_dense_below_threshold(self):
        freqs = planted_vector({})
        schema = HashSketchSchema(128, 5, DOMAIN, seed=9)
        sketch = schema.sketch_of(freqs)
        result, skimmed = skim_dense(sketch, threshold=50.0)
        assert result.dense_count == 0
        assert np.allclose(skimmed.counters, sketch.counters)


class TestSkimDenseDyadic:
    def test_matches_flat_skim_on_planted_data(self):
        freqs = planted_vector({12: 400.0, 700: 350.0})
        schema = DyadicSketchSchema(128, 7, DOMAIN, seed=10, coarse_cutoff=32)
        sketch = schema.sketch_of(freqs)
        result, skimmed = skim_dense_dyadic(sketch, threshold=150.0)
        assert set(result.dense_values.tolist()) == {12, 700}
        for value, freq in ((12, 400.0), (700, 350.0)):
            assert result.frequency_of(value) == pytest.approx(freq, rel=0.15)

    def test_residual_levels_consistent(self):
        """After skimming, every level equals the residual vector's sketch."""
        freqs = planted_vector({100: 500.0})
        schema = DyadicSketchSchema(128, 5, DOMAIN, seed=11, coarse_cutoff=32)
        sketch = schema.sketch_of(freqs)
        result, skimmed = skim_dense_dyadic(sketch, threshold=200.0)
        residual = freqs.copy()
        residual.apply_bulk(result.dense_values, -result.dense_frequencies)
        reference = schema.sketch_of(residual)
        for level in range(schema.num_levels):
            assert np.allclose(
                skimmed.level_sketch(level).counters,
                reference.level_sketch(level).counters,
            )

    def test_default_threshold(self):
        freqs = zipf_frequencies(DOMAIN, 20_000, 1.3)
        schema = DyadicSketchSchema(128, 5, DOMAIN, seed=12, coarse_cutoff=32)
        sketch = schema.sketch_of(freqs)
        result, _ = skim_dense_dyadic(sketch)
        assert result.threshold == pytest.approx(
            default_threshold(sketch.base_sketch)
        )

    def test_empty_hierarchy(self):
        schema = DyadicSketchSchema(64, 3, DOMAIN, seed=13)
        result, _ = skim_dense_dyadic(schema.create_sketch())
        assert result.dense_count == 0

    def test_in_place_flag(self):
        freqs = planted_vector({10: 300.0})
        schema = DyadicSketchSchema(64, 5, DOMAIN, seed=14)
        sketch = schema.sketch_of(freqs)
        _, skimmed = skim_dense_dyadic(sketch, threshold=100.0, in_place=True)
        assert skimmed is sketch
