"""Property-based tests for the extension modules (windows, Space-Saving,
dyadic ranges, serialization, multi-join linearity)."""

from __future__ import annotations

import io

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import load_sketch, save_sketch
from repro.sketches.dyadic import DyadicSketchSchema
from repro.sketches.hash_sketch import HashSketchSchema
from repro.sketches.spacesaving import SpaceSaving
from repro.streams.multijoin import MultiJoinSchema
from repro.streams.windows import WindowedSketchSchema

DOMAIN = 64

values_strategy = st.lists(st.integers(0, DOMAIN - 1), max_size=80)
epochs_strategy = st.lists(
    st.lists(st.integers(0, DOMAIN - 1), max_size=20), min_size=1, max_size=6
)


@given(epochs=epochs_strategy, window=st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_window_equals_sketch_of_recent_epochs(epochs, window):
    """For any epoch layout, the window sketch equals an ordinary sketch fed
    exactly the last ``window`` epochs' elements."""
    schema = WindowedSketchSchema(16, 3, DOMAIN, window_epochs=window, seed=0)
    sketch = schema.create_sketch()
    for i, epoch_values in enumerate(epochs):
        if i > 0:
            sketch.advance_epoch()
        for value in epoch_values:
            sketch.update(value)
    reference = schema.inner.create_sketch()
    for epoch_values in epochs[-window:]:
        for value in epoch_values:
            reference.update(value)
    assert np.allclose(sketch.window_sketch().counters, reference.counters)


@given(values=values_strategy, capacity=st.integers(1, 16))
@settings(max_examples=50, deadline=None)
def test_spacesaving_invariants(values, capacity):
    """Counts are upper bounds; total count mass equals the stream size;
    at most ``capacity`` values are tracked."""
    summary = SpaceSaving(capacity, DOMAIN)
    true_counts = np.zeros(DOMAIN)
    for value in values:
        summary.update(value)
        true_counts[value] += 1
    tracked = summary.tracked()
    assert len(tracked) <= capacity
    for entry in tracked:
        assert entry.count >= true_counts[entry.value] - 1e-9
        assert entry.guaranteed <= true_counts[entry.value] + 1e-9
    # Space-Saving conserves mass: counts sum exactly to N.
    assert sum(t.count for t in tracked) == len(values)


@given(
    values=values_strategy,
    low=st.integers(0, DOMAIN - 1),
    length=st.integers(1, DOMAIN),
)
@settings(max_examples=40, deadline=None)
def test_dyadic_range_covers_each_value_once(values, low, length):
    """With a single occupied value, a range estimate is its frequency if
    covered and ~0 otherwise (the decomposition neither misses nor
    double-counts)."""
    high = min(DOMAIN, low + length)
    schema = DyadicSketchSchema(64, 5, DOMAIN, seed=1, coarse_cutoff=8)
    sketch = schema.create_sketch()
    if not values:
        return
    target = values[0]
    sketch.update(target, 10.0)
    estimate = sketch.range_estimate(low, high)
    expected = 10.0 if low <= target < high else 0.0
    assert abs(estimate - expected) < 1.0


@given(values=values_strategy)
@settings(max_examples=30, deadline=None)
def test_serialization_round_trip_property(values):
    schema = HashSketchSchema(16, 3, DOMAIN, seed=2)
    sketch = schema.create_sketch()
    for value in values:
        sketch.update(value)
    buffer = io.BytesIO()
    save_sketch(sketch, buffer)
    buffer.seek(0)
    restored = load_sketch(buffer)
    assert np.array_equal(restored.counters, sketch.counters)
    assert restored.absolute_mass == sketch.absolute_mass


@given(
    tuples=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=40
    )
)
@settings(max_examples=30, deadline=None)
def test_multijoin_relation_sketch_linearity(tuples):
    """Feeding tuples then their deletions zeroes the relation sketch."""
    schema = MultiJoinSchema(4, 3, {"a": 16, "b": 16}, seed=3)
    relation = schema.create_relation(("a", "b"))
    for row in tuples:
        relation.update(row)
    for row in tuples:
        relation.update(row, -1.0)
    assert np.allclose(relation.atomic_sketches, 0.0)
