"""Tests for the deterministic Space-Saving frequent-elements summary."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DeletionUnsupportedError, DomainError
from repro.sketches.spacesaving import SpaceSaving
from repro.streams.generators import zipf_frequencies
from repro.streams.model import iter_stream

DOMAIN = 1 << 10


class TestBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            SpaceSaving(0, DOMAIN)
        with pytest.raises(ValueError):
            SpaceSaving(4, 0)

    def test_small_stream_exact(self):
        summary = SpaceSaving(8, DOMAIN)
        for value in (1, 1, 1, 2, 2, 3):
            summary.update(value)
        tracked = {t.value: t for t in summary.tracked()}
        assert tracked[1].count == 3 and tracked[1].error == 0.0
        assert tracked[2].count == 2
        assert summary.estimate(3) == 1.0
        assert summary.estimate(99) == 0.0

    def test_deletions_rejected(self):
        summary = SpaceSaving(4, DOMAIN)
        with pytest.raises(DeletionUnsupportedError):
            summary.update(1, -1.0)

    def test_domain_check(self):
        summary = SpaceSaving(4, DOMAIN)
        with pytest.raises(DomainError):
            summary.update(DOMAIN)

    def test_capacity_respected(self):
        summary = SpaceSaving(4, DOMAIN)
        for value in range(100):
            summary.update(value)
        assert len(summary.tracked()) == 4
        assert summary.size_in_counters() == 12

    def test_weighted_updates(self):
        summary = SpaceSaving(4, DOMAIN)
        summary.update(5, 10.0)
        summary.update(5, 2.5)
        assert summary.estimate(5) == 12.5
        assert summary.stream_size == 12.5


class TestGuarantees:
    def test_counts_are_upper_bounds(self):
        """estimate(v) >= f(v) for tracked v; error bounds the slack."""
        freqs = zipf_frequencies(DOMAIN, 20_000, 1.1)
        summary = SpaceSaving(64, DOMAIN)
        for update in iter_stream(freqs, np.random.default_rng(0)):
            summary.update(update.value, update.weight)
        for tracked in summary.tracked():
            true = freqs[tracked.value]
            assert tracked.count >= true - 1e-9
            assert tracked.count - tracked.error <= true + 1e-9

    def test_no_false_negatives_above_threshold(self):
        """Every value with f(v) > N/k is tracked (the classic guarantee)."""
        freqs = zipf_frequencies(DOMAIN, 20_000, 1.2)
        capacity = 64
        summary = SpaceSaving(capacity, DOMAIN)
        for update in iter_stream(freqs, np.random.default_rng(1)):
            summary.update(update.value, update.weight)
        threshold = summary.stream_size / capacity
        tracked_values = {t.value for t in summary.tracked()}
        for value, freq in freqs.nonzero_items():
            if freq > threshold:
                assert value in tracked_values

    def test_error_bound_at_most_n_over_k(self):
        freqs = zipf_frequencies(DOMAIN, 10_000, 1.0)
        summary = SpaceSaving(32, DOMAIN)
        for update in iter_stream(freqs, np.random.default_rng(2)):
            summary.update(update.value, update.weight)
        assert summary.error_bound() <= summary.stream_size / 32 + 1e-9

    def test_dense_candidates_superset_of_truth(self):
        freqs = zipf_frequencies(DOMAIN, 20_000, 1.3)
        capacity = 128
        summary = SpaceSaving(capacity, DOMAIN)
        support = freqs.support()
        summary.update_bulk(support, freqs.counts[support])
        threshold = max(200.0, summary.stream_size / capacity)
        candidates = set(summary.dense_candidates(threshold).tolist())
        truly_dense = {
            value for value, freq in freqs.nonzero_items() if freq >= threshold
        }
        assert truly_dense <= candidates

    def test_heavy_hitters_validation(self):
        with pytest.raises(ValueError):
            SpaceSaving(4, DOMAIN).heavy_hitters(0.0)

    def test_bulk_weight_shape_mismatch(self):
        summary = SpaceSaving(4, DOMAIN)
        with pytest.raises(ValueError):
            summary.update_bulk(np.asarray([1, 2]), np.asarray([1.0]))
