"""Smoke tests: the fast example scripts run end to end and talk sense.

The heavyweight examples (network monitoring, telecom SQL) are exercised
manually / in benchmarks; the two quick ones run here so a broken public
API surfaces in the unit suite.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.mark.slow
def test_quickstart_runs():
    out = run_example("quickstart.py")
    assert "skimmed-sketch answer" in out
    assert "sub-join decomposition" in out


@pytest.mark.slow
def test_sensor_window_runs():
    out = run_example("sensor_window.py")
    assert "windowed join estimate" in out
    # The final windowed estimate must have collapsed far below the
    # whole-stream one (the front filled the window).
    lines = [l for l in out.splitlines() if l.strip().startswith("9 ")]
    assert lines, out
    windowed, whole = lines[0].split("|")[1:3]
    assert float(windowed.replace(",", "")) < 0.02 * float(
        whole.replace(",", "")
    )
