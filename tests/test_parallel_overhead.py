"""Guard against the parallel wrapper taxing the parallelism-off path.

With ``workers=1`` a :class:`ShardedIngestor` must be a thin pass-through:
no executor, no partition hashing, no counter copies — just the shard's
own ``update_bulk``.  A 100k-element batch therefore has to run within a
small factor of calling ``update_bulk`` directly.  A regression here
means the 1-worker path grew per-batch Python work it shouldn't have.
"""

from __future__ import annotations

import time

import numpy as np

from repro.obs import METRICS
from repro.parallel import ShardedIngestor
from repro.sketches.hash_sketch import HashSketchSchema

N_ELEMENTS = 100_000
REPEATS = 5
# The wrapper legitimately adds one dtype coercion, the dirty-flag
# bookkeeping and a disabled-metrics branch per *batch*; the budget
# allows for that plus generous CI timing noise.
MAX_FACTOR = 3.0
SLACK_SECONDS = 0.005


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_single_worker_ingest_matches_direct_update_bulk(rng):
    assert not METRICS.enabled  # the conftest fixture guarantees this
    schema = HashSketchSchema(width=256, depth=7, domain_size=1 << 16, seed=1)
    values = rng.integers(0, 1 << 16, size=N_ELEMENTS).astype(np.int64)
    weights = np.ones(N_ELEMENTS)

    direct_sketch = schema.create_sketch()

    def direct():
        direct_sketch.update_bulk(values, weights)

    ingestor = ShardedIngestor(schema, workers=1)

    def wrapped():
        ingestor.ingest(values, weights)

    direct_best = _best_of(REPEATS, direct)
    wrapped_best = _best_of(REPEATS, wrapped)

    budget = direct_best * MAX_FACTOR + SLACK_SECONDS
    assert wrapped_best <= budget, (
        f"1-worker ingest took {wrapped_best:.4f}s vs direct update_bulk "
        f"{direct_best:.4f}s (budget {budget:.4f}s)"
    )
