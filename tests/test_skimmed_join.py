"""Tests for ESTSUBJOINSIZE / ESTSKIMJOINSIZE (Figure 4, Theorem 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.skimmed_join import (
    est_skim_join_size,
    est_sub_join_size,
)
from repro.errors import IncompatibleSketchError
from repro.sketches.agms import AGMSSchema
from repro.sketches.dyadic import DyadicSketchSchema
from repro.sketches.hash_sketch import HashSketchSchema
from repro.streams.generators import shifted_zipf_pair
from repro.streams.model import FrequencyVector

DOMAIN = 1 << 12


class TestEstSubJoinSize:
    def test_exact_for_single_isolated_value(self):
        """With only one value in the sketch, f_hat . C pairing is exact."""
        schema = HashSketchSchema(64, 5, DOMAIN, seed=0)
        sketch = schema.create_sketch()
        sketch.update_bulk(np.asarray([7] * 12))
        estimate = est_sub_join_size(
            np.asarray([7]), np.asarray([30.0]), sketch
        )
        assert estimate == pytest.approx(30.0 * 12.0)

    def test_empty_dense_vector_is_zero(self):
        schema = HashSketchSchema(64, 5, DOMAIN, seed=1)
        assert est_sub_join_size(
            np.zeros(0, np.int64), np.zeros(0), schema.create_sketch()
        ) == 0.0

    def test_shape_mismatch_rejected(self):
        schema = HashSketchSchema(64, 5, DOMAIN, seed=2)
        with pytest.raises(ValueError):
            est_sub_join_size(
                np.asarray([1, 2]), np.asarray([1.0]), schema.create_sketch()
            )

    def test_unbiased_across_schemas(self):
        f_dense_values = np.asarray([3, 10, 100])
        f_dense_freqs = np.asarray([50.0, 40.0, 30.0])
        g = FrequencyVector.from_values([3] * 7 + [100] * 2 + [200] * 5, DOMAIN)
        actual = 50.0 * 7 + 30.0 * 2
        estimates = []
        for seed in range(300):
            schema = HashSketchSchema(16, 1, DOMAIN, seed=seed)
            estimates.append(
                est_sub_join_size(f_dense_values, f_dense_freqs, schema.sketch_of(g))
            )
        assert np.mean(estimates) == pytest.approx(actual, rel=0.25)


class TestEstSkimJoinSize:
    def test_breakdown_sums_to_estimate(self):
        f, g = shifted_zipf_pair(DOMAIN, 50_000, 1.2, 10)
        schema = HashSketchSchema(256, 7, DOMAIN, seed=3)
        breakdown = est_skim_join_size(schema.sketch_of(f), schema.sketch_of(g))
        assert breakdown.estimate == pytest.approx(
            breakdown.dense_dense
            + breakdown.dense_sparse
            + breakdown.sparse_dense
            + breakdown.sparse_sparse
        )

    def test_dense_dense_exact_for_fully_dense_streams(self):
        """When both streams are a few huge values, dd carries ~everything."""
        f = FrequencyVector.zeros(DOMAIN)
        g = FrequencyVector.zeros(DOMAIN)
        f.apply_bulk(np.asarray([1, 2]), np.asarray([1000.0, 800.0]))
        g.apply_bulk(np.asarray([1, 2]), np.asarray([900.0, 700.0]))
        schema = HashSketchSchema(128, 7, DOMAIN, seed=4)
        breakdown = est_skim_join_size(schema.sketch_of(f), schema.sketch_of(g))
        actual = f.join_size(g)
        assert breakdown.dense_dense == pytest.approx(actual, rel=0.05)
        assert breakdown.estimate == pytest.approx(actual, rel=0.1)

    def test_estimate_accuracy_on_skewed_workload(self):
        f, g = shifted_zipf_pair(DOMAIN, 100_000, 1.0, 20)
        actual = f.join_size(g)
        schema = HashSketchSchema(256, 11, DOMAIN, seed=5)
        breakdown = est_skim_join_size(schema.sketch_of(f), schema.sketch_of(g))
        assert breakdown.estimate == pytest.approx(actual, rel=0.15)

    def test_beats_basic_agms_at_equal_space_high_skew(self):
        """The paper's headline: skimming wins by a lot at z = 1.5."""
        f, g = shifted_zipf_pair(DOMAIN, 100_000, 1.5, 5)
        actual = f.join_size(g)
        width, depth = 128, 7
        skim_errors, agms_errors = [], []
        for seed in range(3):
            hash_schema = HashSketchSchema(width, depth, DOMAIN, seed=seed)
            breakdown = est_skim_join_size(
                hash_schema.sketch_of(f), hash_schema.sketch_of(g)
            )
            skim_errors.append(abs(breakdown.estimate - actual) / actual)
            agms_schema = AGMSSchema(width, depth, DOMAIN, seed=seed)
            agms = agms_schema.sketch_of(f).est_join_size(agms_schema.sketch_of(g))
            agms_errors.append(abs(agms - actual) / actual)
        assert np.mean(skim_errors) < np.mean(agms_errors)
        assert np.mean(skim_errors) < 0.1

    def test_custom_thresholds_respected(self):
        f, g = shifted_zipf_pair(DOMAIN, 50_000, 1.2, 10)
        schema = HashSketchSchema(256, 7, DOMAIN, seed=6)
        breakdown = est_skim_join_size(
            schema.sketch_of(f), schema.sketch_of(g), 1e12, 1e12
        )
        # Nothing is dense at an absurd threshold: pure sparse-sparse.
        assert breakdown.f_skim.dense_count == 0
        assert breakdown.dense_dense == 0.0
        assert breakdown.dense_sparse == 0.0

    def test_dyadic_inputs(self):
        f, g = shifted_zipf_pair(DOMAIN, 50_000, 1.2, 10)
        actual = f.join_size(g)
        schema = DyadicSketchSchema(256, 7, DOMAIN, seed=7, coarse_cutoff=64)
        breakdown = est_skim_join_size(schema.sketch_of(f), schema.sketch_of(g))
        assert breakdown.estimate == pytest.approx(actual, rel=0.2)

    def test_mixing_flat_and_dyadic_rejected(self):
        flat = HashSketchSchema(64, 5, DOMAIN, seed=8).create_sketch()
        dyadic = DyadicSketchSchema(64, 5, DOMAIN, seed=8).create_sketch()
        with pytest.raises(IncompatibleSketchError):
            est_skim_join_size(flat, dyadic)
        with pytest.raises(IncompatibleSketchError):
            est_skim_join_size(dyadic, flat)

    def test_inputs_not_mutated(self):
        f, g = shifted_zipf_pair(DOMAIN, 20_000, 1.3, 5)
        schema = HashSketchSchema(128, 5, DOMAIN, seed=9)
        sf, sg = schema.sketch_of(f), schema.sketch_of(g)
        before_f, before_g = sf.counters.copy(), sg.counters.copy()
        est_skim_join_size(sf, sg)
        assert np.array_equal(sf.counters, before_f)
        assert np.array_equal(sg.counters, before_g)

    def test_summary_mentions_all_terms(self):
        f, g = shifted_zipf_pair(DOMAIN, 20_000, 1.3, 5)
        schema = HashSketchSchema(128, 5, DOMAIN, seed=10)
        breakdown = est_skim_join_size(schema.sketch_of(f), schema.sketch_of(g))
        text = breakdown.summary()
        for token in ("dd=", "ds=", "sd=", "ss=", "estimate="):
            assert token in text

    def test_self_join_via_same_stream(self):
        f, _ = shifted_zipf_pair(DOMAIN, 50_000, 1.2, 0)
        actual = f.self_join_size()
        schema = HashSketchSchema(256, 7, DOMAIN, seed=11)
        breakdown = est_skim_join_size(schema.sketch_of(f), schema.sketch_of(f))
        assert breakdown.estimate == pytest.approx(actual, rel=0.15)
