"""Tests for the COUNTSKETCH top-k heavy-hitter tracker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sketches.countsketch import TopKSketch
from repro.sketches.hash_sketch import HashSketchSchema
from repro.streams.generators import zipf_frequencies
from repro.streams.model import iter_stream

DOMAIN = 512


def make_tracker(k=8, width=64, depth=5, seed=0):
    return TopKSketch(HashSketchSchema(width, depth, DOMAIN, seed=seed), k=k)


class TestBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_tracker(k=0)

    def test_single_heavy_value(self):
        tracker = make_tracker(k=1)
        for _ in range(20):
            tracker.update(7)
        tracker.update(3)
        top = tracker.top_k()
        assert top[0][0] == 7
        assert top[0][1] == pytest.approx(20.0, abs=3.0)

    def test_top_k_size_bounded(self):
        tracker = make_tracker(k=3)
        for value in range(50):
            tracker.update(value)
        assert len(tracker.top_k()) <= 3
        assert len(tracker.candidates()) <= 3

    def test_sorted_by_estimate(self):
        tracker = make_tracker(k=4, width=128)
        for value, count in ((1, 30), (2, 20), (3, 10), (4, 5)):
            for _ in range(count):
                tracker.update(value)
        values = [v for v, _ in tracker.top_k()]
        assert values == [1, 2, 3, 4]

    def test_size_accounting(self):
        tracker = make_tracker(k=8, width=64, depth=5)
        assert tracker.size_in_counters() == 64 * 5 + 16
        assert tracker.seed_words() > 0


class TestStreamBehaviour:
    def test_recovers_zipf_heavy_hitters(self):
        freqs = zipf_frequencies(DOMAIN, 20_000, 1.3)
        tracker = make_tracker(k=8, width=256, depth=5, seed=3)
        tracker.ingest_frequency_vector(freqs)
        assert tracker.recall_against(freqs) >= 0.75

    def test_update_bulk_covers_same_candidates(self):
        freqs = zipf_frequencies(DOMAIN, 5_000, 1.5)
        stream = list(iter_stream(freqs, np.random.default_rng(0)))
        values = np.asarray([u.value for u in stream])

        by_element = make_tracker(k=5, width=256, depth=5, seed=4)
        for update in stream:
            by_element.update(update.value, update.weight)
        by_bulk = make_tracker(k=5, width=256, depth=5, seed=4)
        by_bulk.update_bulk(values)

        top_element = {v for v, _ in by_element.top_k()}
        top_bulk = {v for v, _ in by_bulk.top_k()}
        # Same sketch state; candidate sets may differ slightly in ties but
        # the dominant heavy hitters must agree.
        assert len(top_element & top_bulk) >= 4

    def test_deletion_demotes_value(self):
        tracker = make_tracker(k=2, width=128, depth=5, seed=5)
        for _ in range(30):
            tracker.update(1)
        for _ in range(10):
            tracker.update(2)
        for _ in range(25):
            tracker.update(1, -1.0)  # 1 drops to frequency 5
        for _ in range(12):
            tracker.update(3)
        top_values = [v for v, _ in tracker.top_k()]
        assert top_values[0] in (2, 3)

    def test_empty_bulk_is_noop(self):
        tracker = make_tracker()
        tracker.update_bulk(np.zeros(0, dtype=np.int64))
        assert tracker.top_k() == []

    def test_recall_of_empty_truth_is_one(self):
        from repro.streams.model import FrequencyVector

        tracker = make_tracker()
        assert tracker.recall_against(FrequencyVector.zeros(DOMAIN)) == 1.0


class TestHeapRobustness:
    def test_many_updates_keep_floor_consistent(self):
        """Stale heap entries must never evict a live larger candidate."""
        tracker = make_tracker(k=4, width=256, depth=5, seed=6)
        rng = np.random.default_rng(7)
        heavy = [1, 2, 3, 4]
        for _ in range(400):
            value = int(rng.choice(heavy)) if rng.random() < 0.8 else int(
                rng.integers(10, DOMAIN)
            )
            tracker.update(value)
        top_values = {v for v, _ in tracker.top_k()}
        assert set(heavy) == top_values
