"""Property-based tests for the SQL front-end (generated queries parse)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.streams.query import (
    JoinAverageQuery,
    JoinCountQuery,
    JoinSumQuery,
    MultiJoinCountQuery,
    SelfJoinQuery,
)
from repro.streams.sql import parse_query

names = st.from_regex(r"[a-z][a-z_0-9]{0,8}", fullmatch=True).filter(
    lambda s: s.upper()
    not in ("SELECT", "FROM", "JOIN", "WHERE", "AND", "COUNT", "SUM", "AVG", "FREQ")
)


@given(left=names, right=names)
@settings(max_examples=60, deadline=None)
def test_generated_count_queries_parse(left, right):
    parsed = parse_query(f"SELECT COUNT(*) FROM {left} JOIN {right}")
    if left == right:
        assert parsed.query == SelfJoinQuery(left)
    else:
        assert parsed.query == JoinCountQuery(left, right)


@given(left=names, right=names, measure=names, agg=st.sampled_from(["SUM", "AVG"]))
@settings(max_examples=60, deadline=None)
def test_generated_aggregate_queries_parse(left, right, measure, agg):
    parsed = parse_query(f"SELECT {agg}({measure}) FROM {left} JOIN {right}")
    expected_type = JoinSumQuery if agg == "SUM" else JoinAverageQuery
    assert isinstance(parsed.query, expected_type)
    assert parsed.query.measure_stream == measure


@given(sources=st.lists(names, min_size=3, max_size=6, unique=True))
@settings(max_examples=40, deadline=None)
def test_generated_multijoin_queries_parse(sources):
    text = "SELECT COUNT(*) FROM " + " JOIN ".join(sources)
    parsed = parse_query(text)
    assert parsed.query == MultiJoinCountQuery(relations=tuple(sources))


@given(
    name=names,
    low=st.integers(0, 1000),
    span=st.integers(1, 1000),
)
@settings(max_examples=60, deadline=None)
def test_generated_range_predicates_accept_exactly_the_range(name, low, span):
    high = low + span
    parsed = parse_query(
        f"SELECT COUNT(*) FROM {name} JOIN other_s "
        f"WHERE {name} >= {low} AND {name} < {high}"
    )
    predicate = parsed.predicates[name]
    assert predicate.accepts(low)
    assert predicate.accepts(high - 1)
    assert not predicate.accepts(high)
    if low > 0:
        assert not predicate.accepts(low - 1)


@given(garbage=st.text(alphabet="()*<>=!@#$%", min_size=1, max_size=10))
@settings(max_examples=40, deadline=None)
def test_garbage_never_crashes_with_non_query_errors(garbage):
    with pytest.raises(QueryError):
        parse_query(f"SELECT COUNT(*) FROM a JOIN b {garbage}")
