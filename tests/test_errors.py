"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import (
    DeletionUnsupportedError,
    DomainError,
    IncompatibleSketchError,
    QueryError,
    ReproError,
)


@pytest.mark.parametrize(
    "exc",
    [DeletionUnsupportedError, DomainError, IncompatibleSketchError, QueryError],
)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)
    with pytest.raises(ReproError):
        raise exc("boom")


def test_repro_error_is_an_exception():
    assert issubclass(ReproError, Exception)


def test_catchable_at_api_boundary():
    """One except clause suffices for all library errors."""
    from repro.sketches.hash_sketch import HashSketchSchema

    schema = HashSketchSchema(4, 3, 8, seed=0)
    sketch = schema.create_sketch()
    try:
        sketch.update(100)
    except ReproError as error:
        assert isinstance(error, DomainError)
    else:
        pytest.fail("expected a ReproError")
