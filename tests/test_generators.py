"""Tests for the workload generators (§5.1 data sets)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streams.generators import (
    census_like_pair,
    element_stream,
    insert_delete_stream,
    shifted_frequencies,
    shifted_zipf_pair,
    uniform_frequencies,
    zipf_frequencies,
    zipf_probabilities,
)
from repro.streams.model import FrequencyVector, Update
from repro.streams.query import (
    FunctionPredicate,
    InSetPredicate,
    ModuloPredicate,
    RangePredicate,
    TruePredicate,
)

DOMAIN = 1024


class TestZipfProbabilities:
    def test_normalised(self):
        pmf = zipf_probabilities(DOMAIN, 1.1)
        assert pmf.sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        pmf = zipf_probabilities(DOMAIN, 1.0)
        assert (np.diff(pmf) <= 0).all()

    def test_zero_parameter_is_uniform(self):
        pmf = zipf_probabilities(8, 0.0)
        assert np.allclose(pmf, 1 / 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_probabilities(0, 1.0)
        with pytest.raises(ValueError):
            zipf_probabilities(8, -1.0)


class TestZipfFrequencies:
    def test_deterministic_total_exact(self):
        freqs = zipf_frequencies(DOMAIN, 12_345, 1.0)
        assert freqs.total_count() == 12_345

    def test_sampled_total_exact(self):
        freqs = zipf_frequencies(DOMAIN, 9_999, 1.0, np.random.default_rng(0))
        assert freqs.total_count() == 9_999

    def test_skew_grows_with_z(self):
        mild = zipf_frequencies(DOMAIN, 100_000, 0.5)
        steep = zipf_frequencies(DOMAIN, 100_000, 1.5)
        assert steep.self_join_size() > mild.self_join_size()

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_frequencies(DOMAIN, -1, 1.0)

    def test_sampled_is_reproducible(self):
        a = zipf_frequencies(DOMAIN, 5000, 1.0, np.random.default_rng(3))
        b = zipf_frequencies(DOMAIN, 5000, 1.0, np.random.default_rng(3))
        assert a == b


class TestShifted:
    def test_cyclic_shift_preserves_counts(self):
        base = zipf_frequencies(DOMAIN, 10_000, 1.0)
        shifted = shifted_frequencies(base, 100)
        assert shifted.total_count() == base.total_count()
        assert shifted[100] == base[0]
        assert shifted[0] == base[DOMAIN - 100]

    def test_shift_zero_is_identity(self):
        base = zipf_frequencies(DOMAIN, 10_000, 1.0)
        assert shifted_frequencies(base, 0) == base

    def test_negative_shift_rejected(self):
        base = zipf_frequencies(DOMAIN, 1_000, 1.0)
        with pytest.raises(ValueError):
            shifted_frequencies(base, -1)

    def test_join_size_decreases_with_shift(self):
        """The paper's knob: larger shift => smaller join (§5.1)."""
        joins = []
        for shift in (0, 10, 100):
            f, g = shifted_zipf_pair(DOMAIN, 100_000, 1.0, shift)
            joins.append(f.join_size(g))
        assert joins[0] > joins[1] > joins[2]

    def test_pair_with_rng_draws_independent_streams(self):
        f, g = shifted_zipf_pair(DOMAIN, 10_000, 1.0, 0, np.random.default_rng(0))
        assert f != g  # independent draws even at shift 0


class TestCensusLike:
    def test_record_count_and_domain(self):
        wage, overtime = census_like_pair(num_records=10_000, domain_size=1 << 16)
        assert wage.total_count() == 10_000
        assert overtime.total_count() == 10_000
        assert wage.domain_size == 1 << 16

    def test_overtime_mostly_zero(self):
        wage, overtime = census_like_pair(num_records=10_000, seed=1)
        assert overtime[0] > 0.5 * overtime.total_count()

    def test_wage_skewed(self):
        wage, _ = census_like_pair(num_records=20_000, seed=2)
        # Skew: the self-join size far exceeds the uniform baseline N^2/D.
        uniform_f2 = wage.total_count() ** 2 / wage.domain_size
        assert wage.self_join_size() > 20 * uniform_f2

    def test_join_is_nonzero(self):
        wage, overtime = census_like_pair(num_records=30_000, seed=3)
        assert wage.join_size(overtime) > 0

    def test_deterministic_given_seed(self):
        a = census_like_pair(num_records=1000, seed=9)
        b = census_like_pair(num_records=1000, seed=9)
        assert a[0] == b[0] and a[1] == b[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            census_like_pair(num_records=0)


class TestElementStreams:
    def test_element_stream_matches_vector(self):
        freqs = zipf_frequencies(64, 500, 1.0)
        stream = element_stream(freqs, np.random.default_rng(0))
        rebuilt = FrequencyVector.from_updates(stream, 64)
        assert rebuilt == freqs

    def test_insert_delete_stream_net_state(self):
        freqs = zipf_frequencies(64, 300, 1.0)
        stream = insert_delete_stream(freqs, 0.5, np.random.default_rng(1))
        rebuilt = FrequencyVector.from_updates(stream, 64)
        assert rebuilt == freqs

    def test_insert_delete_stream_has_churn(self):
        freqs = zipf_frequencies(64, 300, 1.0)
        stream = insert_delete_stream(freqs, 0.5, np.random.default_rng(2))
        assert len(stream) == 300 + 2 * 150
        assert any(u.weight < 0 for u in stream)

    def test_deletes_follow_their_inserts(self):
        freqs = zipf_frequencies(16, 50, 1.0)
        stream = insert_delete_stream(freqs, 1.0, np.random.default_rng(3))
        running = np.zeros(16)
        for update in stream:
            running[update.value] += update.weight
            assert running.min() >= 0  # never delete before inserting

    def test_churn_validation(self):
        freqs = zipf_frequencies(16, 10, 1.0)
        with pytest.raises(ValueError):
            insert_delete_stream(freqs, -0.1, np.random.default_rng(0))


class TestUniform:
    def test_flat(self):
        freqs = uniform_frequencies(64, 6_400)
        assert freqs.counts.max() - freqs.counts.min() <= 1.0


class TestEdgeCases:
    """Corner cases surfaced by the repro.workloads corpus work: empty
    streams, single-item domains, and zero-weight updates must all flow
    through the generator/model layer without special-casing."""

    def test_empty_stream_is_the_zero_vector(self):
        freqs = zipf_frequencies(DOMAIN, 0, 1.0)
        assert freqs.total_count() == 0
        assert freqs.self_join_size() == 0
        assert element_stream(freqs, np.random.default_rng(0)) == []

    def test_churn_on_empty_stream_is_empty(self):
        freqs = zipf_frequencies(16, 0, 1.0)
        assert insert_delete_stream(freqs, 0.5, np.random.default_rng(0)) == []

    def test_sampled_empty_stream(self):
        freqs = zipf_frequencies(16, 0, 1.0, np.random.default_rng(1))
        assert freqs.total_count() == 0

    def test_single_item_domain_concentrates_everything(self):
        assert zipf_probabilities(1, 1.3).tolist() == [1.0]
        freqs = zipf_frequencies(1, 7, 2.0)
        assert freqs[0] == 7
        stream = element_stream(freqs, np.random.default_rng(0))
        assert len(stream) == 7
        assert all(u.value == 0 for u in stream)

    def test_single_item_domain_uniform(self):
        assert uniform_frequencies(1, 5).counts.tolist() == [5.0]

    def test_shift_by_full_domain_is_identity(self):
        base = zipf_frequencies(8, 100, 1.0)
        assert shifted_frequencies(base, 8) == base

    def test_zero_weight_updates_are_no_ops(self):
        vec = FrequencyVector.zeros(8)
        vec.apply(Update(3, 0.0))
        vec.apply_bulk(
            np.array([1, 2], dtype=np.int64), np.array([0.0, 0.0])
        )
        assert vec.total_count() == 0
        assert not vec.counts.any()

    def test_apply_bulk_on_empty_arrays_is_a_no_op(self):
        vec = FrequencyVector.zeros(8)
        vec.apply_bulk(np.asarray([], dtype=np.int64), None)
        vec.apply_bulk(np.asarray([], dtype=np.int64), np.asarray([]))
        assert vec.total_count() == 0


class TestPredicateBulkEdgeCases:
    """Every predicate's ``accepts_bulk`` must handle empty batches —
    the bulk-ingest path sees them whenever a chunk filters to nothing."""

    EMPTY = np.asarray([], dtype=np.int64)

    @pytest.mark.parametrize(
        "predicate",
        [
            TruePredicate(),
            RangePredicate(0, 5),
            InSetPredicate(frozenset({1, 2})),
            InSetPredicate(frozenset()),
            ModuloPredicate(3, 1),
            FunctionPredicate(lambda v: v % 2 == 0),
        ],
        ids=["true", "range", "inset", "inset-empty", "modulo", "function"],
    )
    def test_empty_batch_yields_empty_bool_mask(self, predicate):
        mask = predicate.accepts_bulk(self.EMPTY)
        assert mask.dtype == bool
        assert mask.shape == (0,)

    def test_empty_inset_rejects_everything(self):
        predicate = InSetPredicate(frozenset())
        mask = predicate.accepts_bulk(np.arange(5, dtype=np.int64))
        assert not mask.any()

    def test_bulk_agrees_with_scalar_path(self):
        values = np.arange(32, dtype=np.int64)
        for predicate in (
            RangePredicate(3, 17),
            InSetPredicate(frozenset({1, 4, 30})),
            ModuloPredicate(5, 2),
            FunctionPredicate(lambda v: v > 10),
        ):
            bulk = predicate.accepts_bulk(values)
            scalar = [predicate.accepts(int(v)) for v in values]
            assert bulk.tolist() == scalar
