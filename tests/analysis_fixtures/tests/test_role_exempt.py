"""Role fixture: test code is exempt from every rule by default."""

import numpy as np


def test_things():
    rng = np.random.default_rng()  # fine in tests (R6 is src-only)
    arr = np.zeros(4)  # fine in tests (R1 is kernel-only)
    assert arr.sum() == 0  # fine in tests (R5 is library-only)
    if rng.integers(0, 2) > 1:  # never true; the raise is lint bait only
        raise ValueError("tests may raise whatever they like")
