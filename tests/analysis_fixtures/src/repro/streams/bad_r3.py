"""R3 fixture: telemetry recorded without the enabled-flag guard."""

from ..obs import METRICS as _METRICS


def ingest(engine, value):
    engine.update(value)
    _METRICS.count("engine.elements.seen")  # R3: no guard
    with _METRICS.timer("engine.ingest.seconds"):  # R3: unguarded timer
        engine.flush()
