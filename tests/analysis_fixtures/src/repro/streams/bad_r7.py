"""R7 fixture: spans recorded without the enabled-flag guard."""

from ..trace import TRACER as _TRACER


def ingest(engine, value):
    engine.update(value)
    _TRACER.instant("engine.ingest", elements=1)  # R7: no guard
    with _TRACER.span("engine.flush"):  # R7: unguarded span
        engine.flush()
