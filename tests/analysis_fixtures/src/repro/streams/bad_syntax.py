"""E1 fixture: a file that does not parse."""


def broken(:
    return None
