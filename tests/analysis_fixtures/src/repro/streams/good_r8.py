"""R8 fixture (clean): every accepted guard shape."""

from ..monitor import AUDIT as _AUDIT


def answer(engine, query, audit):
    estimate = engine.answer(query)
    if _AUDIT.enabled:
        _AUDIT.record(audit)
        _AUDIT.annotate_last(estimate=estimate)
    return estimate


def emit(audit, alert):
    if not _AUDIT.enabled:
        return
    _AUDIT.record(audit)
    if alert is not None:
        _AUDIT.alert(alert)
