"""R5 fixture (clean): validation raises repro.errors types."""

from ..errors import DomainError, ParameterError


def configure(width, depth, domain_size, value):
    if width < 1:
        raise ParameterError(f"width must be >= 1, got {width}")
    if depth < 1:
        raise ParameterError(f"depth must be >= 1, got {depth}")
    if not 0 <= value < domain_size:
        raise DomainError(f"value {value} outside [0, {domain_size})")
    return width, depth
