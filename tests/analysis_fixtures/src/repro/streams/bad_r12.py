"""R12 fixture: profiler hooks recorded without the enabled-flag guard."""

from ..profile import PROFILER as _PROFILER, RECORDER as _RECORDER


def ingest(engine, values):
    kept = engine.update_bulk(values)
    _PROFILER.mark("engine.ingest")  # R12: no guard
    if _PROFILER.enabled:
        _RECORDER.pulse("ingest.elements", kept)  # R12: wrong singleton
