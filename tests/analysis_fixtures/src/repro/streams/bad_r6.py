"""R6 fixture: unseeded RNG construction in library code."""

import numpy as np
from numpy.random import default_rng


def make_generators():
    a = np.random.default_rng()  # R6: OS entropy, unreproducible
    b = np.random.default_rng(None)  # R6: explicit None is still unseeded
    c = default_rng()  # R6: bare import form
    return a, b, c
