"""R12 fixture (clean): every accepted guard shape."""

from ..profile import PROFILER as _PROFILER, RECORDER as _RECORDER


def ingest(engine, values):
    kept = engine.update_bulk(values)
    if _PROFILER.enabled:
        _PROFILER.mark("engine.ingest")
    if _RECORDER.enabled:
        _RECORDER.pulse("ingest.elements", kept)


def answer(engine, query):
    if not _RECORDER.enabled:
        return engine.answer(query)
    _RECORDER.pulse("queries")  # early-exit guard above covers this
    return engine.answer(query)


def shutdown():
    # Administrative methods need no guard: they run once, off hot paths.
    _PROFILER.stop()
    _RECORDER.stop()
