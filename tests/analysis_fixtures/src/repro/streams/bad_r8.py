"""R8 fixture: audits recorded without the enabled-flag guard."""

from ..monitor import AUDIT as _AUDIT


def answer(engine, query, audit):
    estimate = engine.answer(query)
    _AUDIT.record(audit)  # R8: no guard
    _AUDIT.annotate_last(estimate=estimate)  # R8: still unguarded
    return estimate
