"""R4 fixture (clean): shared randomness lives in a schema object."""

import numpy as np

from ..hashing import FourWiseSignFamily, PairwiseBucketHash


class StreamPairSchema:
    """Schema classes are the sanctioned owners of the raw families."""

    def __init__(self, depth, width, seed):
        rng = np.random.default_rng(seed)
        self.buckets = PairwiseBucketHash(depth, width, rng)
        self.signs = FourWiseSignFamily(depth, rng)


def build_sketch_pair(schema):
    return schema.create_sketch(), schema.create_sketch()
