"""R4 fixture: ad-hoc hash/sign families built outside any schema."""

import numpy as np

from ..hashing import FourWiseSignFamily, PairwiseBucketHash


def build_sketch_pair(depth, width, seed):
    rng = np.random.default_rng(seed)
    buckets = PairwiseBucketHash(depth, width, rng)  # R4
    signs = FourWiseSignFamily(depth, rng)  # R4
    return buckets, signs
