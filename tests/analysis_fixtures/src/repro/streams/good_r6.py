"""R6 fixture (clean): every RNG gets an explicit seed."""

import numpy as np


def make_generators(seed):
    a = np.random.default_rng(seed)
    children = np.random.SeedSequence(seed).spawn(2)
    b = np.random.default_rng(children[0])
    return a, b
