"""R3 fixture (clean): every accepted guard shape."""

from contextlib import nullcontext

from ..obs import METRICS as _METRICS


def ingest(engine, value):
    engine.update(value)
    if _METRICS.enabled:
        _METRICS.count("engine.elements.seen")
    with _METRICS.timer("engine.ingest.seconds") if _METRICS.enabled else nullcontext():
        engine.flush()


def record_batch(count):
    if not _METRICS.enabled:
        return
    _METRICS.count("engine.batches")
    _METRICS.count("engine.elements.seen", count)
