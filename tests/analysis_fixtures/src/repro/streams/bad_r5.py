"""R5 fixture: bare ValueError and validation asserts in library code."""


def configure(width, depth):
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")  # R5
    assert depth >= 1, "depth must be >= 1"  # R5: vanishes under -O
    return width, depth
