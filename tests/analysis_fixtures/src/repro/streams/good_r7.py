"""R7 fixture (clean): every accepted guard shape."""

from contextlib import nullcontext

from ..trace import TRACER as _TRACER


def ingest(engine, value):
    engine.update(value)
    if _TRACER.enabled:
        _TRACER.instant("engine.ingest", elements=1)
    with _TRACER.span("engine.flush") if _TRACER.enabled else nullcontext() as sp:
        engine.flush()
        if sp is not None:
            sp.set(flushed=True)


def record_round(site, reports):
    if not _TRACER.enabled:
        return
    with _TRACER.span("dist.round", site=site):
        _TRACER.instant("dist.reports", count=len(reports))
