"""R2 fixture: per-element Python work inside kernel hot paths."""

import numpy as np


class Sketch:
    def update_bulk(self, values: np.ndarray) -> None:
        for value in values:  # R2: Python loop over an ndarray
            self.update(int(value))

    def update(self, value: int) -> None:
        pass

    def point_estimate(self, value: int) -> float:
        return 0.0

    def estimate_all(self, values: np.ndarray) -> list:
        # R2: comprehension over an ndarray + per-element point_estimate
        estimates = [self.point_estimate(int(v)) for v in values]
        # R2: .tolist() materialises the array
        return estimates + values.tolist()
