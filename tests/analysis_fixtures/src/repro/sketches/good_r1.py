"""R1 fixture (clean): every factory call pins its dtype."""

import numpy as np


def build_tables(values, depth, width):
    vals = np.asarray(values, dtype=np.int64)
    counters = np.zeros((depth, width), dtype=np.float64)
    scratch = np.empty(width, dtype=np.float64)
    return vals, counters, scratch
