"""Fixture: counter mutations outside the sanctioned primitives (R9 x2)."""

import numpy as np


class ToySketch:
    def __init__(self, depth: int, width: int) -> None:
        self._counters = np.zeros((depth, width), dtype=np.float64)

    def decay(self, factor: float) -> None:
        # Ages counters in place: a non-linear transform of the state.
        self._counters = self._counters * factor


def sneaky_boost(sketch: ToySketch) -> None:
    sketch._counters[0, 0] += 1.0


def rebalance(sketch: ToySketch) -> None:
    sneaky_boost(sketch)
