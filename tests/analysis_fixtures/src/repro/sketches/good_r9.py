"""Fixture: all counter changes flow through the linear algebra (R9 clean)."""

import numpy as np


class ToySketch:
    def __init__(self, depth: int, width: int) -> None:
        self.depth = depth
        self.width = width
        self._counters = np.zeros((depth, width), dtype=np.float64)

    def update_coalesced(self, values: np.ndarray, masses: np.ndarray) -> None:
        self._counters[0, values] += masses

    def merged_with(self, other: "ToySketch") -> "ToySketch":
        result = ToySketch(self.depth, self.width)
        result._counters = self._counters + other._counters
        return result

    def copy(self) -> "ToySketch":
        result = ToySketch(self.depth, self.width)
        result._counters = self._counters.copy()
        return result


def restore(depth: int, width: int, counters: np.ndarray) -> ToySketch:
    sketch = ToySketch(depth, width)
    sketch._counters = np.asarray(counters, dtype=np.float64)
    return sketch
