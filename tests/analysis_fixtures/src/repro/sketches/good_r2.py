"""R2 fixture (clean): hot paths stay vectorised; O(depth) loops are fine."""

import numpy as np


class Sketch:
    def __init__(self, depth: int, width: int):
        self.counters = np.zeros((depth, width), dtype=np.float64)

    def update_bulk(self, values: np.ndarray, weights: np.ndarray) -> None:
        for table in range(self.counters.shape[0]):  # O(depth), not O(n)
            buckets = values % self.counters.shape[1]
            self.counters[table] += np.bincount(
                buckets, weights=weights, minlength=self.counters.shape[1]
            )

    def point_estimates(self, values: np.ndarray) -> np.ndarray:
        buckets = values % self.counters.shape[1]
        return np.median(self.counters[:, buckets], axis=0)
