"""Fixture: dtype invariants broken across calls (R11 x3)."""

import numpy as np


class ToySketch:
    def __init__(self, depth: int, width: int) -> None:
        # Counters must be float64: int64 silently truncates masses.
        self._counters = np.zeros((depth, width), dtype=np.int64)

    def update_coalesced(self, values: np.ndarray, masses: np.ndarray) -> None:
        self._counters[0, values] += masses

    def point_estimates(self, values: np.ndarray) -> np.ndarray:
        # Estimate contract is float64; int64 drops fractional masses.
        return values.astype(np.int64)


def _as_mass(batch: np.ndarray) -> np.ndarray:
    return np.asarray(batch, dtype=np.float64)


def ingest(sketch: ToySketch, batch: np.ndarray) -> None:
    # The float64 array built two calls away lands in the values seat.
    sketch.update_coalesced(_as_mass(batch), batch)
