"""Fixture: int64 values / float64 masses proven end to end (R11 clean)."""

import numpy as np


class ToySketch:
    def __init__(self, depth: int, width: int) -> None:
        self._counters = np.zeros((depth, width), dtype=np.float64)

    def update_coalesced(self, values: np.ndarray, masses: np.ndarray) -> None:
        self._counters[0, values] += masses

    def point_estimates(self, values: np.ndarray) -> np.ndarray:
        return self._counters[0, values].astype(np.float64)


def _coalesce(batch: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    uniques, inverse = np.unique(batch.astype(np.int64), return_inverse=True)
    masses = np.bincount(inverse, weights=np.ones(batch.size, dtype=np.float64))
    return uniques, masses


def ingest(sketch: ToySketch, batch: np.ndarray) -> None:
    uniques, masses = _coalesce(batch)
    sketch.update_coalesced(uniques, masses)
