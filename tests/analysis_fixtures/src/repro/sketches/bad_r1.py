"""R1 fixture: implicit-dtype array construction in a kernel module."""

import numpy as np


def build_tables(values, depth, width):
    vals = np.asarray(values)  # R1: dtype inherited from caller
    counters = np.zeros((depth, width))  # R1: silently float64
    scratch = np.empty(width)  # R1
    return vals, counters, scratch
