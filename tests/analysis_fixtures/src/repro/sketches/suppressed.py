"""Suppression fixture: violations silenced by ``# repro: noqa``."""

import numpy as np


def dispatch(values):
    arr = np.asarray(values)  # repro: noqa[R1]
    blanket = np.zeros(4)  # repro: noqa
    return arr, blanket
