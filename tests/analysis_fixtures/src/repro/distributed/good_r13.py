"""R13 fixture (clean): every accepted guard shape."""

from ..obs import METRICS as _METRICS
from ..trace import TRACER as _TRACER


def close_round(site, shipper):
    reports = site.build_reports()
    if _METRICS.enabled or _TRACER.enabled:
        reports[0].telemetry = shipper.capture_telemetry()
    return reports


def attach(report, shipper):
    if not _METRICS.enabled:
        return report
    report.telemetry = shipper.capture_telemetry()  # early-exit guard above
    return report


def describe(shipper):
    # Administrative attribute reads need no guard: nothing is serialized.
    return shipper.origin
