"""R13 fixture: telemetry snapshots captured without the enabled-flag guard."""

from ..obs import METRICS as _METRICS


def close_round(site, shipper):
    reports = site.build_reports()
    doc = shipper.capture_telemetry()  # R13: no guard
    reports[0].telemetry = doc
    return reports


def attach(report, shipper):
    if _METRICS.enabled:
        pass  # guard branch never reaches the capture below
    report.telemetry = shipper.capture_telemetry()  # R13: guard closed above
    return report
