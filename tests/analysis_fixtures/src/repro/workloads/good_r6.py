"""R6 fixture (clean): corpus builder draws only from its seed."""

import numpy as np


def build_family(params, seed):
    rng = np.random.default_rng(seed)
    return rng.integers(0, params["domain"], size=params["total"])
