"""R6 fixture: unseeded RNG inside a corpus-family builder.

An unseeded generator here would silently break the whole
``repro.workloads`` contract (same ``(family, params, seed)`` =>
byte-identical corpus), so the linter must flag it in this package too.
"""

import numpy as np


def build_family(params):
    rng = np.random.default_rng()  # R6: corpus would differ per run
    return rng.integers(0, params["domain"], size=params["total"])
