"""Fixture: worker-plane writes bypassing the flush/merge seam (R10 x3)."""

_PENDING: dict[str, int] = {}


class Coordinator:
    def __init__(self, workers: int) -> None:
        self._shards = [object() for _ in range(workers)]
        self._merged = None
        self._dirty = False

    def flush(self):
        return self._shards

    def merged(self):
        return self._merged


class _EagerStrategy:
    def ingest(self, owner: Coordinator, parts) -> None:
        # Invalidate the coordinator's cache from the worker plane.
        owner._merged = None
        _record(parts)


def _record(parts) -> None:
    _PENDING["batches"] = len(parts)


def _worker_scrub(views, shard) -> None:
    # Reach across the per-shard view collection from the worker plane.
    views[shard + 1][:] = 0.0
