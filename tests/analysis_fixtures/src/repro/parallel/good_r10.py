"""Fixture: disciplined worker plane — results return via flush (R10 clean)."""

_DEFAULT_WORKERS = 4


class Coordinator:
    def __init__(self, workers: int) -> None:
        self._shards = [object() for _ in range(workers)]
        self._merged = None
        self._dirty = False

    def merged(self):
        # The coordinator owns its own state; only it crosses the seam.
        self._shards = self._strategy_flush()
        self._dirty = False
        return self._shards[0]

    def _strategy_flush(self):
        return list(self._shards)


class _PoolStrategy:
    def ingest(self, shards, parts) -> None:
        applied = [_apply(shard, part) for shard, part in zip(shards, parts)]
        _summarise(applied)

    def flush(self, shards):
        return list(shards)


def _apply(shard, part) -> int:
    scratch: dict[str, object] = {}
    scratch["part"] = part
    return len(scratch)


def _summarise(applied) -> int:
    return sum(applied)


def _worker_zero(block) -> None:
    # A worker may write the single view it owns — no collection indexing.
    block[:] = 0.0
