"""Tests for the a-posteriori error-bound reporting (Theorems 2 and 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.skimmed_join import est_skim_join_size
from repro.sketches.agms import AGMSSchema
from repro.sketches.hash_sketch import HashSketchSchema
from repro.streams.generators import shifted_zipf_pair

DOMAIN = 1 << 12


@pytest.fixture(scope="module")
def workload():
    return shifted_zipf_pair(DOMAIN, 80_000, 1.2, 10)


class TestAGMSBound:
    def test_bound_formula(self):
        """Single common value: SJ estimates are exact, so the bound is
        exactly 2 sqrt(f^2 g^2 / averaging)."""
        schema = AGMSSchema(16, 5, DOMAIN, seed=0)
        f, g = schema.create_sketch(), schema.create_sketch()
        f.update(3, 10.0)
        g.update(3, 20.0)
        assert f.join_error_bound(g) == pytest.approx(
            2.0 * np.sqrt(100.0 * 400.0 / 16.0)
        )

    def test_bound_covers_actual_error(self, workload):
        f, g = workload
        actual = f.join_size(g)
        covered = 0
        for seed in range(5):
            schema = AGMSSchema(64, 7, DOMAIN, seed=seed)
            sf, sg = schema.sketch_of(f), schema.sketch_of(g)
            if abs(sf.est_join_size(sg) - actual) <= sf.join_error_bound(sg):
                covered += 1
        assert covered >= 4  # high-probability bound, generous margin

    def test_bound_shrinks_with_averaging(self, workload):
        f, g = workload
        small = AGMSSchema(16, 5, DOMAIN, seed=1)
        large = AGMSSchema(256, 5, DOMAIN, seed=1)
        bound_small = small.sketch_of(f).join_error_bound(small.sketch_of(g))
        bound_large = large.sketch_of(f).join_error_bound(large.sketch_of(g))
        assert bound_large < bound_small


class TestHashSketchBound:
    def test_bound_covers_actual_error(self, workload):
        f, g = workload
        actual = f.join_size(g)
        covered = 0
        for seed in range(5):
            schema = HashSketchSchema(64, 7, DOMAIN, seed=seed)
            sf, sg = schema.sketch_of(f), schema.sketch_of(g)
            if abs(sf.est_join_size(sg) - actual) <= sf.join_error_bound(sg):
                covered += 1
        assert covered >= 4

    def test_incompatible_rejected(self):
        from repro.errors import IncompatibleSketchError

        a = HashSketchSchema(16, 3, DOMAIN, seed=1).create_sketch()
        b = HashSketchSchema(16, 3, DOMAIN, seed=2).create_sketch()
        with pytest.raises(IncompatibleSketchError):
            a.join_error_bound(b)


class TestSkimmedBound:
    def test_breakdown_carries_bound(self, workload):
        f, g = workload
        schema = HashSketchSchema(256, 7, DOMAIN, seed=3)
        breakdown = est_skim_join_size(schema.sketch_of(f), schema.sketch_of(g))
        assert np.isfinite(breakdown.max_additive_error)
        assert breakdown.max_additive_error > 0
        assert breakdown.relative_error_bound() == pytest.approx(
            breakdown.max_additive_error / breakdown.estimate
        )

    def test_bound_covers_actual_error(self, workload):
        f, g = workload
        actual = f.join_size(g)
        covered = 0
        for seed in range(5):
            schema = HashSketchSchema(256, 7, DOMAIN, seed=seed)
            breakdown = est_skim_join_size(
                schema.sketch_of(f), schema.sketch_of(g)
            )
            if abs(breakdown.estimate - actual) <= breakdown.max_additive_error:
                covered += 1
        assert covered >= 4

    def test_skimmed_bound_tighter_than_unskimmed_on_skew(self):
        """The whole point of skimming, as a guarantee: the residual-based
        bound is far below the raw Theorem-2 bound."""
        f, g = shifted_zipf_pair(DOMAIN, 80_000, 1.5, 5)
        schema = HashSketchSchema(256, 7, DOMAIN, seed=4)
        sf, sg = schema.sketch_of(f), schema.sketch_of(g)
        breakdown = est_skim_join_size(sf, sg)
        assert breakdown.max_additive_error < 0.5 * sf.join_error_bound(sg)
