"""Edge-case tests across modules: boundaries, degenerate inputs, and
behaviours that only show up at the extremes of the parameter space."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimator import SkimmedSketchSchema
from repro.core.skim import skim_dense
from repro.sketches.agms import AGMSSchema
from repro.sketches.dyadic import DyadicSketchSchema
from repro.sketches.hash_sketch import HashSketchSchema
from repro.streams.generators import shifted_frequencies, zipf_frequencies
from repro.streams.model import FrequencyVector


class TestDegenerateShapes:
    def test_width_one_sketch_works(self):
        """All values collide in one bucket: estimates degrade but nothing
        crashes, and the single-bucket counter is the signed stream sum."""
        schema = HashSketchSchema(1, 3, 16, seed=0)
        sketch = schema.create_sketch()
        sketch.update(3, 2.0)
        sketch.update(7, 1.0)
        assert sketch.counters.shape == (3, 1)
        assert np.all(np.abs(sketch.counters) <= 3.0)

    def test_depth_one_median_is_identity(self):
        schema = HashSketchSchema(64, 1, 16, seed=1)
        sketch = schema.create_sketch()
        sketch.update(3, 5.0)
        assert sketch.point_estimate(3) == pytest.approx(5.0)

    def test_domain_size_one(self):
        schema = HashSketchSchema(8, 3, 1, seed=2)
        sketch = schema.create_sketch()
        sketch.update(0, 4.0)
        assert sketch.point_estimate(0) == pytest.approx(4.0)

    def test_agms_single_cell(self):
        schema = AGMSSchema(1, 1, 16, seed=3)
        sketch = schema.sketch_of(FrequencyVector.from_values([5] * 3, 16))
        assert sketch.est_self_join_size() == pytest.approx(9.0)

    def test_dyadic_minimum_domain(self):
        schema = DyadicSketchSchema(4, 3, 2, seed=4)
        sketch = schema.create_sketch()
        sketch.update(1, 7.0)
        assert sketch.base_sketch.point_estimate(1) == pytest.approx(7.0)


class TestNegativeNetFrequencies:
    def test_sketch_of_net_negative_stream(self):
        """Delete-heavy streams can leave negative net frequencies; the
        linear machinery must carry them faithfully."""
        schema = HashSketchSchema(64, 5, 32, seed=5)
        freqs = FrequencyVector(np.asarray([0.0] * 30 + [-8.0, 3.0]))
        sketch = schema.sketch_of(freqs)
        assert sketch.point_estimate(30) == pytest.approx(-8.0)

    def test_join_with_negative_frequencies(self):
        schema = HashSketchSchema(64, 5, 32, seed=6)
        f = FrequencyVector(np.asarray([2.0] + [0.0] * 31))
        g = FrequencyVector(np.asarray([-3.0] + [0.0] * 31))
        estimate = schema.sketch_of(f).est_join_size(schema.sketch_of(g))
        assert estimate == pytest.approx(-6.0)

    def test_skim_never_extracts_negative_estimates(self):
        schema = HashSketchSchema(64, 5, 32, seed=7)
        freqs = FrequencyVector(np.asarray([-100.0] + [0.0] * 31))
        result, _ = skim_dense(schema.sketch_of(freqs), threshold=10.0)
        assert result.dense_count == 0


class TestExtremeWorkloads:
    def test_all_mass_on_one_value(self):
        schema = SkimmedSketchSchema(64, 5, 256, seed=8)
        f = FrequencyVector.zeros(256)
        f.apply_bulk(np.asarray([17]), np.asarray([10_000.0]))
        sketch_f = schema.sketch_of(f)
        assert sketch_f.est_join_size(schema.sketch_of(f)) == pytest.approx(1e8)

    def test_empty_streams_join_to_zero(self):
        schema = SkimmedSketchSchema(64, 5, 256, seed=9)
        assert schema.create_sketch().est_join_size(schema.create_sketch()) == 0.0

    def test_zipf_parameter_zero_and_high(self):
        flat = zipf_frequencies(128, 1000, 0.0)
        steep = zipf_frequencies(128, 1000, 3.0)
        assert flat.counts.max() <= 9  # ~uniform
        assert steep.counts.max() > 800  # nearly everything on rank 1

    def test_shift_equal_to_domain_wraps_to_identity(self):
        freqs = zipf_frequencies(64, 500, 1.0)
        assert shifted_frequencies(freqs, 64) == freqs

    def test_huge_weight_magnitudes(self):
        schema = HashSketchSchema(32, 5, 16, seed=10)
        sketch = schema.create_sketch()
        sketch.update(3, 1e12)
        sketch.update(3, -1e12)
        assert np.allclose(sketch.counters, 0.0)


class TestThresholdBoundaries:
    def test_value_exactly_at_threshold_is_dense(self):
        schema = HashSketchSchema(64, 5, 32, seed=11)
        sketch = schema.create_sketch()
        sketch.update(5, 50.0)
        result, _ = skim_dense(sketch, threshold=50.0)
        assert 5 in result.dense_values.tolist()

    def test_value_just_below_threshold_is_sparse(self):
        schema = HashSketchSchema(64, 5, 32, seed=12)
        sketch = schema.create_sketch()
        sketch.update(5, 49.0)
        result, _ = skim_dense(sketch, threshold=50.0)
        assert result.dense_count == 0
