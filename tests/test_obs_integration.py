"""End-to-end metrics coverage: engine, sketches, skims, distributed rounds.

These tests drive the real hot paths with the registry enabled and assert
the documented metric catalogue shows up with the expected values — and
that the disabled switch records nothing at all.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SketchParameters
from repro.core.estimator import SkimmedSketchSchema
from repro.distributed.coordinator import SketchCoordinator
from repro.distributed.site import SketchSite
from repro.eval.diagnostics import sketch_health
from repro.obs import METRICS, capturing
from repro.streams.engine import StreamEngine
from repro.streams.query import JoinCountQuery, RangePredicate

DOMAIN = 1 << 10


def _engine() -> StreamEngine:
    return StreamEngine(
        DOMAIN, SketchParameters(width=64, depth=5), synopsis="skimmed", seed=3
    )


class TestEngineMetrics:
    def test_bulk_ingest_and_join_query_metrics(self, rng):
        engine = _engine()
        engine.register_stream("f", predicate=RangePredicate(0, DOMAIN // 2))
        engine.register_stream("g")
        f_values = rng.integers(0, DOMAIN, size=2_000)
        g_values = rng.integers(0, DOMAIN, size=1_500)
        kept_f = int((f_values < DOMAIN // 2).sum())

        with capturing() as reg:
            engine.process_bulk("f", f_values)
            engine.process_bulk("g", g_values)
            engine.answer(JoinCountQuery("f", "g"))
        snap = reg.snapshot()

        assert snap["counters"]["engine.elements.seen"] == 3_500
        assert snap["counters"]["engine.elements.dropped"] == 2_000 - kept_f
        assert snap["counters"]["engine.stream.f.elements"] == kept_f
        assert snap["counters"]["engine.stream.g.elements"] == 1_500
        # The synopses saw exactly the kept elements.
        assert snap["counters"]["sketch.update.elements"] == kept_f + 1_500
        assert snap["counters"]["sketch.update.batches"] == 2
        # One skimmed join = two SKIMDENSE passes + one assembled estimate.
        assert snap["counters"]["skim.passes"] == 2
        assert snap["counters"]["estimate.joins"] == 1
        assert snap["counters"]["engine.queries"] == 1
        assert snap["histograms"]["engine.answer.seconds"]["count"] == 1
        assert snap["histograms"]["estimate.skim_join.seconds"]["count"] == 1
        assert snap["histograms"]["skim.seconds"]["count"] == 2
        assert snap["gauges"]["skim.threshold"] > 0

    def test_per_element_path_counts_deletions(self):
        engine = _engine()
        engine.register_stream("f")
        with capturing() as reg:
            engine.process("f", 1)
            engine.process("f", 2, weight=-1.0)
        snap = reg.snapshot()
        assert snap["counters"]["engine.elements.seen"] == 2
        assert snap["counters"]["sketch.update.elements"] == 2
        assert snap["counters"]["sketch.update.deletions"] == 1

    def test_sql_answer_latency_recorded(self, rng):
        engine = _engine()
        engine.register_stream("f")
        engine.register_stream("g")
        engine.process_bulk("f", rng.integers(0, DOMAIN, size=500))
        engine.process_bulk("g", rng.integers(0, DOMAIN, size=500))
        with capturing() as reg:
            engine.answer_sql("SELECT COUNT(*) FROM f JOIN g")
        assert reg.snapshot()["histograms"]["engine.sql.seconds"]["count"] == 1

    def test_disabled_switch_records_nothing(self, rng):
        engine = _engine()
        engine.register_stream("f")
        engine.register_stream("g")
        assert not METRICS.enabled
        engine.process_bulk("f", rng.integers(0, DOMAIN, size=1_000))
        engine.process_bulk("g", rng.integers(0, DOMAIN, size=1_000))
        engine.answer(JoinCountQuery("f", "g"))
        snap = METRICS.snapshot()
        assert snap["counters"] == {}
        assert snap["histograms"] == {}
        assert list(METRICS.metric_names()) == []


class TestDyadicSkimMetrics:
    def test_dyadic_descent_probes_counted(self, rng):
        schema = SkimmedSketchSchema(64, 5, DOMAIN, seed=9, dyadic=True)
        f, g = schema.create_sketch(), schema.create_sketch()
        heavy = np.asarray([3, 11], dtype=np.int64)
        f.update_bulk(np.repeat(heavy, 500))
        g.update_bulk(np.repeat(heavy, 400))
        f.update_bulk(rng.integers(0, DOMAIN, size=300))
        with capturing() as reg:
            f.est_join_size(g)
        snap = reg.snapshot()
        assert snap["counters"]["skim.passes.dyadic"] == 2
        assert snap["counters"]["skim.dyadic.probes"] > 0
        assert snap["counters"]["skim.dense_extracted"] >= 2


class TestDistributedMetrics:
    def test_round_trip_communication_metrics(self, rng):
        schema = SkimmedSketchSchema(64, 5, DOMAIN, seed=17)
        sites = [
            SketchSite(name, schema, ["f", "g"]) for name in ("nyc", "sfo", "lhr")
        ]
        coordinator = SketchCoordinator(schema)
        with capturing() as reg:
            for site in sites:
                site.observe_bulk("f", rng.integers(0, DOMAIN, size=400))
                site.observe_bulk("g", rng.integers(0, DOMAIN, size=300))
            for site in sites:
                coordinator.receive_all(site.close_round())
            coordinator.est_join_size("f", "g")
        snap = reg.snapshot()

        assert snap["counters"]["dist.rounds.closed"] == 3
        assert snap["counters"]["dist.reports.sent"] == 6
        assert snap["counters"]["dist.reports.received"] == 6
        reports, received = coordinator.communication_stats()
        assert reports == 6
        assert snap["counters"]["dist.bytes.received"] == received
        assert snap["counters"]["dist.bytes.sent"] == received
        assert snap["gauges"]["dist.round.max"] == 1
        # The global join query runs the skimmed estimator.
        assert snap["counters"]["estimate.joins"] >= 1

    def test_rejected_report_counted(self, rng):
        schema = SkimmedSketchSchema(64, 5, DOMAIN, seed=17)
        site = SketchSite("nyc", schema, ["f"])
        coordinator = SketchCoordinator(schema)
        site.observe("f", 1)
        reports = site.close_round()
        with capturing() as reg:
            coordinator.receive(reports[0])
            with pytest.raises(Exception):
                coordinator.receive(reports[0])  # stale round
        snap = reg.snapshot()
        assert snap["counters"]["dist.reports.received"] == 1
        assert snap["counters"]["dist.reports.rejected"] == 1

    def test_distributed_flow_disabled_records_nothing(self, rng):
        schema = SkimmedSketchSchema(64, 5, DOMAIN, seed=17)
        site = SketchSite("nyc", schema, ["f"])
        coordinator = SketchCoordinator(schema)
        site.observe_bulk("f", rng.integers(0, DOMAIN, size=100))
        coordinator.receive_all(site.close_round())
        assert list(METRICS.metric_names()) == []


class TestDiagnosticsBridge:
    def test_health_report_records_gauges(self, rng):
        schema = SkimmedSketchSchema(64, 5, DOMAIN, seed=5)
        sketch = schema.create_sketch()
        sketch.update_bulk(rng.integers(0, DOMAIN, size=2_000))
        report = sketch_health(sketch)
        with capturing() as reg:
            report.record()
        snap = reg.snapshot()
        assert snap["gauges"]["health.stream_size"] == 2_000
        assert snap["gauges"]["health.width"] == 64
        assert snap["gauges"]["health.skew_score"] == report.skew_score
        assert 0.0 <= snap["gauges"]["health.dense_mass_fraction"] <= 1.0

    def test_as_metrics_keys_are_prefixed(self, rng):
        schema = SkimmedSketchSchema(64, 5, DOMAIN, seed=5)
        sketch = schema.create_sketch()
        sketch.update_bulk(rng.integers(0, DOMAIN, size=500))
        report = sketch_health(sketch, target_error=0.1, target_join_size=1e6)
        metrics = report.as_metrics(prefix="fleet.f")
        assert all(name.startswith("fleet.f.") for name in metrics)
        assert metrics["fleet.f.recommended_width"] >= 1
