"""Guard against instrumentation slowing the update hot path.

The obs hooks in :meth:`HashSketch.update_bulk` are one attribute read
and one branch per *batch* when disabled, so a 100k-element bulk update
must run within a small factor of the uninstrumented kernel
(:meth:`HashSketch._apply_point_masses` plus the mass update) that does
all the real work.  A regression here means someone put per-element
Python work on the hot path.
"""

from __future__ import annotations

import time

import numpy as np

from repro.obs import METRICS
from repro.sketches.hash_sketch import HashSketchSchema

N_ELEMENTS = 100_000
REPEATS = 5
# update_bulk legitimately adds input validation (min/max domain checks,
# dtype coercion) on top of the kernel; the budget allows for that plus
# generous CI timing noise, while still catching any per-element loop.
MAX_FACTOR = 3.0
SLACK_SECONDS = 0.005


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_update_bulk_matches_uninstrumented_kernel(rng):
    assert not METRICS.enabled  # the conftest fixture guarantees this
    schema = HashSketchSchema(width=256, depth=7, domain_size=1 << 16, seed=1)
    values = rng.integers(0, 1 << 16, size=N_ELEMENTS).astype(np.int64)
    weights = np.ones(N_ELEMENTS)

    kernel_sketch = schema.create_sketch()

    def kernel():
        kernel_sketch._apply_point_masses(values, weights)  # noqa: SLF001
        kernel_sketch._absolute_mass += float(np.abs(weights).sum())  # noqa: SLF001

    instrumented_sketch = schema.create_sketch()

    def instrumented():
        instrumented_sketch.update_bulk(values, weights)

    # Warm both paths (hash-family caches, numpy dispatch) before timing.
    kernel()
    instrumented()
    kernel_time = _best_of(REPEATS, kernel)
    instrumented_time = _best_of(REPEATS, instrumented)

    budget = kernel_time * MAX_FACTOR + SLACK_SECONDS
    assert instrumented_time <= budget, (
        f"update_bulk took {instrumented_time * 1e3:.2f}ms vs kernel "
        f"{kernel_time * 1e3:.2f}ms (budget {budget * 1e3:.2f}ms) — "
        "instrumentation overhead regressed on the hot path"
    )


def test_disabled_audit_answer_matches_raw_estimator(rng):
    """The repro.monitor hooks on the query path are one attribute read
    and one branch per *query* while disabled — ``engine.answer()`` must
    stay within a small factor of calling the estimator directly.  A
    regression here means audit work (residual scans, shadow lookups,
    health reports) leaked onto the disabled path."""
    from repro.core.config import SketchParameters
    from repro.monitor import AUDIT
    from repro.streams.engine import StreamEngine
    from repro.streams.query import JoinCountQuery

    assert not AUDIT.enabled  # the conftest fixture guarantees this
    engine = StreamEngine(
        1 << 12, SketchParameters(width=256, depth=7), synopsis="skimmed", seed=1
    )
    for name in ("f", "g"):
        engine.register_stream(name)
        engine.process_bulk(name, rng.integers(0, 1 << 12, size=20_000))
    query = JoinCountQuery("f", "g")
    sf, sg = engine.synopsis_for("f"), engine.synopsis_for("g")

    def kernel():
        sf.est_join_size(sg)

    def instrumented():
        engine.answer(query)

    kernel()
    instrumented()
    kernel_time = _best_of(REPEATS, kernel)
    instrumented_time = _best_of(REPEATS, instrumented)

    budget = kernel_time * MAX_FACTOR + SLACK_SECONDS
    assert instrumented_time <= budget, (
        f"answer() took {instrumented_time * 1e3:.2f}ms vs raw estimator "
        f"{kernel_time * 1e3:.2f}ms (budget {budget * 1e3:.2f}ms) — "
        "disabled-audit overhead regressed on the query path"
    )


def test_disabled_profile_hooks_stay_off_the_ingest_path(rng):
    """The ``repro.profile`` hooks (``_PROFILER.mark`` /
    ``_RECORDER.pulse``) on ``engine.process_bulk`` and ``answer`` are
    one guarded attribute read per *batch* while disabled —
    ``process_bulk`` must stay within a small factor of the raw synopsis
    ``update_bulk`` doing all the real work.  A regression here means a
    profiler hook (or its argument construction) leaked outside the
    R12 guard."""
    from repro.core.config import SketchParameters
    from repro.profile import PROFILER, RECORDER
    from repro.streams.engine import StreamEngine

    assert not PROFILER.enabled and not RECORDER.enabled  # conftest guarantee
    engine = StreamEngine(
        1 << 16, SketchParameters(width=256, depth=7), synopsis="skimmed", seed=1
    )
    engine.register_stream("f")
    values = rng.integers(0, 1 << 16, size=N_ELEMENTS).astype(np.int64)
    synopsis = engine.synopsis_for("f")

    def kernel():
        synopsis.update_bulk(values)

    def instrumented():
        engine.process_bulk("f", values)

    kernel()
    instrumented()
    kernel_time = _best_of(REPEATS, kernel)
    instrumented_time = _best_of(REPEATS, instrumented)

    budget = kernel_time * MAX_FACTOR + SLACK_SECONDS
    assert instrumented_time <= budget, (
        f"process_bulk took {instrumented_time * 1e3:.2f}ms vs raw update_bulk "
        f"{kernel_time * 1e3:.2f}ms (budget {budget * 1e3:.2f}ms) — "
        "disabled profiler-hook overhead regressed on the ingest path"
    )


def test_enabled_update_bulk_overhead_is_batch_level(rng):
    """Even *enabled*, bulk instrumentation is per-batch, not per-element."""
    schema = HashSketchSchema(width=256, depth=7, domain_size=1 << 16, seed=1)
    values = rng.integers(0, 1 << 16, size=N_ELEMENTS).astype(np.int64)

    disabled_sketch = schema.create_sketch()
    disabled_sketch.update_bulk(values)  # warm
    disabled = _best_of(REPEATS, lambda: disabled_sketch.update_bulk(values))

    METRICS.enable()
    try:
        enabled_sketch = schema.create_sketch()
        enabled_sketch.update_bulk(values)  # warm
        enabled = _best_of(REPEATS, lambda: enabled_sketch.update_bulk(values))
    finally:
        METRICS.disable()
        METRICS.reset()

    assert enabled <= disabled * MAX_FACTOR + SLACK_SECONDS, (
        f"enabled update_bulk {enabled * 1e3:.2f}ms vs disabled "
        f"{disabled * 1e3:.2f}ms — recording must stay per-batch"
    )


def test_shm_single_worker_ingest_stays_near_bare_update_bulk(rng):
    """``mode="shm"`` at one worker must cost ~nothing over bare
    ``update_bulk``: the ingestor short-circuits to the serial
    no-executor path, so no segment, no pool, no dense accumulator —
    just partitioning's trivial 1-shard fast path plus bookkeeping."""
    from repro.parallel import ShardedIngestor

    schema = HashSketchSchema(width=256, depth=7, domain_size=1 << 16, seed=1)
    values = rng.integers(0, 1 << 16, size=N_ELEMENTS).astype(np.int64)

    kernel_sketch = schema.create_sketch()

    def kernel():
        kernel_sketch.update_bulk(values)

    with ShardedIngestor(schema, workers=1, mode="shm") as ingestor:
        def instrumented():
            ingestor.ingest(values)

        kernel()
        instrumented()
        kernel_time = _best_of(REPEATS, kernel)
        instrumented_time = _best_of(REPEATS, instrumented)

    budget = kernel_time * MAX_FACTOR + SLACK_SECONDS
    assert instrumented_time <= budget, (
        f"shm@1 ingest took {instrumented_time * 1e3:.2f}ms vs bare "
        f"update_bulk {kernel_time * 1e3:.2f}ms (budget {budget * 1e3:.2f}ms) "
        "— the 1-worker short-circuit regressed"
    )


def test_shm_worker_telemetry_rides_the_flush_ack(rng):
    """``drain_worker_telemetry`` must report worker vitals in shm mode
    even though no JSON state channel exists: the stats ride the flush
    barrier's ack tuple alongside the tracked masses."""
    from repro.parallel import ShardedIngestor

    schema = HashSketchSchema(width=128, depth=5, domain_size=1 << 10, seed=1)
    n = 4_000
    values = rng.integers(0, 1 << 10, size=n).astype(np.int64)
    with ShardedIngestor(schema, workers=2, mode="shm") as ingestor:
        for chunk in np.array_split(values, 4):
            ingestor.ingest(chunk)
        ingestor.merged()  # the flush that carries the stats
        telemetry = dict(ingestor.drain_worker_telemetry())
        assert ingestor.drain_worker_telemetry() == []  # drained
    assert set(telemetry) == {0, 1}
    assert sum(stats["worker.elements"] for stats in telemetry.values()) == float(n)
    assert all(stats["worker.batches"] >= 1.0 for stats in telemetry.values())


def test_disabled_telemetry_site_close_round_stays_free(rng):
    """A telemetry-enabled site with every singleton off must close
    rounds at the plain site's speed: the federation hook is one
    attribute-read guard, never a snapshot capture."""
    from repro.core.estimator import SkimmedSketchSchema
    from repro.distributed import SketchSite

    schema = SkimmedSketchSchema(128, 5, 1 << 10, seed=3)
    values = rng.integers(0, 1 << 10, size=10_000).astype(np.int64)

    def closed_round(telemetry: bool) -> float:
        site = SketchSite("edge", schema, streams=["R"], telemetry=telemetry)
        site.observe_bulk("R", values)
        site.close_round()  # warm
        return _best_of(REPEATS, lambda: site.close_round())

    plain = closed_round(False)
    federated = closed_round(True)
    assert federated <= plain * MAX_FACTOR + SLACK_SECONDS, (
        f"telemetry-enabled close_round {federated * 1e3:.2f}ms vs plain "
        f"{plain * 1e3:.2f}ms — the disabled federation hook must be a "
        "single guarded branch"
    )
