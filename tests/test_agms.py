"""Unit + statistical tests for basic AGMS sketches (ESTJOINSIZE/ESTSJSIZE)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DomainError, IncompatibleSketchError
from repro.sketches.agms import AGMSSchema
from repro.streams.model import FrequencyVector

DOMAIN = 256


def make_pair(schema, f, g):
    return schema.sketch_of(f), schema.sketch_of(g)


class TestSchema:
    def test_validation(self):
        with pytest.raises(ValueError):
            AGMSSchema(0, 1, DOMAIN)
        with pytest.raises(ValueError):
            AGMSSchema(1, 0, DOMAIN)
        with pytest.raises(ValueError):
            AGMSSchema(1, 1, 0)

    def test_compatibility(self):
        a = AGMSSchema(4, 3, DOMAIN, seed=1)
        b = AGMSSchema(4, 3, DOMAIN, seed=1)
        c = AGMSSchema(4, 3, DOMAIN, seed=2)
        assert a.is_compatible(b)
        assert not a.is_compatible(c)
        assert not a.is_compatible(AGMSSchema(5, 3, DOMAIN, seed=1))


class TestMaintenance:
    def test_update_touches_all_atomic_sketches(self):
        """The paper's point: every atomic sketch changes on each element."""
        schema = AGMSSchema(4, 3, DOMAIN, seed=0)
        sketch = schema.create_sketch()
        sketch.update(7)
        assert (np.abs(sketch.atomic_sketches) == 1.0).all()

    def test_update_bulk_matches_element_updates(self):
        schema = AGMSSchema(5, 3, DOMAIN, seed=1)
        values = np.random.default_rng(0).integers(0, DOMAIN, 300)
        weights = np.random.default_rng(1).normal(size=300)
        bulk = schema.create_sketch()
        bulk.update_bulk(values, weights)
        loop = schema.create_sketch()
        for v, w in zip(values, weights):
            loop.update(int(v), float(w))
        assert np.allclose(bulk.atomic_sketches, loop.atomic_sketches)
        assert bulk.absolute_mass == pytest.approx(loop.absolute_mass)

    def test_ingest_frequency_vector_matches_updates(self):
        schema = AGMSSchema(4, 3, DOMAIN, seed=2)
        freqs = FrequencyVector.from_values([1, 1, 5, 9, 9, 9], DOMAIN)
        ingested = schema.sketch_of(freqs)
        loop = schema.create_sketch()
        for value, count in freqs.nonzero_items():
            for _ in range(int(count)):
                loop.update(value)
        assert np.allclose(ingested.atomic_sketches, loop.atomic_sketches)

    def test_projection_cache_matches_streaming_path(self):
        freqs = FrequencyVector.from_values([0, 0, 0, 7, 100, 255], DOMAIN)
        plain = AGMSSchema(6, 5, DOMAIN, seed=3)
        cached = AGMSSchema(6, 5, DOMAIN, seed=3)
        cached.enable_projection_cache()
        assert cached.projection_cache_enabled()
        a = plain.sketch_of(freqs)
        b = cached.sketch_of(freqs)
        assert np.allclose(a.atomic_sketches, b.atomic_sketches)
        assert a.absolute_mass == pytest.approx(b.absolute_mass)

    def test_projection_cache_size_guard(self):
        schema = AGMSSchema(100, 10, DOMAIN, seed=0)
        with pytest.raises(ValueError):
            schema.enable_projection_cache(max_bytes=10)

    def test_deletes_cancel_inserts(self):
        schema = AGMSSchema(3, 3, DOMAIN, seed=4)
        sketch = schema.create_sketch()
        sketch.update(10)
        sketch.update(10, -1.0)
        assert np.allclose(sketch.atomic_sketches, 0.0)
        # absolute mass counts both operations (it tracks stream volume)
        assert sketch.absolute_mass == 2.0

    def test_domain_check(self):
        schema = AGMSSchema(2, 2, DOMAIN, seed=5)
        sketch = schema.create_sketch()
        with pytest.raises(DomainError):
            sketch.update(DOMAIN)
        with pytest.raises(DomainError):
            sketch.update_bulk(np.asarray([-1]))

    def test_size_accounting(self):
        schema = AGMSSchema(8, 5, DOMAIN, seed=6)
        sketch = schema.create_sketch()
        assert sketch.size_in_counters() == 40
        assert sketch.seed_words() == 40 * 4


class TestEstimation:
    def test_single_value_join_is_exact(self):
        """With one common value, X_f X_g = f g xi^2 = f g in every cell."""
        schema = AGMSSchema(3, 3, DOMAIN, seed=7)
        f = FrequencyVector.from_values([5] * 4, DOMAIN)
        g = FrequencyVector.from_values([5] * 6, DOMAIN)
        sf, sg = make_pair(schema, f, g)
        assert sf.est_join_size(sg) == pytest.approx(24.0)

    def test_self_join_single_value_exact(self):
        schema = AGMSSchema(2, 3, DOMAIN, seed=8)
        f = FrequencyVector.from_values([9] * 7, DOMAIN)
        assert schema.sketch_of(f).est_self_join_size() == pytest.approx(49.0)

    def test_unbiasedness_across_schemas(self):
        """Mean estimate over many independent schemas approaches truth."""
        f = FrequencyVector.from_values([0, 0, 1, 2, 2, 2, 3], DOMAIN)
        g = FrequencyVector.from_values([0, 2, 2, 3, 3], DOMAIN)
        actual = f.join_size(g)
        estimates = []
        for seed in range(300):
            schema = AGMSSchema(1, 1, DOMAIN, seed=seed)
            sf, sg = make_pair(schema, f, g)
            estimates.append(sf.est_join_size(sg))
        assert np.mean(estimates) == pytest.approx(actual, rel=0.25)

    def test_accuracy_improves_with_averaging(self, small_zipf):
        actual = small_zipf.self_join_size()
        errors = {}
        for averaging in (4, 64):
            errs = []
            for seed in range(5):
                schema = AGMSSchema(averaging, 5, DOMAIN, seed=seed)
                estimate = schema.sketch_of(small_zipf).est_self_join_size()
                errs.append(abs(estimate - actual) / actual)
            errors[averaging] = np.mean(errs)
        assert errors[64] < errors[4]

    def test_reasonable_accuracy_on_zipf(self, small_zipf):
        schema = AGMSSchema(128, 7, DOMAIN, seed=9)
        estimate = schema.sketch_of(small_zipf).est_self_join_size()
        actual = small_zipf.self_join_size()
        assert abs(estimate - actual) / actual < 0.25


class TestAlgebraAndCompat:
    def test_merge_is_linear(self):
        schema = AGMSSchema(3, 3, DOMAIN, seed=10)
        a = schema.create_sketch()
        b = schema.create_sketch()
        a.update(1)
        b.update(2, 3.0)
        merged = a.merged_with(b)
        combined = schema.create_sketch()
        combined.update(1)
        combined.update(2, 3.0)
        assert np.allclose(merged.atomic_sketches, combined.atomic_sketches)

    def test_copy_is_independent(self):
        schema = AGMSSchema(2, 2, DOMAIN, seed=11)
        sketch = schema.create_sketch()
        sketch.update(3)
        clone = sketch.copy()
        clone.update(4)
        assert not np.allclose(sketch.atomic_sketches, clone.atomic_sketches)

    def test_incompatible_schemas_rejected(self):
        a = AGMSSchema(2, 2, DOMAIN, seed=1).create_sketch()
        b = AGMSSchema(2, 2, DOMAIN, seed=2).create_sketch()
        with pytest.raises(IncompatibleSketchError):
            a.est_join_size(b)
        with pytest.raises(IncompatibleSketchError):
            a.merged_with(b)

    def test_same_parameters_same_seed_compatible(self):
        a = AGMSSchema(2, 2, DOMAIN, seed=1).create_sketch()
        b = AGMSSchema(2, 2, DOMAIN, seed=1).create_sketch()
        b.update(5)
        assert isinstance(a.est_join_size(b), float)

    def test_cross_type_rejected(self):
        schema = AGMSSchema(2, 2, DOMAIN, seed=1)
        with pytest.raises(IncompatibleSketchError):
            schema.create_sketch().est_join_size("nonsense")  # type: ignore[arg-type]
