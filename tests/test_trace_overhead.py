"""Guard against the tracer slowing the update hot path.

Same contract (and same bound pattern) as ``test_obs_overhead.py``: every
trace hook in :meth:`HashSketch.update_bulk` is one ``TRACER.enabled``
attribute read and one branch per *batch* when disabled, so a
100k-element bulk update must run within a small factor of the
uninstrumented kernel.  A regression here means a span was opened
unconditionally, or per-element Python work crept onto the hot path.
"""

from __future__ import annotations

import time

import numpy as np

from repro.sketches.hash_sketch import HashSketchSchema
from repro.trace import TRACER

N_ELEMENTS = 100_000
REPEATS = 5
# Same budget as the obs overhead test: update_bulk's own validation plus
# generous CI timing noise, while still catching any per-element loop.
MAX_FACTOR = 3.0
SLACK_SECONDS = 0.005


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_tracer_adds_no_measurable_hot_path_cost(rng):
    assert not TRACER.enabled  # the conftest fixture guarantees this
    schema = HashSketchSchema(width=256, depth=7, domain_size=1 << 16, seed=1)
    values = rng.integers(0, 1 << 16, size=N_ELEMENTS).astype(np.int64)
    weights = np.ones(N_ELEMENTS)

    kernel_sketch = schema.create_sketch()

    def kernel():
        kernel_sketch._apply_point_masses(values, weights)  # noqa: SLF001
        kernel_sketch._absolute_mass += float(np.abs(weights).sum())  # noqa: SLF001

    instrumented_sketch = schema.create_sketch()

    def instrumented():
        instrumented_sketch.update_bulk(values, weights)

    # Warm both paths (hash-family caches, numpy dispatch) before timing.
    kernel()
    instrumented()
    kernel_time = _best_of(REPEATS, kernel)
    instrumented_time = _best_of(REPEATS, instrumented)

    budget = kernel_time * MAX_FACTOR + SLACK_SECONDS
    assert instrumented_time <= budget, (
        f"update_bulk took {instrumented_time * 1e3:.2f}ms vs kernel "
        f"{kernel_time * 1e3:.2f}ms (budget {budget * 1e3:.2f}ms) — "
        "disabled tracing must stay one branch per batch"
    )


def test_enabled_tracer_overhead_is_batch_level(rng):
    """Even *enabled*, tracing records one span per batch, not per element."""
    schema = HashSketchSchema(width=256, depth=7, domain_size=1 << 16, seed=1)
    values = rng.integers(0, 1 << 16, size=N_ELEMENTS).astype(np.int64)

    disabled_sketch = schema.create_sketch()
    disabled_sketch.update_bulk(values)  # warm
    disabled = _best_of(REPEATS, lambda: disabled_sketch.update_bulk(values))

    TRACER.enable()
    try:
        enabled_sketch = schema.create_sketch()
        enabled_sketch.update_bulk(values)  # warm
        enabled = _best_of(REPEATS, lambda: enabled_sketch.update_bulk(values))
        # One span per timed call (REPEATS + warm), never per element.
        assert TRACER.span_count() == REPEATS + 1
    finally:
        TRACER.disable()
        TRACER.reset()

    assert enabled <= disabled * MAX_FACTOR + SLACK_SECONDS, (
        f"enabled update_bulk {enabled * 1e3:.2f}ms vs disabled "
        f"{disabled * 1e3:.2f}ms — span recording must stay per-batch"
    )
