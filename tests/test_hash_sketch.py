"""Unit + statistical tests for the hash sketch data structure (§4.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DomainError, IncompatibleSketchError
from repro.sketches.hash_sketch import HashSketchSchema
from repro.streams.model import FrequencyVector

DOMAIN = 512


class TestSchema:
    def test_validation(self):
        with pytest.raises(ValueError):
            HashSketchSchema(0, 1, DOMAIN)
        with pytest.raises(ValueError):
            HashSketchSchema(1, 0, DOMAIN)
        with pytest.raises(ValueError):
            HashSketchSchema(1, 1, 0)

    def test_compatibility(self):
        a = HashSketchSchema(16, 5, DOMAIN, seed=1)
        assert a.is_compatible(HashSketchSchema(16, 5, DOMAIN, seed=1))
        assert not a.is_compatible(HashSketchSchema(16, 5, DOMAIN, seed=2))
        assert not a.is_compatible(HashSketchSchema(8, 5, DOMAIN, seed=1))


class TestMaintenance:
    def test_update_touches_one_counter_per_table(self):
        """The paper's O(depth) update claim, structurally."""
        schema = HashSketchSchema(32, 5, DOMAIN, seed=0)
        sketch = schema.create_sketch()
        sketch.update(100)
        nonzero_per_table = (sketch.counters != 0).sum(axis=1)
        assert nonzero_per_table.tolist() == [1] * 5

    def test_update_bulk_matches_element_updates(self):
        schema = HashSketchSchema(16, 5, DOMAIN, seed=1)
        values = np.random.default_rng(0).integers(0, DOMAIN, 400)
        weights = np.random.default_rng(1).normal(size=400)
        bulk = schema.create_sketch()
        bulk.update_bulk(values, weights)
        loop = schema.create_sketch()
        for v, w in zip(values, weights):
            loop.update(int(v), float(w))
        assert np.allclose(bulk.counters, loop.counters)

    def test_deletes_cancel(self):
        schema = HashSketchSchema(16, 3, DOMAIN, seed=2)
        sketch = schema.create_sketch()
        for v in (1, 2, 3):
            sketch.update(v)
        for v in (1, 2, 3):
            sketch.update(v, -1.0)
        assert np.allclose(sketch.counters, 0.0)

    def test_domain_check(self):
        schema = HashSketchSchema(8, 3, DOMAIN, seed=3)
        sketch = schema.create_sketch()
        with pytest.raises(DomainError):
            sketch.update(DOMAIN)
        with pytest.raises(DomainError):
            sketch.point_estimate(-1)

    def test_size_accounting(self):
        schema = HashSketchSchema(32, 7, DOMAIN, seed=4)
        sketch = schema.create_sketch()
        assert sketch.size_in_counters() == 32 * 7
        assert sketch.seed_words() == 7 * 2 + 7 * 4  # pairwise + fourwise

    def test_weight_shape_mismatch(self):
        schema = HashSketchSchema(8, 3, DOMAIN, seed=5)
        sketch = schema.create_sketch()
        with pytest.raises(ValueError):
            sketch.update_bulk(np.asarray([1, 2]), np.asarray([1.0]))


class TestPointEstimates:
    def test_single_value_stream_is_exact(self):
        schema = HashSketchSchema(16, 5, DOMAIN, seed=6)
        sketch = schema.create_sketch()
        sketch.update_bulk(np.asarray([42] * 17))
        assert sketch.point_estimate(42) == pytest.approx(17.0)

    def test_heavy_value_estimated_well(self, small_zipf):
        # small_zipf has domain 256; rebuild over our schema domain.
        counts = np.zeros(DOMAIN)
        counts[: small_zipf.domain_size] = small_zipf.counts
        freqs = FrequencyVector(counts)
        schema = HashSketchSchema(64, 7, DOMAIN, seed=7)
        sketch = schema.sketch_of(freqs)
        top_value = int(np.argmax(counts))
        estimate = sketch.point_estimate(top_value)
        assert estimate == pytest.approx(counts[top_value], rel=0.1)

    def test_all_point_estimates_match_single(self):
        schema = HashSketchSchema(16, 5, DOMAIN, seed=8)
        sketch = schema.create_sketch()
        sketch.update_bulk(np.random.default_rng(2).integers(0, DOMAIN, 200))
        all_estimates = sketch.all_point_estimates()
        for value in (0, 17, 255, DOMAIN - 1):
            assert all_estimates[value] == pytest.approx(
                sketch.point_estimate(value)
            )

    def test_empty_values_empty_result(self):
        schema = HashSketchSchema(8, 3, DOMAIN, seed=9)
        assert schema.create_sketch().point_estimates(np.zeros(0, np.int64)).size == 0


class TestJoinEstimation:
    def test_disjoint_single_values_near_zero(self):
        schema = HashSketchSchema(64, 7, DOMAIN, seed=10)
        f = schema.create_sketch()
        g = schema.create_sketch()
        f.update_bulk(np.asarray([1] * 10))
        g.update_bulk(np.asarray([2] * 10))
        # Expectation 0; a single bucket collision would give +/-100, but
        # the median over 7 tables suppresses it.
        assert abs(f.est_join_size(g)) < 100.0

    def test_common_single_value_exact(self):
        schema = HashSketchSchema(64, 5, DOMAIN, seed=11)
        f = schema.create_sketch()
        g = schema.create_sketch()
        f.update_bulk(np.asarray([7] * 3))
        g.update_bulk(np.asarray([7] * 5))
        assert f.est_join_size(g) == pytest.approx(15.0)

    def test_unbiasedness_across_schemas(self):
        f = FrequencyVector.from_values([0, 0, 1, 2, 2, 2, 3], DOMAIN)
        g = FrequencyVector.from_values([0, 2, 2, 3, 3], DOMAIN)
        actual = f.join_size(g)
        estimates = []
        for seed in range(400):
            schema = HashSketchSchema(8, 1, DOMAIN, seed=seed)
            estimates.append(schema.sketch_of(f).est_join_size(schema.sketch_of(g)))
        assert np.mean(estimates) == pytest.approx(actual, rel=0.25)

    def test_table_join_estimates_shape(self):
        schema = HashSketchSchema(16, 9, DOMAIN, seed=12)
        f, g = schema.create_sketch(), schema.create_sketch()
        assert f.table_join_estimates(g).shape == (9,)

    def test_self_join_estimate(self, small_zipf):
        counts = np.zeros(DOMAIN)
        counts[: small_zipf.domain_size] = small_zipf.counts
        freqs = FrequencyVector(counts)
        schema = HashSketchSchema(128, 7, DOMAIN, seed=13)
        estimate = schema.sketch_of(freqs).est_self_join_size()
        actual = freqs.self_join_size()
        assert estimate == pytest.approx(actual, rel=0.2)


class TestLinearity:
    def test_subtract_known_frequencies_zeroes_sketch(self):
        schema = HashSketchSchema(16, 5, DOMAIN, seed=14)
        freqs = FrequencyVector.from_values([3, 3, 8, 9, 9, 9], DOMAIN)
        sketch = schema.sketch_of(freqs)
        support = freqs.support()
        sketch.subtract_frequencies(support, freqs.counts[support])
        assert np.allclose(sketch.counters, 0.0)

    def test_subtract_equals_sketch_of_residual(self):
        schema = HashSketchSchema(16, 5, DOMAIN, seed=15)
        freqs = FrequencyVector.from_values([1] * 5 + [2] * 9 + [3], DOMAIN)
        sketch = schema.sketch_of(freqs)
        sketch.subtract_frequencies(np.asarray([2]), np.asarray([9.0]))
        residual = freqs.copy()
        residual.apply_bulk(np.asarray([2]), np.asarray([-9.0]))
        assert np.allclose(sketch.counters, schema.sketch_of(residual).counters)

    def test_subtract_duplicate_values_accumulates(self):
        schema = HashSketchSchema(16, 3, DOMAIN, seed=16)
        sketch = schema.create_sketch()
        sketch.update_bulk(np.asarray([4] * 10))
        sketch.subtract_frequencies(np.asarray([4, 4]), np.asarray([6.0, 4.0]))
        assert np.allclose(sketch.counters, 0.0)

    def test_merge(self):
        schema = HashSketchSchema(16, 3, DOMAIN, seed=17)
        a, b = schema.create_sketch(), schema.create_sketch()
        a.update(1)
        b.update(2, 5.0)
        merged = a.merged_with(b)
        direct = schema.create_sketch()
        direct.update(1)
        direct.update(2, 5.0)
        assert np.allclose(merged.counters, direct.counters)
        assert merged.absolute_mass == pytest.approx(6.0)

    def test_copy_independent(self):
        schema = HashSketchSchema(8, 3, DOMAIN, seed=18)
        sketch = schema.create_sketch()
        sketch.update(1)
        clone = sketch.copy()
        clone.update(2)
        assert not np.allclose(sketch.counters, clone.counters)

    def test_incompatible_rejected(self):
        a = HashSketchSchema(8, 3, DOMAIN, seed=1).create_sketch()
        b = HashSketchSchema(8, 3, DOMAIN, seed=2).create_sketch()
        with pytest.raises(IncompatibleSketchError):
            a.est_join_size(b)
