"""Tests for the query AST and predicates."""

from __future__ import annotations

import pytest

from repro.errors import QueryError
from repro.streams.query import (
    FunctionPredicate,
    InSetPredicate,
    JoinAverageQuery,
    JoinCountQuery,
    JoinSumQuery,
    PointQuery,
    RangePredicate,
    SelfJoinQuery,
    TruePredicate,
)


class TestPredicates:
    def test_true_predicate(self):
        assert TruePredicate().accepts(0)
        assert TruePredicate().accepts(10**9)

    def test_range_predicate(self):
        pred = RangePredicate(10, 20)
        assert pred.accepts(10)
        assert pred.accepts(19)
        assert not pred.accepts(20)
        assert not pred.accepts(9)

    def test_range_predicate_rejects_empty(self):
        with pytest.raises(QueryError):
            RangePredicate(5, 5)

    def test_in_set_predicate(self):
        pred = InSetPredicate(frozenset({1, 5}))
        assert pred.accepts(1)
        assert not pred.accepts(2)

    def test_function_predicate(self):
        pred = FunctionPredicate(lambda v: v % 2 == 0)
        assert pred.accepts(4)
        assert not pred.accepts(5)


class TestQueryDataclasses:
    def test_queries_are_frozen_values(self):
        assert JoinCountQuery("f", "g") == JoinCountQuery("f", "g")
        assert SelfJoinQuery("f") != SelfJoinQuery("g")
        assert PointQuery("f", 3).value == 3
        assert JoinSumQuery("f", "g", "fw").measure_stream == "fw"
        assert JoinAverageQuery("f", "g", "fw").left == "f"
