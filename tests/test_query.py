"""Tests for the query AST and predicates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import QueryError
from repro.streams.query import (
    FunctionPredicate,
    InSetPredicate,
    JoinAverageQuery,
    JoinCountQuery,
    JoinSumQuery,
    ModuloPredicate,
    PointQuery,
    RangePredicate,
    SelfJoinQuery,
    TruePredicate,
)


class TestPredicates:
    def test_true_predicate(self):
        assert TruePredicate().accepts(0)
        assert TruePredicate().accepts(10**9)

    def test_range_predicate(self):
        pred = RangePredicate(10, 20)
        assert pred.accepts(10)
        assert pred.accepts(19)
        assert not pred.accepts(20)
        assert not pred.accepts(9)

    def test_range_predicate_rejects_empty(self):
        with pytest.raises(QueryError):
            RangePredicate(5, 5)

    def test_in_set_predicate(self):
        pred = InSetPredicate(frozenset({1, 5}))
        assert pred.accepts(1)
        assert not pred.accepts(2)

    def test_function_predicate(self):
        pred = FunctionPredicate(lambda v: v % 2 == 0)
        assert pred.accepts(4)
        assert not pred.accepts(5)

    def test_modulo_predicate(self):
        pred = ModuloPredicate(3, 1)
        assert pred.accepts(1)
        assert pred.accepts(4)
        assert not pred.accepts(3)

    def test_modulo_predicate_validates(self):
        with pytest.raises(QueryError):
            ModuloPredicate(0, 0)
        with pytest.raises(QueryError):
            ModuloPredicate(3, 3)
        with pytest.raises(QueryError):
            ModuloPredicate(3, -1)


class TestAcceptsBulk:
    """Every predicate's vectorised path must agree with accepts()."""

    PREDICATES = [
        TruePredicate(),
        RangePredicate(10, 20),
        InSetPredicate(frozenset({1, 5, 17})),
        ModuloPredicate(4, 2),
        FunctionPredicate(lambda v: v % 2 == 0),
    ]

    @pytest.mark.parametrize(
        "pred", PREDICATES, ids=[type(p).__name__ for p in PREDICATES]
    )
    def test_bulk_matches_scalar(self, pred):
        values = np.arange(40, dtype=np.int64)
        mask = pred.accepts_bulk(values)
        assert mask.dtype == np.bool_
        assert mask.tolist() == [pred.accepts(int(v)) for v in values]

    @pytest.mark.parametrize(
        "pred", PREDICATES, ids=[type(p).__name__ for p in PREDICATES]
    )
    def test_bulk_handles_empty_batch(self, pred):
        mask = pred.accepts_bulk(np.asarray([], dtype=np.int64))
        assert mask.size == 0
        assert mask.dtype == np.bool_


class TestQueryDataclasses:
    def test_queries_are_frozen_values(self):
        assert JoinCountQuery("f", "g") == JoinCountQuery("f", "g")
        assert SelfJoinQuery("f") != SelfJoinQuery("g")
        assert PointQuery("f", 3).value == 3
        assert JoinSumQuery("f", "g", "fw").measure_stream == "fw"
        assert JoinAverageQuery("f", "g", "fw").left == "f"
