"""Tests for ``repro.profile`` — sampling profiler + flight recorder.

Covers: the sampler's hot-path contract (disabled ``mark`` is free,
samples attribute to the innermost tracer span), the exporters
(JSONL/collapsed/speedscope round trips, the ``top`` aggregate), the
telemetry ring's Hokusai-style aging invariants (byte bound, tick
conservation, chronology), the flight recorder's tick pipeline
(pulses + obs counter deltas + audit gauges), the monitor's
``/profile``/``/timeseries``/``/dashboard`` endpoints, and a
concurrent-scrape stress run against a live ingesting engine.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.config import SketchParameters
from repro.monitor import AUDIT
from repro.monitor.service import MonitorServer, live_source, parse_prometheus
from repro.obs import METRICS
from repro.profile import (
    FlightRecorder,
    SamplingProfiler,
    TelemetryFrame,
    TelemetryRing,
    aggregate_samples,
    parse_collapsed,
    profile_from_jsonl,
    profile_to_collapsed,
    profile_to_jsonl,
    profile_to_speedscope,
    render_top,
    validate_profile,
    validate_speedscope,
    validate_timeseries,
    timeseries_from_jsonl,
    timeseries_to_jsonl,
)
from repro.streams.engine import StreamEngine
from repro.streams.query import JoinCountQuery
from repro.trace import TRACER


def _make_sample(t, frames, span=None, activity=None, weight=0.01, thread=1):
    return {
        "t": t,
        "thread": thread,
        "frames": frames,
        "span": span,
        "activity": activity,
        "weight": weight,
    }


def _make_snapshot(samples):
    return {
        "version": 1,
        "kind": "repro.profile",
        "hz": 100.0,
        "dropped": 0,
        "samples": samples,
    }


SYNTHETIC = _make_snapshot(
    [
        _make_sample(0.00, ["m:main:1", "m:ingest:2"], activity="engine.ingest"),
        _make_sample(0.01, ["m:main:1", "m:ingest:2"], activity="engine.ingest"),
        _make_sample(0.02, ["m:main:1", "m:answer:3"], span="estimate.skim_join"),
        _make_sample(0.03, ["m:main:1", "m:answer:3", "m:skim:4"], span="skim"),
        _make_sample(0.04, ["m:other:9"], thread=2),
    ]
)


class TestSamplingProfiler:
    def test_disabled_mark_and_sample_are_noops(self):
        profiler = SamplingProfiler(enabled=False)
        profiler.mark("engine.ingest")
        assert profiler.activity is None
        assert profiler.sample_once() == 0
        assert profiler.samples() == []

    def test_sample_once_attributes_span_and_activity(self):
        profiler = SamplingProfiler(enabled=True)
        TRACER.enable()
        profiler.mark("engine.answer")
        with TRACER.span("estimate.skim_join"):
            assert profiler.sample_once() >= 1
        ours = [
            s for s in profiler.samples() if s.thread_id == threading.get_ident()
        ]
        assert len(ours) == 1
        sample = ours[0]
        assert sample.span == "estimate.skim_join"
        assert sample.activity == "engine.answer"
        # The caller's own function is on the recorded stack.
        assert any("test_sample_once_attributes" in f for f in sample.frames)

    def test_max_samples_bound_counts_drops(self):
        profiler = SamplingProfiler(enabled=True, max_samples=2)
        for _ in range(4):
            profiler.sample_once()
        assert profiler.sample_count() == 2
        assert profiler.dropped >= 2
        assert profiler.snapshot()["dropped"] == profiler.dropped

    def test_daemon_collects_and_double_start_raises(self):
        profiler = SamplingProfiler(enabled=False)
        profiler.start(hz=250)
        try:
            with pytest.raises(RuntimeError):
                profiler.start()
            deadline = time.monotonic() + 5.0
            while profiler.sample_count() == 0 and time.monotonic() < deadline:
                sum(i * i for i in range(10_000))  # keep a stack alive
        finally:
            profiler.stop()
        assert profiler.sample_count() > 0
        assert not profiler.enabled
        profiler.stop()  # idempotent
        snapshot = validate_profile(profiler.snapshot())
        assert snapshot["kind"] == "repro.profile"

    def test_invalid_hz_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler().start(hz=0)


class TestProfileExports:
    def test_jsonl_round_trip(self):
        restored = profile_from_jsonl(profile_to_jsonl(SYNTHETIC))
        assert restored == SYNTHETIC

    def test_validate_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_profile({"version": 1, "kind": "repro.profile"})
        with pytest.raises(ValueError):
            validate_profile(_make_snapshot([{"t": 0.0}]))
        with pytest.raises(ValueError):
            validate_profile(_make_snapshot([_make_sample(0.0, [])]))
        with pytest.raises(ValueError):
            profile_from_jsonl("")

    def test_collapsed_round_trip(self):
        collapsed = profile_to_collapsed(SYNTHETIC)
        counts = parse_collapsed(collapsed)
        assert sum(counts.values()) == len(SYNTHETIC["samples"])
        assert counts["m:main:1;m:ingest:2"] == 2
        with pytest.raises(ValueError):
            parse_collapsed("nocount\n")

    def test_speedscope_document_validates(self):
        doc = profile_to_speedscope(SYNTHETIC)
        validate_speedscope(doc)
        assert len(doc["profiles"]) == 2  # one per sampled thread
        total_weight = sum(sum(p["weights"]) for p in doc["profiles"])
        assert total_weight == pytest.approx(
            sum(s["weight"] for s in SYNTHETIC["samples"])
        )

    def test_aggregate_and_render_top(self):
        agg = aggregate_samples(SYNTHETIC)
        assert agg["samples"] == 5
        assert agg["seconds"] == pytest.approx(0.05)
        rows = {row["frame"]: row for row in agg["frames"]}
        # m:main:1 is never a leaf but is on 4 of 5 stacks.
        assert rows["m:main:1"]["self"] == 0.0
        assert rows["m:main:1"]["total"] == pytest.approx(0.04)
        assert rows["m:ingest:2"]["self"] == pytest.approx(0.02)
        assert agg["spans"]["estimate.skim_join"] == pytest.approx(0.01)
        assert agg["activities"]["engine.ingest"] == pytest.approx(0.02)
        report = render_top(agg, limit=3)
        assert "m:ingest:2" in report
        assert "span attribution" in report


class TestTelemetryFrame:
    def test_merge_sums_counts_and_weights_gauges_by_duration(self):
        a = TelemetryFrame(0.0, 1.0, {"x": 10.0}, {"g": 1.0})
        b = TelemetryFrame(1.0, 4.0, {"x": 5.0, "y": 2.0}, {"g": 5.0})
        merged = a.merge(b)
        assert merged.counts == {"x": 15.0, "y": 2.0}
        # 1 s at 1.0 and 3 s at 5.0 -> duration-weighted mean 4.0.
        assert merged.gauges["g"] == pytest.approx(4.0)
        assert (merged.t0, merged.t1) == (0.0, 4.0)
        assert merged.res == 1 and merged.merged == 2

    def test_rate_and_inverted_window(self):
        frame = TelemetryFrame(0.0, 2.0, {"x": 10.0}, {})
        assert frame.rate("x") == pytest.approx(5.0)
        assert frame.rate("missing") == 0.0
        with pytest.raises(ValueError):
            TelemetryFrame(2.0, 1.0, {}, {})


class TestTelemetryRing:
    def _push_many(self, ring, n, fat=False):
        counts = {"engine.elements.seen": 100.0}
        if fat:
            counts = {f"counter.{i}": float(i) for i in range(30)}
        for i in range(n):
            ring.push(TelemetryFrame(float(i), float(i + 1), dict(counts), {}))

    def test_aging_preserves_every_tick(self):
        ring = TelemetryRing(tier_capacity=4, tiers=3, max_bytes=1 << 20)
        self._push_many(ring, 100)
        frames = ring.frames()
        assert ring.aged > 0
        assert sum(f.merged for f in frames) == 100  # no window discarded
        assert any(f.res > 0 for f in frames)
        # Chronological, non-overlapping, coarse history first.
        for prev, cur in zip(frames, frames[1:]):
            assert cur.t0 >= prev.t1 - 1e-9

    def test_byte_budget_enforced_on_every_push(self):
        ring = TelemetryRing(tier_capacity=4, tiers=3, max_bytes=8192)
        counts = {f"counter.{i}": float(i) for i in range(30)}
        for i in range(200):
            ring.push(TelemetryFrame(float(i), float(i + 1), dict(counts), {}))
            assert ring.approx_bytes <= 8192
        assert sum(f.merged for f in ring.frames()) == 200

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TelemetryRing(tier_capacity=1)
        with pytest.raises(ValueError):
            TelemetryRing(tiers=0)
        with pytest.raises(ValueError):
            TelemetryRing(max_bytes=0)


class TestFlightRecorder:
    def test_disabled_pulse_and_tick_are_noops(self):
        recorder = FlightRecorder(enabled=False)
        recorder.pulse("ingest.elements", 10)
        assert recorder.tick() is None
        assert recorder.frames() == []

    def test_tick_combines_pulses_counters_and_audit_state(self):
        recorder = FlightRecorder(enabled=True)
        METRICS.enable()
        METRICS.count("engine.elements.seen", 500)
        recorder.pulse("ingest.elements", 500)
        frame = recorder.tick()
        assert frame is not None
        assert frame.counts["ingest.elements"] == 500.0
        assert frame.counts["engine.elements.seen"] == 500.0
        assert frame.gauges["audit.alerts"] == 0.0
        # Counters are diffed: an unchanged total contributes no delta.
        second = recorder.tick()
        assert "engine.elements.seen" not in second.counts
        METRICS.count("engine.elements.seen", 7)
        third = recorder.tick()
        assert third.counts["engine.elements.seen"] == 7.0

    def test_stop_closes_final_window(self):
        recorder = FlightRecorder(enabled=False, interval=0.05)
        recorder.start()
        recorder.pulse("queries", 3)
        recorder.stop()
        assert not recorder.enabled
        frames = recorder.frames()
        assert sum(f.counts.get("queries", 0.0) for f in frames) == 3.0
        recorder.stop()  # idempotent

    def test_snapshot_round_trips_as_jsonl(self):
        recorder = FlightRecorder(enabled=True)
        recorder.pulse("queries", 2)
        recorder.tick()
        snapshot = recorder.snapshot()
        validate_timeseries(snapshot)
        restored = timeseries_from_jsonl(timeseries_to_jsonl(snapshot))
        assert restored["kind"] == "repro.timeseries"
        assert len(restored["frames"]) == len(snapshot["frames"])

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(interval=0.0)
        with pytest.raises(ValueError):
            FlightRecorder().start(interval=-1.0)


def _get(url: str) -> tuple[int, str, dict]:
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status, resp.read().decode("utf-8"), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8"), dict(exc.headers)


def _head(url: str) -> tuple[int, bytes, dict]:
    request = urllib.request.Request(url, method="HEAD")
    with urllib.request.urlopen(request, timeout=10) as resp:
        return resp.status, resp.read(), dict(resp.headers)


class TestMonitorProfileEndpoints:
    def test_profile_timeseries_dashboard_round_trip(self):
        from repro.profile import PROFILER, RECORDER

        PROFILER.enable()
        RECORDER.enable()
        TRACER.enable()
        with TRACER.span("estimate.skim_join"):
            PROFILER.sample_once()
        RECORDER.pulse("ingest.elements", 42)
        RECORDER.tick()
        RECORDER.pulse("ingest.elements", 17)
        time.sleep(0.01)  # sparklines need two frames with real width
        RECORDER.tick()
        with MonitorServer(live_source(), port=0) as server:
            status, body, headers = _get(f"{server.url}/profile")
            assert status == 200
            profile = validate_profile(json.loads(body))
            assert profile["samples"]
            assert int(headers["Content-Length"]) == len(body.encode())

            status, body, _ = _get(f"{server.url}/timeseries")
            assert status == 200
            series = json.loads(body)
            assert series["kind"] == "repro.timeseries"
            assert series["frames"][0]["counts"]["ingest.elements"] == 42.0

            status, body, _ = _get(f"{server.url}/dashboard")
            assert status == 200
            assert "repro monitor" in body and "<svg" in body

    def test_head_requests_carry_length_but_no_body(self):
        with MonitorServer(live_source(), port=0) as server:
            for endpoint in ("/metrics", "/dashboard", "/profile"):
                status, body, headers = _head(f"{server.url}{endpoint}")
                assert status == 200, endpoint
                assert body == b"", endpoint
                assert int(headers["Content-Length"]) > 0, endpoint

    def test_audits_rejects_unknown_parameters(self):
        with MonitorServer(live_source(), port=0) as server:
            status, body, _ = _get(f"{server.url}/audits?bogus=1")
            assert status == 400
            assert "unknown query parameter" in body
            status, _, _ = _get(f"{server.url}/audits?n=5")
            assert status == 200


class TestConcurrentScrape:
    """N threads hammer the monitor while an engine ingests live.

    The registries are deliberately lock-free; the serving path must
    still never raise, and scraped counters must be monotone.
    """

    N_SCRAPERS = 4
    DURATION = 1.5

    def test_scrape_under_live_ingest(self, rng):
        METRICS.enable()
        AUDIT.enable()
        engine = StreamEngine(
            1 << 10,
            SketchParameters(width=64, depth=5),
            synopsis="skimmed",
            seed=3,
        )
        for name in ("f", "g"):
            engine.register_stream(name)
        # Warm every metric name once so scrapers never race a
        # first-insert resize of the unsynchronised registry dicts.
        for name in ("f", "g"):
            engine.process_bulk(name, rng.integers(0, 1 << 10, size=512))
        engine.answer(JoinCountQuery("f", "g"))

        stop = threading.Event()
        errors: list[str] = []

        def ingest():
            local = rng.integers(0, 1 << 10, size=(64, 256))
            i = 0
            while not stop.is_set():
                engine.process_bulk("f", local[i % 64])
                engine.process_bulk("g", local[(i + 7) % 64])
                engine.answer(JoinCountQuery("f", "g"))
                i += 1

        seen_counters: list[list[float]] = [[] for _ in range(self.N_SCRAPERS)]

        def scrape(slot: int):
            while not stop.is_set():
                try:
                    status, body, _ = _get(f"{server.url}/metrics")
                    if status != 200:
                        errors.append(f"scraper {slot}: /metrics {status}: {body}")
                        return
                    samples = dict(parse_prometheus(body))
                    seen_counters[slot].append(
                        samples["repro_engine_elements_seen_total"]
                    )
                    status, body, _ = _get(f"{server.url}/dashboard")
                    if status != 200 or "repro monitor" not in body:
                        errors.append(f"scraper {slot}: /dashboard {status}: {body}")
                        return
                except Exception as exc:  # noqa: BLE001 - collected for assert
                    errors.append(f"scraper {slot}: {exc!r}")
                    return

        with MonitorServer(live_source(), port=0) as server:
            threads = [threading.Thread(target=ingest, daemon=True)]
            threads += [
                threading.Thread(target=scrape, args=(slot,), daemon=True)
                for slot in range(self.N_SCRAPERS)
            ]
            for thread in threads:
                thread.start()
            time.sleep(self.DURATION)
            stop.set()
            for thread in threads:
                thread.join(timeout=10)

        assert errors == []
        for scraped in seen_counters:
            assert len(scraped) >= 1
            assert scraped == sorted(scraped), "counter went backwards"
