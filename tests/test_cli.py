"""Tests for the ``python -m repro.eval`` experiment runner."""

from __future__ import annotations

import json

import pytest

from repro.eval.__main__ import EXPERIMENTS, main
from repro.obs import METRICS, validate_snapshot


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_example1_runs(self, capsys):
        assert main(["example1"]) == 0
        out = capsys.readouterr().out
        assert "improvement_factor" in out
        assert "took" in out

    def test_dyadic_cost_runs(self, capsys):
        assert main(["dyadic-cost"]) == 0
        assert "saving_factor" in capsys.readouterr().out

    def test_multiple_experiments(self, capsys):
        assert main(["example1", "example1"]) == 0
        assert capsys.readouterr().out.count("== example1 ==") == 2

    def test_trials_flag_parses(self, capsys):
        assert main(["example1", "--trials", "2"]) == 0

    def test_smoke_experiment_runs(self, capsys):
        assert main(["smoke"]) == 0
        assert "Smoke" in capsys.readouterr().out


class TestMetricsOut:
    def test_metrics_out_writes_valid_snapshot(self, tmp_path, capsys):
        out = tmp_path / "m.json"
        assert main(["smoke", "--metrics-out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert f"metrics snapshot written to {out}" in stdout
        snap = validate_snapshot(json.loads(out.read_text()))
        # The smoke workload must exercise update, skim and estimate paths.
        assert snap["counters"]["sketch.update.elements"] > 0
        assert snap["counters"]["skim.passes"] > 0
        assert snap["counters"]["estimate.joins"] > 0
        assert snap["counters"]["eval.experiments"] == 1
        assert snap["histograms"]["eval.experiment.seconds"]["count"] == 1
        assert snap["histograms"]["skim.seconds"]["count"] > 0

    def test_metrics_out_disables_registry_afterwards(self, tmp_path, capsys):
        out = tmp_path / "m.json"
        assert main(["example1", "--metrics-out", str(out)]) == 0
        assert not METRICS.enabled
        validate_snapshot(json.loads(out.read_text()))

    def test_snapshot_validator_cli(self, tmp_path, capsys):
        from repro.obs.__main__ import main as obs_main

        out = tmp_path / "m.json"
        assert main(["smoke", "--metrics-out", str(out)]) == 0
        capsys.readouterr()
        assert obs_main([str(out), "sketch.update.elements", "skim.passes"]) == 0
        assert obs_main([str(out), "no.such.metric"]) == 1
        assert obs_main([]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert obs_main([str(bad)]) == 1

    def test_without_metrics_out_nothing_is_recorded(self, capsys):
        assert main(["example1"]) == 0
        assert list(METRICS.metric_names()) == []


class TestObsDiffCLI:
    def _write_snapshot(self, path, queries: int) -> None:
        from repro.obs import MetricsRegistry, write_snapshot

        reg = MetricsRegistry(enabled=True)
        reg.count("engine.queries", queries)
        reg.gauge("skim.threshold", 5.0)
        reg.observe("engine.answer.seconds", 0.01 * queries)
        write_snapshot(str(path), reg.snapshot())

    def test_diff_reports_deltas(self, tmp_path, capsys):
        from repro.obs.__main__ import main as obs_main

        before, after = tmp_path / "before.json", tmp_path / "after.json"
        self._write_snapshot(before, 2)
        self._write_snapshot(after, 7)
        assert obs_main(["diff", str(before), str(after)]) == 0
        out = capsys.readouterr().out
        assert "engine.queries: 2 -> 7 (+5)" in out
        assert "skim.threshold: 5 -> 5 (+0)" in out
        assert "engine.answer.seconds" in out

    def test_diff_json_output_is_machine_readable(self, tmp_path, capsys):
        from repro.obs.__main__ import main as obs_main

        before, after = tmp_path / "before.json", tmp_path / "after.json"
        self._write_snapshot(before, 1)
        self._write_snapshot(after, 4)
        assert obs_main(["diff", str(before), str(after), "--json"]) == 0
        diff = json.loads(capsys.readouterr().out)
        assert diff["kind"] == "repro.obs-diff"
        assert diff["counters"]["engine.queries"]["delta"] == 3.0

    def test_diff_usage_and_error_paths(self, tmp_path, capsys):
        from repro.obs.__main__ import main as obs_main

        good = tmp_path / "good.json"
        self._write_snapshot(good, 1)
        assert obs_main(["diff", str(good)]) == 2  # needs two files
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert obs_main(["diff", str(good), str(bad)]) == 1
        assert obs_main(["diff", str(good), str(tmp_path / "missing.json")]) == 1


class TestFigureOutput:
    def test_figure5_output_includes_table_and_chart(self):
        from repro.eval.__main__ import _figure5_output
        from repro.eval.figures import ExperimentScale, run_figure5
        from repro.eval.runner import SweepConfig

        tiny = ExperimentScale(
            domain_size=1 << 10,
            stream_total=10_000,
            sweep=SweepConfig(
                widths=(32,), depths=(3,), space_budgets=(96,), trials=1, seed=1
            ),
            label="tiny",
        )
        results = run_figure5(1.0, (5,), tiny, methods=("skimmed",))
        text = _figure5_output("Figure 5 (tiny)", results)
        assert "space (words)" in text  # the table
        assert "x = skimmed s=5" in text  # the chart legend
