"""Tests for the ``python -m repro.eval`` experiment runner."""

from __future__ import annotations

import pytest

from repro.eval.__main__ import EXPERIMENTS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_example1_runs(self, capsys):
        assert main(["example1"]) == 0
        out = capsys.readouterr().out
        assert "improvement_factor" in out
        assert "took" in out

    def test_dyadic_cost_runs(self, capsys):
        assert main(["dyadic-cost"]) == 0
        assert "saving_factor" in capsys.readouterr().out

    def test_multiple_experiments(self, capsys):
        assert main(["example1", "example1"]) == 0
        assert capsys.readouterr().out.count("== example1 ==") == 2

    def test_trials_flag_parses(self, capsys):
        assert main(["example1", "--trials", "2"]) == 0


class TestFigureOutput:
    def test_figure5_output_includes_table_and_chart(self):
        from repro.eval.__main__ import _figure5_output
        from repro.eval.figures import ExperimentScale, run_figure5
        from repro.eval.runner import SweepConfig

        tiny = ExperimentScale(
            domain_size=1 << 10,
            stream_total=10_000,
            sweep=SweepConfig(
                widths=(32,), depths=(3,), space_budgets=(96,), trials=1, seed=1
            ),
            label="tiny",
        )
        results = run_figure5(1.0, (5,), tiny, methods=("skimmed",))
        text = _figure5_output("Figure 5 (tiny)", results)
        assert "space (words)" in text  # the table
        assert "x = skimmed s=5" in text  # the chart legend
