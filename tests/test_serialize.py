"""Tests for sketch persistence (save/load round trips)."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro import load_sketch, save_sketch, sketch_from_state, sketch_state
from repro.core.estimator import SkimmedSketchSchema
from repro.sketches.agms import AGMSSchema
from repro.sketches.dyadic import DyadicSketchSchema
from repro.sketches.hash_sketch import HashSketchSchema
from repro.sketches.serialize import (
    FORMAT_VERSION,
    SerializationError,
    merge_sketch_state,
    sketch_from_spec,
    sketch_spec,
)
from repro.streams.generators import zipf_frequencies

DOMAIN = 1 << 10


def loaded_roundtrip(sketch):
    buffer = io.BytesIO()
    save_sketch(sketch, buffer)
    buffer.seek(0)
    return load_sketch(buffer)


class TestHashSketchRoundTrip:
    def test_counters_and_mass_preserved(self):
        schema = HashSketchSchema(32, 5, DOMAIN, seed=3)
        sketch = schema.sketch_of(zipf_frequencies(DOMAIN, 5_000, 1.2))
        restored = loaded_roundtrip(sketch)
        assert np.array_equal(restored.counters, sketch.counters)
        assert restored.absolute_mass == sketch.absolute_mass

    def test_restored_sketch_is_join_compatible_with_live_one(self):
        """The whole point: a checkpointed synopsis keeps working."""
        schema = HashSketchSchema(64, 5, DOMAIN, seed=4)
        f = zipf_frequencies(DOMAIN, 10_000, 1.2)
        sketch_f = schema.sketch_of(f)
        restored = loaded_roundtrip(sketch_f)
        live_g = schema.sketch_of(f)
        assert restored.est_join_size(live_g) == pytest.approx(
            sketch_f.est_join_size(live_g)
        )

    def test_restored_sketch_accepts_updates(self):
        schema = HashSketchSchema(32, 5, DOMAIN, seed=5)
        sketch = schema.create_sketch()
        sketch.update(1)
        restored = loaded_roundtrip(sketch)
        restored.update(1)
        assert restored.point_estimate(1) == pytest.approx(2.0)

    def test_file_round_trip(self, tmp_path):
        schema = HashSketchSchema(16, 3, DOMAIN, seed=6)
        sketch = schema.create_sketch()
        sketch.update(7, 2.5)
        path = tmp_path / "sketch.npz"
        save_sketch(sketch, path)
        restored = load_sketch(path)
        assert np.array_equal(restored.counters, sketch.counters)


class TestOtherKinds:
    def test_agms_round_trip(self):
        schema = AGMSSchema(8, 5, DOMAIN, seed=7)
        sketch = schema.sketch_of(zipf_frequencies(DOMAIN, 3_000, 1.0))
        restored = loaded_roundtrip(sketch)
        assert np.array_equal(restored.atomic_sketches, sketch.atomic_sketches)
        assert restored.est_self_join_size() == pytest.approx(
            sketch.est_self_join_size()
        )

    def test_dyadic_round_trip(self):
        schema = DyadicSketchSchema(32, 3, DOMAIN, seed=8, coarse_cutoff=32)
        sketch = schema.sketch_of(zipf_frequencies(DOMAIN, 3_000, 1.3))
        restored = loaded_roundtrip(sketch)
        for level in range(schema.num_levels):
            assert np.array_equal(
                restored.level_sketch(level).counters,
                sketch.level_sketch(level).counters,
            )

    def test_skimmed_round_trip(self):
        schema = SkimmedSketchSchema(
            64, 5, DOMAIN, seed=9, threshold_multiplier=1.5
        )
        f = zipf_frequencies(DOMAIN, 10_000, 1.3)
        sketch = schema.sketch_of(f)
        restored = loaded_roundtrip(sketch)
        assert restored.schema.threshold_multiplier == 1.5
        assert restored.est_self_join_size() == pytest.approx(
            sketch.est_self_join_size()
        )

    def test_skimmed_dyadic_round_trip(self):
        schema = SkimmedSketchSchema(32, 3, DOMAIN, seed=10, dyadic=True)
        sketch = schema.create_sketch()
        sketch.update(5, 3.0)
        restored = loaded_roundtrip(sketch)
        assert restored.schema.dyadic
        assert restored.point_estimate(5) == pytest.approx(3.0)


class TestSpecHelpers:
    """Schema-only specs: build empty twins, merge shipped counter state."""

    SCHEMAS = [
        HashSketchSchema(16, 3, DOMAIN, seed=4),
        AGMSSchema(8, 3, DOMAIN, seed=4),
        DyadicSketchSchema(16, 3, DOMAIN, seed=4),
        SkimmedSketchSchema(16, 3, DOMAIN, seed=4),
        SkimmedSketchSchema(16, 3, DOMAIN, seed=4, dyadic=True),
    ]

    @pytest.mark.parametrize(
        "schema",
        SCHEMAS,
        ids=["hash", "agms", "dyadic", "skimmed", "skimmed-dyadic"],
    )
    def test_spec_round_trip_builds_empty_twin(self, schema):
        original = schema.create_sketch()
        twin = sketch_from_spec(sketch_spec(original))
        assert type(twin) is type(original)
        left, right = sketch_state(original), sketch_state(twin)
        assert left.keys() == right.keys()
        for key, lv in left.items():
            rv = right[key]
            if isinstance(lv, np.ndarray):
                assert np.array_equal(lv, rv), key
            else:
                assert lv == rv, key

    def test_spec_twin_shares_hash_families(self):
        schema = HashSketchSchema(16, 3, DOMAIN, seed=4)
        original = schema.create_sketch()
        twin = sketch_from_spec(sketch_spec(original))
        original.update(9, 2.0)
        twin.update(9, 2.0)
        assert np.array_equal(original.counters, twin.counters)

    def test_merge_sketch_state_adds_counters(self):
        schema = HashSketchSchema(16, 3, DOMAIN, seed=4)
        left, right = schema.create_sketch(), schema.create_sketch()
        left.update(1, 2.0)
        right.update(3, 5.0)
        merged = merge_sketch_state(left, sketch_state(right))
        reference = schema.create_sketch()
        reference.update(1, 2.0)
        reference.update(3, 5.0)
        assert np.array_equal(merged.counters, reference.counters)
        assert merged.absolute_mass == reference.absolute_mass

    def test_merge_rejects_kind_mismatch(self):
        hash_sketch = HashSketchSchema(16, 3, DOMAIN, seed=4).create_sketch()
        agms_state = sketch_state(AGMSSchema(8, 3, DOMAIN, seed=4).create_sketch())
        with pytest.raises(SerializationError):
            merge_sketch_state(hash_sketch, agms_state)

    def test_spec_rejects_unknown_kind_and_version(self):
        with pytest.raises(SerializationError):
            sketch_from_spec({"version": FORMAT_VERSION, "kind": "mystery"})
        with pytest.raises(SerializationError):
            sketch_from_spec({"version": 999, "kind": "hash"})


class TestErrors:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError):
            sketch_from_state({"version": FORMAT_VERSION, "kind": "mystery"})

    def test_bad_version_rejected(self):
        with pytest.raises(SerializationError):
            sketch_from_state({"version": 999, "kind": "hash"})

    def test_unserialisable_object_rejected(self):
        with pytest.raises(SerializationError):
            sketch_state("not a sketch")  # type: ignore[arg-type]

    def test_corrupt_counters_rejected(self):
        schema = HashSketchSchema(8, 3, DOMAIN, seed=11)
        state = sketch_state(schema.create_sketch())
        state["counters"] = np.zeros((1, 1))
        with pytest.raises(SerializationError):
            sketch_from_state(state)

    def test_garbage_archive_rejected(self):
        with pytest.raises(SerializationError):
            load_sketch(io.BytesIO(b"not an npz archive"))
