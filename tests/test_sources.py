"""Tests for the synthetic CDR / SNMP record sources."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SketchParameters
from repro.streams.engine import StreamEngine
from repro.streams.query import JoinCountQuery, RangePredicate
from repro.streams.sources import (
    CallDetailRecord,
    CDRSource,
    InterfaceSample,
    SNMPSource,
    feed_engine,
)


class TestCDRSource:
    def test_validation(self):
        with pytest.raises(ValueError):
            CDRSource(1)
        with pytest.raises(ValueError):
            CDRSource(10, num_cells=0)
        with pytest.raises(ValueError):
            list(CDRSource(10).records(-1))

    def test_record_shape(self):
        records = list(CDRSource(100, num_cells=8, seed=1).records(50))
        assert len(records) == 50
        for record in records:
            assert isinstance(record, CallDetailRecord)
            assert 0 <= record.caller < 100
            assert 0 <= record.callee < 100
            assert 0 <= record.cell < 8
            assert record.duration_seconds >= 1

    def test_caller_popularity_is_skewed(self):
        records = list(CDRSource(1000, popularity_skew=1.2, seed=2).records(5000))
        callers = np.asarray([r.caller for r in records])
        counts = np.bincount(callers, minlength=1000)
        # Top subscriber makes far more calls than the uniform share of 5.
        assert counts.max() > 100

    def test_heavy_callers_and_callees_differ(self):
        source = CDRSource(1000, popularity_skew=1.3, seed=3)
        records = list(source.records(5000))
        top_caller = np.bincount([r.caller for r in records], minlength=1000).argmax()
        top_callee = np.bincount([r.callee for r in records], minlength=1000).argmax()
        assert top_caller != top_callee

    def test_diurnal_durations(self):
        night = CDRSource(100, seed=4)
        day = CDRSource(100, seed=4)
        night_mean = np.mean(
            [r.duration_seconds for r in night.records(2000, hour_of_day=0.0)]
        )
        day_mean = np.mean(
            [r.duration_seconds for r in day.records(2000, hour_of_day=12.0)]
        )
        assert day_mean > night_mean

    def test_deterministic_given_seed(self):
        a = list(CDRSource(50, seed=7).records(10))
        b = list(CDRSource(50, seed=7).records(10))
        assert a == b


class TestSNMPSource:
    def test_validation(self):
        with pytest.raises(ValueError):
            SNMPSource(0)
        with pytest.raises(ValueError):
            SNMPSource(4, mean_octets=0)
        with pytest.raises(ValueError):
            list(SNMPSource(4).polls(-1))

    def test_poll_shape(self):
        polls = list(SNMPSource(16, seed=1).polls(100))
        assert len(polls) == 100
        for sample in polls:
            assert isinstance(sample, InterfaceSample)
            assert 0 <= sample.interface < 16
            assert sample.octets >= 1

    def test_backbone_interfaces_dominate(self):
        polls = list(SNMPSource(64, traffic_skew=1.2, seed=2).polls(3000))
        counts = np.bincount([p.interface for p in polls], minlength=64)
        assert counts[0] > 5 * np.median(counts[counts > 0])


class TestFeedEngine:
    def make_engine(self):
        engine = StreamEngine(
            1 << 10, SketchParameters(width=128, depth=7), seed=9
        )
        return engine

    def test_records_flow_into_streams(self):
        """Join caller activity across two collection windows: the same
        Zipf-popular subscribers dominate both, giving a join large enough
        to estimate well at this sketch size."""
        engine = self.make_engine()
        engine.register_stream("window1")
        engine.register_stream("window2")
        source = CDRSource(1 << 10, seed=5)
        batch1 = list(source.records(2000))
        batch2 = list(source.records(2000))
        fed = feed_engine(engine, "window1", batch1, key=lambda r: r.caller)
        assert fed == 2000
        feed_engine(engine, "window2", batch2, key=lambda r: r.caller)
        answer = engine.answer(JoinCountQuery("window1", "window2"))
        counts1 = np.bincount([r.caller for r in batch1], minlength=1 << 10)
        counts2 = np.bincount([r.caller for r in batch2], minlength=1 << 10)
        exact = float(counts1 @ counts2)
        assert answer == pytest.approx(exact, rel=0.25)

    def test_weighted_feed(self):
        engine = self.make_engine()
        engine.register_stream("durations")
        records = [
            CallDetailRecord(caller=3, callee=4, duration_seconds=60, cell=0),
            CallDetailRecord(caller=3, callee=5, duration_seconds=40, cell=0),
        ]
        feed_engine(
            engine,
            "durations",
            records,
            key=lambda r: r.caller,
            weight=lambda r: r.duration_seconds,
        )
        assert engine.synopsis_for("durations").point_estimate(3) == pytest.approx(
            100.0
        )

    def test_predicates_apply(self):
        engine = self.make_engine()
        engine.register_stream("callers", predicate=RangePredicate(0, 10))
        records = [
            CallDetailRecord(caller=5, callee=1, duration_seconds=1, cell=0),
            CallDetailRecord(caller=500, callee=1, duration_seconds=1, cell=0),
        ]
        feed_engine(engine, "callers", records, key=lambda r: r.caller)
        seen, dropped = engine.stream_stats("callers")
        assert (seen, dropped) == (2, 1)
