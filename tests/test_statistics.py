"""Statistical validation against the theory, using scipy.

These tests treat the theoretical results as *distributional* statements
and test them properly: chi-square goodness of fit for hash uniformity,
empirical-vs-theoretical variance for the AGMS estimator, and coverage of
the Theorem-3 point-estimate error bound.  Seeds are pinned; thresholds
are set so correct code passes with wide margins.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.hashing import FourWiseSignFamily, PairwiseBucketHash
from repro.sketches.agms import AGMSSchema
from repro.sketches.hash_sketch import HashSketchSchema
from repro.streams.generators import zipf_frequencies
from repro.streams.model import FrequencyVector

DOMAIN = 1 << 10


class TestHashUniformity:
    def test_bucket_hash_chi_square(self):
        """Bucket assignment over sequential keys is uniform (chi-square)."""
        hashes = PairwiseBucketHash(1, 64, np.random.default_rng(0))
        buckets = hashes.buckets(np.arange(64_000))[0]
        counts = np.bincount(buckets, minlength=64)
        _, p_value = stats.chisquare(counts)
        assert p_value > 0.001  # not detectably non-uniform

    def test_sign_balance_binomial(self):
        """+1/-1 counts are consistent with a fair coin (binomial test)."""
        family = FourWiseSignFamily(1, np.random.default_rng(1))
        signs = family.signs(np.arange(40_000))[0]
        positives = int((signs > 0).sum())
        p_value = stats.binomtest(positives, 40_000, 0.5).pvalue
        assert p_value > 0.001

    def test_pairwise_sign_products_balanced(self):
        """xi(u)*xi(v) over distinct pairs is also a fair coin (2-wise)."""
        family = FourWiseSignFamily(1, np.random.default_rng(2))
        signs = family.signs(np.arange(20_000))[0]
        products = signs[::2] * signs[1::2]
        positives = int((products > 0).sum())
        p_value = stats.binomtest(positives, products.size, 0.5).pvalue
        assert p_value > 0.001


class TestAGMSVariance:
    def test_empirical_variance_within_theoretical_bound(self):
        """Var[X_F X_G] <= 2 SJ(f) SJ(g) + ... (AMS analysis); the sample
        variance over many independent single-cell sketches must respect
        it (allowing chi-square sampling slack)."""
        f = FrequencyVector.from_values([0] * 10 + [1] * 5 + [2] * 3, DOMAIN)
        g = FrequencyVector.from_values([0] * 7 + [2] * 6 + [3] * 4, DOMAIN)
        estimates = []
        for seed in range(400):
            schema = AGMSSchema(1, 1, DOMAIN, seed=seed)
            estimates.append(schema.sketch_of(f).est_join_size(schema.sketch_of(g)))
        sample_variance = float(np.var(estimates, ddof=1))
        # AMS bound: Var <= 2 * SJ(f) * SJ(g) (loose form incl. J^2 term).
        bound = 2.0 * f.self_join_size() * g.self_join_size()
        assert sample_variance <= 1.5 * bound

    def test_averaging_reduces_variance_linearly(self):
        """Var scales ~1/averaging: quadrupling copies cuts spread ~4x."""
        f = zipf_frequencies(DOMAIN, 5_000, 1.1)

        def spread(averaging: int) -> float:
            estimates = [
                AGMSSchema(averaging, 1, DOMAIN, seed=seed)
                .sketch_of(f)
                .est_self_join_size()
                for seed in range(120)
            ]
            return float(np.var(estimates, ddof=1))

        ratio = spread(4) / spread(16)
        assert 2.0 < ratio < 9.0  # ideal 4.0, generous sampling slack


class TestTheorem3Coverage:
    def test_point_estimate_errors_within_bound(self):
        """|EST(v) - f(v)| <= 8 sqrt(F2/width) for ~all values (Thm. 3
        with a loose constant; the median over depth=7 tables makes
        per-value failures rare)."""
        freqs = zipf_frequencies(DOMAIN, 20_000, 1.1)
        schema = HashSketchSchema(128, 7, DOMAIN, seed=3)
        sketch = schema.sketch_of(freqs)
        bound = 8.0 * np.sqrt(freqs.self_join_size() / 128.0)
        estimates = sketch.all_point_estimates()
        errors = np.abs(estimates - freqs.counts)
        assert float(np.mean(errors <= bound)) > 0.99

    def test_estimate_errors_are_centred(self):
        """Point-estimate residuals have ~zero median across the domain
        (the median estimator is unbiased in the median sense)."""
        freqs = zipf_frequencies(DOMAIN, 20_000, 1.0)
        schema = HashSketchSchema(128, 7, DOMAIN, seed=4)
        residuals = schema.sketch_of(freqs).all_point_estimates() - freqs.counts
        assert abs(float(np.median(residuals))) <= 2.0


class TestJoinEstimateDistribution:
    def test_median_boosting_tightens_tails(self):
        """P(|error| > t) falls sharply with depth: the worst-of-30-runs
        error at depth 9 is far below depth 1's."""
        f = zipf_frequencies(DOMAIN, 10_000, 1.2)
        g = zipf_frequencies(DOMAIN, 10_000, 1.2, np.random.default_rng(1))
        actual = f.join_size(g)

        def worst_error(depth: int) -> float:
            errors = []
            for seed in range(30):
                schema = HashSketchSchema(64, depth, DOMAIN, seed=seed)
                estimate = schema.sketch_of(f).est_join_size(schema.sketch_of(g))
                errors.append(abs(estimate - actual) / actual)
            return max(errors)

        assert worst_error(9) < worst_error(1)
