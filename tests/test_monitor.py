"""Tests for ``repro.monitor``: CI math, audit records and the audit log,
estimator/engine emission, shadow-exact drift detection, and the HTTP
monitoring service."""

from __future__ import annotations

import json
import math
import pathlib
import subprocess
import sys
import urllib.error
import urllib.request

import numpy as np
import pytest

import repro.monitor
from repro.monitor import (
    AUDIT,
    AuditLog,
    DriftAlert,
    QueryAudit,
    RESIDUAL_BOUND_FACTOR,
    ShadowAuditor,
    audit_from_dict,
    confidence_halfwidth,
    per_table_tail_probability,
    read_audit_jsonl,
)
from repro.monitor.service import (
    EMPTY_SNAPSHOT,
    MonitorServer,
    MonitorSource,
    file_source,
    live_source,
    merged_metrics_snapshot,
    parse_prometheus,
)
from repro.obs import METRICS, MetricsRegistry, write_snapshot


def _make_audit(**overrides) -> QueryAudit:
    """A complete, finite audit record with plausible numbers."""
    fields = dict(
        estimate=1000.0,
        dense_dense=600.0,
        dense_sparse=150.0,
        sparse_dense=150.0,
        sparse_sparse=100.0,
        sj_f_dense=5000.0,
        sj_g_dense=4000.0,
        sj_f_residual=300.0,
        sj_g_residual=200.0,
        width=128,
        depth=7,
        threshold_f=40.0,
        threshold_g=40.0,
        residual_linf_f=40.0,
        residual_linf_g=35.0,
        residual_bound_ok=True,
        delta=0.05,
        ci_halfwidth=250.0,
        ci_low=750.0,
        ci_high=1250.0,
    )
    fields.update(overrides)
    return QueryAudit(**fields)


class TestCIMath:
    @pytest.mark.parametrize("delta", [0.5, 0.1, 0.05, 0.01, 0.001])
    @pytest.mark.parametrize("depth", [1, 3, 7, 11, 101])
    def test_tail_probability_in_range(self, delta, depth):
        p = per_table_tail_probability(delta, depth)
        assert 0.0 < p <= 0.5

    def test_tail_probability_improves_with_depth(self):
        """Deeper sketches tolerate a larger per-table miss rate (the
        median boosts harder), which tightens the CI."""
        shallow = per_table_tail_probability(0.05, 3)
        deep = per_table_tail_probability(0.05, 101)
        assert deep > shallow

    def test_tail_probability_validates_inputs(self):
        with pytest.raises(ValueError):
            per_table_tail_probability(0.0, 5)
        with pytest.raises(ValueError):
            per_table_tail_probability(1.0, 5)
        with pytest.raises(ValueError):
            per_table_tail_probability(0.05, 0)

    def test_zero_residuals_give_zero_halfwidth(self):
        """A fully dense pair is answered exactly: CI collapses."""
        assert confidence_halfwidth(1e6, 1e6, 0.0, 0.0, 256, 7) == 0.0

    @pytest.mark.parametrize("depth", [1, 2, 5])
    def test_halfwidth_is_finite_even_for_shallow_sketches(self, depth):
        hw = confidence_halfwidth(100.0, 100.0, 50.0, 50.0, 64, depth, delta=0.01)
        assert math.isfinite(hw) and hw > 0.0

    def test_halfwidth_shrinks_like_inverse_sqrt_width(self):
        narrow = confidence_halfwidth(100.0, 100.0, 50.0, 50.0, 64, 7)
        wide = confidence_halfwidth(100.0, 100.0, 50.0, 50.0, 256, 7)
        assert wide == pytest.approx(narrow / 2.0)

    def test_halfwidth_rejects_negative_self_joins(self):
        with pytest.raises(ValueError):
            confidence_halfwidth(100.0, 100.0, -1.0, 50.0, 64, 7)
        with pytest.raises(ValueError):
            confidence_halfwidth(100.0, 100.0, 50.0, 50.0, 0, 7)


class TestQueryAudit:
    def test_relative_halfwidth(self):
        audit = _make_audit()
        assert audit.relative_ci_halfwidth() == pytest.approx(0.25)
        assert _make_audit(estimate=0.0).relative_ci_halfwidth() == float("inf")

    def test_json_round_trip(self):
        audit = _make_audit(
            streams=("f", "g"),
            sites=("site-a", "site-b"),
            origin="engine",
            realized_relative_error=float("inf"),
            shadow_exact=990.0,
        )
        audit.extra["note"] = "hello"
        restored = audit_from_dict(json.loads(audit.to_json()))
        assert restored == audit

    def test_as_dict_is_json_safe_with_nonfinite(self):
        audit = _make_audit(realized_relative_error=float("inf"))
        payload = json.dumps(audit.as_dict())  # must not raise
        assert '"inf"' in payload

    def test_record_type_tag(self):
        assert _make_audit().as_dict()["record_type"] == "audit"

    def test_from_dict_rejects_missing_fields(self):
        data = _make_audit().as_dict()
        del data["ci_halfwidth"]
        with pytest.raises(ValueError, match="missing"):
            audit_from_dict(data)
        with pytest.raises(ValueError):
            audit_from_dict(["not", "a", "dict"])

    def test_from_dict_keeps_unknown_keys_in_extra(self):
        data = _make_audit().as_dict()
        data["future_field"] = 42
        assert audit_from_dict(data).extra["future_field"] == 42


class TestAuditLog:
    def test_disabled_log_records_nothing(self):
        log = AuditLog(enabled=False)
        log.record(_make_audit())
        log.annotate_last(streams=("a", "b"))
        log.alert(object())
        assert len(log) == 0 and log.alerts == []

    def test_indices_are_assigned_in_order(self):
        log = AuditLog(enabled=True)
        first = log.record(_make_audit())
        second = log.record(_make_audit())
        assert (first.index, second.index) == (1, 2)
        assert log.last() is second

    def test_ring_is_bounded_and_counts_evictions(self):
        log = AuditLog(enabled=True, max_audits=4)
        for _ in range(10):
            log.record(_make_audit())
        assert len(log) == 4
        assert log.evicted == 6
        assert [a.index for a in log.audits()] == [7, 8, 9, 10]
        assert [a.index for a in log.recent(2)] == [9, 10]
        assert log.recent(0) == []

    def test_annotate_last_known_and_unknown_fields(self):
        log = AuditLog(enabled=True)
        assert log.annotate_last(streams=("a", "b")) is None  # empty: no-op
        log.record(_make_audit())
        log.annotate_last(streams=("f", "g"), custom_tag="x")
        audit = log.last()
        assert audit.streams == ("f", "g")
        assert audit.extra["custom_tag"] == "x"

    def test_reset_clears_but_keeps_switch(self):
        log = AuditLog(enabled=True, max_audits=2)
        for _ in range(3):
            log.record(_make_audit())
        log.reset()
        assert log.enabled and len(log) == 0 and log.evicted == 0
        assert log.record(_make_audit()).index == 1

    def test_validates_construction(self):
        with pytest.raises(ValueError):
            AuditLog(max_audits=0)
        with pytest.raises(ValueError):
            AuditLog(delta=1.5)

    def test_snapshot_shape(self):
        log = AuditLog(enabled=True)
        log.record(_make_audit())
        snap = log.snapshot()
        assert snap["version"] == 1 and snap["kind"] == "repro.monitor"
        assert snap["recorded"] == 1 and snap["evicted"] == 0
        assert snap["audits"][0]["estimate"] == 1000.0
        assert snap["alerts"] == []

    def test_streaming_sink_defers_for_enrichment(self, tmp_path):
        """A record hits the JSONL file only once the *next* record lands
        (or the sink closes), so post-hoc enrichment is in the file."""
        path = tmp_path / "audits.jsonl"
        log = AuditLog(enabled=True)
        log.open_jsonl(str(path))
        log.record(_make_audit())
        assert path.read_text() == ""  # still pending
        log.annotate_last(streams=("f", "g"), origin="engine")
        log.record(_make_audit(estimate=2.0))
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        first = json.loads(lines[0])
        assert first["streams"] == ["f", "g"] and first["origin"] == "engine"
        log.close_jsonl()
        assert len(path.read_text().splitlines()) == 2

    def test_write_jsonl_round_trip_with_alert(self, tmp_path):
        path = tmp_path / "audits.jsonl"
        log = AuditLog(enabled=True)
        log.record(_make_audit())
        log.record(_make_audit(estimate=7.0))
        log.alert(
            DriftAlert(
                window=20,
                covered=10,
                coverage=0.5,
                target=0.9,
                streams=("f", "g"),
                estimate=5.0,
                shadow_exact=50.0,
                realized_error=45.0,
                ci_halfwidth=1.0,
            )
        )
        assert log.write_jsonl(str(path)) == 3
        audits, alerts = read_audit_jsonl(str(path))
        assert [a.estimate for a in audits] == [1000.0, 7.0]
        assert alerts[0]["record_type"] == "drift_alert"
        assert alerts[0]["coverage"] == 0.5

    def test_read_audit_jsonl_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(ValueError, match="invalid JSON"):
            read_audit_jsonl(str(path))


class TestEstimatorEmission:
    def _sketch_pair(self, skewed_pair):
        from repro.core import SkimmedSketchSchema

        f, g = skewed_pair
        schema = SkimmedSketchSchema(128, 7, f.domain_size, seed=3)
        return f, g, schema.sketch_of(f), schema.sketch_of(g)

    def test_disabled_audit_emits_nothing(self, skewed_pair):
        _, _, sf, sg = self._sketch_pair(skewed_pair)
        sf.est_join_size(sg)
        assert len(AUDIT) == 0

    def test_est_join_size_emits_one_complete_audit(self, skewed_pair):
        f, g, sf, sg = self._sketch_pair(skewed_pair)
        AUDIT.enable()
        estimate = sf.est_join_size(sg)
        assert len(AUDIT) == 1
        audit = AUDIT.last()
        assert audit.estimate == pytest.approx(estimate)
        # The four sub-join terms decompose the estimate exactly.
        terms = (
            audit.dense_dense
            + audit.dense_sparse
            + audit.sparse_dense
            + audit.sparse_sparse
        )
        assert terms == pytest.approx(audit.estimate)
        assert audit.width == 128 and audit.depth == 7
        assert math.isfinite(audit.ci_halfwidth) and audit.ci_halfwidth >= 0.0
        assert audit.ci_low == pytest.approx(audit.estimate - audit.ci_halfwidth)
        assert audit.ci_high == pytest.approx(audit.estimate + audit.ci_halfwidth)
        assert audit.sj_f_residual >= 0.0 and audit.sj_g_residual >= 0.0
        # SKIMDENSE's residual contract holds on this benign workload.
        assert audit.residual_bound_ok
        assert audit.residual_linf_f < RESIDUAL_BOUND_FACTOR * audit.threshold_f
        # join_breakdown annotates masses and the skim strategy.
        assert audit.n_f == pytest.approx(f.total_count())
        assert audit.n_g == pytest.approx(g.total_count())
        assert audit.dyadic is not None
        assert audit.origin == "estimator"

    def test_self_join_also_audited(self, skewed_pair):
        _, _, sf, _ = self._sketch_pair(skewed_pair)
        AUDIT.enable()
        sf.est_self_join_size()
        assert len(AUDIT) == 1
        assert AUDIT.last().streams is None  # direct call: never enriched


def _audited_engine(shadow: ShadowAuditor | None = None):
    from repro.core.config import SketchParameters
    from repro.streams.engine import StreamEngine

    engine = StreamEngine(
        1 << 10, SketchParameters(width=128, depth=7), synopsis="skimmed", seed=7
    )
    if shadow is not None:
        engine.attach_shadow(shadow)
    return engine


def _feed_zipf_streams(engine, names, rng):
    from repro.streams.generators import zipf_frequencies

    for offset, name in enumerate(names):
        engine.register_stream(name)
        vec = zipf_frequencies(engine.domain_size, 5_000, 1.0, rng=rng)
        values = vec.support()
        engine.process_bulk(name, values, vec.counts[values])


class TestEngineEnrichment:
    def test_engine_enriches_audits_with_health_and_shadow(self):
        from repro.streams.query import JoinCountQuery, SelfJoinQuery

        shadow = ShadowAuditor(sample_rate=1.0, window=64, coverage_target=0.9)
        engine = _audited_engine(shadow)
        AUDIT.enable()
        _feed_zipf_streams(engine, ("s0", "s1", "s2"), np.random.default_rng(99))
        queries = [
            JoinCountQuery("s0", "s1"),
            JoinCountQuery("s1", "s2"),
            JoinCountQuery("s2", "s0"),
            SelfJoinQuery("s0"),
            SelfJoinQuery("s1"),
        ]
        for query in queries:
            engine.answer(query)
        audits = AUDIT.audits()
        assert len(audits) == len(queries)
        for audit in audits:
            assert audit.origin == "engine"
            assert audit.streams is not None and len(audit.streams) == 2
            assert audit.health is not None
            for health in audit.health.values():
                assert health["health.residual_bound_ok"] == 1.0
            assert audit.shadow_exact is not None
            assert audit.realized_error is not None
            assert audit.covered is not None
        # Realized error sits inside the delta=0.05 theory CI for at
        # least 90% of audited queries (deterministic seeds; in practice
        # all five are covered with wide margin).
        covered = sum(1 for a in audits if a.covered)
        assert covered / len(audits) >= 0.9

    def test_non_skimmed_synopsis_emits_no_audit(self):
        from repro.core.config import SketchParameters
        from repro.streams.engine import StreamEngine
        from repro.streams.query import JoinCountQuery

        engine = StreamEngine(
            1 << 10, SketchParameters(width=64, depth=5), synopsis="hash", seed=7
        )
        AUDIT.enable()
        _feed_zipf_streams(engine, ("a", "b"), np.random.default_rng(5))
        engine.answer(JoinCountQuery("a", "b"))
        assert len(AUDIT) == 0  # no estimator audit, and no stale enrichment

    def test_shadow_only_fed_while_audits_enabled(self):
        shadow = ShadowAuditor()
        engine = _audited_engine(shadow)
        engine.register_stream("s")
        engine.process("s", 3)
        assert shadow.tracked_streams() == []  # AUDIT disabled: not fed
        AUDIT.enable()
        engine.process("s", 3)
        assert shadow.tracked_values("s") == 1


class TestShadowAuditor:
    def test_exact_mirror_join(self):
        shadow = ShadowAuditor(sample_rate=1.0)
        shadow.observe_bulk("f", [1, 1, 2, 3], None)
        shadow.observe_bulk("g", [1, 2, 2], None)
        # join = f(1)*g(1) + f(2)*g(2) = 2*1 + 1*2
        assert shadow.exact_sub_join("f", "g") == 4.0
        assert shadow.estimate_exact_join("f", "g") == 4.0

    def test_weighted_observe(self):
        shadow = ShadowAuditor()
        shadow.observe("f", 5, weight=2.5)
        shadow.observe("f", 5, weight=0.5)
        shadow.observe("g", 5)
        assert shadow.exact_sub_join("f", "g") == 3.0

    def test_subsampling_is_deterministic_and_restricting(self):
        shadow = ShadowAuditor(sample_rate=0.25, seed=11)
        values = list(range(10_000))
        kept = [v for v in values if shadow.sampled(v)]
        # Deterministic: the same values are kept on every call.
        assert kept == [v for v in values if shadow.sampled(v)]
        assert 0.15 < len(kept) / len(values) < 0.35
        shadow.observe_bulk("f", values, None)
        assert shadow.tracked_values("f") == len(kept)
        # Extrapolation scales the sub-domain self-join by 1/rate.
        assert shadow.estimate_exact_join("f", "f") == pytest.approx(
            len(kept) / 0.25
        )

    def test_validates_construction(self):
        for kwargs in (
            {"sample_rate": 0.0},
            {"sample_rate": 1.5},
            {"coverage_target": 0.0},
            {"window": 0},
            {"min_window": 0},
        ):
            with pytest.raises(ValueError):
                ShadowAuditor(**kwargs)

    def test_drift_alert_fires_and_window_resets(self):
        shadow = ShadowAuditor(window=8, coverage_target=0.9, min_window=4)
        shadow.observe_bulk("f", [1, 1], None)
        shadow.observe_bulk("g", [1], None)  # exact join = 2
        alerts = []
        for _ in range(4):
            # estimate 100 vs exact 2 with a tiny CI: never covered.
            *_, alert = shadow.observe_query("f", "g", 100.0, 1.0)
            if alert is not None:
                alerts.append(alert)
        assert len(alerts) == 1  # fires once the window is meaningful
        alert = alerts[0]
        assert alert.coverage == 0.0 and alert.covered == 0 and alert.window == 4
        assert alert.streams == ("f", "g")
        assert alert.shadow_exact == 2.0 and alert.realized_error == 98.0
        assert alert.as_dict()["record_type"] == "drift_alert"
        assert "coverage 0.00" in alert.describe()
        # The window was cleared: no alert storm on the next bad query.
        assert shadow.coverage() == 1.0
        *_, again = shadow.observe_query("f", "g", 100.0, 1.0)
        assert again is None
        assert shadow.queries == 5 and shadow.alert_count == 1

    def test_covered_queries_never_alert(self):
        shadow = ShadowAuditor(window=8, coverage_target=0.9, min_window=2)
        shadow.observe("f", 1)
        shadow.observe("g", 1)
        for _ in range(10):
            exact, realized, covered, alert = shadow.observe_query("f", "g", 1.0, 0.5)
            assert exact == 1.0 and realized == 0.0 and covered and alert is None
        assert shadow.coverage() == 1.0

    def test_reset(self):
        shadow = ShadowAuditor()
        shadow.observe("f", 1)
        shadow.observe_query("f", "f", 10.0, 0.1)
        shadow.reset()
        assert shadow.tracked_streams() == []
        assert shadow.queries == 0 and shadow.coverage() == 1.0


def _populated_source(n_audits: int = 3, with_alert: bool = True) -> MonitorSource:
    reg = MetricsRegistry(enabled=True)
    reg.count("engine.queries", n_audits)
    reg.gauge("skim.threshold", 40.0)
    log = AuditLog(enabled=True)
    for i in range(n_audits):
        log.record(
            _make_audit(
                estimate=1000.0 + i,
                realized_error=10.0 * i,
                covered=i % 2 == 0,
                streams=("f", "g"),
            )
        )
    if with_alert:
        log.alert(
            DriftAlert(
                window=20,
                covered=10,
                coverage=0.5,
                target=0.9,
                streams=("f", "g"),
                estimate=1.0,
                shadow_exact=2.0,
                realized_error=1.0,
                ci_halfwidth=0.1,
            )
        )
    return MonitorSource(reg.snapshot, log.snapshot)


def _get(url: str) -> tuple[int, str]:
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status, resp.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8")


class TestMergedSnapshot:
    def test_monitor_gauges_injected(self):
        merged = merged_metrics_snapshot(_populated_source(n_audits=3))
        gauges = merged["gauges"]
        assert gauges["monitor.audits.recorded"] == 3.0
        assert gauges["monitor.audits.retained"] == 3.0
        assert gauges["monitor.audits.evicted"] == 0.0
        assert gauges["monitor.drift.alerts"] == 1.0
        assert gauges["monitor.audit.last_estimate"] == 1002.0
        assert gauges["monitor.audit.last_ci_halfwidth"] == 250.0
        assert gauges["monitor.audit.last_realized_error"] == 20.0
        assert gauges["monitor.audit.residual_bound_ok_fraction"] == 1.0
        assert gauges["monitor.audit.ci_coverage"] == pytest.approx(2.0 / 3.0)
        # The underlying metrics ride along untouched.
        assert merged["counters"]["engine.queries"] == 3.0

    def test_empty_source_still_renders(self):
        source = MonitorSource(lambda: dict(EMPTY_SNAPSHOT), AuditLog().snapshot)
        merged = merged_metrics_snapshot(source)
        assert merged["gauges"]["monitor.audits.recorded"] == 0.0
        assert "monitor.audit.ci_coverage" not in merged["gauges"]


class TestParsePrometheus:
    def test_parses_samples_and_nonfinite(self):
        text = "# HELP x y\n# TYPE a gauge\na 1.5\nb{quantile=\"0.5\"} 2\nc +Inf\n"
        assert parse_prometheus(text) == [
            ("a", 1.5),
            ('b{quantile="0.5"}', 2.0),
            ("c", float("inf")),
        ]

    def test_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_prometheus("just_a_name\n")
        with pytest.raises(ValueError):
            parse_prometheus("a notanumber\n")


class TestMonitorServer:
    def test_endpoints_round_trip(self):
        with MonitorServer(_populated_source(), port=0) as server:
            status, body = _get(f"{server.url}/metrics")
            assert status == 200
            samples = dict(parse_prometheus(body))
            assert samples["repro_monitor_audits_recorded"] == 3.0
            assert samples["repro_engine_queries_total"] == 3.0

            status, body = _get(f"{server.url}/health")
            assert status == 200
            health = json.loads(body)
            assert health["status"] == "ok"
            assert health["audits"] == 3 and health["alerts"] == 1

            status, body = _get(f"{server.url}/audits")
            assert status == 200
            payload = json.loads(body)
            restored = [audit_from_dict(a) for a in payload["audits"]]
            assert [a.estimate for a in restored] == [1000.0, 1001.0, 1002.0]
            assert payload["alerts"][0]["record_type"] == "drift_alert"

            status, body = _get(f"{server.url}/audits?n=1")
            assert [a["estimate"] for a in json.loads(body)["audits"]] == [1002.0]

            status, body = _get(f"{server.url}/audits?n=bogus")
            assert status == 400

            status, body = _get(f"{server.url}/snapshot")
            assert status == 200 and json.loads(body)["version"] == 1

            status, _ = _get(f"{server.url}/nope")
            assert status == 404

    def test_live_source_serves_process_registries(self):
        AUDIT.enable()
        AUDIT.record(_make_audit())
        with MonitorServer(live_source(), port=0) as server:
            _, body = _get(f"{server.url}/audits")
            assert len(json.loads(body)["audits"]) == 1

    def test_double_start_rejected(self):
        server = MonitorServer(_populated_source(), port=0)
        try:
            server.start()
            with pytest.raises(RuntimeError):
                server.start()
        finally:
            server.stop()
            server.stop()  # idempotent


class TestFileSourceAndCLI:
    def _write_inputs(self, tmp_path) -> tuple[str, str]:
        reg = MetricsRegistry(enabled=True)
        reg.count("engine.queries", 2)
        metrics = tmp_path / "metrics.json"
        write_snapshot(str(metrics), reg.snapshot())
        log = AuditLog(enabled=True)
        log.record(_make_audit())
        log.record(_make_audit(estimate=5.0, covered=True))
        audits = tmp_path / "audits.jsonl"
        log.write_jsonl(str(audits))
        return str(metrics), str(audits)

    def test_file_source_reads_both_files(self, tmp_path):
        metrics, audits = self._write_inputs(tmp_path)
        source = file_source(metrics, audits)
        assert source.metrics_snapshot()["counters"]["engine.queries"] == 2.0
        assert len(source.audit_snapshot()["audits"]) == 2

    def test_file_source_defaults_to_empty(self):
        source = file_source(None, None)
        assert source.metrics_snapshot() == EMPTY_SNAPSHOT
        assert source.audit_snapshot()["audits"] == []

    def test_file_source_fails_fast_on_bad_paths(self, tmp_path):
        with pytest.raises(OSError):
            file_source(str(tmp_path / "missing.json"), None)
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(ValueError):
            file_source(str(bad), None)

    def test_selfcheck_passes_on_good_inputs(self, tmp_path, capsys):
        from repro.monitor.__main__ import main

        metrics, audits = self._write_inputs(tmp_path)
        assert main(["selfcheck", "--metrics", metrics, "--audits", audits]) == 0
        assert "selfcheck ok" in capsys.readouterr().out

    def test_selfcheck_fails_when_audits_missing(self, tmp_path, capsys):
        from repro.monitor.__main__ import main

        metrics, _ = self._write_inputs(tmp_path)
        assert main(["selfcheck", "--metrics", metrics, "--min-audits", "1"]) == 1
        assert "selfcheck FAILED" in capsys.readouterr().err

    def test_selfcheck_fails_on_unreadable_inputs(self, tmp_path, capsys):
        from repro.monitor.__main__ import main

        missing = str(tmp_path / "missing.jsonl")
        assert main(["selfcheck", "--audits", missing]) == 1
        assert "cannot load inputs" in capsys.readouterr().err


class TestImportCost:
    """``repro.monitor`` must stay importable without numpy — it rides in
    the thinnest serving agent alongside ``repro.obs``."""

    def _package_parent(self) -> str:
        return str(pathlib.Path(repro.monitor.__file__).parent.parent)

    @pytest.mark.parametrize("module", ["monitor", "monitor.service"])
    def test_monitor_does_not_import_numpy(self, module):
        code = (
            "import sys; sys.path.insert(0, {path!r}); import {module}; "
            "assert 'numpy' not in sys.modules, "
            "'repro.monitor must not import numpy'"
        ).format(path=self._package_parent(), module=module)
        subprocess.run([sys.executable, "-c", code], check=True)
