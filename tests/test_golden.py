"""Golden regression tests: seeded outputs pinned to exact values.

Every component is deterministic given its seed, so these tests freeze a
few end-to-end numbers.  If an intentional algorithm change moves them,
update the constants *in the same commit* — an unexplained drift here
means estimator behaviour changed silently.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimator import SkimmedSketchSchema
from repro.sketches.agms import AGMSSchema
from repro.sketches.hash_sketch import HashSketchSchema
from repro.streams.generators import census_like_pair, shifted_zipf_pair

DOMAIN = 1 << 10


@pytest.fixture(scope="module")
def workload():
    return shifted_zipf_pair(DOMAIN, 10_000, 1.2, 7)


class TestGoldenValues:
    def test_zipf_workload_is_frozen(self, workload):
        f, g = workload
        assert f.total_count() == 10_000.0
        assert f.counts[0] == 2304.0  # deterministic generator, rank 1
        assert f.join_size(g) == 982447.0

    def test_hash_sketch_counters_checksum(self, workload):
        f, _ = workload
        sketch = HashSketchSchema(64, 5, DOMAIN, seed=0).sketch_of(f)
        assert float(np.abs(sketch.counters).sum()) == pytest.approx(
            36026.0, abs=1e-6
        )

    def test_hash_sketch_join_estimate_frozen(self, workload):
        f, g = workload
        schema = HashSketchSchema(64, 5, DOMAIN, seed=0)
        estimate = schema.sketch_of(f).est_join_size(schema.sketch_of(g))
        assert estimate == pytest.approx(939570.0, abs=1.0)

    def test_skimmed_estimate_frozen(self, workload):
        f, g = workload
        schema = SkimmedSketchSchema(64, 5, DOMAIN, seed=0)
        estimate = schema.sketch_of(f).est_join_size(schema.sketch_of(g))
        assert estimate == pytest.approx(880090.0, abs=1.0)

    def test_agms_estimate_frozen(self, workload):
        f, g = workload
        schema = AGMSSchema(64, 5, DOMAIN, seed=0)
        estimate = schema.sketch_of(f).est_join_size(schema.sketch_of(g))
        assert estimate == pytest.approx(1140133.6875, abs=1.0)

    def test_census_generator_frozen(self):
        wage, overtime = census_like_pair(num_records=1_000, seed=0)
        assert wage.total_count() == 1_000.0
        assert overtime[0] == 653.0  # zero-overtime record count
