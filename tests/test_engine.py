"""Tests for the stream query-processing engine (Figure 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SketchParameters
from repro.errors import ParameterError, QueryError
from repro.streams.engine import StreamEngine
from repro.streams.generators import shifted_zipf_pair
from repro.streams.model import Update
from repro.streams.query import (
    MultiJoinCountQuery,
    JoinAverageQuery,
    JoinCountQuery,
    JoinSumQuery,
    PointQuery,
    RangePredicate,
    SelfJoinQuery,
)

DOMAIN = 1 << 12
PARAMS = SketchParameters(width=256, depth=7)


def make_engine(synopsis="skimmed", **kwargs):
    return StreamEngine(DOMAIN, PARAMS, synopsis=synopsis, seed=5, **kwargs)


class TestRegistration:
    def test_register_and_list(self):
        engine = make_engine()
        engine.register_stream("f")
        engine.register_stream("g")
        assert engine.streams() == ["f", "g"]

    def test_duplicate_rejected(self):
        engine = make_engine()
        engine.register_stream("f")
        with pytest.raises(QueryError):
            engine.register_stream("f")

    def test_unknown_stream_rejected(self):
        engine = make_engine()
        with pytest.raises(QueryError):
            engine.process("nope", 1)

    def test_unknown_synopsis_kind(self):
        with pytest.raises(ValueError):
            StreamEngine(DOMAIN, PARAMS, synopsis="magic")

    def test_total_space(self):
        engine = make_engine()
        engine.register_stream("f")
        engine.register_stream("g")
        assert engine.total_space_in_counters() == 2 * 256 * 7


class TestMaintenanceAndPredicates:
    def test_predicate_drops_elements(self):
        engine = make_engine()
        engine.register_stream("f", predicate=RangePredicate(0, 100))
        engine.process("f", 50)
        engine.process("f", 200)
        seen, dropped = engine.stream_stats("f")
        assert (seen, dropped) == (2, 1)

    def test_predicate_applies_to_bulk(self):
        engine = make_engine()
        engine.register_stream("f", predicate=RangePredicate(0, 10))
        engine.process_bulk("f", np.asarray([5, 15, 7, 25]))
        seen, dropped = engine.stream_stats("f")
        assert (seen, dropped) == (4, 2)

    def test_process_many(self):
        engine = make_engine()
        engine.register_stream("f")
        engine.process_many("f", [Update(1), Update(2, -1.0)])
        seen, _ = engine.stream_stats("f")
        assert seen == 2

    def test_process_many_chunking_matches_single_bulk(self):
        chunked = make_engine(synopsis="hash")
        whole = make_engine(synopsis="hash")
        rng = np.random.default_rng(17)
        values = rng.integers(0, DOMAIN, size=1000, dtype=np.int64)
        for engine in (chunked, whole):
            engine.register_stream("f", predicate=RangePredicate(0, DOMAIN // 2))
        chunked.process_many(
            "f", (Update(int(v)) for v in values), chunk_size=64
        )
        whole.process_bulk("f", values)
        assert np.array_equal(
            chunked.synopsis_for("f").counters, whole.synopsis_for("f").counters
        )
        assert chunked.stream_stats("f") == whole.stream_stats("f")

    def test_process_many_rejects_bad_chunk_size(self):
        engine = make_engine()
        engine.register_stream("f")
        with pytest.raises(ParameterError):
            engine.process_many("f", [Update(1)], chunk_size=0)

    def test_bulk_all_dropped_is_noop(self):
        engine = make_engine()
        engine.register_stream("f", predicate=RangePredicate(0, 1))
        engine.process_bulk("f", np.asarray([5, 6]))
        assert engine.synopsis_for("f").absolute_mass == 0.0


@pytest.mark.parametrize("synopsis", ["skimmed", "agms", "hash"])
class TestJoinQueriesAllSynopses:
    def test_join_count(self, synopsis):
        # Mild skew: this checks engine wiring for every synopsis kind, not
        # estimator quality (quality comparisons live in test_skimmed_join
        # and the benchmarks, where basic AGMS is *expected* to do poorly).
        engine = make_engine(synopsis)
        engine.register_stream("f")
        engine.register_stream("g")
        f, g = shifted_zipf_pair(DOMAIN, 50_000, 0.7, 10)
        engine.synopsis_for("f").ingest_frequency_vector(f)
        engine.synopsis_for("g").ingest_frequency_vector(g)
        answer = engine.answer(JoinCountQuery("f", "g"))
        assert answer == pytest.approx(f.join_size(g), rel=0.35)

    def test_self_join(self, synopsis):
        engine = make_engine(synopsis)
        engine.register_stream("f")
        f, _ = shifted_zipf_pair(DOMAIN, 50_000, 0.7, 0)
        engine.synopsis_for("f").ingest_frequency_vector(f)
        answer = engine.answer(SelfJoinQuery("f"))
        assert answer == pytest.approx(f.self_join_size(), rel=0.35)


class TestAggregateQueries:
    def test_join_sum_reduction(self):
        """SUM over a measure = COUNT against the measure-weighted stream."""
        engine = make_engine()
        for name in ("f", "f_measure", "g"):
            engine.register_stream(name)
        # Stream F: value 7 appears twice, with measures 10 and 20.
        for measure in (10.0, 20.0):
            engine.process("f", 7)
            engine.process("f_measure", 7, measure)
        # Stream G: value 7 appears 3 times.
        for _ in range(3):
            engine.process("g", 7)
        answer = engine.answer(JoinSumQuery("f", "g", "f_measure"))
        assert answer == pytest.approx(3 * (10.0 + 20.0), rel=0.05)

    def test_join_average(self):
        engine = make_engine()
        for name in ("f", "f_measure", "g"):
            engine.register_stream(name)
        for measure in (10.0, 30.0):
            engine.process("f", 7)
            engine.process("f_measure", 7, measure)
        for _ in range(4):
            engine.process("g", 7)
        answer = engine.answer(JoinAverageQuery("f", "g", "f_measure"))
        assert answer == pytest.approx(20.0, rel=0.05)

    def test_average_of_empty_join_rejected(self):
        engine = make_engine()
        for name in ("f", "f_measure", "g"):
            engine.register_stream(name)
        with pytest.raises(QueryError):
            engine.answer(JoinAverageQuery("f", "g", "f_measure"))

    def test_point_query(self):
        engine = make_engine()
        engine.register_stream("f")
        for _ in range(9):
            engine.process("f", 3)
        assert engine.answer(PointQuery("f", 3)) == pytest.approx(9.0)

    def test_point_query_rejected_on_agms(self):
        engine = make_engine("agms")
        engine.register_stream("f")
        with pytest.raises(QueryError):
            engine.answer(PointQuery("f", 3))

    def test_unsupported_query_type(self):
        engine = make_engine()

        class Weird:
            pass

        with pytest.raises(QueryError):
            engine.answer(Weird())  # type: ignore[arg-type]


class TestMultiJoinRelations:
    def make_multijoin_engine(self):
        return StreamEngine(
            DOMAIN,
            SketchParameters(width=64, depth=11),
            synopsis="skimmed",
            seed=8,
            attribute_domains={"a": 64, "b": 64},
        )

    def test_requires_attribute_domains(self):
        engine = make_engine()
        with pytest.raises(QueryError):
            engine.register_relation("r", ("a",))

    def test_chain_join_count(self):
        engine = self.make_multijoin_engine()
        engine.register_relation("r1", ("a",))
        engine.register_relation("r2", ("a", "b"))
        engine.register_relation("r3", ("b",))
        for _ in range(5):
            engine.process_tuple("r1", (7,))
        engine.process_tuple("r2", (7, 9))
        for _ in range(3):
            engine.process_tuple("r3", (9,))
        answer = engine.answer(
            MultiJoinCountQuery(relations=("r1", "r2", "r3"))
        )
        assert answer == pytest.approx(15.0, rel=0.4)

    def test_duplicate_relation_name_rejected(self):
        engine = self.make_multijoin_engine()
        engine.register_relation("r1", ("a",))
        with pytest.raises(QueryError):
            engine.register_relation("r1", ("b",))

    def test_name_clash_with_stream_rejected(self):
        engine = self.make_multijoin_engine()
        engine.register_stream("f")
        with pytest.raises(QueryError):
            engine.register_relation("f", ("a",))

    def test_unknown_relation_rejected(self):
        engine = self.make_multijoin_engine()
        with pytest.raises(QueryError):
            engine.process_tuple("nope", (1,))
        engine.register_relation("r1", ("a",))
        engine.register_relation("r2", ("a",))
        with pytest.raises(QueryError):
            engine.answer(MultiJoinCountQuery(relations=("r1", "missing")))

    def test_query_needs_two_relations(self):
        with pytest.raises(QueryError):
            MultiJoinCountQuery(relations=("solo",))
