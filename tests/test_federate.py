"""Tests for ``repro.federate`` — the cross-process telemetry plane.

Covers: the wire schema (validate / JSON round-trip), the shipper's
delta capture and reset detection, the merge algebra (hypothesis
property tests on integer counters), registry / tracer import
operations, per-origin Perfetto lanes, the multi-source federation
scraper with its Prometheus exposition and topology document, the
monitor server's federated endpoints, the CLI, and the three-site
end-to-end acceptance run (origin-labelled coordinator metrics, a
single stitched trace, trace-context propagation).
"""

from __future__ import annotations

import json
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimator import SkimmedSketchSchema
from repro.distributed import (
    SketchCoordinator,
    SketchReport,
    SketchSite,
    TraceContext,
)
from repro.federate import (
    TELEMETRY_KIND,
    TELEMETRY_VERSION,
    FederatedSource,
    TelemetryShipper,
    empty_telemetry,
    federation_from_args,
    merge_all_telemetry,
    merge_telemetry,
    telemetry_from_json,
    telemetry_size_in_bytes,
    telemetry_to_json,
    telemetry_to_metrics,
    validate_telemetry,
)
from repro.federate.__main__ import main as federate_main
from repro.monitor.service import MonitorServer, parse_prometheus
from repro.obs import METRICS
from repro.obs.registry import MetricsRegistry
from repro.trace import TRACER
from repro.trace.export import trace_origins, trace_to_chrome
from repro.trace.tracer import SpanTracer

DOMAIN = 1 << 10


def make_schema(seed=0):
    return SkimmedSketchSchema(64, 5, DOMAIN, seed=seed)


def fresh_pair() -> tuple[MetricsRegistry, SpanTracer]:
    """A private, enabled registry + tracer (no global singleton state)."""
    return MetricsRegistry(enabled=True), SpanTracer(enabled=True)


def snapshot_for(origin: str, counters: dict[str, int], seq: int = 0) -> dict:
    doc = empty_telemetry(origin, seq)
    doc["counters"] = {k: float(v) for k, v in counters.items()}
    return doc


# ---------------------------------------------------------------------------
# wire schema
# ---------------------------------------------------------------------------


class TestWireSchema:
    def test_empty_snapshot_validates(self):
        doc = empty_telemetry("site.a")
        assert validate_telemetry(doc) is doc
        assert doc["version"] == TELEMETRY_VERSION
        assert doc["kind"] == TELEMETRY_KIND

    def test_json_round_trip_is_identity(self):
        registry, tracer = fresh_pair()
        registry.count("a.updates", 3)
        registry.gauge("a.level", 7.5)
        registry.observe("a.lat", 0.25)
        with tracer.span("round", site="a"):
            tracer.instant("mark")
        shipper = TelemetryShipper(
            "site.a", registry=registry, tracer=tracer, recorder=None, audit=None
        )
        doc = shipper.capture_telemetry()
        assert telemetry_from_json(telemetry_to_json(doc)) == doc

    def test_size_matches_compact_encoding(self):
        doc = empty_telemetry("site.a")
        assert telemetry_size_in_bytes(doc) == len(
            json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()
        )

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.pop("version"),
            lambda d: d.__setitem__("version", 99),
            lambda d: d.__setitem__("kind", "bogus"),
            lambda d: d.__setitem__("origin", ""),
            lambda d: d.__setitem__("counters", [1, 2]),
            lambda d: d.__setitem__("gauges", {"g": [1.0]}),
            lambda d: d.__setitem__("spans", [{"id": 1}, {"id": 1}]),
        ],
    )
    def test_malformed_documents_rejected(self, mutate):
        doc = empty_telemetry("site.a")
        mutate(doc)
        with pytest.raises(ValueError):
            validate_telemetry(doc)

    def test_to_metrics_summarises_histograms(self):
        registry, tracer = fresh_pair()
        for i in range(10):
            registry.observe("lat", float(i))
        shipper = TelemetryShipper(
            "o", registry=registry, tracer=tracer, recorder=None, audit=None
        )
        metrics = telemetry_to_metrics(shipper.capture_telemetry())
        summary = metrics["histograms"]["lat"]
        assert summary["count"] == 10
        assert summary["min"] == 0.0
        assert summary["max"] == 9.0
        assert summary["mean"] == pytest.approx(4.5)


# ---------------------------------------------------------------------------
# shipper capture semantics
# ---------------------------------------------------------------------------


class TestShipperCapture:
    def test_counters_ship_as_deltas(self):
        registry, tracer = fresh_pair()
        shipper = TelemetryShipper(
            "o", registry=registry, tracer=tracer, recorder=None, audit=None
        )
        registry.count("updates", 5)
        first = shipper.capture_telemetry()
        registry.count("updates", 2)
        second = shipper.capture_telemetry()
        assert first["counters"]["updates"] == 5.0
        assert second["counters"]["updates"] == 2.0
        assert second["seq"] == first["seq"] + 1

    def test_idle_capture_ships_nothing(self):
        registry, tracer = fresh_pair()
        shipper = TelemetryShipper(
            "o", registry=registry, tracer=tracer, recorder=None, audit=None
        )
        registry.count("updates", 5)
        shipper.capture_telemetry()
        doc = shipper.capture_telemetry()
        assert doc["counters"] == {}
        assert doc["spans"] == []

    def test_registry_reset_detected_even_at_watermark(self):
        """A reset landing exactly at the old totals must still ship.

        This is the process-boundary emulation case: reset + identical
        traffic leaves the counter total equal to the shipper's
        watermark, which naive ``total - watermark`` deltas would read
        as "nothing happened".
        """
        registry, tracer = fresh_pair()
        shipper = TelemetryShipper(
            "o", registry=registry, tracer=tracer, recorder=None, audit=None
        )
        registry.count("updates", 5)
        shipper.capture_telemetry()
        registry.reset()
        registry.count("updates", 5)
        doc = shipper.capture_telemetry()
        assert doc["counters"]["updates"] == 5.0

    def test_tracer_reset_reships_spans_at_cursor(self):
        registry, tracer = fresh_pair()
        shipper = TelemetryShipper(
            "o", registry=registry, tracer=tracer, recorder=None, audit=None
        )
        with tracer.span("round"):
            pass
        assert len(shipper.capture_telemetry()["spans"]) == 1
        tracer.reset()
        with tracer.span("round"):
            pass
        assert len(shipper.capture_telemetry()["spans"]) == 1

    def test_span_batch_is_bounded(self):
        registry, tracer = fresh_pair()
        shipper = TelemetryShipper(
            "o",
            registry=registry,
            tracer=tracer,
            recorder=None,
            audit=None,
            max_spans=3,
        )
        for _ in range(5):
            with tracer.span("round"):
                pass
        doc = shipper.capture_telemetry()
        assert len(doc["spans"]) == 3
        assert doc["spans_dropped"] == 2


# ---------------------------------------------------------------------------
# merge algebra (property tests)
# ---------------------------------------------------------------------------


counter_maps = st.dictionaries(
    st.sampled_from(["a", "b", "c", "d"]),
    st.integers(min_value=0, max_value=1_000_000),
    max_size=4,
)


class TestMergeAlgebra:
    @settings(max_examples=50, deadline=None)
    @given(counter_maps, counter_maps)
    def test_counter_merge_commutes(self, x, y):
        a = snapshot_for("site.a", x)
        b = snapshot_for("site.b", y)
        ab = merge_telemetry(a, b)
        ba = merge_telemetry(b, a)
        assert ab["counters"] == ba["counters"]
        assert ab["origin"] == ba["origin"] == "site.a+site.b"

    @settings(max_examples=50, deadline=None)
    @given(counter_maps, counter_maps, counter_maps)
    def test_counter_merge_associates(self, x, y, z):
        a = snapshot_for("site.a", x)
        b = snapshot_for("site.b", y)
        c = snapshot_for("site.c", z)
        left = merge_telemetry(merge_telemetry(a, b), c)
        right = merge_telemetry(a, merge_telemetry(b, c))
        assert left["counters"] == right["counters"]
        assert left["origin"] == right["origin"]

    @settings(max_examples=25, deadline=None)
    @given(st.permutations(["site.a", "site.b", "site.c"]), counter_maps)
    def test_registry_merge_is_order_insensitive_for_disjoint_origins(
        self, order, counters
    ):
        docs = {o: snapshot_for(o, counters) for o in order}
        registry = MetricsRegistry(enabled=True)
        for origin in order:
            registry.merge_snapshot(
                telemetry_to_metrics(docs[origin]), prefix=origin
            )
        expected = {
            f"{o}.{name}": float(v)
            for o in order
            for name, v in counters.items()
        }
        got = registry.snapshot()["counters"]
        assert got == expected

    def test_gauges_take_last_write_by_timestamp(self):
        a = snapshot_for("site.a", {})
        b = snapshot_for("site.b", {})
        a["gauges"] = {"level": [1.0, 100.0]}
        b["gauges"] = {"level": [2.0, 50.0]}
        assert merge_telemetry(a, b)["gauges"]["level"] == [1.0, 100.0]
        assert merge_telemetry(b, a)["gauges"]["level"] == [1.0, 100.0]

    def test_histograms_merge_count_and_sum(self):
        a = snapshot_for("site.a", {})
        b = snapshot_for("site.b", {})
        a["histograms"] = {
            "lat": {"count": 2, "sum": 3.0, "min": 1.0, "max": 2.0, "samples": [1.0, 2.0]}
        }
        b["histograms"] = {
            "lat": {"count": 1, "sum": 5.0, "min": 5.0, "max": 5.0, "samples": [5.0]}
        }
        merged = merge_telemetry(a, b)["histograms"]["lat"]
        assert merged["count"] == 3
        assert merged["sum"] == 8.0
        assert merged["min"] == 1.0
        assert merged["max"] == 5.0

    def test_merge_all_folds_left(self):
        docs = [snapshot_for(f"site.{i}", {"a": i}) for i in range(1, 4)]
        merged = merge_all_telemetry(docs)
        assert merged["counters"]["a"] == 6.0
        with pytest.raises(ValueError):
            merge_all_telemetry([])


# ---------------------------------------------------------------------------
# span stitching + Perfetto lanes
# ---------------------------------------------------------------------------


class TestSpanStitching:
    def _site_batch(self, origin: str) -> list[dict]:
        registry, tracer = fresh_pair()
        with tracer.span("dist.round", site=origin):
            with tracer.span("dist.ingest"):
                pass
        shipper = TelemetryShipper(
            origin, registry=registry, tracer=tracer, recorder=None, audit=None
        )
        return shipper.capture_telemetry()["spans"]

    def test_import_preserves_nesting_under_anchor(self):
        target = SpanTracer(enabled=True)
        with target.span("dist.merge_round") as anchor:
            kept = target.import_spans(
                self._site_batch("site.a"),
                origin="site.a",
                parent_id=target.current_span_id(),
            )
        assert kept == 2
        rounds = target.find("dist.round")
        ingests = target.find("dist.ingest")
        assert len(rounds) == 1 and len(ingests) == 1
        assert rounds[0].parent_id == anchor.span_id
        assert ingests[0].parent_id == rounds[0].span_id
        assert rounds[0].attributes["origin"] == "site.a"

    def test_chrome_export_gives_each_origin_a_lane(self):
        target = SpanTracer(enabled=True)
        with target.span("dist.merge_round"):
            for origin in ("site.a", "site.b"):
                target.import_spans(
                    self._site_batch(origin),
                    origin=origin,
                    parent_id=target.current_span_id(),
                )
        snapshot = target.snapshot()
        assert trace_origins(snapshot) == ["site.a", "site.b"]
        chrome = trace_to_chrome(snapshot)
        events = chrome["traceEvents"]
        # Local lane is pid 1 and its process_name metadata leads.
        assert events[0]["ph"] == "M" and events[0]["pid"] == 1
        pids = {e["pid"] for e in events}
        assert pids == {1, 2, 3}
        by_origin = {
            e["args"]["name"]: e["pid"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert by_origin["repro origin: site.a"] == 2
        assert by_origin["repro origin: site.b"] == 3
        # The imported round spans sit in their origin's lane.
        for event in events:
            if event["ph"] == "X" and event["name"] == "dist.round":
                assert event["pid"] in (2, 3)


# ---------------------------------------------------------------------------
# federation scraper + monitor endpoints
# ---------------------------------------------------------------------------


def _write_origin_files(tmp_path) -> list[str]:
    specs = []
    for origin, counters in (
        ("site.a", {"dist.rounds.closed": 2, "dist.bytes.sent": 100}),
        ("site.b", {"dist.rounds.closed": 3, "dist.bytes.sent": 250}),
    ):
        doc = snapshot_for(origin, counters)
        path = tmp_path / f"{origin}.json"
        path.write_text(telemetry_to_json(doc))
        specs.append(f"{origin}={path}")
    return specs


class TestFederatedSource:
    def test_prometheus_labels_every_origin(self, tmp_path):
        federation = federation_from_args(_write_origin_files(tmp_path))
        text = federation.prometheus(prefix="repro")
        samples = dict(parse_prometheus(text))
        assert samples['repro_federation_up{origin="site.a"}'] == 1.0
        assert samples['repro_federation_up{origin="site.b"}'] == 1.0
        assert (
            samples['repro_dist_rounds_closed_total{origin="site.a"}'] == 2.0
        )
        assert (
            samples['repro_dist_rounds_closed_total{origin="site.b"}'] == 3.0
        )

    def test_topology_reports_health_and_traffic(self, tmp_path):
        federation = federation_from_args(_write_origin_files(tmp_path))
        topo = federation.topology()
        assert topo["kind"] == "repro.topology"
        row = topo["origins"]["site.b"]
        assert row["ok"] is True
        assert row["rounds"] == 3.0
        assert row["bytes"] == 250.0

    def test_down_origin_is_reported_not_fatal(self, tmp_path):
        specs = _write_origin_files(tmp_path) + [
            f"site.gone={tmp_path}/missing.json"
        ]
        federation = federation_from_args(specs)
        text = federation.prometheus()
        samples = dict(parse_prometheus(text))
        assert samples['repro_federation_up{origin="site.gone"}'] == 0.0
        assert federation.topology()["origins"]["site.gone"]["ok"] is False

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            federation_from_args(["no-equals-sign"])
        with pytest.raises(ValueError):
            federation_from_args(["a=x.json", "a=y.json"])

    def test_monitor_serves_federated_metrics_and_topology(self, tmp_path):
        from repro.monitor.service import file_source

        federation = federation_from_args(_write_origin_files(tmp_path))
        source = file_source(None, None, None, None)
        with MonitorServer(source, port=0, federation=federation) as server:
            with urllib.request.urlopen(f"{server.url}/metrics") as resp:
                body = resp.read().decode()
            assert 'origin="site.a"' in body and 'origin="site.b"' in body
            with urllib.request.urlopen(f"{server.url}/topology") as resp:
                topo = json.loads(resp.read().decode())
            assert set(topo["origins"]) == {"site.a", "site.b"}
            with urllib.request.urlopen(f"{server.url}/dashboard") as resp:
                dashboard = resp.read().decode()
            assert "Federated origins" in dashboard


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCLI:
    def test_selfcheck_passes(self, capsys):
        assert federate_main(["selfcheck"]) == 0
        out = capsys.readouterr().out
        assert "FAIL" not in out

    def test_validate_and_merge_round_trip(self, tmp_path, capsys):
        paths = []
        for i, origin in enumerate(("site.a", "site.b")):
            doc = snapshot_for(origin, {"updates": 10 * (i + 1)})
            path = tmp_path / f"{origin}.json"
            path.write_text(telemetry_to_json(doc))
            paths.append(str(path))
        assert federate_main(["validate", *paths]) == 0
        out_path = tmp_path / "merged.json"
        assert federate_main(["merge", *paths, "--out", str(out_path)]) == 0
        merged = validate_telemetry(json.loads(out_path.read_text()))
        assert merged["counters"]["updates"] == 30.0
        assert merged["origin"] == "site.a+site.b"

    def test_validate_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"not": "telemetry"}')
        assert federate_main(["validate", str(bad)]) == 1


# ---------------------------------------------------------------------------
# end-to-end acceptance: three telemetry-enabled sites, one coordinator
# ---------------------------------------------------------------------------


class TestEndToEnd:
    def _run_fleet(self, rng, rounds=2, sites=3):
        """The demo's process-boundary emulation: the global singletons
        are reset between per-site segments (each site's shipper sees a
        fresh registry/tracer, exactly as separate processes would), then
        once more before the coordinator replays the collected rounds."""
        schema = make_schema()
        fleet = [
            SketchSite(f"edge-{i}", schema, streams=["R", "S"], telemetry=True)
            for i in range(sites)
        ]
        coordinator = SketchCoordinator(schema)
        METRICS.enable()
        TRACER.enable()
        contexts = []
        batches = []
        for _ in range(rounds):
            context = coordinator.mint_trace_context()
            contexts.append(context)
            batch = []
            for site in fleet:
                METRICS.reset()
                TRACER.reset()
                for stream in ("R", "S"):
                    site.observe_bulk(
                        stream,
                        rng.integers(0, DOMAIN, size=200, dtype="int64"),
                    )
                batch.extend(site.close_round(context))
            batches.append(batch)
        METRICS.reset()
        TRACER.reset()
        for batch in batches:
            coordinator.receive_all(batch)
        return fleet, coordinator, contexts

    def test_coordinator_metrics_carry_per_origin_counters(self, rng):
        self._run_fleet(rng)
        snapshot = METRICS.snapshot()
        for i in range(3):
            assert (
                snapshot["counters"][f"site.edge-{i}.dist.rounds.closed"] == 2.0
            )
            assert (
                snapshot["counters"][f"site.edge-{i}.dist.reports.sent"] == 4.0
            )
        # The coordinator's own counters coexist, unprefixed.
        assert snapshot["counters"]["dist.reports.received"] == 12.0
        assert snapshot["counters"]["dist.telemetry.received"] == 6.0
        assert snapshot["counters"]["dist.telemetry.bytes.received"] > 0

    def test_telemetry_bytes_counted_both_ends(self, rng):
        schema = make_schema()
        site = SketchSite("edge-0", schema, streams=["R"], telemetry=True)
        coordinator = SketchCoordinator(schema)
        METRICS.enable()
        site.observe_bulk("R", rng.integers(0, DOMAIN, size=100, dtype="int64"))
        reports = site.close_round()
        wire_bytes = reports[0].telemetry_size_in_bytes()
        assert wire_bytes > 0
        assert METRICS.counter_value("dist.telemetry.sent") == 1.0
        assert METRICS.counter_value("dist.telemetry.bytes.sent") == wire_bytes
        coordinator.receive_all(reports)
        assert METRICS.counter_value("dist.telemetry.received") == 1.0
        assert (
            METRICS.counter_value("dist.telemetry.bytes.received") == wire_bytes
        )

    def test_single_stitched_trace_with_per_site_lanes(self, rng):
        self._run_fleet(rng)
        snapshot = TRACER.snapshot()
        origins = trace_origins(snapshot)
        assert origins == [f"site.edge-{i}" for i in range(3)]
        chrome = trace_to_chrome(snapshot)
        events = chrome["traceEvents"]
        lanes = {
            e["args"]["name"]: e["pid"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert len({lanes[f"repro origin: site.edge-{i}"] for i in range(3)}) == 3
        # Site round spans nest (transitively, via the dist.receive span
        # that imported them) under the coordinator's merge_round span.
        merge_rounds = TRACER.find("dist.merge_round")
        site_rounds = TRACER.find("dist.round")
        assert len(merge_rounds) == 2 and len(site_rounds) == 6
        merge_ids = {s.span_id for s in merge_rounds}
        parents = {s.span_id: s.parent_id for s in TRACER.spans()}
        for span in site_rounds:
            ancestor = span.parent_id
            while ancestor is not None and ancestor not in merge_ids:
                ancestor = parents.get(ancestor)
            assert ancestor in merge_ids

    def test_trace_context_propagates_to_reports_and_spans(self, rng):
        fleet, coordinator, contexts = self._run_fleet(rng, rounds=1)
        assert contexts[0].trace_id == "fleet-round-000001"
        site_rounds = TRACER.find("dist.round")
        assert all(
            s.attributes["trace_id"] == contexts[0].trace_id for s in site_rounds
        )
        merge_round = TRACER.find("dist.merge_round")[0]
        assert merge_round.attributes["trace_id"] == contexts[0].trace_id

    def test_telemetry_accumulates_per_origin(self, rng):
        _, coordinator, _ = self._run_fleet(rng)
        by_origin = coordinator.telemetry_by_origin()
        assert sorted(by_origin) == [f"site.edge-{i}" for i in range(3)]
        for doc in by_origin.values():
            assert doc["counters"]["dist.rounds.closed"] == 2.0
        reports, size = coordinator.telemetry_stats()
        assert reports == 6 and size > 0

    def test_estimates_unaffected_by_telemetry(self, rng):
        _, coordinator, _ = self._run_fleet(rng)
        assert coordinator.est_self_join_size("R") > 0

    def test_disabled_singletons_ship_nothing(self, rng):
        schema = make_schema()
        site = SketchSite("edge-0", schema, streams=["R"], telemetry=True)
        site.observe_bulk("R", rng.integers(0, DOMAIN, size=100, dtype="int64"))
        reports = site.close_round()
        assert all(r.telemetry is None for r in reports)
        assert all(r.telemetry_size_in_bytes() == 0 for r in reports)

    def test_plain_reports_still_interoperate(self, rng):
        """Pre-federation senders (no context, no telemetry) still merge."""
        schema = make_schema()
        site = SketchSite("edge-0", schema, streams=["R"])
        site.observe_bulk("R", rng.integers(0, DOMAIN, size=100, dtype="int64"))
        reports = site.close_round()
        assert all(r.trace_context is None and r.telemetry is None for r in reports)
        coordinator = SketchCoordinator(schema)
        summary = coordinator.receive_all(reports)
        assert summary.telemetry_bytes == 0

    def test_rejected_telemetry_is_counted(self, rng):
        from repro.distributed import ProtocolError

        schema = make_schema()
        site = SketchSite("edge-0", schema, streams=["R"])
        site.observe_bulk("R", rng.integers(0, DOMAIN, size=50, dtype="int64"))
        report = site.close_round()[0]
        from dataclasses import replace

        bad = replace(report, telemetry={"version": 99})
        coordinator = SketchCoordinator(schema)
        METRICS.enable()
        with pytest.raises(ProtocolError):
            coordinator.receive(bad)
        assert METRICS.counter_value("dist.telemetry.rejected") == 1.0
