"""Tests for sketch parameter selection (accuracy/space translation)."""

from __future__ import annotations

import pytest

from repro.core.config import SketchParameters, depth_for_confidence


class TestDepthForConfidence:
    def test_odd(self):
        for delta in (0.5, 0.1, 0.01, 0.001):
            assert depth_for_confidence(delta) % 2 == 1

    def test_monotone_in_confidence(self):
        assert depth_for_confidence(0.001) >= depth_for_confidence(0.1)

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            depth_for_confidence(0.0)
        with pytest.raises(ValueError):
            depth_for_confidence(1.0)


class TestSketchParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            SketchParameters(0, 1)
        with pytest.raises(ValueError):
            SketchParameters(1, 0)
        with pytest.raises(ValueError):
            SketchParameters(1, 1, threshold_multiplier=0.0)

    def test_total_counters(self):
        assert SketchParameters(100, 11).total_counters == 1100

    def test_for_space(self):
        params = SketchParameters.for_space(1100, depth=11)
        assert params.width == 100
        assert params.depth == 11

    def test_for_space_too_small(self):
        with pytest.raises(ValueError):
            SketchParameters.for_space(5, depth=11)

    def test_for_accuracy_shape(self):
        """Theorem 5 shape: width ~ N^2 / (eps * J)."""
        params = SketchParameters.for_accuracy(
            epsilon=0.1, delta=0.05, stream_size=1000, join_size_lower_bound=10_000
        )
        assert params.width == 1_000  # 1000^2 / (0.1 * 10000)
        assert params.depth % 2 == 1

    def test_for_accuracy_monotone_in_epsilon(self):
        loose = SketchParameters.for_accuracy(0.5, 0.1, 1000, 10_000)
        tight = SketchParameters.for_accuracy(0.05, 0.1, 1000, 10_000)
        assert tight.width > loose.width

    def test_for_accuracy_monotone_in_join_size(self):
        """Smaller joins are harder: more space required."""
        big_join = SketchParameters.for_accuracy(0.1, 0.1, 1000, 100_000)
        small_join = SketchParameters.for_accuracy(0.1, 0.1, 1000, 1_000)
        assert small_join.width > big_join.width

    def test_for_accuracy_validation(self):
        with pytest.raises(ValueError):
            SketchParameters.for_accuracy(0.0, 0.1, 1000, 1000)
        with pytest.raises(ValueError):
            SketchParameters.for_accuracy(0.1, 0.1, 0, 1000)
        with pytest.raises(ValueError):
            SketchParameters.for_accuracy(0.1, 0.1, 1000, 0)

    def test_basic_agms_equivalent_space(self):
        params = SketchParameters(100, 11)
        averaging, median = params.basic_agms_equivalent()
        assert averaging * median == params.total_counters
