"""Tests for the answer-quality metrics (§5.1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import (
    DEFAULT_SANITY_BOUND,
    ErrorSummary,
    join_error,
    relative_error,
)


class TestJoinError:
    def test_exact_estimate_is_zero(self):
        assert join_error(100.0, 100.0) == 0.0

    def test_symmetric(self):
        """2x over- and 2x under-estimation get the same penalty."""
        assert join_error(200.0, 100.0) == pytest.approx(join_error(50.0, 100.0))
        assert join_error(200.0, 100.0) == pytest.approx(1.0)

    def test_non_positive_estimate_hits_sanity_bound(self):
        assert join_error(0.0, 100.0) == DEFAULT_SANITY_BOUND
        assert join_error(-5.0, 100.0) == DEFAULT_SANITY_BOUND

    def test_huge_overestimate_capped(self):
        assert join_error(1e9, 1.0) == DEFAULT_SANITY_BOUND

    def test_custom_sanity_bound(self):
        assert join_error(-1.0, 10.0, sanity_bound=3.0) == 3.0

    def test_rejects_non_positive_actual(self):
        with pytest.raises(ValueError):
            join_error(1.0, 0.0)

    @given(
        estimate=st.floats(0.1, 1e6),
        actual=st.floats(0.1, 1e6),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_symmetry_in_ratio(self, estimate, actual):
        """error(e, a) == error(a, e): the metric treats both sides alike."""
        assert join_error(estimate, actual) == pytest.approx(
            join_error(actual, estimate)
        )

    @given(x=st.floats(0.1, 1e6))
    @settings(max_examples=50, deadline=None)
    def test_property_zero_iff_equal(self, x):
        assert join_error(x, x) == 0.0


class TestRelativeError:
    def test_value(self):
        assert relative_error(90.0, 100.0) == pytest.approx(0.1)

    def test_underestimates_bounded_by_one(self):
        """The bias join_error exists to fix."""
        assert relative_error(0.0, 100.0) == 1.0

    def test_rejects_non_positive_actual(self):
        with pytest.raises(ValueError):
            relative_error(1.0, -1.0)


class TestErrorSummary:
    def test_statistics(self):
        summary = ErrorSummary.of([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.median == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ErrorSummary.of([])

    def test_str_mentions_fields(self):
        text = str(ErrorSummary.of([1.0]))
        for token in ("mean=", "median=", "max="):
            assert token in text
