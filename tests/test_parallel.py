"""Tests for the sharded parallel ingest subsystem (repro.parallel).

The load-bearing claim is *exactness*: because every synopsis is a
linear projection, sharding a stream across workers and merging the
shard counters reproduces the serial sketch bit-for-bit (integer-weight
regime).  These tests pin that down per mode, per synopsis kind, and
through the full ParallelStreamEngine query path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SketchParameters
from repro.errors import ParameterError
from repro.parallel import (
    INGEST_MODES,
    ParallelStreamEngine,
    ShardedIngestor,
    partition_batch,
)
from repro.parallel.__main__ import main as parallel_main
from repro.sketches.dyadic import DyadicSketchSchema
from repro.sketches.hash_sketch import HashSketchSchema
from repro.sketches.serialize import sketch_state
from repro.streams.engine import StreamEngine
from repro.streams.query import JoinCountQuery, PointQuery, SelfJoinQuery

DOMAIN = 1 << 10
PARAMS = SketchParameters(width=128, depth=5)


def seeded_batches(n=6000, batches=7, seed=3):
    """Deterministic integer-weight batches with ~5% deletions."""
    rng = np.random.default_rng(seed)
    values = rng.integers(0, DOMAIN, size=n, dtype=np.int64)
    weights = np.ones(n, dtype=np.float64)
    weights[rng.random(n) < 0.05] = -1.0
    splits = np.array_split(np.arange(n), batches)
    return [(values[s], weights[s]) for s in splits]


def states_equal(left, right) -> bool:
    left_state, right_state = sketch_state(left), sketch_state(right)
    if left_state.keys() != right_state.keys():
        return False
    for key, lv in left_state.items():
        rv = right_state[key]
        if isinstance(lv, np.ndarray):
            if not np.array_equal(lv, rv):
                return False
        elif lv != rv:
            return False
    return True


class TestPartitionBatch:
    def test_partition_is_exhaustive_and_disjoint(self):
        values = np.arange(500, dtype=np.int64)
        parts = partition_batch(values, None, 4)
        assert len(parts) == 4
        seen = np.concatenate([p[0] for p in parts if p is not None])
        assert sorted(seen.tolist()) == values.tolist()

    def test_value_to_shard_map_ignores_batch_boundaries(self):
        values = np.arange(1000, dtype=np.int64)
        whole = partition_batch(values, None, 3)
        shard_of = {}
        for shard, part in enumerate(whole):
            if part is not None:
                for v in part[0].tolist():
                    shard_of[v] = shard
        for chunk in np.array_split(values, 11):
            for shard, part in enumerate(partition_batch(chunk, None, 3)):
                if part is not None:
                    for v in part[0].tolist():
                        assert shard_of[v] == shard

    def test_single_worker_short_circuits(self):
        values = np.arange(10, dtype=np.int64)
        weights = np.ones(10)
        parts = partition_batch(values, weights, 1)
        assert len(parts) == 1
        assert parts[0][0] is values
        assert parts[0][1] is weights

    def test_weights_follow_their_values(self):
        values = np.arange(200, dtype=np.int64)
        weights = values.astype(np.float64)
        for part in partition_batch(values, weights, 4):
            if part is not None:
                assert np.array_equal(part[0].astype(np.float64), part[1])

    def test_invalid_workers_rejected(self):
        with pytest.raises(ParameterError):
            partition_batch(np.arange(4, dtype=np.int64), None, 0)


class TestShardedIngestorExactness:
    @pytest.mark.parametrize("mode", INGEST_MODES)
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_hash_sketch_matches_serial(self, mode, workers):
        schema = HashSketchSchema(128, 5, DOMAIN, seed=9)
        serial = schema.create_sketch()
        with ShardedIngestor(schema, workers=workers, mode=mode) as ingestor:
            for values, weights in seeded_batches():
                serial.update_bulk(values, weights)
                ingestor.ingest(values, weights)
            assert states_equal(ingestor.merged(), serial)

    @pytest.mark.parametrize("mode", INGEST_MODES)
    def test_dyadic_sketch_matches_serial(self, mode):
        schema = DyadicSketchSchema(64, 5, DOMAIN, seed=2)
        serial = schema.create_sketch()
        with ShardedIngestor(schema, workers=3, mode=mode) as ingestor:
            for values, weights in seeded_batches(n=3000, batches=4):
                serial.update_bulk(values, weights)
                ingestor.ingest(values, weights)
            assert states_equal(ingestor.merged(), serial)

    def test_rechunking_does_not_change_merged_counters(self):
        schema = HashSketchSchema(128, 5, DOMAIN, seed=9)
        batches = seeded_batches()
        values = np.concatenate([v for v, _ in batches])
        weights = np.concatenate([w for _, w in batches])
        with ShardedIngestor(schema, workers=4, mode="thread") as chunked, \
                ShardedIngestor(schema, workers=4, mode="thread") as whole:
            for v, w in batches:
                chunked.ingest(v, w)
            whole.ingest(values, weights)
            assert states_equal(chunked.merged(), whole.merged())


class TestShardedIngestorBehaviour:
    def test_merge_is_cached_until_new_data(self):
        schema = HashSketchSchema(64, 3, DOMAIN, seed=1)
        ingestor = ShardedIngestor(schema, workers=2, mode="serial")
        values, weights = seeded_batches(n=500, batches=1)[0]
        ingestor.ingest(values, weights)
        first = ingestor.merged()
        assert ingestor.merged() is first
        ingestor.ingest(values, weights)
        assert ingestor.merged() is not first

    def test_single_worker_merged_is_live_shard(self):
        schema = HashSketchSchema(64, 3, DOMAIN, seed=1)
        ingestor = ShardedIngestor(schema, workers=1)
        values, weights = seeded_batches(n=100, batches=1)[0]
        ingestor.ingest(values, weights)
        merged = ingestor.merged()
        serial = schema.create_sketch()
        serial.update_bulk(values, weights)
        assert states_equal(merged, serial)

    def test_stats_and_repr(self):
        schema = HashSketchSchema(64, 3, DOMAIN, seed=1)
        ingestor = ShardedIngestor(schema, workers=2, mode="serial")
        assert ingestor.workers == 2
        assert ingestor.mode == "serial"
        values, weights = seeded_batches(n=100, batches=1)[0]
        ingestor.ingest(values, weights)
        ingestor.ingest(np.asarray([], dtype=np.int64))  # ignored
        assert ingestor.batches_ingested == 1
        assert ingestor.elements_ingested == 100
        assert "workers=2" in repr(ingestor)

    def test_reset_drops_everything(self):
        schema = HashSketchSchema(64, 3, DOMAIN, seed=1)
        ingestor = ShardedIngestor(schema, workers=2, mode="serial")
        values, weights = seeded_batches(n=100, batches=1)[0]
        ingestor.ingest(values, weights)
        ingestor.reset()
        assert ingestor.elements_ingested == 0
        assert states_equal(ingestor.merged(), schema.create_sketch())

    def test_merged_works_after_close(self):
        schema = HashSketchSchema(64, 3, DOMAIN, seed=1)
        values, weights = seeded_batches(n=400, batches=1)[0]
        serial = schema.create_sketch()
        serial.update_bulk(values, weights)
        ingestor = ShardedIngestor(schema, workers=2, mode="thread")
        ingestor.ingest(values, weights)
        ingestor.close()
        assert states_equal(ingestor.merged(), serial)

    def test_invalid_parameters_rejected(self):
        schema = HashSketchSchema(64, 3, DOMAIN, seed=1)
        with pytest.raises(ParameterError):
            ShardedIngestor(schema, workers=0)
        with pytest.raises(ParameterError):
            ShardedIngestor(schema, workers=2, mode="fork")
        ingestor = ShardedIngestor(schema, workers=2, mode="serial")
        with pytest.raises(ParameterError):
            ingestor.ingest(
                np.arange(4, dtype=np.int64), np.ones(3, dtype=np.float64)
            )


class TestParallelStreamEngine:
    @pytest.mark.parametrize("mode", ["serial", "thread"])
    def test_answers_match_serial_engine(self, mode):
        serial = StreamEngine(DOMAIN, PARAMS, synopsis="skimmed", seed=5)
        batches = seeded_batches()
        with ParallelStreamEngine(
            DOMAIN, PARAMS, synopsis="skimmed", seed=5, workers=3, mode=mode
        ) as engine:
            for eng in (serial, engine):
                for name in ("f", "g"):
                    eng.register_stream(name)
                    for values, weights in batches:
                        eng.process_bulk(name, values, weights)
            for query in (
                JoinCountQuery("f", "g"),
                SelfJoinQuery("f"),
                PointQuery("f", 7),
            ):
                assert engine.answer(query) == serial.answer(query)
            for name in ("f", "g"):
                assert states_equal(
                    engine.synopsis_for(name), serial.synopsis_for(name)
                )

    def test_single_element_process_path(self):
        serial = StreamEngine(DOMAIN, PARAMS, synopsis="hash", seed=5)
        with ParallelStreamEngine(
            DOMAIN, PARAMS, synopsis="hash", seed=5, workers=2, mode="serial"
        ) as engine:
            for eng in (serial, engine):
                eng.register_stream("f")
                for value in (3, 99, 3, 500):
                    eng.process("f", value, 2.0)
            assert states_equal(engine.synopsis_for("f"), serial.synopsis_for("f"))

    def test_total_space_scales_with_workers(self):
        with ParallelStreamEngine(
            DOMAIN, PARAMS, synopsis="hash", seed=5, workers=3, mode="serial"
        ) as engine:
            engine.register_stream("f")
            serial = StreamEngine(DOMAIN, PARAMS, synopsis="hash", seed=5)
            serial.register_stream("f")
            assert (
                engine.total_space_in_counters()
                == 3 * serial.total_space_in_counters()
            )

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ParameterError):
            ParallelStreamEngine(DOMAIN, PARAMS, workers=0)
        with pytest.raises(ParameterError):
            ParallelStreamEngine(DOMAIN, PARAMS, mode="fibers")


class TestAdversarialMetamorphic:
    """Metamorphic linearity checks on the repro.workloads corpus.

    Because every synopsis is a linear projection and corpus weights are
    integers, permuting batch order or re-chunking an adversarial stream
    must leave every sketch counter bit-identical — serial and sharded.
    The delete-churn family is the sharpest probe (its near-cancelling
    +1/-1 waves would expose any order- or chunk-dependent state), and
    the filtered family adds predicate pushdown to the mix.
    """

    CHURN_PARAMS = {
        "domain": 256, "waves": 3, "per_wave": 600, "survivors": 20,
        "z": 1.1,
    }
    FILTERED_PARAMS = {
        "domain": 256, "total": 1_500, "chunks": 3, "z": 0.9,
        "range_hi_fraction": 0.5, "modulus": 4, "remainder": 1,
        "inset_step": 3,
    }

    @staticmethod
    def _instance(family, params):
        from repro.workloads import build_workload

        return build_workload(family, params=params, seed=11)

    @staticmethod
    def _engine_with_batches(instance, batches):
        engine = StreamEngine(
            instance.domain_size, PARAMS, synopsis="skimmed", seed=13
        )
        for name, predicate in instance.streams.items():
            engine.register_stream(name, predicate=predicate)
        for batch in batches:
            engine.process_bulk(batch.stream, batch.values, batch.weights)
        return engine

    @pytest.mark.parametrize(
        "family,params",
        [
            ("delete_churn", CHURN_PARAMS),
            ("filtered_subset_sum", FILTERED_PARAMS),
        ],
    )
    def test_batch_permutation_leaves_serial_sketches_identical(
        self, family, params
    ):
        instance = self._instance(family, params)
        permutation = np.random.default_rng(0).permutation(
            len(instance.batches)
        )
        in_order = self._engine_with_batches(instance, instance.batches)
        permuted = self._engine_with_batches(
            instance, [instance.batches[i] for i in permutation]
        )
        for name in instance.streams:
            assert states_equal(
                in_order.synopsis_for(name), permuted.synopsis_for(name)
            )

    @pytest.mark.parametrize("mode", ["serial", "thread", "process", "shm"])
    def test_rechunking_adversarial_stream_is_exact_per_mode(self, mode):
        instance = self._instance("delete_churn", self.CHURN_PARAMS)
        values = np.concatenate(
            [b.values for b in instance.batches if b.stream == "f"]
        )
        weights = np.concatenate(
            [b.weights for b in instance.batches if b.stream == "f"]
        )
        schema = HashSketchSchema(128, 5, instance.domain_size, seed=13)
        with ShardedIngestor(schema, workers=2, mode=mode) as coarse, \
                ShardedIngestor(schema, workers=2, mode=mode) as fine:
            coarse.ingest(values, weights)
            splits = np.array_split(np.arange(values.size), 9)
            for chunk in splits:
                fine.ingest(values[chunk], weights[chunk])
            assert states_equal(coarse.merged(), fine.merged())

    @pytest.mark.parametrize("mode", ["serial", "thread"])
    def test_permuted_ingest_matches_serial_engine_answers(self, mode):
        instance = self._instance("delete_churn", self.CHURN_PARAMS)
        serial = self._engine_with_batches(instance, instance.batches)
        permutation = np.random.default_rng(1).permutation(
            len(instance.batches)
        )
        with ParallelStreamEngine(
            instance.domain_size, PARAMS, synopsis="skimmed", seed=13,
            workers=3, mode=mode,
        ) as engine:
            for name, predicate in instance.streams.items():
                engine.register_stream(name, predicate=predicate)
            for index in permutation:
                batch = instance.batches[index]
                engine.process_bulk(batch.stream, batch.values, batch.weights)
            for left, right in instance.queries:
                query = (
                    SelfJoinQuery(left)
                    if left == right
                    else JoinCountQuery(left, right)
                )
                assert engine.answer(query) == serial.answer(query)
            for name in instance.streams:
                assert states_equal(
                    engine.synopsis_for(name), serial.synopsis_for(name)
                )


class TestCli:
    def test_selfcheck_passes(self, capsys):
        code = parallel_main(
            [
                "selfcheck",
                "--workers",
                "2",
                "--modes",
                "serial,thread",
                "--elements",
                "2000",
                "--domain",
                "256",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "selfcheck OK" in out

    def test_bench_prints_table(self, capsys):
        code = parallel_main(
            [
                "bench",
                "--workers-list",
                "1,2",
                "--elements",
                "4000",
                "--domain",
                "256",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "updates/sec" in out


class TestWorkerTelemetry:
    """Process-mode workers surface their ingest vitals at flush time.

    Worker processes run with their own (disabled) observability
    singletons, so their counters would silently vanish; the federation
    PR routes them back with the sketch state and merges them into the
    parent registry as ``parallel.shard.<N>.worker.*``.
    """

    def _ingest(self, engine, rng, n=4000, batches=4):
        values = rng.integers(0, DOMAIN, size=n, dtype=np.int64)
        engine.register_stream("f")
        for chunk in np.array_split(values, batches):
            engine.process_bulk("f", chunk, None)
        return n

    @pytest.mark.parametrize("mode", ["process", "shm"])
    def test_process_mode_flush_surfaces_worker_counters(self, mode, rng):
        from repro.obs import METRICS

        METRICS.enable()
        with ParallelStreamEngine(
            DOMAIN, PARAMS, synopsis="hash", seed=5, workers=2, mode=mode
        ) as engine:
            n = self._ingest(engine, rng)
            engine.flush()
        counters = METRICS.snapshot()["counters"]
        elements = {
            name: value
            for name, value in counters.items()
            if name.startswith("parallel.shard.") and name.endswith("worker.elements")
        }
        assert elements, "flush must merge worker counters into the registry"
        assert sum(elements.values()) == float(n)
        batches = [
            value
            for name, value in counters.items()
            if name.startswith("parallel.shard.") and name.endswith("worker.batches")
        ]
        assert sum(batches) >= 1.0

    @pytest.mark.parametrize("mode", ["process", "shm"])
    def test_flush_drains_even_while_disabled(self, mode, rng):
        from repro.obs import METRICS

        with ParallelStreamEngine(
            DOMAIN, PARAMS, synopsis="hash", seed=5, workers=2, mode=mode
        ) as engine:
            self._ingest(engine, rng)
            engine.flush()  # disabled: stats must be dropped, not queued
            METRICS.enable()
            engine.process_bulk(
                "f", np.asarray([1, 2, 3], dtype=np.int64), None
            )
            engine.flush()
        counters = METRICS.snapshot()["counters"]
        elements = sum(
            value
            for name, value in counters.items()
            if name.startswith("parallel.shard.") and name.endswith("worker.elements")
        )
        assert elements == 3.0

    @pytest.mark.parametrize("mode", ["serial", "thread"])
    def test_in_process_modes_have_no_worker_telemetry(self, mode, rng):
        from repro.obs import METRICS

        METRICS.enable()
        with ParallelStreamEngine(
            DOMAIN, PARAMS, synopsis="hash", seed=5, workers=2, mode=mode
        ) as engine:
            self._ingest(engine, rng)
            engine.flush()
        counters = METRICS.snapshot()["counters"]
        assert not any(name.startswith("parallel.shard.") for name in counters)


class TestSharedMemoryLifecycle:
    """No leaked ``/dev/shm`` segments, whatever path tears the shm mode down.

    Segment names are ``repro_shm_*``; :func:`active_segment_names`
    enumerates the live ones, so every test can assert the before/after
    set difference directly.
    """

    @staticmethod
    def _ingestor(workers=2):
        schema = HashSketchSchema(64, 3, DOMAIN, seed=1)
        return ShardedIngestor(schema, workers=workers, mode="shm")

    def test_segments_live_during_ingest_and_unlinked_on_close(self):
        from repro.parallel.shm import SEGMENT_PREFIX, active_segment_names

        before = set(active_segment_names())
        ingestor = self._ingestor()
        created = set(active_segment_names()) - before
        assert len(created) == 2
        assert all(name.startswith(SEGMENT_PREFIX) for name in created)
        values, weights = seeded_batches(n=300, batches=1)[0]
        ingestor.ingest(values, weights)
        ingestor.close()
        assert not (set(active_segment_names()) & created)

    def test_double_close_is_safe(self):
        from repro.parallel.shm import active_segment_names

        before = set(active_segment_names())
        ingestor = self._ingestor()
        values, weights = seeded_batches(n=200, batches=1)[0]
        ingestor.ingest(values, weights)
        ingestor.close()
        ingestor.close()
        assert set(active_segment_names()) == before

    def test_merged_works_and_is_exact_after_close(self):
        schema = HashSketchSchema(64, 3, DOMAIN, seed=1)
        values, weights = seeded_batches(n=400, batches=1)[0]
        serial = schema.create_sketch()
        serial.update_bulk(values, weights)
        ingestor = ShardedIngestor(schema, workers=2, mode="shm")
        ingestor.ingest(values, weights)
        ingestor.close()
        assert states_equal(ingestor.merged(), serial)

    def test_ingest_after_close_raises(self):
        ingestor = self._ingestor()
        values, weights = seeded_batches(n=100, batches=1)[0]
        ingestor.close()
        with pytest.raises(RuntimeError):
            ingestor.ingest(values, weights)

    def test_context_manager_exception_path_releases_segments(self):
        from repro.parallel.shm import active_segment_names

        before = set(active_segment_names())
        with pytest.raises(KeyboardInterrupt):
            with self._ingestor() as ingestor:
                values, weights = seeded_batches(n=200, batches=1)[0]
                ingestor.ingest(values, weights)
                raise KeyboardInterrupt
        assert set(active_segment_names()) == before

    def test_worker_failure_surfaces_and_close_still_releases(self):
        from repro.parallel.pool import WorkerError
        from repro.parallel.shm import active_segment_names

        before = set(active_segment_names())
        ingestor = self._ingestor()
        bad = np.asarray([DOMAIN + 17], dtype=np.int64)  # outside the domain
        ingestor.ingest(bad)
        with pytest.raises(WorkerError):
            ingestor.merged()
        ingestor.close()
        assert set(active_segment_names()) == before

    def test_reset_clears_state_and_ingestor_stays_usable(self):
        schema = HashSketchSchema(64, 3, DOMAIN, seed=1)
        values, weights = seeded_batches(n=500, batches=1)[0]
        serial = schema.create_sketch()
        serial.update_bulk(values, weights)
        with ShardedIngestor(schema, workers=2, mode="shm") as ingestor:
            ingestor.ingest(values, weights)
            ingestor.reset()
            assert states_equal(ingestor.merged(), schema.create_sketch())
            ingestor.ingest(values, weights)
            assert states_equal(ingestor.merged(), serial)

    def test_interpreter_exit_without_close_leaks_nothing(self, tmp_path):
        import subprocess
        import sys

        script = tmp_path / "leaker.py"
        script.write_text(
            "import numpy as np\n"
            "from repro.parallel import ShardedIngestor\n"
            "from repro.parallel.shm import active_segment_names\n"
            "from repro.sketches.hash_sketch import HashSketchSchema\n"
            "schema = HashSketchSchema(64, 3, 1 << 10, seed=1)\n"
            "ingestor = ShardedIngestor(schema, workers=2, mode='shm')\n"
            "ingestor.ingest(np.arange(64, dtype=np.int64))\n"
            "ingestor.merged()\n"
            "print(','.join(active_segment_names()))\n"
            "# exit without close(): weakref.finalize must unlink at exit\n"
        )
        import os
        import pathlib

        repo_root = pathlib.Path(__file__).resolve().parents[1]
        result = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            timeout=60,
            env={**os.environ, "PYTHONPATH": str(repo_root / "src")},
            cwd=str(repo_root),
        )
        assert result.returncode == 0, result.stderr
        created = {name for name in result.stdout.strip().split(",") if name}
        assert created, "the child must have had live segments"
        from repro.parallel.shm import active_segment_names

        assert not (set(active_segment_names()) & created)
        assert "leaked shared_memory" not in result.stderr
