"""Tests for the per-figure experiment definitions (small scales)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.figures import (
    ExperimentScale,
    default_scale,
    full_scale,
    make_census_workload,
    make_shifted_zipf_workload,
    render_figure5,
    render_rows,
    run_baseline_panel,
    run_dyadic_cost,
    run_example1,
    run_figure5,
    run_space_scaling,
    run_threshold_ablation,
    scale_from_env,
)
from repro.eval.runner import SweepConfig

TINY_SCALE = ExperimentScale(
    domain_size=1 << 10,
    stream_total=20_000,
    sweep=SweepConfig(
        widths=(32, 64),
        depths=(3, 5),
        space_budgets=(128, 384),
        trials=2,
        seed=3,
    ),
    label="tiny",
)


class TestScales:
    def test_default_scale_shape(self):
        scale = default_scale()
        assert scale.domain_size == 1 << 14
        assert scale.sweep.widths == (50, 100, 150, 200, 250)

    def test_full_scale_larger(self):
        assert full_scale().stream_total > default_scale().stream_total

    def test_env_toggle(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
        assert scale_from_env().label == default_scale().label
        monkeypatch.setenv("REPRO_FULL_SCALE", "1")
        assert scale_from_env().label == full_scale().label
        monkeypatch.setenv("REPRO_FULL_SCALE", "0")
        assert scale_from_env().label == default_scale().label

    def test_with_trials(self):
        assert TINY_SCALE.with_trials(7).sweep.trials == 7


class TestWorkloads:
    def test_shifted_zipf_workload_deterministic(self):
        workload = make_shifted_zipf_workload(1 << 10, 10_000, 1.0, 5)
        f1, g1 = workload(42)
        f2, g2 = workload(42)
        assert f1 == f2 and g1 == g2

    def test_census_workload(self):
        workload = make_census_workload(num_records=5_000)
        wage, overtime = workload(1)
        assert wage.total_count() == 5_000


class TestFigure5:
    def test_tiny_run_structure(self):
        results = run_figure5(1.0, (5,), TINY_SCALE)
        assert set(results) == {5}
        result = results[5]
        assert set(result.methods()) == {"basic_agms", "skimmed"}
        expected = (
            TINY_SCALE.sweep.trials * len(TINY_SCALE.sweep.shapes()) * 2
        )
        assert len(result.records) == expected

    def test_render(self):
        results = run_figure5(1.0, (5,), TINY_SCALE, methods=("skimmed",))
        text = render_figure5("Figure 5 (tiny)", results)
        assert "space (words)" in text
        assert "skimmed, shift=5" in text


class TestExample1:
    def test_improvement_factor_exceeds_one(self):
        result = run_example1()
        assert result["improvement_factor"] > 1.0
        assert result["basic_max_error"] > result["skimmed_max_error"]
        assert result["join_size"] > 0


class TestDyadicCost:
    def test_savings_grow_with_domain(self):
        rows = run_dyadic_cost(domain_sizes=(1 << 10, 1 << 14), num_heavy=8)
        assert rows[0]["descent_estimates"] < rows[0]["flat_scan_estimates"]
        assert rows[1]["saving_factor"] > rows[0]["saving_factor"]
        assert all(row["heavy_recall"] >= 0.9 for row in rows)


class TestThresholdAblation:
    def test_rows_cover_multipliers(self):
        rows = run_threshold_ablation(
            (0.5, 1.0, 100.0), 1.2, 5, TINY_SCALE, width=128, depth=5, trials=2
        )
        assert [row["multiplier"] for row in rows] == [0.5, 1.0, 100.0]
        # An absurd multiplier skims nothing.
        assert rows[-1]["mean_dense_count"] == 0.0


class TestSpaceScaling:
    def test_rows_report_join_and_space(self):
        rows = run_space_scaling(
            1.1,
            (2, 50),
            TINY_SCALE,
            target_error=0.5,
            depth=5,
            widths=(32, 128, 512),
            trials=2,
        )
        assert len(rows) == 2
        assert rows[0]["join_size"] > rows[1]["join_size"]
        for row in rows:
            assert "space_skimmed" in row and "space_basic_agms" in row


class TestBaselinePanel:
    def test_all_methods_reported(self):
        rows = run_baseline_panel(
            TINY_SCALE, z=1.1, shift=5, width=64, depth=5, trials=2
        )
        methods = {row["method"] for row in rows}
        assert methods == {
            "basic_agms",
            "fast_agms",
            "skimmed",
            "reservoir",
            "bifocal",
            "partitioned",
        }
        assert all(np.isfinite(row["mean_error"]) for row in rows)


class TestRenderRows:
    def test_renders(self):
        text = render_rows("t", [{"a": 1, "b": 2.5}])
        assert "a" in text and "b" in text

    def test_empty(self):
        assert "(no rows)" in render_rows("t", [])
