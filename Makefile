# Convenience targets for the skimmed-sketches reproduction.

PYTHON ?= python

.PHONY: install test bench bench-smoke experiments examples metrics-smoke monitor-smoke parallel-smoke scaling-gate profile-smoke workloads-smoke federate-smoke lint check clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Static analysis: the domain-invariant linter (always; includes the
# interprocedural R9/R10/R11 passes), a strict audit of every
# `# repro: noqa[...]` suppression (each must carry a reason), plus mypy
# strict on the kernel packages (when mypy is installed —
# `pip install -e .[lint]`).  See docs/STATIC_ANALYSIS.md.
lint:
	PYTHONPATH=src $(PYTHON) -m repro.analysis src tests examples benchmarks
	PYTHONPATH=src $(PYTHON) -m repro.analysis suppressions \
		src tests examples benchmarks --strict
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy; \
	else \
		echo "mypy not installed; skipping type check (pip install -e .[lint])"; \
	fi

# Umbrella gate: everything CI runs.
check: lint test metrics-smoke monitor-smoke parallel-smoke scaling-gate profile-smoke workloads-smoke federate-smoke

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Run the registered smoke suite and gate the deterministic axes
# (relative error, sketch bytes) against the committed baseline.  The
# timing gate is off (--max-slowdown 0) because the baseline was timed
# on a different machine; run `python -m repro.bench compare` by hand
# with the default gate to chase local wall-clock regressions.
bench-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.bench run --suite smoke \
		--json-out .bench-smoke.json --quiet
	PYTHONPATH=src $(PYTHON) -m repro.bench compare \
		benchmarks/baselines/BENCH_baseline.json .bench-smoke.json \
		--max-slowdown 0
	rm -f .bench-smoke.json

experiments:
	$(PYTHON) -m repro.eval figure5a figure5b census example1 \
		space-scaling dyadic-cost threshold-ablation baseline-panel

examples:
	for script in examples/*.py; do \
		echo "== $$script =="; $(PYTHON) $$script || exit 1; \
	done

# Run one instrumented benchmark and validate the emitted metrics
# snapshot (schema + required metric names); see docs/OBSERVABILITY.md.
metrics-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.eval smoke --metrics-out .metrics-smoke.json
	PYTHONPATH=src $(PYTHON) -m repro.obs .metrics-smoke.json \
		sketch.update.elements skim.passes estimate.joins \
		skim.seconds eval.experiment.seconds
	rm -f .metrics-smoke.json

# Run the audited smoke workload, then serve the resulting audit JSONL +
# metrics snapshot over HTTP and scrape every endpoint (Prometheus
# exposition must parse, at least one audit must round-trip); see the
# "Estimate-quality monitoring" section of docs/OBSERVABILITY.md.
monitor-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.eval smoke \
		--metrics-out .monitor-smoke.metrics.json \
		--audit-out .monitor-smoke.audits.jsonl
	PYTHONPATH=src $(PYTHON) -m repro.monitor selfcheck \
		--metrics .monitor-smoke.metrics.json \
		--audits .monitor-smoke.audits.jsonl --min-audits 1
	rm -f .monitor-smoke.metrics.json .monitor-smoke.audits.jsonl

# Prove serial-vs-sharded exactness on a seeded stream for every ingest
# mode (counters bit-identical, query answers equal); exit 1 on any
# mismatch.  See docs/PERFORMANCE.md.
parallel-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.parallel selfcheck --workers 4

# "Parallel must win": shared-memory ingest at >1 worker must beat
# serial updates/s above the documented batch-size threshold (see
# docs/PERFORMANCE.md).  Gates the committed BENCH_pr10.json records —
# deterministic, so it holds on any machine.  Run
# `python -m repro.parallel scaling-gate` with no --bench-json to
# measure and gate live on this machine instead.
scaling-gate:
	PYTHONPATH=src $(PYTHON) -m repro.parallel scaling-gate \
		--bench-json benchmarks/results/BENCH_pr10.json

# Continuous-profiling selfcheck: run a sampled+recorded workload, prove
# span attribution, exporter round trips (collapsed/speedscope/JSONL),
# the telemetry ring's byte bound + aging conservation, and the live
# /profile, /timeseries and /dashboard endpoints; then record a profiled
# smoke run's artifacts.  See the "Continuous profiling & flight
# recorder" section of docs/OBSERVABILITY.md.
profile-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.profile selfcheck --seconds 20
	PYTHONPATH=src $(PYTHON) -m repro.profile record \
		--out .profile-smoke.prof.jsonl \
		--timeseries-out .profile-smoke.ts.jsonl \
		--seconds 3 --hz 97 --interval 0.5
	PYTHONPATH=src $(PYTHON) -m repro.profile top .profile-smoke.prof.jsonl \
		--limit 10
	PYTHONPATH=src $(PYTHON) -m repro.profile convert \
		.profile-smoke.prof.jsonl .profile-smoke.collapsed \
		--format collapsed
	rm -f .profile-smoke.prof.jsonl .profile-smoke.ts.jsonl \
		.profile-smoke.collapsed

# Adversarial-workload accuracy gate: prove corpus determinism and
# serial==sharded audit equality, then run the audited smoke corpus and
# gate realized error / CI coverage / residual verdicts / drift alerts
# against the committed baseline.  Every number is seed-deterministic,
# so the full tolerance gate holds across machines.  See
# docs/WORKLOADS.md.
workloads-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.workloads selfcheck
	PYTHONPATH=src $(PYTHON) -m repro.workloads run --suite smoke \
		--json-out .workloads-smoke.json --quiet
	PYTHONPATH=src $(PYTHON) -m repro.workloads compare \
		benchmarks/baselines/ACCURACY_baseline.json .workloads-smoke.json
	rm -f .workloads-smoke.json

# Federated-telemetry gate: prove the merge algebra + wire contracts
# (selfcheck), run a 3-site distributed round trip with telemetry-enabled
# sites (merged per-origin metrics, one stitched Perfetto trace, per-origin
# accumulated snapshots), then scrape everything through a federated
# monitor (origin-labelled /metrics + /topology health).  See the
# "Federated telemetry" section of docs/OBSERVABILITY.md.
federate-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.federate selfcheck
	PYTHONPATH=src $(PYTHON) -m repro.federate run --sites 3 --rounds 2 \
		--updates 500 --out-dir .federate-smoke
	PYTHONPATH=src $(PYTHON) -m repro.monitor selfcheck \
		--metrics .federate-smoke/metrics.json --min-audits 0 \
		--federate coordinator=.federate-smoke/metrics.json \
		--federate site.edge-0=.federate-smoke/telemetry.site.edge-0.json \
		--federate site.edge-1=.federate-smoke/telemetry.site.edge-1.json \
		--federate site.edge-2=.federate-smoke/telemetry.site.edge-2.json
	rm -rf .federate-smoke

clean:
	rm -rf src/repro.egg-info .pytest_cache .hypothesis .benchmarks .federate-smoke
	find . -name __pycache__ -type d -exec rm -rf {} +
