"""repro — skimmed sketches for data-stream join aggregates.

A from-scratch reproduction of *"Processing Data-Stream Join Aggregates
Using Skimmed Sketches"* (Ganguly, Garofalakis, Rastogi; EDBT 2004):
single-pass, small-space estimation of ``COUNT``/``SUM``/``AVERAGE``
aggregates over joins of update streams (inserts *and* deletes), with the
paper's skimmed-sketch estimator as the headline API and every baseline it
compares against implemented alongside.

Quick start::

    import numpy as np
    from repro import SkimmedSketchSchema

    schema = SkimmedSketchSchema(width=200, depth=11, domain_size=1 << 16,
                                 seed=42)
    f, g = schema.create_sketch(), schema.create_sketch()
    f.update(17)            # insert value 17 into stream F
    g.update(17)
    g.update(23, -1.0)      # delete an occurrence of 23 from stream G
    print(f.est_join_size(g))

Package map (details in DESIGN.md):

* :mod:`repro.core` — skimming + the skimmed-sketch join estimator;
* :mod:`repro.sketches` — AGMS, hash sketches, COUNTSKETCH top-k, dyadic;
* :mod:`repro.hashing` — k-wise independent hash/sign families;
* :mod:`repro.streams` — stream model, generators, query engine, multi-join;
* :mod:`repro.baselines` — exact / sampling / bifocal / partitioned AGMS;
* :mod:`repro.parallel` — sharded parallel ingestion with exact merge;
* :mod:`repro.workloads` — adversarial workload corpus + accuracy gate;
* :mod:`repro.eval` — the paper's evaluation methodology and experiments.
"""

from .errors import (
    DeletionUnsupportedError,
    DomainError,
    IncompatibleSketchError,
    QueryError,
    ReproError,
)
from .core import (
    JoinEstimateBreakdown,
    SketchParameters,
    SkimResult,
    SkimmedSketch,
    SkimmedSketchSchema,
    est_skim_join_size,
    est_sub_join_size,
    skim_dense,
    skim_dense_dyadic,
)
from .sketches import (
    AGMSSchema,
    AGMSSketch,
    DyadicHashSketch,
    DyadicSketchSchema,
    HashSketch,
    HashSketchSchema,
    StreamSynopsis,
    TopKSketch,
)
from .hashing import BulkHashCache
from .parallel import ParallelStreamEngine, ShardedIngestor
from .streams import (
    FrequencyVector,
    StreamEngine,
    Update,
)
from .sketches.serialize import (
    SerializationError,
    load_sketch,
    merge_sketch_state,
    save_sketch,
    sketch_from_spec,
    sketch_from_state,
    sketch_spec,
    sketch_state,
)

__version__ = "1.0.0"

__all__ = [
    "AGMSSchema",
    "AGMSSketch",
    "BulkHashCache",
    "DeletionUnsupportedError",
    "DomainError",
    "DyadicHashSketch",
    "DyadicSketchSchema",
    "FrequencyVector",
    "HashSketch",
    "HashSketchSchema",
    "IncompatibleSketchError",
    "JoinEstimateBreakdown",
    "ParallelStreamEngine",
    "QueryError",
    "ReproError",
    "SerializationError",
    "ShardedIngestor",
    "SketchParameters",
    "SkimResult",
    "SkimmedSketch",
    "SkimmedSketchSchema",
    "StreamEngine",
    "StreamSynopsis",
    "TopKSketch",
    "Update",
    "est_skim_join_size",
    "est_sub_join_size",
    "load_sketch",
    "merge_sketch_state",
    "save_sketch",
    "sketch_from_spec",
    "sketch_from_state",
    "sketch_spec",
    "sketch_state",
    "skim_dense",
    "skim_dense_dyadic",
    "__version__",
]
