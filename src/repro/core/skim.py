"""SKIMDENSE: extracting dense frequencies out of a hash sketch (Fig. 3).

Skimming is the paper's central trick.  Given a hash sketch of stream
``F``, every domain value whose COUNTSKETCH frequency estimate reaches a
threshold ``theta`` is *extracted*: its estimate is recorded in an explicit
dense-frequency vector ``fhat`` and subtracted from the sketch counters.
What remains — the **skimmed sketch** — is exactly the sketch of the
residual frequency vector ``f - fhat``, whose entries are all
``O(theta)`` with high probability (Theorem 4).  Small residual
frequencies mean small residual self-join sizes, which is what slashes the
error of the downstream join estimate (Section 3).

Two implementations are provided:

* :func:`skim_dense` — scans the whole domain with one vectorised
  estimate pass; cost ``O(|D| * depth)``, exact coverage, right choice for
  materialisable domains (the paper's experiments use ``|D| = 2**18``);
* :func:`skim_dense_dyadic` — the Section 4.2 optimisation, descending a
  dyadic-interval hierarchy and pruning sub-threshold intervals; cost
  ``O((N/theta) * log|D| * depth)``, the right choice for huge domains.

The default threshold is ``theta = multiplier * N / sqrt(width)``, the
shape Theorems 3-5 require (``N`` is the tracked stream size).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from ..errors import ParameterError
from ..monitor.audit import RESIDUAL_BOUND_FACTOR
from ..obs import METRICS as _METRICS
from ..trace import TRACER as _TRACER
from ..sketches.dyadic import DyadicHashSketch
from ..sketches.hash_sketch import HashSketch
from ..streams.model import FrequencyVector

#: Default multiplier ``c`` in ``theta = c * N / sqrt(width)``.
DEFAULT_THRESHOLD_MULTIPLIER = 1.0

__all__ = [
    "DEFAULT_THRESHOLD_MULTIPLIER",
    "RESIDUAL_BOUND_FACTOR",
    "SkimResult",
    "default_threshold",
    "residual_bound_ok",
    "residual_infinity_norm",
    "skim_dense",
    "skim_dense_dyadic",
]


def residual_infinity_norm(sketch: HashSketch) -> float:
    """``‖f - fhat‖∞`` as seen by the sketch: the largest-magnitude
    COUNTSKETCH point estimate over the whole domain.

    Theorem 4's contract for SKIMDENSE is that every *residual* frequency
    is below ``2 * theta`` w.h.p.; evaluating this norm on a skimmed
    sketch (cost ``O(|D| * depth)``, audit-path only) checks that
    contract a posteriori.  Returns ``0.0`` for an empty domain.
    """
    estimates = sketch.all_point_estimates()
    if estimates.size == 0:
        return 0.0
    return float(np.abs(estimates).max())


def residual_bound_ok(sketch: HashSketch, threshold: float) -> bool:
    """Whether a skimmed sketch honours ``‖residual‖∞ <
    RESIDUAL_BOUND_FACTOR * threshold`` (SKIMDENSE's Theorem-4 contract).

    An infinite threshold (empty stream: nothing was dense, nothing was
    skimmed) trivially satisfies the bound.
    """
    if not np.isfinite(threshold):
        return True
    return residual_infinity_norm(sketch) < RESIDUAL_BOUND_FACTOR * threshold


def default_threshold(
    sketch: HashSketch | DyadicHashSketch,
    multiplier: float = DEFAULT_THRESHOLD_MULTIPLIER,
) -> float:
    """The paper's skimming threshold ``theta = c * N / sqrt(width)``.

    ``N`` is the sketch's tracked absolute update mass.  Returns ``inf``
    for an empty sketch (nothing can be dense).
    """
    if multiplier <= 0:
        raise ParameterError(f"multiplier must be positive, got {multiplier}")
    n = sketch.absolute_mass
    if n <= 0:
        return float("inf")
    width = sketch.schema.width
    return multiplier * n / float(np.sqrt(width))


@dataclass(frozen=True)
class SkimResult:
    """Outcome of a SKIMDENSE pass.

    Attributes
    ----------
    dense_values:
        Domain values extracted as dense, ascending ``int64``.
    dense_frequencies:
        Their extracted frequency estimates ``fhat(v)`` (aligned with
        ``dense_values``; all ``>= threshold`` by construction).
    threshold:
        The threshold the pass used.
    """

    dense_values: np.ndarray
    dense_frequencies: np.ndarray
    threshold: float

    def __post_init__(self) -> None:
        if self.dense_values.shape != self.dense_frequencies.shape:
            raise ParameterError("dense_values and dense_frequencies must align")

    @property
    def dense_count(self) -> int:
        """Number of extracted dense values."""
        return int(self.dense_values.size)

    def dense_mass(self) -> float:
        """Total extracted frequency mass ``sum fhat(v)``."""
        return float(self.dense_frequencies.sum())

    def as_frequency_vector(self, domain_size: int) -> FrequencyVector:
        """The extracted dense frequencies as a full-domain vector."""
        vec = FrequencyVector.zeros(domain_size)
        vec.apply_bulk(self.dense_values, self.dense_frequencies)
        return vec

    def frequency_of(self, value: int) -> float:
        """Extracted frequency of ``value`` (0.0 if it was not dense)."""
        idx = np.searchsorted(self.dense_values, value)
        if idx < self.dense_values.size and self.dense_values[idx] == value:
            return float(self.dense_frequencies[idx])
        return 0.0


@dataclass(frozen=True)
class _Empty:
    """Sentinel namespace for an empty skim (no dense values)."""

    values: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    frequencies: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.float64)
    )


def skim_dense(
    sketch: HashSketch,
    threshold: float | None = None,
    *,
    in_place: bool = False,
) -> tuple[SkimResult, HashSketch]:
    """SKIMDENSE over a flat hash sketch (full-domain scan variant).

    Parameters
    ----------
    sketch:
        The hash sketch to skim.
    threshold:
        Extraction threshold ``theta``; defaults to
        :func:`default_threshold` with the standard multiplier.
    in_place:
        If true, subtract the dense frequencies from ``sketch`` itself;
        otherwise skim a copy and leave ``sketch`` untouched.

    Returns
    -------
    ``(result, skimmed)`` where ``skimmed`` is the sketch of the residual
    frequency vector.
    """
    if threshold is None:
        threshold = default_threshold(sketch)
    if threshold <= 0:
        raise ParameterError(f"threshold must be positive, got {threshold}")

    target = sketch if in_place else sketch.copy()
    if not np.isfinite(threshold):
        return SkimResult(_Empty().values, _Empty().frequencies, threshold), target

    # Warm the schema's hash/sign lookup tables (small domains) outside the
    # timed region: the flat full-domain scan is exactly the workload the
    # ``precompute(domain)`` table cache exists for, and repeated skims
    # should not re-pay the polynomial evaluation.
    target.schema.ensure_precomputed()
    with _METRICS.timer("skim.seconds") if _METRICS.enabled else nullcontext():
        with _TRACER.span(
            "skim",
            kind="flat",
            threshold=float(threshold),
            n=float(sketch.absolute_mass),
        ) if _TRACER.enabled else nullcontext() as sp:
            estimates = target.all_point_estimates()
            dense_mask = estimates >= threshold
            dense_values = np.flatnonzero(dense_mask).astype(np.int64)
            dense_frequencies = estimates[dense_mask]
            if dense_values.size:
                target.subtract_frequencies(dense_values, dense_frequencies)
            if sp is not None:
                sp.set(dense=int(dense_values.size))
    if _METRICS.enabled:
        _record_skim_metrics("flat", threshold, int(dense_values.size))
    return SkimResult(dense_values, dense_frequencies, float(threshold)), target


def skim_dense_dyadic(
    sketch: DyadicHashSketch,
    threshold: float | None = None,
    *,
    in_place: bool = False,
) -> tuple[SkimResult, DyadicHashSketch]:
    """SKIMDENSE over a dyadic hierarchy (Section 4.2 fast variant).

    Identical contract to :func:`skim_dense`, but candidate dense values
    are found by the pruned top-down descent instead of a domain scan, and
    extraction subtracts at every level so the hierarchy stays consistent.
    """
    if threshold is None:
        threshold = default_threshold(sketch.base_sketch)
    if threshold <= 0:
        raise ParameterError(f"threshold must be positive, got {threshold}")

    target = sketch if in_place else sketch.copy()
    if not np.isfinite(threshold):
        return SkimResult(_Empty().values, _Empty().frequencies, threshold), target

    with _METRICS.timer("skim.seconds") if _METRICS.enabled else nullcontext():
        with _TRACER.span(
            "skim",
            kind="dyadic",
            threshold=float(threshold),
            n=float(sketch.absolute_mass),
        ) if _TRACER.enabled else nullcontext() as sp:
            dense_values = target.heavy_values(threshold)
            if dense_values.size == 0:
                if sp is not None:
                    sp.set(dense=0)
                if _METRICS.enabled:
                    _record_skim_metrics("dyadic", threshold, 0)
                return (
                    SkimResult(
                        _Empty().values, _Empty().frequencies, float(threshold)
                    ),
                    target,
                )

            dense_frequencies = target.base_sketch.point_estimates(dense_values)
            # The descent already filtered on the level-0 estimate, but guard
            # against borderline values whose estimate is non-positive (possible
            # only through median noise on adversarial inputs): extracting a
            # non-positive "frequency" would *add* mass to the residual.
            keep = dense_frequencies >= threshold
            dense_values = dense_values[keep]
            dense_frequencies = dense_frequencies[keep]
            if dense_values.size:
                target.subtract_frequencies(dense_values, dense_frequencies)
            if sp is not None:
                sp.set(dense=int(dense_values.size))
    if _METRICS.enabled:
        _record_skim_metrics("dyadic", threshold, int(dense_values.size))
    return SkimResult(dense_values, dense_frequencies, float(threshold)), target


def _record_skim_metrics(kind: str, threshold: float, dense_count: int) -> None:
    """Shared skim-pass telemetry (self-guarded; callers may pre-check)."""
    if not _METRICS.enabled:
        return
    _METRICS.count("skim.passes")
    _METRICS.count(f"skim.passes.{kind}")
    _METRICS.count("skim.dense_extracted", dense_count)
    _METRICS.gauge("skim.threshold", float(threshold))
