"""High-level public API: :class:`SkimmedSketch` and its schema.

This is the class a downstream user touches.  It wraps either a flat hash
sketch (default; domain-scan skimming) or a dyadic hierarchy (for huge
domains), tracks the stream, and answers join-size / self-join-size /
point-frequency queries with the skimmed-sketch machinery underneath.

Typical usage::

    schema = SkimmedSketchSchema(width=200, depth=11, domain_size=1 << 18,
                                 seed=42)
    sketch_f = schema.create_sketch()
    sketch_g = schema.create_sketch()
    ... feed updates (value, +/-weight) into each sketch ...
    estimate = sketch_f.est_join_size(sketch_g)

Both sketches must come from the same schema — they share hash functions,
as the paper requires — and this is enforced.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import TYPE_CHECKING

import numpy as np

from ..errors import IncompatibleSketchError, ParameterError
from ..monitor import AUDIT as _AUDIT
from ..obs import METRICS as _METRICS
from ..trace import TRACER as _TRACER
from ..sketches.base import StreamSynopsis
from ..sketches.dyadic import DyadicHashSketch, DyadicSketchSchema
from ..sketches.hash_sketch import HashSketch, HashSketchSchema
from .config import SketchParameters
from .skim import (
    DEFAULT_THRESHOLD_MULTIPLIER,
    SkimResult,
    default_threshold,
    skim_dense,
    skim_dense_dyadic,
)
from .skimmed_join import JoinEstimateBreakdown, est_skim_join_size_from_parts

if TYPE_CHECKING:  # type-only: repro.streams imports repro.core at runtime
    from ..streams.model import FrequencyVector


class SkimmedSketchSchema:
    """Shared randomness, shape and skim policy for a join-compatible set of
    :class:`SkimmedSketch` synopses.

    Parameters
    ----------
    width, depth:
        Hash-sketch dimensions (paper's ``s1``/``s2``); see
        :class:`~repro.core.config.SketchParameters` for principled choices.
    domain_size:
        Stream value domain ``[0, domain_size)``.  Must be a power of two
        when ``dyadic=True``.
    seed:
        Determines all hash/sign families.
    dyadic:
        Use the Section 4.2 dyadic hierarchy (skim cost logarithmic in the
        domain, at a ``log2(domain)`` factor more counters) instead of the
        flat full-domain-scan skim.
    threshold_multiplier:
        ``c`` in the skim threshold ``theta = c * N / sqrt(width)``.
    """

    def __init__(
        self,
        width: int,
        depth: int,
        domain_size: int,
        seed: int = 0,
        dyadic: bool = False,
        threshold_multiplier: float = DEFAULT_THRESHOLD_MULTIPLIER,
    ) -> None:
        if threshold_multiplier <= 0:
            raise ParameterError(
                f"threshold_multiplier must be positive, got {threshold_multiplier}"
            )
        self.width = width
        self.depth = depth
        self.domain_size = domain_size
        self.seed = seed
        self.dyadic = dyadic
        self.threshold_multiplier = threshold_multiplier
        if dyadic:
            self._inner_schema: HashSketchSchema | DyadicSketchSchema = (
                DyadicSketchSchema(width, depth, domain_size, seed=seed)
            )
        else:
            self._inner_schema = HashSketchSchema(width, depth, domain_size, seed=seed)

    @classmethod
    def from_parameters(
        cls,
        parameters: SketchParameters,
        domain_size: int,
        seed: int = 0,
        dyadic: bool = False,
    ) -> "SkimmedSketchSchema":
        """Build a schema from a :class:`SketchParameters` recommendation."""
        return cls(
            parameters.width,
            parameters.depth,
            domain_size,
            seed=seed,
            dyadic=dyadic,
            threshold_multiplier=parameters.threshold_multiplier,
        )

    def create_sketch(self) -> "SkimmedSketch":
        """A fresh empty sketch bound to this schema."""
        return SkimmedSketch(self)

    def sketch_of(self, frequencies: "FrequencyVector") -> "SkimmedSketch":
        """Convenience: a sketch pre-loaded with a whole frequency vector."""
        sketch = self.create_sketch()
        sketch.ingest_frequency_vector(frequencies)
        return sketch

    def is_compatible(self, other: "SkimmedSketchSchema") -> bool:
        """True if sketches from ``other`` may be joined with ours."""
        return (
            self.dyadic == other.dyadic
            and self.threshold_multiplier == other.threshold_multiplier
            and self._inner_schema.is_compatible(other._inner_schema)
        )

    def __repr__(self) -> str:
        return (
            f"SkimmedSketchSchema(width={self.width}, depth={self.depth}, "
            f"domain_size={self.domain_size}, seed={self.seed}, "
            f"dyadic={self.dyadic}, c={self.threshold_multiplier})"
        )


class SkimmedSketch(StreamSynopsis):
    """One stream's skimmed-sketch synopsis — the paper's contribution.

    Maintenance is ``O(depth)`` per element (``O(depth * log(domain))``
    with ``dyadic=True``); deletions are supported; join estimation skims
    dense frequencies on the fly (the skim operates on a copy, so a sketch
    can keep absorbing updates and answer many queries).
    """

    def __init__(self, schema: SkimmedSketchSchema) -> None:
        self._schema = schema
        self._inner: HashSketch | DyadicHashSketch = (
            schema._inner_schema.create_sketch()
        )

    # -- synopsis contract ---------------------------------------------------

    @property
    def schema(self) -> SkimmedSketchSchema:
        """The schema (shared randomness and skim policy) of this sketch."""
        return self._schema

    @property
    def domain_size(self) -> int:
        """Size of the integer value domain this synopsis covers."""
        return self._schema.domain_size

    @property
    def absolute_mass(self) -> float:
        """Tracked stream size ``N`` (sum of ``|weight|`` over updates)."""
        return self._inner.absolute_mass

    def update(self, value: int, weight: float = 1.0) -> None:
        self._inner.update(value, weight)

    def update_bulk(self, values: np.ndarray, weights: np.ndarray | None = None) -> None:
        self._inner.update_bulk(values, weights)

    def update_coalesced(
        self,
        values: np.ndarray,
        masses: np.ndarray,
        observed_mass: float | None = None,
    ) -> None:
        """Pre-coalesced ingest, delegated to the wrapped hash/dyadic sketch."""
        self._inner.update_coalesced(values, masses, observed_mass)

    def size_in_counters(self) -> int:
        return self._inner.size_in_counters()

    def seed_words(self) -> int:
        return self._inner.seed_words()

    # -- external counter storage (shared-memory seam) --------------------------

    def counters_view(self) -> list[np.ndarray]:
        """Writable views of the wrapped sketch's counter blocks."""
        return self._inner.counters_view()

    def attach_counters(self, buffers: list[np.ndarray]) -> None:
        """Re-home the wrapped sketch's counters; see
        :meth:`HashSketch.attach_counters`."""
        self._inner.attach_counters(buffers)

    def tracked_masses(self) -> list[float]:
        """Tracked ``sum |weight|`` per wrapped counter block."""
        return self._inner.tracked_masses()

    def set_tracked_masses(self, masses: list[float]) -> None:
        """Install tracked masses captured by :meth:`tracked_masses`."""
        self._inner.set_tracked_masses(masses)

    # -- queries ------------------------------------------------------------------

    def skim_threshold(self) -> float:
        """The threshold ``theta = c * N / sqrt(width)`` at current ``N``."""
        base = self._inner.base_sketch if self._schema.dyadic else self._inner
        return default_threshold(base, self._schema.threshold_multiplier)

    def skim(self, threshold: float | None = None) -> tuple[SkimResult, "HashSketch"]:
        """Run SKIMDENSE on a copy; returns the skim and the *flat* residual
        level-0 sketch (the object join estimation consumes)."""
        if threshold is None:
            threshold = self.skim_threshold()
        if self._schema.dyadic:
            result, residual = skim_dense_dyadic(self._inner, threshold)
            return result, residual.base_sketch
        return skim_dense(self._inner, threshold)

    def join_breakdown(
        self, other: "SkimmedSketch", threshold: float | None = None
    ) -> JoinEstimateBreakdown:
        """Full ``ESTSKIMJOINSIZE`` decomposition of the join with ``other``.

        ``threshold`` overrides *both* streams' skim thresholds (used by
        the threshold-ablation experiment); by default each stream uses its
        own ``c * N / sqrt(width)``.
        """
        self._check_compatible(other)
        with _METRICS.timer(
            "estimate.skim_join.seconds"
        ) if _METRICS.enabled else nullcontext():
            with _TRACER.span(
                "estimate.skim_join",
                s1=self._schema.width,
                s2=self._schema.depth,
                dyadic=self._schema.dyadic,
                n_f=float(self.absolute_mass),
                n_g=float(other.absolute_mass),
            ) if _TRACER.enabled else nullcontext():
                f_skim, f_res = self.skim(threshold)
                g_skim, g_res = other.skim(threshold)
                breakdown = est_skim_join_size_from_parts(f_skim, f_res, g_skim, g_res)
        if _AUDIT.enabled:
            _AUDIT.annotate_last(
                n_f=float(self.absolute_mass),
                n_g=float(other.absolute_mass),
                dyadic=self._schema.dyadic,
            )
        return breakdown

    def est_join_size(self, other: "SkimmedSketch") -> float:
        """Skimmed-sketch estimate of ``COUNT(F join G)``."""
        return self.join_breakdown(other).estimate

    def est_self_join_size(self) -> float:
        """Skimmed-sketch estimate of the second moment ``F2``."""
        return self.join_breakdown(self).estimate

    def point_estimate(self, value: int) -> float:
        """COUNTSKETCH frequency estimate for one domain value."""
        base = self._inner.base_sketch if self._schema.dyadic else self._inner
        return base.point_estimate(value)

    # -- linearity -------------------------------------------------------------------

    def merged_with(self, other: "SkimmedSketch") -> "SkimmedSketch":
        """Sketch of the concatenation of both underlying streams."""
        self._check_compatible(other)
        result = SkimmedSketch(self._schema)
        result._inner = self._inner.merged_with(other._inner)
        return result

    def copy(self) -> "SkimmedSketch":
        """Independent deep copy."""
        result = SkimmedSketch(self._schema)
        result._inner = self._inner.copy()
        return result

    def _check_compatible(self, other: "SkimmedSketch") -> None:
        if not isinstance(other, SkimmedSketch):
            raise IncompatibleSketchError(
                f"cannot join SkimmedSketch with {type(other).__name__}"
            )
        if other._schema is not self._schema and not self._schema.is_compatible(
            other._schema
        ):
            raise IncompatibleSketchError(
                "sketches come from different schemas (randomness differs)"
            )

    def __repr__(self) -> str:
        return (
            f"SkimmedSketch(width={self._schema.width}, "
            f"depth={self._schema.depth}, dyadic={self._schema.dyadic}, "
            f"N={self.absolute_mass:g})"
        )
