"""ESTSKIMJOINSIZE / ESTSUBJOINSIZE: the skimmed-sketch join estimator
(paper Section 4.3, Figure 4).

With the dense frequencies of both streams skimmed into explicit vectors
``fhat`` / ``ghat`` and residual (sparse) components left in the skimmed
sketches, the join decomposes exactly:

    <f, g> = <fhat, ghat>  +  <fhat, g_s>  +  <f_s, ghat>  +  <f_s, g_s>
              dense-dense     dense-sparse    sparse-dense    sparse-sparse

* dense-dense is computed **with zero error** from the two extracted
  vectors;
* dense-sparse / sparse-dense use :func:`est_sub_join_size`
  (``ESTSUBJOINSIZE``): per table ``i``, accumulate
  ``sum_v fhat(v) * C_Gs[i, h_i(v)] * xi_i(v)`` and median across tables
  (Lemma 1 bounds the error by ``O(theta * sqrt(F2(g_s) / width))``);
* sparse-sparse is the bucket-wise inner product of the two skimmed
  sketches (Lemma 2).

Every residual frequency is ``O(theta)`` after skimming, so all three
estimated terms carry error ``O(N * theta / sqrt(width))`` — with
``theta = N / sqrt(width)`` this is the ``O(N^2 / width)`` additive bound
of Theorem 5, matching the join-size estimation space lower bound of Alon
et al. (square root of the basic-sketching requirement).
"""

from __future__ import annotations

from dataclasses import dataclass

from contextlib import ExitStack, nullcontext

import numpy as np

from ..errors import IncompatibleSketchError, ParameterError
from ..monitor import AUDIT as _AUDIT
from ..monitor.audit import QueryAudit, confidence_halfwidth
from ..obs import METRICS as _METRICS
from ..profile import PROFILER as _PROFILER, RECORDER as _RECORDER
from ..trace import TRACER as _TRACER
from ..sketches.dyadic import DyadicHashSketch
from ..sketches.hash_sketch import HashSketch
from .skim import (
    RESIDUAL_BOUND_FACTOR,
    SkimResult,
    residual_infinity_norm,
    skim_dense,
    skim_dense_dyadic,
)


def est_sub_join_size(
    dense_values: np.ndarray,
    dense_frequencies: np.ndarray,
    sketch: HashSketch,
) -> float:
    """Procedure ``ESTSUBJOINSIZE``: estimate ``<fhat, g>`` from ``g``'s sketch.

    Parameters
    ----------
    dense_values, dense_frequencies:
        The explicit (skimmed) frequency vector ``fhat``, as parallel
        arrays over its support.
    sketch:
        Hash sketch of the other stream (typically already skimmed).

    Returns
    -------
    The median over tables of the per-table estimates
    ``Y_i = sum_k fhat_k * C[i, h_i(v_k)] * xi_i(v_k)``.
    """
    dense_values = np.asarray(dense_values, dtype=np.int64)
    dense_frequencies = np.asarray(dense_frequencies, dtype=np.float64)
    if dense_values.shape != dense_frequencies.shape:
        raise ParameterError("dense_values and dense_frequencies must align")
    if dense_values.size == 0:
        return 0.0
    schema = sketch.schema
    with _TRACER.span(
        "estimate.median_boost", tables=schema.depth, dense=int(dense_values.size)
    ) if _TRACER.enabled else nullcontext() as sp:
        buckets = schema.buckets.buckets(dense_values)
        signs = schema.signs.signs(dense_values)
        table_index = np.arange(schema.depth)[:, None]
        per_table = (sketch.counters[table_index, buckets] * signs) @ dense_frequencies
        estimate = float(np.median(per_table))
        if sp is not None:
            sp.set(median=estimate)
    return estimate


def _term_context(term: str) -> ExitStack:
    """Combined metrics-timer + tracer-span context for one sub-join term.

    Both layers stay individually guarded, so with both disabled the cost
    is one empty :class:`ExitStack` per term per join estimate — query
    granularity, never per element.
    """
    stack = ExitStack()
    if _METRICS.enabled:
        stack.enter_context(_METRICS.timer(f"estimate.term.{term}.seconds"))
    if _TRACER.enabled:
        stack.enter_context(_TRACER.span("estimate.term", term=term))
    return stack


def _dense_dense_join(f_skim: SkimResult, g_skim: SkimResult) -> float:
    """Exact ``<fhat, ghat>`` over the intersection of the dense supports."""
    common, f_idx, g_idx = np.intersect1d(
        f_skim.dense_values, g_skim.dense_values, return_indices=True
    )
    if common.size == 0:
        return 0.0
    return float(
        np.dot(f_skim.dense_frequencies[f_idx], g_skim.dense_frequencies[g_idx])
    )


@dataclass(frozen=True)
class JoinEstimateBreakdown:
    """Full decomposition of one skimmed-sketch join estimate.

    Attributes mirror the four sub-join terms of Figure 4 plus the skim
    metadata; ``estimate`` is their sum (the procedure's return value).
    ``max_additive_error`` is the Lemma-1/2-style bound on the combined
    error of the three estimated terms (the dense-dense term is exact),
    with the residual self-join sizes estimated from the skimmed sketches.
    """

    dense_dense: float
    dense_sparse: float
    sparse_dense: float
    sparse_sparse: float
    f_skim: SkimResult
    g_skim: SkimResult
    max_additive_error: float = float("nan")

    @property
    def estimate(self) -> float:
        """The join-size estimate: sum of the four sub-join terms."""
        return (
            self.dense_dense
            + self.dense_sparse
            + self.sparse_dense
            + self.sparse_sparse
        )

    def relative_error_bound(self) -> float:
        """``max_additive_error / estimate`` (``inf`` for a tiny estimate).

        The a-posteriori analogue of Theorem 5's guarantee: how far off
        could this particular answer be, with the usual median-boosted
        probability.
        """
        if self.estimate <= 0:
            return float("inf")
        return self.max_additive_error / self.estimate

    def summary(self) -> str:
        """One-line human-readable decomposition (for examples/logging)."""
        return (
            f"estimate={self.estimate:.6g} "
            f"[dd={self.dense_dense:.6g} ds={self.dense_sparse:.6g} "
            f"sd={self.sparse_dense:.6g} ss={self.sparse_sparse:.6g}; "
            f"dense |F|={self.f_skim.dense_count} |G|={self.g_skim.dense_count}]"
        )


def est_skim_join_size_from_parts(
    f_skim: SkimResult,
    f_skimmed: HashSketch,
    g_skim: SkimResult,
    g_skimmed: HashSketch,
) -> JoinEstimateBreakdown:
    """Assemble the four sub-join estimates from already-skimmed inputs.

    Exposed separately so callers that skim once and estimate many joins
    (or want non-default thresholds) do not repeat the skimming work.
    """
    # Lemma-1/2-style error bound: each estimated term carries additive
    # error ~ 2 sqrt(SJ(left) SJ(right) / width); the dense sides' self-join
    # sizes are known exactly, the residual sides' are estimated from the
    # skimmed sketches.
    sj_f_dense = float(np.dot(f_skim.dense_frequencies, f_skim.dense_frequencies))
    sj_g_dense = float(np.dot(g_skim.dense_frequencies, g_skim.dense_frequencies))
    if _PROFILER.enabled:
        _PROFILER.mark("estimate.join")
    sj_f_res = max(f_skimmed.est_self_join_size(), 0.0)
    sj_g_res = max(g_skimmed.est_self_join_size(), 0.0)
    width = f_skimmed.width
    bound = (2.0 / np.sqrt(width)) * (
        np.sqrt(sj_f_dense * sj_g_res)
        + np.sqrt(sj_g_dense * sj_f_res)
        + np.sqrt(sj_f_res * sj_g_res)
    )
    with _term_context("dense_dense"):
        dense_dense = _dense_dense_join(f_skim, g_skim)
    with _term_context("dense_sparse"):
        dense_sparse = est_sub_join_size(
            f_skim.dense_values, f_skim.dense_frequencies, g_skimmed
        )
    with _term_context("sparse_dense"):
        sparse_dense = est_sub_join_size(
            g_skim.dense_values, g_skim.dense_frequencies, f_skimmed
        )
    with _term_context("sparse_sparse"):
        sparse_sparse = f_skimmed.est_join_size(g_skimmed)
    if _METRICS.enabled:
        _METRICS.count("estimate.joins")
    if _RECORDER.enabled:
        _RECORDER.pulse("estimate.joins")
    breakdown = JoinEstimateBreakdown(
        dense_dense=dense_dense,
        dense_sparse=dense_sparse,
        sparse_dense=sparse_dense,
        sparse_sparse=sparse_sparse,
        f_skim=f_skim,
        g_skim=g_skim,
        max_additive_error=float(bound),
    )
    if _AUDIT.enabled:
        _emit_audit(
            breakdown,
            f_skimmed,
            g_skimmed,
            sj_f_dense=sj_f_dense,
            sj_g_dense=sj_g_dense,
            sj_f_residual=sj_f_res,
            sj_g_residual=sj_g_res,
        )
    return breakdown


def _emit_audit(
    breakdown: JoinEstimateBreakdown,
    f_skimmed: HashSketch,
    g_skimmed: HashSketch,
    *,
    sj_f_dense: float,
    sj_g_dense: float,
    sj_f_residual: float,
    sj_g_residual: float,
) -> None:
    """Record one :class:`QueryAudit` for a finished join estimate.

    Audit-path only (the linf scans cost ``O(|D| * depth)`` each); the
    engine / coordinator enrich the record afterwards via
    ``_AUDIT.annotate_last``.
    """
    if not _AUDIT.enabled:
        return
    width = f_skimmed.width
    depth = f_skimmed.depth
    delta = _AUDIT.delta
    halfwidth = confidence_halfwidth(
        sj_f_dense,
        sj_g_dense,
        sj_f_residual,
        sj_g_residual,
        width=width,
        depth=depth,
        delta=delta,
    )
    linf_f = residual_infinity_norm(f_skimmed)
    linf_g = residual_infinity_norm(g_skimmed)
    threshold_f = float(breakdown.f_skim.threshold)
    threshold_g = float(breakdown.g_skim.threshold)
    bound_ok = (
        linf_f < RESIDUAL_BOUND_FACTOR * threshold_f
        and linf_g < RESIDUAL_BOUND_FACTOR * threshold_g
    )
    estimate = breakdown.estimate
    _AUDIT.record(
        QueryAudit(
            estimate=estimate,
            dense_dense=breakdown.dense_dense,
            dense_sparse=breakdown.dense_sparse,
            sparse_dense=breakdown.sparse_dense,
            sparse_sparse=breakdown.sparse_sparse,
            sj_f_dense=sj_f_dense,
            sj_g_dense=sj_g_dense,
            sj_f_residual=sj_f_residual,
            sj_g_residual=sj_g_residual,
            width=width,
            depth=depth,
            threshold_f=threshold_f,
            threshold_g=threshold_g,
            residual_linf_f=linf_f,
            residual_linf_g=linf_g,
            residual_bound_ok=bound_ok,
            delta=delta,
            ci_halfwidth=halfwidth,
            ci_low=estimate - halfwidth,
            ci_high=estimate + halfwidth,
        )
    )


def est_skim_join_size(
    sketch_f: HashSketch | DyadicHashSketch,
    sketch_g: HashSketch | DyadicHashSketch,
    threshold_f: float | None = None,
    threshold_g: float | None = None,
) -> JoinEstimateBreakdown:
    """Procedure ``ESTSKIMJOINSIZE``: skimmed-sketch join size estimate.

    Accepts either two flat :class:`HashSketch` synopses (full-domain skim)
    or two :class:`DyadicHashSketch` hierarchies (Section 4.2 fast skim).
    The inputs are not modified — skimming happens on copies.

    Parameters
    ----------
    sketch_f, sketch_g:
        Join-compatible synopses of the two streams (same schema).
    threshold_f, threshold_g:
        Optional per-stream skim thresholds; default is
        ``N_stream / sqrt(width)`` per stream.

    Returns
    -------
    A :class:`JoinEstimateBreakdown`; its ``estimate`` attribute is the
    paper's return value.
    """
    if isinstance(sketch_f, DyadicHashSketch) or isinstance(sketch_g, DyadicHashSketch):
        if not (
            isinstance(sketch_f, DyadicHashSketch)
            and isinstance(sketch_g, DyadicHashSketch)
        ):
            raise IncompatibleSketchError(
                "cannot mix flat and dyadic sketches in one join"
            )
        f_skim, f_res = skim_dense_dyadic(sketch_f, threshold_f)
        g_skim, g_res = skim_dense_dyadic(sketch_g, threshold_g)
        return est_skim_join_size_from_parts(
            f_skim, f_res.base_sketch, g_skim, g_res.base_sketch
        )

    f_skim, f_skimmed = skim_dense(sketch_f, threshold_f)
    g_skim, g_skimmed = skim_dense(sketch_g, threshold_g)
    return est_skim_join_size_from_parts(f_skim, f_skimmed, g_skim, g_skimmed)
