"""The paper's contribution: skimming and the skimmed-sketch join estimator.

* :mod:`repro.core.skim` — ``SKIMDENSE`` (flat and dyadic variants);
* :mod:`repro.core.skimmed_join` — ``ESTSUBJOINSIZE`` / ``ESTSKIMJOINSIZE``;
* :mod:`repro.core.estimator` — the public :class:`SkimmedSketch` API;
* :mod:`repro.core.config` — accuracy/space parameter selection.
"""

from .config import SketchParameters, depth_for_confidence
from .estimator import SkimmedSketch, SkimmedSketchSchema
from .skim import (
    DEFAULT_THRESHOLD_MULTIPLIER,
    SkimResult,
    default_threshold,
    skim_dense,
    skim_dense_dyadic,
)
from .skimmed_join import (
    JoinEstimateBreakdown,
    est_skim_join_size,
    est_skim_join_size_from_parts,
    est_sub_join_size,
)

__all__ = [
    "DEFAULT_THRESHOLD_MULTIPLIER",
    "JoinEstimateBreakdown",
    "SketchParameters",
    "SkimResult",
    "SkimmedSketch",
    "SkimmedSketchSchema",
    "default_threshold",
    "depth_for_confidence",
    "est_skim_join_size",
    "est_skim_join_size_from_parts",
    "est_sub_join_size",
    "skim_dense",
    "skim_dense_dyadic",
]
