"""Parameter selection for skimmed sketches (accuracy <-> space translation).

The theory of the paper fixes the *shape* of the right parameters:

* Theorem 5: to estimate a join of size ``J`` over streams of size ``N``
  with relative error ``epsilon``, total sketch space of
  ``O(N**2 / (epsilon * J))`` counters suffices — the Alon et al. lower
  bound, and the square root of what basic AGMS sketching needs.
* Median boosting: the failure probability falls exponentially in the
  number of hash tables, so ``depth = O(log(1/delta))``.
* Theorems 3-4: the skimming threshold is ``theta = c * N / sqrt(width)``.

:class:`SketchParameters` packages these rules as named constructors so
applications can say "I want 5% error with 99% confidence" or "I have 8 KB"
and get concrete ``(width, depth)`` values, while experiments can pin the
raw knobs directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .skim import DEFAULT_THRESHOLD_MULTIPLIER
from ..errors import ParameterError


def depth_for_confidence(delta: float) -> int:
    """Number of hash tables for failure probability ``<= delta``.

    Standard median-boosting bound: the median of ``d`` independent
    constant-probability-correct estimates fails with probability
    ``exp(-Theta(d))``; we use ``d = ceil(4.8 * ln(1/delta))`` rounded up
    to odd so the median is a single table's estimate.
    """
    if not 0 < delta < 1:
        raise ParameterError(f"delta must be in (0, 1), got {delta}")
    depth = max(1, math.ceil(4.8 * math.log(1.0 / delta)))
    return depth if depth % 2 == 1 else depth + 1


@dataclass(frozen=True)
class SketchParameters:
    """Concrete hash-sketch dimensions plus the skim-threshold multiplier."""

    width: int
    depth: int
    threshold_multiplier: float = DEFAULT_THRESHOLD_MULTIPLIER

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ParameterError(f"width must be >= 1, got {self.width}")
        if self.depth < 1:
            raise ParameterError(f"depth must be >= 1, got {self.depth}")
        if self.threshold_multiplier <= 0:
            raise ParameterError(
                f"threshold_multiplier must be positive, got {self.threshold_multiplier}"
            )

    @property
    def total_counters(self) -> int:
        """Synopsis size in counter words (paper's "space in words")."""
        return self.width * self.depth

    @classmethod
    def for_space(
        cls,
        total_counters: int,
        depth: int = 11,
        threshold_multiplier: float = DEFAULT_THRESHOLD_MULTIPLIER,
    ) -> "SketchParameters":
        """Best parameters for a fixed space budget (counters) and depth.

        Mirrors the paper's experimental setup: depth (``s2``) is chosen
        from a small odd grid, and the remaining budget goes to width
        (``s1``), which drives accuracy.
        """
        if total_counters < depth:
            raise ParameterError(
                f"budget of {total_counters} counters cannot fit depth {depth}"
            )
        return cls(total_counters // depth, depth, threshold_multiplier)

    @classmethod
    def for_accuracy(
        cls,
        epsilon: float,
        delta: float,
        stream_size: float,
        join_size_lower_bound: float,
        threshold_multiplier: float = DEFAULT_THRESHOLD_MULTIPLIER,
    ) -> "SketchParameters":
        """Parameters guaranteeing relative error ``epsilon`` w.p. ``1-delta``.

        Instantiates Theorem 5's worst-case bound
        ``width = Theta(N**2 / (epsilon * J))`` with constant 1 (the
        theorem's constants are loose; tests verify the *empirical* error
        lands well inside ``epsilon`` at these sizes) and
        ``depth = O(log(1/delta))``.

        Parameters
        ----------
        epsilon:
            Target relative error (e.g. ``0.1``).
        delta:
            Allowed failure probability (e.g. ``0.01``).
        stream_size:
            (Upper bound on) the stream size ``N``.
        join_size_lower_bound:
            A lower bound on the join size being estimated; smaller joins
            are harder and need more space, exactly as in the theorem.
        """
        if epsilon <= 0:
            raise ParameterError(f"epsilon must be positive, got {epsilon}")
        if stream_size <= 0:
            raise ParameterError(f"stream_size must be positive, got {stream_size}")
        if join_size_lower_bound <= 0:
            raise ParameterError(
                f"join_size_lower_bound must be positive, got {join_size_lower_bound}"
            )
        width = max(1, math.ceil(stream_size**2 / (epsilon * join_size_lower_bound)))
        return cls(width, depth_for_confidence(delta), threshold_multiplier)

    def basic_agms_equivalent(self) -> tuple[int, int]:
        """(averaging, median) giving a basic AGMS sketch of equal space.

        Used by every comparison experiment: both methods get the same
        number of counter words (paper Section 5.1: "We allocate the same
        amount of memory to both sketching methods").
        """
        return self.width, self.depth
