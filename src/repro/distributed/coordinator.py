"""Coordinator: merge site reports, answer global join queries.

The coordinator holds, per stream, either the latest cumulative sketch per
site (``cumulative`` sites) or the running sum of deltas (``delta``
sites), and answers queries against the merged union sketch.  Because
sketches are linear, the merged estimate equals what a single centralised
sketch over all sites' traffic would produce — distribution costs
*communication only* (a few KB per site per round), which is the point of
using synopses in the paper's network-monitoring setting.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import nullcontext

from ..core.estimator import SkimmedSketch, SkimmedSketchSchema
from ..errors import IncompatibleSketchError, QueryError
from ..federate import merge_telemetry, telemetry_size_in_bytes, validate_telemetry
from ..monitor import AUDIT as _AUDIT
from ..obs import METRICS as _METRICS
from ..profile import PROFILER as _PROFILER, RECORDER as _RECORDER
from ..trace import TRACER as _TRACER
from .protocol import ProtocolError, RoundSummary, SketchReport, TraceContext


class SketchCoordinator:
    """Fleet-wide aggregation point for site sketch reports.

    Parameters
    ----------
    schema:
        The fleet schema; incoming report sketches must be compatible
        (identical hash/sign randomness) or they are rejected.
    delta_sites:
        Names of sites reporting deltas (their reports *add*); all other
        sites are treated as cumulative (their reports *replace*).
    """

    def __init__(
        self, schema: SkimmedSketchSchema, delta_sites: set[str] | None = None
    ):
        self.schema = schema
        self.delta_sites = set(delta_sites or ())
        # stream -> site -> site's current sketch contribution.
        self._contributions: dict[str, dict[str, SkimmedSketch]] = defaultdict(dict)
        self._last_round: dict[tuple[str, str], int] = {}
        self._bytes_received = 0
        self._reports_merged = 0
        # origin -> accumulated (merged) telemetry snapshot.
        self._telemetry: dict[str, dict] = {}
        self._telemetry_bytes = 0
        self._telemetry_reports = 0
        self._minted_rounds = 0

    # -- trace-context minting ---------------------------------------------

    def mint_trace_context(self, round_number: int | None = None) -> TraceContext:
        """Mint the correlation context for the next reporting round.

        The coordinator owns trace-id allocation (sites just echo it
        back), so one fleet-wide id names the round across every origin's
        span tree.  ``round_number`` defaults to an internal mint
        counter; pass it explicitly when the fleet's round numbering is
        driven elsewhere.
        """
        self._minted_rounds += 1
        n = self._minted_rounds if round_number is None else round_number
        return TraceContext(trace_id=f"fleet-round-{n:06d}", round_number=n)

    # -- ingestion ---------------------------------------------------------

    def receive(self, report: SketchReport) -> None:
        """Absorb one site report (validating schema and round ordering)."""
        with _TRACER.span(
            "dist.receive",
            site=report.site,
            stream=report.stream,
            round=report.round_number,
        ) if _TRACER.enabled else nullcontext() as span:
            self._receive(report, span)

    def _receive(self, report: SketchReport, span) -> None:
        key = (report.site, report.stream)
        last = self._last_round.get(key, 0)
        if report.round_number <= last:
            if _METRICS.enabled:
                _METRICS.count("dist.reports.rejected")
            if span is not None:
                span.set(rejected="stale")
            raise ProtocolError(
                f"stale report: {key} round {report.round_number} "
                f"(already at {last})"
            )
        sketch = report.open_sketch()
        if not isinstance(sketch, SkimmedSketch) or not self.schema.is_compatible(
            sketch.schema
        ):
            if _METRICS.enabled:
                _METRICS.count("dist.reports.rejected")
            if span is not None:
                span.set(rejected="incompatible")
            raise IncompatibleSketchError(
                f"report from {report.site!r} carries a sketch incompatible "
                "with the fleet schema"
            )
        per_site = self._contributions[report.stream]
        if report.site in self.delta_sites and report.site in per_site:
            per_site[report.site] = per_site[report.site].merged_with(sketch)
        else:
            per_site[report.site] = sketch
        self._last_round[key] = report.round_number
        size = report.size_in_bytes()
        self._bytes_received += size
        self._reports_merged += 1
        if _PROFILER.enabled:
            _PROFILER.mark("dist.receive")
        if _RECORDER.enabled:
            _RECORDER.pulse("ship.bytes", size)
        if span is not None:
            span.set(bytes=size)
        if _METRICS.enabled:
            _METRICS.count("dist.reports.received")
            _METRICS.count("dist.bytes.received", size)
            _METRICS.gauge_max("dist.round.max", report.round_number)
        if report.telemetry is not None:
            self._absorb_telemetry(report, span)

    def _absorb_telemetry(self, report: SketchReport, span) -> None:
        """Fold a report's telemetry piggyback into the coordinator's view.

        Three destinations, all per-origin: the coordinator's own
        accumulated snapshot (:meth:`telemetry_by_origin`, merged with
        :func:`repro.federate.merge_telemetry` so successive rounds sum
        exactly), the live metrics registry
        (:meth:`MetricsRegistry.merge_snapshot`), and the live tracer —
        the site's span batch is grafted under the currently open
        ``dist.receive`` span, which is what stitches every site's round
        tree beneath the coordinator's round timeline.
        """
        try:
            doc = validate_telemetry(report.telemetry)
        except ValueError as exc:
            if _METRICS.enabled:
                _METRICS.count("dist.telemetry.rejected")
            if span is not None:
                span.set(rejected="telemetry")
            raise ProtocolError(
                f"report from {report.site!r} carries malformed telemetry: {exc}"
            ) from None
        origin = doc["origin"]
        held = self._telemetry.get(origin)
        self._telemetry[origin] = doc if held is None else merge_telemetry(held, doc)
        size = telemetry_size_in_bytes(doc)
        self._telemetry_bytes += size
        self._telemetry_reports += 1
        if _METRICS.enabled:
            _METRICS.count("dist.telemetry.received")
            _METRICS.count("dist.telemetry.bytes.received", size)
            _METRICS.merge_snapshot(
                {
                    "counters": doc["counters"],
                    "gauges": doc["gauges"],
                    "histograms": doc["histograms"],
                },
                prefix=origin,
            )
        if _TRACER.enabled and doc["spans"]:
            _TRACER.import_spans(
                doc["spans"], origin=origin, parent_id=_TRACER.current_span_id()
            )
        if span is not None:
            span.set(telemetry_bytes=size, telemetry_origin=origin)

    def receive_all(self, reports: list[SketchReport]) -> RoundSummary:
        """Absorb a batch of reports and summarise the round."""
        trace_id = next(
            (
                r.trace_context["trace_id"]
                for r in reports
                if isinstance(r.trace_context, dict) and "trace_id" in r.trace_context
            ),
            None,
        )
        with _TRACER.span(
            "dist.merge_round", reports=len(reports)
        ) if _TRACER.enabled else nullcontext() as sp:
            if sp is not None and trace_id is not None:
                sp.set(trace_id=trace_id)
            for report in reports:
                self.receive(report)
        round_number = max((r.round_number for r in reports), default=0)
        return RoundSummary(
            round_number=round_number,
            streams=tuple(sorted({r.stream for r in reports})),
            sites_reporting=tuple(sorted({r.site for r in reports})),
            bytes_received=sum(r.size_in_bytes() for r in reports),
            reports_merged=len(reports),
            telemetry_bytes=sum(r.telemetry_size_in_bytes() for r in reports),
        )

    # -- global state ----------------------------------------------------------

    def streams(self) -> list[str]:
        """Streams with at least one contribution."""
        return sorted(self._contributions)

    def sites_for(self, stream: str) -> list[str]:
        """Sites that have contributed to ``stream``."""
        return sorted(self._contributions.get(stream, {}))

    def global_sketch(self, stream: str) -> SkimmedSketch:
        """The union sketch of a stream across all reporting sites."""
        per_site = self._contributions.get(stream)
        if not per_site:
            raise QueryError(f"no reports received for stream {stream!r}")
        sketches = list(per_site.values())
        merged = sketches[0]
        for sketch in sketches[1:]:
            merged = merged.merged_with(sketch)
        return merged

    # -- queries ------------------------------------------------------------------

    def est_join_size(self, left: str, right: str) -> float:
        """Global ``COUNT(left join right)`` across all sites' traffic."""
        estimate = self.global_sketch(left).est_join_size(self.global_sketch(right))
        if _AUDIT.enabled:
            self._enrich_audit(left, right)
        return estimate

    def est_self_join_size(self, stream: str) -> float:
        """Global second moment of a stream across all sites."""
        estimate = self.global_sketch(stream).est_self_join_size()
        if _AUDIT.enabled:
            self._enrich_audit(stream, stream)
        return estimate

    def _enrich_audit(self, left: str, right: str) -> None:
        """Tag the estimator-emitted audit with its fleet provenance.

        Coordinator answers aggregate many sites' traffic; the audit
        records which sites contributed so a bad CI or residual-bound
        violation can be chased back to the reporting fleet.
        """
        if not _AUDIT.enabled:
            return
        audit = _AUDIT.last()
        if audit is None or audit.origin != "estimator":
            return
        audit.origin = "coordinator"
        audit.streams = (left, right)
        audit.sites = tuple(
            sorted(set(self.sites_for(left)) | set(self.sites_for(right)))
        )

    def point_estimate(self, stream: str, value: int) -> float:
        """Global frequency estimate of one value across all sites."""
        return self.global_sketch(stream).point_estimate(value)

    def communication_stats(self) -> tuple[int, int]:
        """``(reports merged, total bytes received)`` since start."""
        return self._reports_merged, self._bytes_received

    def telemetry_by_origin(self) -> dict[str, dict]:
        """Accumulated telemetry snapshot per reporting origin.

        Each value is the :func:`repro.federate.merge_telemetry` fold of
        every snapshot that origin has shipped — counters are fleet-exact
        totals, spans are the bounded recent batches.
        """
        return dict(self._telemetry)

    def telemetry_stats(self) -> tuple[int, int]:
        """``(telemetry snapshots absorbed, total telemetry bytes)``.

        The federation-overhead side of :meth:`communication_stats` —
        comparing the two is how the <5% piggyback budget is checked.
        """
        return self._telemetry_reports, self._telemetry_bytes

    def __repr__(self) -> str:
        return (
            f"SketchCoordinator(streams={self.streams()}, "
            f"reports={self._reports_merged})"
        )
