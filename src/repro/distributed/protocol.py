"""Message types for distributed sketch collection.

The paper's motivating deployment (§1) is a large ISP where "detailed
usage information from different parts of the network needs to be
continuously collected and analyzed".  Linearity makes the distributed
version of every estimator exact: each site sketches its local substream,
ships the (tiny) sketch, and the coordinator's merge *is* the sketch of
the union stream — no approximation is introduced by distribution itself.

Messages are plain dataclasses wrapping the serialised sketch state from
:mod:`repro.sketches.serialize`, so they can cross any transport that
moves bytes (the tests and example use in-memory delivery).
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field

from ..errors import ReproError
from ..sketches.serialize import load_sketch, save_sketch


class ProtocolError(ReproError):
    """A malformed or out-of-order distributed-protocol message."""


@dataclass(frozen=True)
class SketchReport:
    """One site's synopsis for one stream at one reporting round.

    ``payload`` is the ``.npz`` archive produced by
    :func:`repro.sketches.serialize.save_sketch`; ``round_number`` lets the
    coordinator reject stale or duplicated reports.
    """

    site: str
    stream: str
    round_number: int
    payload: bytes

    @classmethod
    def from_sketch(
        cls, site: str, stream: str, round_number: int, sketch
    ) -> "SketchReport":
        """Package a live sketch into a transportable report."""
        buffer = io.BytesIO()
        save_sketch(sketch, buffer)
        return cls(
            site=site,
            stream=stream,
            round_number=round_number,
            payload=buffer.getvalue(),
        )

    def open_sketch(self):
        """Rebuild the carried sketch (schema included)."""
        return load_sketch(io.BytesIO(self.payload))

    def size_in_bytes(self) -> int:
        """Wire size of the report — the communication cost a synopsis
        exists to minimise."""
        return len(self.payload)


@dataclass(frozen=True)
class RoundSummary:
    """Coordinator-side accounting for one completed merge round."""

    round_number: int
    streams: tuple[str, ...]
    sites_reporting: tuple[str, ...]
    bytes_received: int
    reports_merged: int = field(default=0)
