"""Message types for distributed sketch collection.

The paper's motivating deployment (§1) is a large ISP where "detailed
usage information from different parts of the network needs to be
continuously collected and analyzed".  Linearity makes the distributed
version of every estimator exact: each site sketches its local substream,
ships the (tiny) sketch, and the coordinator's merge *is* the sketch of
the union stream — no approximation is introduced by distribution itself.

Messages are plain dataclasses wrapping the serialised sketch state from
:mod:`repro.sketches.serialize`, so they can cross any transport that
moves bytes (the tests and example use in-memory delivery).
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..errors import ReproError
from ..sketches.serialize import load_sketch, save_sketch


class ProtocolError(ReproError):
    """A malformed or out-of-order distributed-protocol message."""


@dataclass(frozen=True)
class TraceContext:
    """Coordinator-minted correlation context for one reporting round.

    The coordinator mints one per round (:meth:`SketchCoordinator.
    mint_trace_context`) and hands it to the sites; each site stamps it
    on its reports and its round span, so when the site's span batch is
    imported coordinator-side the stitched timeline can be grouped by
    ``trace_id`` across every origin.  Plain strings/ints only — it must
    survive any JSON transport.
    """

    trace_id: str
    round_number: int

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready wire form (what rides on a :class:`SketchReport`)."""
        return {"trace_id": self.trace_id, "round_number": self.round_number}

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "TraceContext":
        """Rebuild from the wire form; raises ``ProtocolError`` if malformed."""
        trace_id = doc.get("trace_id")
        round_number = doc.get("round_number")
        if not isinstance(trace_id, str) or not trace_id:
            raise ProtocolError(f"trace_context has bad trace_id {trace_id!r}")
        if not isinstance(round_number, int) or round_number < 0:
            raise ProtocolError(
                f"trace_context has bad round_number {round_number!r}"
            )
        return cls(trace_id=trace_id, round_number=round_number)


@dataclass(frozen=True)
class SketchReport:
    """One site's synopsis for one stream at one reporting round.

    ``payload`` is the ``.npz`` archive produced by
    :func:`repro.sketches.serialize.save_sketch`; ``round_number`` lets the
    coordinator reject stale or duplicated reports.

    The two trailing fields are the federation piggyback (both optional
    and defaulted, so pre-federation senders and receivers interoperate
    unchanged): ``trace_context`` echoes the coordinator-minted
    :class:`TraceContext` wire dict, and ``telemetry`` carries one
    ``repro.telemetry`` snapshot (:mod:`repro.federate`) — by convention
    on the *first* report of a site's round, so per-round telemetry is
    shipped once, not once per stream.
    """

    site: str
    stream: str
    round_number: int
    payload: bytes
    trace_context: dict | None = field(default=None)
    telemetry: dict | None = field(default=None)

    @classmethod
    def from_sketch(
        cls,
        site: str,
        stream: str,
        round_number: int,
        sketch,
        trace_context: dict | None = None,
        telemetry: dict | None = None,
    ) -> "SketchReport":
        """Package a live sketch into a transportable report."""
        buffer = io.BytesIO()
        save_sketch(sketch, buffer)
        return cls(
            site=site,
            stream=stream,
            round_number=round_number,
            payload=buffer.getvalue(),
            trace_context=trace_context,
            telemetry=telemetry,
        )

    def open_sketch(self):
        """Rebuild the carried sketch (schema included)."""
        return load_sketch(io.BytesIO(self.payload))

    def size_in_bytes(self) -> int:
        """Wire size of the report — the communication cost a synopsis
        exists to minimise."""
        return len(self.payload)

    def telemetry_size_in_bytes(self) -> int:
        """Wire size of the telemetry piggyback (0 when none rides along).

        Kept separate from :meth:`size_in_bytes` so the federation
        overhead stays visible next to the sketch payload it rides on —
        the ``federate.overhead`` bench scenario bounds their ratio.
        """
        if self.telemetry is None:
            return 0
        return len(
            json.dumps(
                self.telemetry, sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
        )


@dataclass(frozen=True)
class RoundSummary:
    """Coordinator-side accounting for one completed merge round."""

    round_number: int
    streams: tuple[str, ...]
    sites_reporting: tuple[str, ...]
    bytes_received: int
    reports_merged: int = field(default=0)
    telemetry_bytes: int = field(default=0)
