"""Distributed sketch collection: sites sketch locally, a coordinator
merges exactly (linearity), answering fleet-wide join aggregates with
communication measured in kilobytes — the paper's §1 network-monitoring
deployment pattern."""

from .protocol import ProtocolError, RoundSummary, SketchReport, TraceContext
from .site import SketchSite
from .coordinator import SketchCoordinator

__all__ = [
    "ProtocolError",
    "RoundSummary",
    "SketchCoordinator",
    "SketchReport",
    "SketchSite",
    "TraceContext",
]
