"""Site-side agent: sketch the local substream, report on demand.

A :class:`SketchSite` owns one sketch per declared stream (all built from
the shared schema so the coordinator can merge them), absorbs local
updates, and packages :class:`~repro.distributed.protocol.SketchReport`
messages when a reporting round closes.  Two reporting modes:

* ``cumulative`` (default) — each report carries the site's full sketch
  since start; the coordinator *replaces* its copy.  Robust to lost
  reports (the next one supersedes).
* ``delta`` — each report carries only the updates since the previous
  report (the sketch is reset after reporting); the coordinator *adds*
  deltas.  Smaller rounds, but a lost report loses data — the classic
  trade-off, both exact under linearity when delivery holds.

A site can additionally shard its *local* ingestion across workers
(``parallel_workers`` > 1): each stream's sketch is then wrapped in a
:class:`~repro.parallel.ShardedIngestor` and merged exactly when a round
closes.  Reports are bit-identical to serial ingestion either way.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import replace

from ..core.estimator import SkimmedSketchSchema
from ..errors import ParameterError, QueryError
from ..federate import TelemetryShipper, telemetry_size_in_bytes
from ..obs import METRICS as _METRICS
from ..parallel import INGEST_MODES, ShardedIngestor
from ..profile import RECORDER as _RECORDER
from ..trace import TRACER as _TRACER
from .protocol import SketchReport, TraceContext

#: Supported reporting modes.
REPORT_MODES = ("cumulative", "delta")


class SketchSite:
    """One collection point's local sketching agent.

    Parameters
    ----------
    name:
        Site identifier carried on every report.
    schema:
        The fleet-wide :class:`SkimmedSketchSchema` — every site must use
        the same one (same hash functions), or merged estimates would be
        garbage; the coordinator verifies compatibility on receipt.
    streams:
        Stream names this site observes.
    mode:
        ``"cumulative"`` or ``"delta"`` (see module docstring).
    parallel_workers:
        Shard the site's local ingestion across this many workers
        (default 1 = plain serial sketches, no executors).
    parallel_mode:
        :data:`~repro.parallel.INGEST_MODES` strategy used when
        ``parallel_workers`` > 1.
    telemetry:
        When true the site owns a
        :class:`~repro.federate.TelemetryShipper` (origin
        ``site.<name>``) and each :meth:`close_round` piggybacks one
        telemetry snapshot on the round's first report — provided any
        observability singleton is actually enabled at close time.
    """

    def __init__(
        self,
        name: str,
        schema: SkimmedSketchSchema,
        streams: list[str],
        mode: str = "cumulative",
        parallel_workers: int = 1,
        parallel_mode: str = "thread",
        telemetry: bool = False,
    ):
        if mode not in REPORT_MODES:
            raise ParameterError(f"mode must be one of {REPORT_MODES}, got {mode!r}")
        if not streams:
            raise ParameterError("a site must observe at least one stream")
        if len(set(streams)) != len(streams):
            raise ParameterError(f"duplicate stream names in {streams}")
        if parallel_workers < 1:
            raise ParameterError(
                f"parallel_workers must be >= 1, got {parallel_workers}"
            )
        if parallel_mode not in INGEST_MODES:
            raise ParameterError(
                f"parallel_mode must be one of {INGEST_MODES}, got {parallel_mode!r}"
            )
        self.name = name
        self.schema = schema
        self.mode = mode
        self.parallel_workers = parallel_workers
        self.parallel_mode = parallel_mode
        self._sketches = {stream: schema.create_sketch() for stream in streams}
        self._ingestors: dict[str, ShardedIngestor] | None = None
        if parallel_workers > 1:
            self._ingestors = {
                stream: ShardedIngestor(
                    schema, workers=parallel_workers, mode=parallel_mode
                )
                for stream in streams
            }
        self.shipper = TelemetryShipper(f"site.{name}") if telemetry else None
        self._round = 0

    @property
    def streams(self) -> list[str]:
        """Streams this site observes."""
        return list(self._sketches)

    @property
    def round_number(self) -> int:
        """Number of completed reporting rounds."""
        return self._round

    def observe(self, stream: str, value: int, weight: float = 1.0) -> None:
        """Absorb one local stream element (insert or delete)."""
        if stream not in self._sketches:
            raise QueryError(
                f"site {self.name!r} does not observe stream {stream!r}"
            )
        if self._ingestors is not None:
            import numpy as np

            self._ingestors[stream].ingest(
                np.asarray([value], dtype=np.int64),
                np.asarray([weight], dtype=np.float64),
            )
            return
        self._sketches[stream].update(value, weight)

    def observe_bulk(self, stream: str, values, weights=None) -> None:
        """Absorb a batch of local elements."""
        if stream not in self._sketches:
            raise QueryError(
                f"site {self.name!r} does not observe stream {stream!r}"
            )
        if self._ingestors is not None:
            self._ingestors[stream].ingest(values, weights)
            return
        self._sketches[stream].update_bulk(values, weights)

    def close_round(
        self, trace_context: TraceContext | None = None
    ) -> list[SketchReport]:
        """Finish the current reporting round and emit one report per stream.

        In ``delta`` mode the local sketches are reset afterwards, so the
        next round reports only new traffic.

        ``trace_context`` (coordinator-minted, optional) is stamped on
        the round span and echoed on every report, correlating this
        site's round with the coordinator's.  When the site was built
        with ``telemetry=True`` and any observability singleton is
        enabled, one telemetry snapshot — captured *after* the round span
        closes, so the round's own spans and counters ride along — is
        attached to the first report.
        """
        self._round += 1
        if self._ingestors is not None:
            for stream, ingestor in self._ingestors.items():
                self._sketches[stream] = ingestor.merged()
        context_doc = trace_context.as_dict() if trace_context is not None else None
        with _TRACER.span(
            "dist.round", site=self.name, round=self._round, mode=self.mode
        ) if _TRACER.enabled else nullcontext() as sp:
            reports = [
                SketchReport.from_sketch(
                    self.name,
                    stream,
                    self._round,
                    sketch,
                    trace_context=context_doc,
                )
                for stream, sketch in self._sketches.items()
            ]
            if self.mode == "delta":
                self._sketches = {
                    stream: self.schema.create_sketch() for stream in self._sketches
                }
                if self._ingestors is not None:
                    for ingestor in self._ingestors.values():
                        ingestor.reset()
            if sp is not None:
                sp.set(
                    reports=len(reports),
                    bytes=sum(r.size_in_bytes() for r in reports),
                )
                if trace_context is not None:
                    sp.set(trace_id=trace_context.trace_id)
        if _METRICS.enabled:
            _METRICS.count("dist.rounds.closed")
            _METRICS.count("dist.reports.sent", len(reports))
            _METRICS.count(
                "dist.bytes.sent", sum(r.size_in_bytes() for r in reports)
            )
        if self.shipper is not None and (
            _METRICS.enabled or _TRACER.enabled or _RECORDER.enabled
        ):
            telemetry_doc = self.shipper.capture_telemetry()
            reports[0] = replace(reports[0], telemetry=telemetry_doc)
            if _METRICS.enabled:
                _METRICS.count("dist.telemetry.sent")
                _METRICS.count(
                    "dist.telemetry.bytes.sent",
                    telemetry_size_in_bytes(telemetry_doc),
                )
        return reports

    def close(self) -> None:
        """Shut down parallel-ingest executor resources, if any (idempotent)."""
        if self._ingestors is not None:
            for ingestor in self._ingestors.values():
                ingestor.close()

    def __enter__(self) -> "SketchSite":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"SketchSite(name={self.name!r}, streams={self.streams}, "
            f"mode={self.mode!r}, round={self._round}, "
            f"parallel_workers={self.parallel_workers})"
        )
