"""Site-side agent: sketch the local substream, report on demand.

A :class:`SketchSite` owns one sketch per declared stream (all built from
the shared schema so the coordinator can merge them), absorbs local
updates, and packages :class:`~repro.distributed.protocol.SketchReport`
messages when a reporting round closes.  Two reporting modes:

* ``cumulative`` (default) — each report carries the site's full sketch
  since start; the coordinator *replaces* its copy.  Robust to lost
  reports (the next one supersedes).
* ``delta`` — each report carries only the updates since the previous
  report (the sketch is reset after reporting); the coordinator *adds*
  deltas.  Smaller rounds, but a lost report loses data — the classic
  trade-off, both exact under linearity when delivery holds.
"""

from __future__ import annotations

from contextlib import nullcontext

from ..core.estimator import SkimmedSketchSchema
from ..errors import ParameterError, QueryError
from ..obs import METRICS as _METRICS
from ..trace import TRACER as _TRACER
from .protocol import SketchReport

#: Supported reporting modes.
REPORT_MODES = ("cumulative", "delta")


class SketchSite:
    """One collection point's local sketching agent.

    Parameters
    ----------
    name:
        Site identifier carried on every report.
    schema:
        The fleet-wide :class:`SkimmedSketchSchema` — every site must use
        the same one (same hash functions), or merged estimates would be
        garbage; the coordinator verifies compatibility on receipt.
    streams:
        Stream names this site observes.
    mode:
        ``"cumulative"`` or ``"delta"`` (see module docstring).
    """

    def __init__(
        self,
        name: str,
        schema: SkimmedSketchSchema,
        streams: list[str],
        mode: str = "cumulative",
    ):
        if mode not in REPORT_MODES:
            raise ParameterError(f"mode must be one of {REPORT_MODES}, got {mode!r}")
        if not streams:
            raise ParameterError("a site must observe at least one stream")
        if len(set(streams)) != len(streams):
            raise ParameterError(f"duplicate stream names in {streams}")
        self.name = name
        self.schema = schema
        self.mode = mode
        self._sketches = {stream: schema.create_sketch() for stream in streams}
        self._round = 0

    @property
    def streams(self) -> list[str]:
        """Streams this site observes."""
        return list(self._sketches)

    @property
    def round_number(self) -> int:
        """Number of completed reporting rounds."""
        return self._round

    def observe(self, stream: str, value: int, weight: float = 1.0) -> None:
        """Absorb one local stream element (insert or delete)."""
        try:
            sketch = self._sketches[stream]
        except KeyError:
            raise QueryError(
                f"site {self.name!r} does not observe stream {stream!r}"
            ) from None
        sketch.update(value, weight)

    def observe_bulk(self, stream: str, values, weights=None) -> None:
        """Absorb a batch of local elements."""
        try:
            sketch = self._sketches[stream]
        except KeyError:
            raise QueryError(
                f"site {self.name!r} does not observe stream {stream!r}"
            ) from None
        sketch.update_bulk(values, weights)

    def close_round(self) -> list[SketchReport]:
        """Finish the current reporting round and emit one report per stream.

        In ``delta`` mode the local sketches are reset afterwards, so the
        next round reports only new traffic.
        """
        self._round += 1
        with _TRACER.span(
            "dist.round", site=self.name, round=self._round, mode=self.mode
        ) if _TRACER.enabled else nullcontext() as sp:
            reports = [
                SketchReport.from_sketch(self.name, stream, self._round, sketch)
                for stream, sketch in self._sketches.items()
            ]
            if self.mode == "delta":
                self._sketches = {
                    stream: self.schema.create_sketch() for stream in self._sketches
                }
            if sp is not None:
                sp.set(
                    reports=len(reports),
                    bytes=sum(r.size_in_bytes() for r in reports),
                )
        if _METRICS.enabled:
            _METRICS.count("dist.rounds.closed")
            _METRICS.count("dist.reports.sent", len(reports))
            _METRICS.count(
                "dist.bytes.sent", sum(r.size_in_bytes() for r in reports)
            )
        return reports

    def __repr__(self) -> str:
        return (
            f"SketchSite(name={self.name!r}, streams={self.streams}, "
            f"mode={self.mode!r}, round={self._round})"
        )
