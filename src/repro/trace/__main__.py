"""Trace-file toolbox.

Usage::

    python -m repro.trace validate  trace.jsonl
    python -m repro.trace convert   trace.jsonl trace.json   # Perfetto
    python -m repro.trace summarize trace.jsonl

``validate`` exits non-zero unless the file is a structurally valid
version-1 JSONL trace; ``convert`` writes the Chrome ``trace_event``
JSON that https://ui.perfetto.dev and ``chrome://tracing`` load
directly; ``summarize`` prints per-span-name aggregate timings (the
trace-plane analogue of a metrics snapshot).
"""

from __future__ import annotations

import argparse
import sys

from .export import (
    read_trace_jsonl,
    render_summary,
    summarize_trace,
    write_trace_chrome,
)


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Validate, convert and summarize repro.trace files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_validate = sub.add_parser("validate", help="schema-check a JSONL trace")
    p_validate.add_argument("trace", help="JSONL trace file")

    p_convert = sub.add_parser(
        "convert", help="convert a JSONL trace to Chrome/Perfetto trace_event JSON"
    )
    p_convert.add_argument("trace", help="JSONL trace file")
    p_convert.add_argument("out", help="output path for the trace_event JSON")

    p_summarize = sub.add_parser(
        "summarize", help="per-span-name aggregate timings of a JSONL trace"
    )
    p_summarize.add_argument("trace", help="JSONL trace file")

    args = parser.parse_args(argv)
    try:
        snapshot = read_trace_jsonl(args.trace)
    except (OSError, ValueError) as exc:
        print(f"invalid trace {args.trace}: {exc}", file=sys.stderr)
        return 1

    if args.command == "validate":
        print(f"ok: {args.trace} ({len(snapshot['spans'])} spans)")
        return 0
    if args.command == "convert":
        try:
            write_trace_chrome(args.out, snapshot)
        except OSError as exc:
            print(f"cannot write {args.out}: {exc}", file=sys.stderr)
            return 1
        print(f"wrote {args.out} ({len(snapshot['spans'])} events); "
              "load it at https://ui.perfetto.dev")
        return 0
    print(render_summary(summarize_trace(snapshot)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
