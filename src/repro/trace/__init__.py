"""repro.trace — query-path span tracing for the sketching library.

One process-wide :class:`SpanTracer` (``TRACER``) records **nested
spans** from hooks wired through the query path: sketch maintenance
(``HashSketch.update``/``update_bulk``), SKIMDENSE (flat and dyadic,
including per-level descent spans), the four ESTSKIMJOINSIZE sub-join
terms with their per-table median boosting, ``StreamEngine``
ingest/answer/SQL, and the distributed site/coordinator round-trips.

Recording is **off by default**; every hook is guarded by a single
``TRACER.enabled`` attribute read — the same near-zero disabled-cost
contract as ``repro.obs`` (see ``tests/test_trace_overhead.py``).

Typical use::

    from repro import trace

    trace.enable()
    engine.answer(query)            # spans accumulate
    trace.write_trace_jsonl("q.trace.jsonl", trace.snapshot())
    trace.disable()

then inspect with the CLI (``python -m repro.trace summarize
q.trace.jsonl``) or convert for the Perfetto UI (``python -m
repro.trace convert q.trace.jsonl q.trace.json``).  Scoped capture::

    with trace.capturing() as tracer:
        engine.answer(query)
    spans = tracer.spans()

This package imports **only the standard library** (no numpy) so it can
ride along in the thinnest collection agent; the test suite enforces
that.  The span catalogue the library emits is documented in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from .export import (
    TRACE_VERSION,
    read_trace_jsonl,
    render_summary,
    summarize_trace,
    trace_from_jsonl,
    trace_origins,
    trace_to_chrome,
    trace_to_jsonl,
    validate_trace,
    write_trace_chrome,
    write_trace_jsonl,
)
from .tracer import DEFAULT_MAX_SPANS, Span, SpanTracer

#: The process-wide tracer every built-in instrumentation hook records to.
TRACER = SpanTracer(enabled=False)


def enable() -> None:
    """Turn on span recording into the global tracer."""
    TRACER.enable()


def disable() -> None:
    """Turn off span recording (finished spans are kept)."""
    TRACER.disable()


def is_enabled() -> bool:
    """Whether the global tracer is currently recording."""
    return TRACER.enabled


def snapshot() -> dict[str, Any]:
    """JSON-ready dump of the global tracer's finished spans."""
    return TRACER.snapshot()


def reset() -> None:
    """Drop all finished spans in the global tracer."""
    TRACER.reset()


@contextmanager
def capturing(fresh: bool = True) -> Iterator[SpanTracer]:
    """Enable the global tracer within a ``with`` block.

    ``fresh=True`` (default) resets the tracer on entry so the captured
    spans reflect only the block.  On exit the previous enabled state is
    restored; finished spans are kept for inspection.
    """
    was_enabled = TRACER.enabled
    if fresh:
        TRACER.reset()
    TRACER.enable()
    try:
        yield TRACER
    finally:
        TRACER.enabled = was_enabled


__all__ = [
    "DEFAULT_MAX_SPANS",
    "Span",
    "SpanTracer",
    "TRACER",
    "TRACE_VERSION",
    "capturing",
    "disable",
    "enable",
    "is_enabled",
    "read_trace_jsonl",
    "render_summary",
    "reset",
    "snapshot",
    "summarize_trace",
    "trace_from_jsonl",
    "trace_origins",
    "trace_to_chrome",
    "trace_to_jsonl",
    "validate_trace",
    "write_trace_chrome",
    "write_trace_jsonl",
]
