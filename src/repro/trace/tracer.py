"""Dependency-free query-path span tracer.

Aggregate metrics (``repro.obs``) answer "how many / how long on
average"; they cannot answer *where one join estimate spent its time*.
The paper's cost story is inherently per-query and per-phase — O(depth)
hash-sketch updates vs O(s1*s2) AGMS (Sec. 2-3), the pruned dyadic
descent vs the flat domain scan (Fig. 3), the four ESTSKIMJOINSIZE
sub-join terms (Fig. 4) — so this module records *nested spans*: named
intervals with attributes (stream id, tracked size N, the s1 x s2 shape,
skim threshold T, sub-join term, site id) and explicit parent links.

The design contract is the same as :class:`repro.obs.MetricsRegistry`:

* one process-wide tracer (``repro.trace.TRACER``), **off by default**;
* every instrumentation hook guards on a single ``TRACER.enabled``
  attribute read, so a disabled tracer costs one branch per call site
  (``tests/test_trace_overhead.py`` enforces the bound);
* **no third-party imports** — ``repro.trace`` loads without numpy;
* bounded memory: at most ``max_spans`` finished spans are kept, the
  rest are counted in ``dropped`` instead of silently discarded.

Span nesting uses an explicit stack on the tracer (not thread-locals):
context is propagated by the call structure itself, which is exact for
the single-threaded query path the library implements.  Like the
metrics registry, the tracer is not thread-synchronised.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

#: Default cap on retained finished spans (a traced query emits tens of
#: spans; this bounds memory even if tracing is left on during ingest).
DEFAULT_MAX_SPANS = 100_000


class Span:
    """One named, timed interval with attributes and a parent link.

    ``start`` / ``end`` are ``time.perf_counter()`` readings relative to
    the tracer's epoch (the moment of its last ``reset()``), so exported
    timestamps start near zero and survive JSON round-trips exactly.
    """

    __slots__ = ("name", "span_id", "parent_id", "start", "end", "attributes")

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: int | None,
        start: float,
        attributes: dict[str, Any],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end = start
        self.attributes = attributes

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 for instants)."""
        return self.end - self.start

    def set(self, **attributes: Any) -> None:
        """Attach attributes discovered mid-span (e.g. a result count)."""
        self.attributes.update(attributes)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready record (the JSONL wire format of one span)."""
        return {
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "start": self.start,
            "end": self.end,
            "attrs": self.attributes,
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, dur={self.duration:.6f}s)"
        )


class SpanTracer:
    """Process-wide recorder of nested query-path spans.

    Usage (the hooks inside the library follow exactly this shape)::

        if TRACER.enabled:
            with TRACER.span("skim", kind="flat", threshold=t) as sp:
                ...
                sp.set(dense=count)

    A span opened while the tracer is disabled is silently not recorded
    (``span`` self-guards), so a call site that forgets the enabled
    check cannot corrupt state — it only pays the cost of a no-op
    context manager.
    """

    __slots__ = (
        "enabled",
        "max_spans",
        "dropped",
        "_spans",
        "_stack",
        "_next_id",
        "_epoch",
    )

    def __init__(self, enabled: bool = False, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.enabled = enabled
        self.max_spans = max_spans
        self.dropped = 0
        self._spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1
        self._epoch = time.perf_counter()

    # -- switch ------------------------------------------------------------

    def enable(self) -> None:
        """Turn span recording on (idempotent)."""
        self.enabled = True

    def disable(self) -> None:
        """Turn span recording off; finished spans are kept."""
        self.enabled = False

    def reset(self) -> None:
        """Drop all finished spans, restart ids and the timestamp epoch
        (enabled flag kept)."""
        self._spans.clear()
        self._stack.clear()
        self._next_id = 1
        self.dropped = 0
        self._epoch = time.perf_counter()

    # -- recording ---------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span | None]:
        """Open a nested span; yields the :class:`Span` (or ``None`` when
        the tracer is disabled at entry)."""
        if not self.enabled:
            yield None
            return
        span = Span(
            name,
            self._next_id,
            self._stack[-1].span_id if self._stack else None,
            time.perf_counter() - self._epoch,
            attributes,
        )
        self._next_id += 1
        self._stack.append(span)
        try:
            yield span
        finally:
            span.end = time.perf_counter() - self._epoch
            self._stack.pop()
            self._keep(span)

    def instant(self, name: str, **attributes: Any) -> None:
        """Record a zero-duration event under the current span."""
        if not self.enabled:
            return
        span = Span(
            name,
            self._next_id,
            self._stack[-1].span_id if self._stack else None,
            time.perf_counter() - self._epoch,
            attributes,
        )
        self._next_id += 1
        self._keep(span)

    def _keep(self, span: Span) -> None:
        if len(self._spans) < self.max_spans:
            self._spans.append(span)
        else:
            self.dropped += 1

    def import_spans(
        self,
        spans: list[dict[str, Any]],
        origin: str,
        parent_id: int | None = None,
    ) -> int:
        """Graft foreign finished spans (wire records) into this tracer.

        The cross-process stitching half of trace-context propagation: a
        site ships its span batch inside a telemetry snapshot and the
        coordinator calls this to place the site's span tree on its own
        timeline.  Span ids are **remapped** into this tracer's id space
        (foreign ids are only unique per origin); parent links inside the
        batch are remapped consistently, and batch roots — plus any span
        whose parent is outside the batch — are re-parented under
        ``parent_id`` (typically the coordinator's currently open round
        span).  Every imported span gets an ``origin=`` attribute unless
        it already carries one, which is what the Perfetto exporter keys
        its per-origin lanes on.

        Timestamps stay in the origin's epoch.  ``max_spans`` is
        respected (overflow counts into ``dropped``).  Administrative —
        callers guard with ``TRACER.enabled`` like every other hook.
        Returns the number of spans kept.
        """
        id_map: dict[int, int] = {}
        for record in spans:
            id_map[int(record["id"])] = self._next_id
            self._next_id += 1
        kept = 0
        for record in spans:
            parent = record.get("parent")
            mapped = id_map.get(parent, parent_id) if parent is not None else parent_id
            attributes = dict(record.get("attrs") or {})
            attributes.setdefault("origin", origin)
            span = Span(
                str(record["name"]),
                id_map[int(record["id"])],
                mapped,
                float(record["start"]),
                attributes,
            )
            span.end = float(record["end"])
            before = len(self._spans)
            self._keep(span)
            kept += len(self._spans) - before
        return kept

    # -- reading -----------------------------------------------------------

    def current_span_name(self) -> str | None:
        """Name of the innermost *open* span (``None`` outside any span).

        Unlike every other reader this one is also called from a foreign
        thread — the ``repro.profile`` sampler attributes each stack
        sample to the span active at sampling time.  The read is
        best-effort: the stack may mutate underneath it, so it grabs the
        tail through one indexing op and swallows the race instead of
        locking the hot path.
        """
        try:
            return self._stack[-1].name
        except IndexError:
            return None

    def current_span_id(self) -> int | None:
        """Id of the innermost *open* span (``None`` outside any span).

        The anchor :meth:`import_spans` callers use to stitch foreign
        span trees under the span doing the importing.  Same best-effort
        single-indexing-op read as :meth:`current_span_name`.
        """
        try:
            return self._stack[-1].span_id
        except IndexError:
            return None

    def spans(self) -> list[Span]:
        """Finished spans in completion order (children before parents)."""
        return list(self._spans)

    def span_count(self) -> int:
        """Number of retained finished spans."""
        return len(self._spans)

    def find(self, name: str) -> list[Span]:
        """Finished spans with the given name."""
        return [s for s in self._spans if s.name == name]

    def children_of(self, span: Span) -> list[Span]:
        """Direct children of ``span`` among the finished spans."""
        return [s for s in self._spans if s.parent_id == span.span_id]

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready dump: header fields plus every span record."""
        return {
            "version": 1,
            "kind": "repro.trace",
            "dropped": self.dropped,
            "spans": [s.as_dict() for s in self._spans],
        }

    def __repr__(self) -> str:
        return (
            f"SpanTracer(enabled={self.enabled}, spans={len(self._spans)}, "
            f"dropped={self.dropped})"
        )
