"""Trace wire formats: JSONL records and Chrome/Perfetto ``trace_event``.

Two formats, both operating on plain span dicts (the tracer's
``snapshot()`` output), so a trace can be captured in one process and
converted in another:

* **JSONL** — line 1 is a header ``{"version": 1, "kind":
  "repro.trace", "dropped": n}``; every following line is one span
  record ``{"name", "id", "parent", "start", "end", "attrs"}``.
  Append-friendly, greppable, and diffable.
* **Chrome ``trace_event``** — ``{"traceEvents": [...]}`` with complete
  (``"ph": "X"``) events for spans and instant (``"ph": "i"``) events
  for zero-duration records, timestamps in microseconds.  Loadable
  directly in https://ui.perfetto.dev or ``chrome://tracing``.

``validate_trace`` checks structural invariants (schema version, field
types, ``end >= start``, parent references resolving to known span
ids) and is what ``python -m repro.trace validate`` runs.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

#: Trace schema version emitted by :meth:`SpanTracer.snapshot`.
TRACE_VERSION = 1

_SPAN_FIELDS = ("name", "id", "parent", "start", "end", "attrs")


def trace_to_jsonl(snapshot: dict[str, Any]) -> str:
    """Render a tracer snapshot as JSONL (header line + one span per line)."""
    header = {
        "version": snapshot.get("version", TRACE_VERSION),
        "kind": snapshot.get("kind", "repro.trace"),
        "dropped": snapshot.get("dropped", 0),
    }
    lines = [json.dumps(header)]
    for span in snapshot.get("spans", []):
        lines.append(json.dumps(span))
    return "\n".join(lines) + "\n"


def trace_from_jsonl(text: str) -> dict[str, Any]:
    """Parse and validate a JSONL trace (inverse of :func:`trace_to_jsonl`)."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError("empty trace file (no header line)")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ValueError(f"header line is not JSON: {exc}") from None
    spans = []
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            spans.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno} is not JSON: {exc}") from None
    snapshot = dict(header)
    snapshot["spans"] = spans
    return validate_trace(snapshot)


def validate_trace(snapshot: Any) -> dict[str, Any]:
    """Check a trace snapshot against the schema; returns it unchanged.

    Raises ``ValueError`` describing the first violation.
    """
    if not isinstance(snapshot, dict):
        raise ValueError(f"trace must be a dict, got {type(snapshot).__name__}")
    if snapshot.get("version") != TRACE_VERSION:
        raise ValueError(
            f"unsupported trace version {snapshot.get('version')!r} "
            f"(expected {TRACE_VERSION})"
        )
    if snapshot.get("kind") != "repro.trace":
        raise ValueError(f"unexpected trace kind {snapshot.get('kind')!r}")
    dropped = snapshot.get("dropped", 0)
    if not isinstance(dropped, int) or dropped < 0:
        raise ValueError(f"'dropped' must be a non-negative int, got {dropped!r}")
    spans = snapshot.get("spans")
    if not isinstance(spans, list):
        raise ValueError("trace section 'spans' missing or not a list")
    seen_ids: set[int] = set()
    for index, span in enumerate(spans):
        if not isinstance(span, dict):
            raise ValueError(f"spans[{index}] is not a dict")
        missing = [f for f in _SPAN_FIELDS if f not in span]
        if missing:
            raise ValueError(f"spans[{index}] missing fields {missing}")
        if not isinstance(span["name"], str) or not span["name"]:
            raise ValueError(f"spans[{index}]['name'] must be a non-empty string")
        if not isinstance(span["id"], int) or span["id"] < 1:
            raise ValueError(f"spans[{index}]['id'] must be a positive int")
        if span["id"] in seen_ids:
            raise ValueError(f"spans[{index}] reuses span id {span['id']}")
        seen_ids.add(span["id"])
        parent = span["parent"]
        if parent is not None and (not isinstance(parent, int) or parent < 1):
            raise ValueError(f"spans[{index}]['parent'] must be null or a positive int")
        for field in ("start", "end"):
            if not isinstance(span[field], (int, float)):
                raise ValueError(f"spans[{index}][{field!r}] is not numeric")
        if span["end"] < span["start"]:
            raise ValueError(f"spans[{index}] ends before it starts")
        if not isinstance(span["attrs"], dict):
            raise ValueError(f"spans[{index}]['attrs'] must be a dict")
    # Parents must reference spans present in the trace.  Children finish
    # (and are recorded) before their parents, so ids may appear later in
    # the list — check after collecting them all.
    for index, span in enumerate(spans):
        parent = span["parent"]
        if parent is not None and parent not in seen_ids:
            raise ValueError(
                f"spans[{index}] references unknown parent id {parent}"
            )
    return snapshot


def trace_origins(snapshot: dict[str, Any]) -> list[str]:
    """Distinct ``origin=`` attribute values present in a trace, sorted.

    Spans without an origin (recorded locally rather than imported via
    :meth:`SpanTracer.import_spans`) are not listed — they belong to the
    local lane.
    """
    origins = {
        span["attrs"]["origin"]
        for span in snapshot.get("spans", [])
        if isinstance(span.get("attrs"), dict) and "origin" in span["attrs"]
    }
    return sorted(str(o) for o in origins)


def trace_to_chrome(snapshot: dict[str, Any]) -> dict[str, Any]:
    """Convert a validated trace to the Chrome/Perfetto ``trace_event`` dict.

    Spans become complete events (``"ph": "X"``) and zero-duration
    records become thread-scoped instants (``"ph": "i"``); timestamps
    are microseconds since the tracer epoch, as the format requires.

    One timeline, one lane per origin: local spans render in pid/tid 1
    and every distinct ``origin=`` attribute (site span trees imported by
    the coordinator, see :mod:`repro.federate`) gets its own pid/tid with
    a ``process_name`` metadata event, so a stitched federation trace
    shows each site's rounds in a separate named track under the
    coordinator's timeline.
    """
    validate_trace(snapshot)
    lanes: dict[str | None, int] = {None: 1}
    for index, origin in enumerate(trace_origins(snapshot), start=2):
        lanes[origin] = index
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": "repro (skimmed sketches)"},
        }
    ]
    for origin, pid in lanes.items():
        if origin is not None:
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "args": {"name": f"repro origin: {origin}"},
                }
            )
    for span in snapshot["spans"]:
        attrs = span["attrs"]
        pid = lanes[attrs["origin"]] if "origin" in attrs else 1
        duration_us = (span["end"] - span["start"]) * 1e6
        event: dict[str, Any] = {
            "name": span["name"],
            "cat": span["name"].split(".")[0],
            "pid": pid,
            "tid": pid,
            "ts": span["start"] * 1e6,
            "args": dict(attrs, span_id=span["id"]),
        }
        if duration_us > 0:
            event["ph"] = "X"
            event["dur"] = duration_us
        else:
            event["ph"] = "i"
            event["s"] = "t"
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def summarize_trace(snapshot: dict[str, Any]) -> list[dict[str, Any]]:
    """Per-span-name aggregate rows (count, total/mean/max seconds).

    The bridge from the trace plane back to the metrics plane: the same
    numbers ``repro.obs`` histograms would hold, derived after the fact
    from one trace file.  Sorted by total time, descending.
    """
    validate_trace(snapshot)
    totals: dict[str, dict[str, Any]] = {}
    for span in snapshot["spans"]:
        duration = span["end"] - span["start"]
        row = totals.setdefault(
            span["name"], {"name": span["name"], "count": 0, "total": 0.0, "max": 0.0}
        )
        row["count"] += 1
        row["total"] += duration
        row["max"] = max(row["max"], duration)
    rows = sorted(totals.values(), key=lambda r: (-r["total"], r["name"]))
    for row in rows:
        row["mean"] = row["total"] / row["count"]
    return rows


def write_trace_jsonl(path: str, snapshot: dict[str, Any]) -> None:
    """Write a tracer snapshot to ``path`` in the JSONL wire format."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(trace_to_jsonl(snapshot))


def read_trace_jsonl(path: str) -> dict[str, Any]:
    """Load and validate a JSONL trace file."""
    with open(path, encoding="utf-8") as fh:
        return trace_from_jsonl(fh.read())


def write_trace_chrome(path: str, snapshot: dict[str, Any]) -> None:
    """Write a trace as a Chrome/Perfetto-loadable JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace_to_chrome(snapshot), fh, indent=1)
        fh.write("\n")


def render_summary(rows: Iterable[dict[str, Any]]) -> str:
    """Human-readable table for ``python -m repro.trace summarize``."""
    header = f"{'span':<34} {'count':>7} {'total s':>10} {'mean s':>10} {'max s':>10}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['name']:<34} {row['count']:>7} {row['total']:>10.6f} "
            f"{row['mean']:>10.6f} {row['max']:>10.6f}"
        )
    return "\n".join(lines)
