"""Vectorised arithmetic over the Mersenne prime field GF(p), p = 2**31 - 1.

All pseudo-random hash families in this package are polynomials evaluated
over a prime field (the classic Carter--Wegman construction).  We use the
Mersenne prime ``p = 2**31 - 1`` because:

* every field element fits in 31 bits, so the product of two elements fits
  in 62 bits and is exactly representable in ``uint64`` without overflow;
* reduction modulo a Mersenne prime can be done with shifts and adds, but
  numpy's ``%`` on ``uint64`` is already fast enough for our purposes and
  easier to audit, so we keep the plain modulo.

The helpers below are deliberately tiny and allocation-conscious: they are
on the per-element update path of every sketch in the library.
"""

from __future__ import annotations

import numpy as np
from ..errors import ParameterError

#: The Mersenne prime 2**31 - 1 used by every hash family in the library.
MERSENNE_PRIME_31: int = (1 << 31) - 1

_P = np.uint64(MERSENNE_PRIME_31)


def as_field_elements(values: np.ndarray | list[int] | int) -> np.ndarray:
    """Return ``values`` as ``uint64`` field elements reduced mod p.

    Accepts scalars, lists, or arrays of any integer dtype.  Negative
    inputs are rejected: domain values in the stream model are always
    non-negative integers.
    """
    # Deliberately dtype-free: this is the kernels' integer-dispatch gate
    # (any int dtype in, validated, then reduced to uint64 below).
    arr = np.asarray(values)  # repro: noqa[R1] -- deliberately dtype-free integer-dispatch gate (validated then reduced to uint64)
    if arr.dtype.kind not in ("i", "u"):
        raise TypeError(f"field elements must be integers, got dtype {arr.dtype}")
    if arr.dtype.kind == "i" and arr.size and int(arr.min()) < 0:
        raise ParameterError("field elements must be non-negative")
    return arr.astype(np.uint64, copy=False) % _P


def mulmod(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Product of field elements, elementwise.

    Both inputs must already be reduced (< p), which callers guarantee by
    construction; the product of two 31-bit values fits in 62 bits, so the
    ``uint64`` multiply is exact.
    """
    return (a * b) % _P


def addmod(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sum of field elements, elementwise (inputs reduced, sum < 2**32)."""
    return (a + b) % _P


def poly_eval(coefficients: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Evaluate a polynomial over GF(p) at many points (Horner's rule).

    Parameters
    ----------
    coefficients:
        1-D ``uint64`` array ``[c_{k-1}, ..., c_1, c_0]`` of length ``k``
        (highest degree first), all entries reduced mod p.
    points:
        ``uint64`` array of evaluation points, reduced mod p.

    Returns
    -------
    ``uint64`` array of the same shape as ``points`` with values in
    ``[0, p)``.
    """
    if coefficients.ndim != 1 or coefficients.size == 0:
        raise ParameterError("coefficients must be a non-empty 1-D array")
    acc = np.full_like(points, coefficients[0])
    for c in coefficients[1:]:
        acc = (acc * points + c) % _P
    return acc


def poly_eval_many(coefficients: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Evaluate many polynomials of the same degree at the same points.

    Parameters
    ----------
    coefficients:
        2-D ``uint64`` array of shape ``(num_polys, k)``, highest degree
        first, entries reduced mod p.
    points:
        1-D ``uint64`` array of ``m`` evaluation points, reduced mod p.

    Returns
    -------
    ``uint64`` array of shape ``(num_polys, m)``.

    Notes
    -----
    Horner's rule is applied with the polynomial axis broadcast against the
    point axis, so the work is ``O(num_polys * m * k)`` numpy operations
    with no Python-level loop over either polynomials or points.
    """
    if coefficients.ndim != 2 or coefficients.shape[1] == 0:
        raise ParameterError("coefficients must have shape (num_polys, k), k >= 1")
    pts = points[np.newaxis, :]
    acc = np.broadcast_to(coefficients[:, :1], (coefficients.shape[0], points.size)).copy()
    for j in range(1, coefficients.shape[1]):
        acc = (acc * pts + coefficients[:, j : j + 1]) % _P
    return acc


def random_coefficients(
    rng: np.random.Generator, num_polys: int, degree: int
) -> np.ndarray:
    """Draw coefficient matrix for ``num_polys`` random degree-``degree`` polys.

    The leading coefficient is drawn from ``[1, p)`` so every polynomial has
    exact degree ``degree`` (required for the independence guarantees of the
    Carter--Wegman construction); remaining coefficients are uniform on
    ``[0, p)``.  Shape of the result is ``(num_polys, degree + 1)``,
    highest degree first.
    """
    if degree < 0:
        raise ParameterError("degree must be non-negative")
    coeffs = rng.integers(0, MERSENNE_PRIME_31, size=(num_polys, degree + 1), dtype=np.uint64)
    if degree > 0:
        coeffs[:, 0] = rng.integers(1, MERSENNE_PRIME_31, size=num_polys, dtype=np.uint64)
    return coeffs
