"""Pseudo-random hash-family substrate for all sketches in the library.

The constructions here (Carter--Wegman polynomial hashing over the Mersenne
prime 2**31 - 1) supply the pairwise-independent bucket hashes and the
four-wise independent ±1 sign variables that the paper's sketch synopses
are built from (Section 2.2 and Section 4.1 of the paper).
"""

from .prime_field import MERSENNE_PRIME_31, poly_eval, poly_eval_many
from .kwise import KWiseHashFamily
from .pairwise import PairwiseBucketHash
from .fourwise import FourWiseSignFamily
from .bulk import BulkHashCache, coalesce_updates

__all__ = [
    "MERSENNE_PRIME_31",
    "poly_eval",
    "poly_eval_many",
    "KWiseHashFamily",
    "PairwiseBucketHash",
    "FourWiseSignFamily",
    "BulkHashCache",
    "coalesce_updates",
]
