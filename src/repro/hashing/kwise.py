"""k-wise independent hash families via random polynomials over GF(p).

A family of degree-(k-1) polynomials with uniformly random coefficients over
a prime field is k-wise independent: for any k distinct inputs, the k hash
values are independent and uniform on ``[0, p)``.  This is the classic
Carter--Wegman construction that Alon, Matias and Szegedy [3] (and every
sketch paper after them) rely on, and it needs only ``O(k log p)`` bits of
state per hash function — the property that makes sketch synopses small.

:class:`KWiseHashFamily` bundles *many* independent hash functions of the
same independence level so that a whole sketch (one function per table, or
one per atomic sketch) can be evaluated with a single vectorised call.
"""

from __future__ import annotations

import numpy as np

from .prime_field import (
    MERSENNE_PRIME_31,
    as_field_elements,
    poly_eval,
    poly_eval_many,
    random_coefficients,
)
from ..errors import ParameterError


class KWiseHashFamily:
    """``count`` independent k-wise independent hash functions onto [0, p).

    Parameters
    ----------
    count:
        Number of independent hash functions in the family (e.g. one per
        hash table of a sketch).
    independence:
        The independence level ``k`` (2 for pairwise bucket hashes, 4 for
        the AGMS sign variables).  The underlying polynomials have degree
        ``k - 1``.
    rng:
        A seeded :class:`numpy.random.Generator`; the family is fully
        determined by the coefficients drawn here, so two families built
        from identically-seeded generators are identical.
    """

    def __init__(self, count: int, independence: int, rng: np.random.Generator) -> None:
        if count < 1:
            raise ParameterError(f"count must be >= 1, got {count}")
        if independence < 1:
            raise ParameterError(f"independence must be >= 1, got {independence}")
        self.count = count
        self.independence = independence
        self._coefficients = random_coefficients(rng, count, independence - 1)

    @property
    def coefficients(self) -> np.ndarray:
        """Coefficient matrix, shape ``(count, independence)``; read-only view."""
        view = self._coefficients.view()
        view.flags.writeable = False
        return view

    def evaluate(self, values: np.ndarray | list[int] | int) -> np.ndarray:
        """Hash ``values`` with every function in the family.

        Returns a ``uint64`` array of shape ``(count, len(values))`` (the
        point axis is added for scalar input) with entries in ``[0, p)``.
        """
        points = np.atleast_1d(as_field_elements(values))
        return poly_eval_many(self._coefficients, points)

    def evaluate_one(self, index: int, values: np.ndarray | list[int] | int) -> np.ndarray:
        """Hash ``values`` with the single function ``index``.

        Cheaper than :meth:`evaluate` when a caller (e.g. the dyadic skim
        descent) only needs one table's hash over a long value vector.
        """
        points = np.atleast_1d(as_field_elements(values))
        return poly_eval(self._coefficients[index], points)

    def state_words(self) -> int:
        """Number of machine words of state (coefficients) the family stores.

        Used by the evaluation harness when accounting for total synopsis
        space; matches the paper's observation that seed state is
        ``O(log |D|)`` words per function.
        """
        return int(self._coefficients.size)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KWiseHashFamily):
            return NotImplemented
        return (
            self.count == other.count
            and self.independence == other.independence
            and np.array_equal(self._coefficients, other._coefficients)
        )

    def __hash__(self) -> int:  # families are mutable-free; hash by content
        return hash((self.count, self.independence, self._coefficients.tobytes()))

    def __repr__(self) -> str:
        return (
            f"KWiseHashFamily(count={self.count}, "
            f"independence={self.independence}, p={MERSENNE_PRIME_31})"
        )
