"""Four-wise independent ±1 sign families (the AGMS ``xi`` variables).

Every sketch in this library — basic AGMS atomic sketches, hash-sketch
buckets, and their skimmed variants — is a random linear projection of the
stream's frequency vector onto vectors of four-wise independent ±1 random
variables.  Four-wise independence is exactly what the variance analysis of
Alon, Matias and Szegedy [3] requires (the second moment of the estimator
expands into fourth moments of the signs).

Construction: evaluate a random degree-3 polynomial over GF(p) and take the
parity of the result as the sign bit.  The parity of a uniform value on
``[0, p)`` with odd ``p`` has bias ``1/(2p) < 2**-32`` — negligible against
sketching error and the standard construction used in practice (it is the
orthogonal-array trick of [3] instantiated over a prime field).
"""

from __future__ import annotations

import numpy as np

from .kwise import KWiseHashFamily


class FourWiseSignFamily:
    """``count`` independent four-wise ±1 sign functions over the domain.

    Function ``i`` provides the sign variables of the ``i``-th hash table
    (hash sketches) or the ``i``-th atomic sketch (basic AGMS).
    """

    def __init__(self, count: int, rng: np.random.Generator) -> None:
        self._family = KWiseHashFamily(count, independence=4, rng=rng)

    @property
    def count(self) -> int:
        """Number of independent sign functions in the family."""
        return self._family.count

    def signs(self, values: np.ndarray | list[int] | int) -> np.ndarray:
        """±1 signs of ``values`` under every function.

        Returns a ``float64`` array of shape ``(count, len(values))`` with
        entries in ``{-1.0, +1.0}`` (float so it multiplies directly into
        counter updates without casting).
        """
        raw = self._family.evaluate(values)
        return np.where(raw & np.uint64(1), 1.0, -1.0)

    def signs_one(self, index: int, values: np.ndarray | list[int] | int) -> np.ndarray:
        """±1 signs of ``values`` under function ``index`` only."""
        raw = self._family.evaluate_one(index, values)
        return np.where(raw & np.uint64(1), 1.0, -1.0)

    def state_words(self) -> int:
        """Machine words of sign-family state."""
        return self._family.state_words()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FourWiseSignFamily):
            return NotImplemented
        return self._family == other._family

    def __hash__(self) -> int:
        return hash(self._family)

    def __repr__(self) -> str:
        return f"FourWiseSignFamily(count={self.count})"
