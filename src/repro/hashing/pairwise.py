"""Pairwise-independent bucket hashes ``h_i : domain -> [0, width)``.

The hash sketch of Section 4.1 needs, for each of its ``depth`` tables, a
pairwise independent function mapping stream elements uniformly over the
table's ``width`` buckets.  We compose a pairwise family over GF(p) with a
modulo range reduction; the reduction keeps pairwise independence and its
non-uniformity is at most ``width / p < 2**-13`` for every width used in
practice, which is far below the sketch's own estimation error.
"""

from __future__ import annotations

import numpy as np

from .kwise import KWiseHashFamily
from ..errors import ParameterError


class PairwiseBucketHash:
    """``count`` independent pairwise hashes onto ``[0, width)``.

    One instance serves a whole hash sketch: function ``i`` is the bucket
    hash of table ``i``.  Evaluation is vectorised over input values.
    """

    def __init__(self, count: int, width: int, rng: np.random.Generator) -> None:
        if width < 1:
            raise ParameterError(f"width must be >= 1, got {width}")
        self.width = width
        self._family = KWiseHashFamily(count, independence=2, rng=rng)

    @property
    def count(self) -> int:
        """Number of independent bucket hashes (sketch depth)."""
        return self._family.count

    def buckets(self, values: np.ndarray | list[int] | int) -> np.ndarray:
        """Bucket indices for ``values`` under every hash.

        Returns an ``int64`` array of shape ``(count, len(values))`` with
        entries in ``[0, width)``.
        """
        return (self._family.evaluate(values) % np.uint64(self.width)).astype(np.int64)

    def buckets_one(self, index: int, values: np.ndarray | list[int] | int) -> np.ndarray:
        """Bucket indices for ``values`` under hash ``index`` only."""
        raw = self._family.evaluate_one(index, values)
        return (raw % np.uint64(self.width)).astype(np.int64)

    def state_words(self) -> int:
        """Machine words of hash state (see :meth:`KWiseHashFamily.state_words`)."""
        return self._family.state_words()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PairwiseBucketHash):
            return NotImplemented
        return self.width == other.width and self._family == other._family

    def __hash__(self) -> int:
        return hash((self.width, self._family))

    def __repr__(self) -> str:
        return f"PairwiseBucketHash(count={self.count}, width={self.width})"
