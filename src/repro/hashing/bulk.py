"""Batch coalescing for bulk sketch updates (the fused-kernel front end).

A hash sketch is a linear projection, so a batch of updates
``(v_1, w_1) ... (v_n, w_n)`` is interchangeable with the coalesced batch
``(u_1, m_1) ... (u_k, m_k)`` where ``u_j`` are the *distinct* values and
``m_j`` the summed weights of their occurrences.  Coalescing before
hashing means each Carter--Wegman polynomial is evaluated once per
distinct value instead of once per stream element — on duplicate-heavy
(Zipf-like) batches that removes most of the mod-p arithmetic, which
dominates bulk-update cost.

:class:`BulkHashCache` extends the trick across a dyadic hierarchy
(:class:`repro.sketches.DyadicSketchSchema`).  Level ``l`` of the
hierarchy ingests ``v >> l``, and the shift preserves sort order, so the
coalesced representation of level ``l + 1`` follows from level ``l`` by
shifting the distinct values right once and merging newly-adjacent
duplicates with a segment sum — **no re-scan of the original batch and no
re-hash of raw elements**.  Each level's hash families (independently
seeded per level) then run over at most ``min(k, domain >> l)`` distinct
interval ids.

Exactness note: coalescing reorders floating-point additions relative to
element-order ingestion.  Sums of integer-valued (or dyadic-rational)
float64 weights are exact, so counters are bit-identical in that regime;
for arbitrary float weights results agree to normal float64 rounding.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError

__all__ = ["BulkHashCache", "coalesce_updates"]


def coalesce_updates(
    values: np.ndarray, weights: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Coalesce an update batch into (sorted distinct values, summed masses).

    ``weights`` defaults to all-ones.  Returns ``(uniques, masses)`` where
    ``uniques`` is ascending ``int64`` and ``masses[j]`` is the float64 sum
    of the weights of every occurrence of ``uniques[j]``.
    """
    values = np.asarray(values, dtype=np.int64)
    if weights is None:
        weights = np.ones(values.size, dtype=np.float64)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != values.shape:
            raise ParameterError("weights must have the same shape as values")
    if values.size == 0:
        return values, weights
    uniques, inverse = np.unique(values, return_inverse=True)
    masses = np.bincount(inverse, weights=weights, minlength=uniques.size)
    return uniques, masses


def _shift_coalesced(
    values: np.ndarray, masses: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """One dyadic step: halve coalesced values, merging newly-equal pairs.

    ``values >> 1`` keeps a sorted array sorted, so duplicates after the
    shift are adjacent and a boundary mask + segment sum coalesces them.
    """
    if values.size == 0:
        return values, masses
    shifted = values >> 1
    boundaries = np.empty(shifted.size, dtype=np.bool_)
    boundaries[0] = True
    np.not_equal(shifted[1:], shifted[:-1], out=boundaries[1:])
    segment = np.cumsum(boundaries, dtype=np.int64) - 1
    merged_values = shifted[boundaries]
    merged_masses = np.bincount(
        segment, weights=masses, minlength=merged_values.size
    )
    return merged_values, merged_masses


class BulkHashCache:
    """Coalesced views of one update batch at every dyadic level.

    Build once per batch, then feed ``level(l)`` to the level-``l`` sketch:
    the distinct interval ids and their summed masses at that level.
    Levels are derived lazily and memoised, each from the previous by a
    single shift-and-merge pass over the already-coalesced arrays.
    """

    def __init__(
        self, values: np.ndarray, weights: np.ndarray | None = None
    ) -> None:
        values = np.asarray(values, dtype=np.int64)
        if weights is None:
            weights = np.ones(values.size, dtype=np.float64)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != values.shape:
                raise ParameterError("weights must have the same shape as values")
        self._num_elements = int(values.size)
        self._total_absolute_mass = float(np.abs(weights).sum())
        self._num_deletions = int(np.count_nonzero(weights < 0))
        self._levels: list[tuple[np.ndarray, np.ndarray]] = [
            coalesce_updates(values, weights)
        ]

    @property
    def num_elements(self) -> int:
        """Number of raw (uncoalesced) elements in the batch."""
        return self._num_elements

    @property
    def num_deletions(self) -> int:
        """Number of negative-weight elements in the raw batch."""
        return self._num_deletions

    @property
    def total_absolute_mass(self) -> float:
        """``sum(|weight|)`` of the raw batch (the stream-size increment)."""
        return self._total_absolute_mass

    def level(self, level: int) -> tuple[np.ndarray, np.ndarray]:
        """Coalesced ``(distinct interval ids, summed masses)`` at ``level``.

        Level 0 is the raw value domain; level ``l`` aggregates each value
        ``v`` into interval ``v >> l``.  Ids are ascending ``int64``,
        masses ``float64``.
        """
        if level < 0:
            raise ParameterError(f"level must be >= 0, got {level}")
        while len(self._levels) <= level:
            self._levels.append(_shift_coalesced(*self._levels[-1]))
        return self._levels[level]

    def __repr__(self) -> str:
        uniques = self._levels[0][0].size
        return (
            f"BulkHashCache(elements={self._num_elements}, "
            f"distinct={uniques}, levels_cached={len(self._levels)})"
        )
