"""Sampling profiler: a daemon thread walking ``sys._current_frames()``.

Point-in-time BENCH numbers say *how fast* a run was; they cannot say
*where* the wall-clock went.  This module answers that with the standard
production technique — statistical stack sampling: a daemon thread wakes
``hz`` times per second, snapshots every live thread's Python stack via
``sys._current_frames()``, and folds each snapshot into a bounded sample
ring.  No tracing hooks, no per-bytecode cost — the profiled code runs
unmodified, and the profiler's own thread is excluded from its samples.

Two attribution channels ride on every sample:

* **span** — when :data:`repro.trace.TRACER` is enabled, the sample is
  stamped with the innermost active span name (``engine.ingest``,
  ``skim.dense``, ``estimate.term`` …), linking wall-clock back to the
  paper's query phases;
* **activity** — hot paths additionally publish a coarse marker via
  :meth:`SamplingProfiler.mark` (one guarded attribute write, linter
  rule R12), so attribution survives even with the tracer off.

The design contract matches ``repro.obs`` / ``repro.trace`` /
``repro.monitor``: one process-wide instance (``repro.profile.PROFILER``),
**off by default**, every hot-path hook guarded by a single ``enabled``
attribute read (budgeted in ``tests/test_obs_overhead.py``), bounded
memory (``max_samples`` ring + ``dropped`` counter), and **no
third-party imports** — the package loads without numpy.
"""

from __future__ import annotations

import sys
import threading
import time
from types import FrameType
from typing import Any

try:  # pragma: no cover - exercised via the standalone import test
    from ..trace import TRACER as _TRACER
except ImportError:  # standalone layout: `trace` next to `profile` on sys.path
    from trace import TRACER as _TRACER  # type: ignore

#: Default sampling frequency.  97 Hz (prime) avoids phase-locking with
#: workloads that tick at round frequencies, the classic profiler trick.
DEFAULT_HZ = 97.0

#: Default bound on retained samples (~1.5 h at 97 Hz single-threaded).
DEFAULT_MAX_SAMPLES = 500_000

#: Frames deeper than this are truncated (guards against pathological
#: recursion blowing up sample size).
MAX_STACK_DEPTH = 128


class StackSample:
    """One observation: a thread's stack at one instant, plus attribution.

    ``frames`` is outermost-first, each frame rendered as
    ``"module:function:line"`` — the orientation collapsed-stack and
    speedscope both want.  ``weight`` is the nominal seconds this sample
    represents (``1 / hz``), so aggregations sum to approximate seconds.
    """

    __slots__ = ("timestamp", "thread_id", "frames", "span", "activity", "weight")

    def __init__(
        self,
        timestamp: float,
        thread_id: int,
        frames: tuple[str, ...],
        span: str | None,
        activity: str | None,
        weight: float,
    ) -> None:
        self.timestamp = timestamp
        self.thread_id = thread_id
        self.frames = frames
        self.span = span
        self.activity = activity
        self.weight = weight

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready record (the JSONL wire format of one sample)."""
        return {
            "t": self.timestamp,
            "thread": self.thread_id,
            "frames": list(self.frames),
            "span": self.span,
            "activity": self.activity,
            "weight": self.weight,
        }

    def __repr__(self) -> str:
        leaf = self.frames[-1] if self.frames else "<empty>"
        return f"StackSample(t={self.timestamp:.3f}, leaf={leaf!r}, span={self.span!r})"


def _render_frame(frame: FrameType) -> str:
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    return f"{module}:{code.co_name}:{frame.f_lineno}"


def _walk_stack(frame: FrameType | None) -> tuple[str, ...]:
    """Render a frame chain outermost-first, truncated at the deep end."""
    rendered: list[str] = []
    while frame is not None and len(rendered) < MAX_STACK_DEPTH:
        rendered.append(_render_frame(frame))
        frame = frame.f_back
    rendered.reverse()
    return tuple(rendered)


class SamplingProfiler:
    """Process-wide continuous profiler behind one enable switch.

    Usage (what ``--profile-out`` does under the hood)::

        from repro.profile import PROFILER

        PROFILER.enable()
        PROFILER.start(hz=97)
        ...                      # run the workload
        PROFILER.stop()
        snapshot = PROFILER.snapshot()

    ``sample_once()`` takes exactly one synchronous snapshot of the
    *other* threads plus the caller's own stack — the deterministic
    entry the tests and ``selfcheck`` drive directly.

    Hot paths publish coarse attribution with :meth:`mark`; the call is
    a no-op while disabled and every built-in call site is additionally
    guarded by ``if _PROFILER.enabled:`` (rule R12), so the disabled
    cost is one attribute read and one branch per site.
    """

    __slots__ = (
        "enabled",
        "hz",
        "max_samples",
        "dropped",
        "activity",
        "_samples",
        "_thread",
        "_stop_event",
        "_epoch",
    )

    def __init__(
        self,
        enabled: bool = False,
        hz: float = DEFAULT_HZ,
        max_samples: int = DEFAULT_MAX_SAMPLES,
    ) -> None:
        if hz <= 0:
            raise ValueError(f"hz must be > 0, got {hz}")
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.enabled = enabled
        self.hz = float(hz)
        self.max_samples = max_samples
        self.dropped = 0
        self.activity: str | None = None
        self._samples: list[StackSample] = []
        self._thread: threading.Thread | None = None
        self._stop_event = threading.Event()
        self._epoch = time.perf_counter()

    # -- switch ------------------------------------------------------------

    def enable(self) -> None:
        """Turn sample recording on (idempotent)."""
        self.enabled = True

    def disable(self) -> None:
        """Turn sample recording off; retained samples are kept."""
        self.enabled = False

    def reset(self) -> None:
        """Drop every sample, restart the epoch (enabled flag kept)."""
        self._samples.clear()
        self.dropped = 0
        self.activity = None
        self._epoch = time.perf_counter()

    # -- hot-path hook -----------------------------------------------------

    def mark(self, activity: str) -> None:
        """Publish the coarse activity marker (no-op while disabled).

        This is the only profiler method hot paths call; it must stay a
        single attribute write.  Call sites guard it with
        ``if _PROFILER.enabled:`` (linter rule R12).
        """
        if self.enabled:
            self.activity = activity

    # -- sampling ----------------------------------------------------------

    def sample_once(self) -> int:
        """Take one snapshot of every live thread *now*; returns the
        number of samples recorded (no-op while disabled).

        Unlike the daemon loop this includes the calling thread itself
        (its stack is exactly the caller's), which makes single-threaded
        attribution tests deterministic.
        """
        if not self.enabled:
            return 0
        return self._collect(exclude_thread=None)

    def _collect(self, exclude_thread: int | None) -> int:
        now = time.perf_counter() - self._epoch
        span = _TRACER.current_span_name() if _TRACER.enabled else None
        activity = self.activity
        weight = 1.0 / self.hz
        recorded = 0
        for thread_id, frame in sys._current_frames().items():  # noqa: SLF001
            if thread_id == exclude_thread:
                continue
            frames = _walk_stack(frame)
            if not frames:
                continue
            self._keep(
                StackSample(now, thread_id, frames, span, activity, weight)
            )
            recorded += 1
        return recorded

    def _keep(self, sample: StackSample) -> None:
        if len(self._samples) < self.max_samples:
            self._samples.append(sample)
        else:
            self.dropped += 1

    # -- daemon thread -----------------------------------------------------

    def start(self, hz: float | None = None) -> "SamplingProfiler":
        """Enable and launch the sampling daemon thread; returns ``self``.

        Idempotent in spirit but strict in letter: starting twice is a
        programming error and raises.
        """
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        if hz is not None:
            if hz <= 0:
                raise ValueError(f"hz must be > 0, got {hz}")
            self.hz = float(hz)
        self.enable()
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the daemon thread and disable recording (idempotent)."""
        thread = self._thread
        if thread is not None:
            self._stop_event.set()
            thread.join(timeout=5.0)
            self._thread = None
        self.disable()

    def _run(self) -> None:
        interval = 1.0 / self.hz
        me = threading.get_ident()
        while not self._stop_event.wait(interval):
            if self.enabled:
                self._collect(exclude_thread=me)

    # -- reading -----------------------------------------------------------

    def samples(self) -> list[StackSample]:
        """Retained samples in recording order."""
        return list(self._samples)

    def sample_count(self) -> int:
        """Number of retained samples."""
        return len(self._samples)

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready dump: header fields plus every sample record."""
        return {
            "version": 1,
            "kind": "repro.profile",
            "hz": self.hz,
            "dropped": self.dropped,
            "samples": [s.as_dict() for s in self._samples],
        }

    def __repr__(self) -> str:
        return (
            f"SamplingProfiler(enabled={self.enabled}, hz={self.hz}, "
            f"samples={len(self._samples)}, dropped={self.dropped})"
        )
