"""repro.profile — continuous profiling + telemetry flight recorder.

Two complementary instruments behind the observability plane's shared
off-by-default contract:

* :data:`PROFILER` (:class:`SamplingProfiler`) — a daemon thread walking
  ``sys._current_frames()`` at a configurable Hz into a bounded sample
  ring, stamping each sample with the innermost active ``repro.trace``
  span and the hot paths' coarse activity marker.  Exporters:
  collapsed stacks (flamegraph input), speedscope JSON, samples JSONL,
  and a ``top``-style aggregate report.
* :data:`RECORDER` (:class:`FlightRecorder`) — periodic windows diffing
  ``repro.obs`` counter totals (plus hot-path pulses and the audit
  ring's coverage/alert state) into a :class:`TelemetryRing` with
  Hokusai-style aging: old windows merge to coarser resolution so the
  ring holds hours of telemetry in a configured byte budget.

Typical use::

    from repro.profile import PROFILER, RECORDER

    PROFILER.start(hz=97)
    RECORDER.start(interval=1.0)
    ...                              # run the workload
    PROFILER.stop(); RECORDER.stop()
    write_profile_jsonl("run.prof.jsonl", PROFILER.snapshot())
    write_timeseries_jsonl("run.ts.jsonl", RECORDER.snapshot())

or let the CLIs do the wiring: ``python -m repro.eval ... --profile-out
run.prof.jsonl --timeseries-out run.ts.jsonl``, then ``python -m
repro.profile top run.prof.jsonl`` / ``python -m repro.monitor serve
--profile run.prof.jsonl`` (the ``/dashboard`` page renders both).

Both instruments cost the hot paths one guarded attribute read while
disabled (``tests/test_obs_overhead.py`` budgets it; linter rule R12
enforces the guard shape).  The package imports **only the standard
library** — no numpy — like obs/trace/monitor.
"""

from __future__ import annotations

from .export import (
    PROFILE_VERSION,
    aggregate_samples,
    parse_collapsed,
    profile_from_jsonl,
    profile_to_collapsed,
    profile_to_jsonl,
    profile_to_speedscope,
    read_profile_jsonl,
    render_top,
    validate_profile,
    validate_speedscope,
    write_profile_jsonl,
)
from .recorder import (
    DEFAULT_INTERVAL,
    DEFAULT_MAX_BYTES,
    DEFAULT_TIERS,
    DEFAULT_TIER_CAPACITY,
    FlightRecorder,
    TelemetryFrame,
    TelemetryRing,
    TIMESERIES_VERSION,
    read_timeseries_jsonl,
    timeseries_from_jsonl,
    timeseries_to_jsonl,
    validate_timeseries,
    write_timeseries_jsonl,
)
from .sampler import (
    DEFAULT_HZ,
    DEFAULT_MAX_SAMPLES,
    MAX_STACK_DEPTH,
    SamplingProfiler,
    StackSample,
)

#: The process-wide sampling profiler every built-in hook marks into.
PROFILER = SamplingProfiler(enabled=False)

#: The process-wide flight recorder every built-in hook pulses into.
RECORDER = FlightRecorder(enabled=False)


def enable() -> None:
    """Turn on both instruments (sampling threads not started)."""
    PROFILER.enable()
    RECORDER.enable()


def disable() -> None:
    """Turn off both instruments (retained data kept)."""
    PROFILER.disable()
    RECORDER.disable()


def is_enabled() -> bool:
    """Whether either instrument is currently recording."""
    return PROFILER.enabled or RECORDER.enabled


def reset() -> None:
    """Drop all samples and frames in both instruments (flags kept)."""
    PROFILER.reset()
    RECORDER.reset()


__all__ = [
    "DEFAULT_HZ",
    "DEFAULT_INTERVAL",
    "DEFAULT_MAX_BYTES",
    "DEFAULT_MAX_SAMPLES",
    "DEFAULT_TIERS",
    "DEFAULT_TIER_CAPACITY",
    "FlightRecorder",
    "MAX_STACK_DEPTH",
    "PROFILER",
    "PROFILE_VERSION",
    "RECORDER",
    "SamplingProfiler",
    "StackSample",
    "TIMESERIES_VERSION",
    "TelemetryFrame",
    "TelemetryRing",
    "aggregate_samples",
    "disable",
    "enable",
    "is_enabled",
    "parse_collapsed",
    "profile_from_jsonl",
    "profile_to_collapsed",
    "profile_to_jsonl",
    "profile_to_speedscope",
    "read_profile_jsonl",
    "read_timeseries_jsonl",
    "render_top",
    "reset",
    "timeseries_from_jsonl",
    "timeseries_to_jsonl",
    "validate_profile",
    "validate_speedscope",
    "validate_timeseries",
    "write_profile_jsonl",
    "write_timeseries_jsonl",
]
