"""Profile wire formats: samples JSONL, collapsed stacks, speedscope JSON.

Three formats, all operating on plain sample dicts (the profiler's
``snapshot()`` output), so a profile captured in one process can be
converted and inspected in another:

* **JSONL** — line 1 is a header ``{"version": 1, "kind":
  "repro.profile", "hz": h, "dropped": n}``; every following line is one
  sample ``{"t", "thread", "frames", "span", "activity", "weight"}``
  with frames outermost-first.  Greppable and append-friendly.
* **Collapsed stacks** (Brendan Gregg) — one line per distinct stack,
  ``frame;frame;frame count``, the input format of every flamegraph
  tool.  :func:`parse_collapsed` inverts it (to aggregate counts), which
  is how ``selfcheck`` proves the round trip.
* **speedscope** — the https://www.speedscope.app sampled-profile JSON,
  one profile per sampled thread, weights in seconds.

``aggregate_samples`` is the shared ``top``-style reducer: per-frame
self/total seconds plus per-span and per-activity attribution tables.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

#: Profile schema version emitted by :meth:`SamplingProfiler.snapshot`.
PROFILE_VERSION = 1

_SAMPLE_FIELDS = ("t", "thread", "frames", "span", "activity", "weight")


# -- JSONL -----------------------------------------------------------------


def profile_to_jsonl(snapshot: dict[str, Any]) -> str:
    """Render a profiler snapshot as JSONL (header + one sample per line)."""
    header = {
        "version": snapshot.get("version", PROFILE_VERSION),
        "kind": snapshot.get("kind", "repro.profile"),
        "hz": snapshot.get("hz", 0.0),
        "dropped": snapshot.get("dropped", 0),
    }
    lines = [json.dumps(header)]
    for sample in snapshot.get("samples", []):
        lines.append(json.dumps(sample))
    return "\n".join(lines) + "\n"


def profile_from_jsonl(text: str) -> dict[str, Any]:
    """Parse and validate a JSONL profile (inverse of :func:`profile_to_jsonl`)."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError("empty profile file (no header line)")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ValueError(f"header line is not JSON: {exc}") from None
    samples = []
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            samples.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno} is not JSON: {exc}") from None
    snapshot = dict(header)
    snapshot["samples"] = samples
    return validate_profile(snapshot)


def validate_profile(snapshot: Any) -> dict[str, Any]:
    """Check a profile snapshot against the schema; returns it unchanged.

    Raises ``ValueError`` describing the first violation.
    """
    if not isinstance(snapshot, dict):
        raise ValueError(f"profile must be a dict, got {type(snapshot).__name__}")
    if snapshot.get("version") != PROFILE_VERSION:
        raise ValueError(
            f"unsupported profile version {snapshot.get('version')!r} "
            f"(expected {PROFILE_VERSION})"
        )
    if snapshot.get("kind") != "repro.profile":
        raise ValueError(f"unexpected profile kind {snapshot.get('kind')!r}")
    hz = snapshot.get("hz", 0.0)
    if not isinstance(hz, (int, float)) or hz < 0:
        raise ValueError(f"'hz' must be a non-negative number, got {hz!r}")
    dropped = snapshot.get("dropped", 0)
    if not isinstance(dropped, int) or dropped < 0:
        raise ValueError(f"'dropped' must be a non-negative int, got {dropped!r}")
    samples = snapshot.get("samples")
    if not isinstance(samples, list):
        raise ValueError("profile section 'samples' missing or not a list")
    for index, sample in enumerate(samples):
        if not isinstance(sample, dict):
            raise ValueError(f"samples[{index}] is not a dict")
        missing = [f for f in _SAMPLE_FIELDS if f not in sample]
        if missing:
            raise ValueError(f"samples[{index}] missing fields {missing}")
        if not isinstance(sample["t"], (int, float)):
            raise ValueError(f"samples[{index}]['t'] is not numeric")
        if not isinstance(sample["thread"], int):
            raise ValueError(f"samples[{index}]['thread'] is not an int")
        frames = sample["frames"]
        if (
            not isinstance(frames, list)
            or not frames
            or not all(isinstance(f, str) and f for f in frames)
        ):
            raise ValueError(
                f"samples[{index}]['frames'] must be a non-empty list of strings"
            )
        for field in ("span", "activity"):
            if sample[field] is not None and not isinstance(sample[field], str):
                raise ValueError(f"samples[{index}][{field!r}] must be null or str")
        weight = sample["weight"]
        if not isinstance(weight, (int, float)) or weight < 0:
            raise ValueError(f"samples[{index}]['weight'] must be non-negative")
    return snapshot


def write_profile_jsonl(path: str, snapshot: dict[str, Any]) -> None:
    """Write a profiler snapshot to ``path`` in the JSONL wire format."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(profile_to_jsonl(snapshot))


def read_profile_jsonl(path: str) -> dict[str, Any]:
    """Load and validate a JSONL profile file."""
    with open(path, encoding="utf-8") as fh:
        return profile_from_jsonl(fh.read())


# -- collapsed stacks ------------------------------------------------------


def profile_to_collapsed(snapshot: dict[str, Any]) -> str:
    """Render a validated profile as collapsed stacks (Gregg format).

    One line per distinct stack, semicolon-joined outermost-first, then a
    space and the *sample count* — exactly what ``flamegraph.pl`` and
    speedscope's importer consume.  Lines are sorted for determinism.
    """
    validate_profile(snapshot)
    counts: dict[str, int] = {}
    for sample in snapshot["samples"]:
        key = ";".join(sample["frames"])
        counts[key] = counts.get(key, 0) + 1
    return "".join(f"{key} {count}\n" for key, count in sorted(counts.items()))


def parse_collapsed(text: str) -> dict[str, int]:
    """Parse collapsed stacks back into ``{stack: count}``.

    Raises ``ValueError`` on malformed lines; used by ``selfcheck`` to
    prove the export round-trips.
    """
    counts: dict[str, int] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        stack, sep, raw = line.rpartition(" ")
        if not sep or not stack:
            raise ValueError(f"line {lineno}: not 'stack count': {line!r}")
        try:
            count = int(raw)
        except ValueError:
            raise ValueError(f"line {lineno}: bad count {raw!r}") from None
        if count < 1:
            raise ValueError(f"line {lineno}: count must be >= 1, got {count}")
        counts[stack] = counts.get(stack, 0) + count
    return counts


# -- speedscope ------------------------------------------------------------

SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


def profile_to_speedscope(
    snapshot: dict[str, Any], name: str = "repro.profile"
) -> dict[str, Any]:
    """Convert a validated profile to speedscope's sampled-profile JSON.

    One ``"sampled"`` profile per sampled thread, frames shared across
    profiles through the ``shared.frames`` table, weights in seconds.
    Open the result directly at https://www.speedscope.app.
    """
    validate_profile(snapshot)
    frame_index: dict[str, int] = {}
    frames: list[dict[str, str]] = []
    by_thread: dict[int, list[dict[str, Any]]] = {}
    for sample in snapshot["samples"]:
        by_thread.setdefault(sample["thread"], []).append(sample)

    profiles = []
    for thread_id in sorted(by_thread):
        samples_out: list[list[int]] = []
        weights: list[float] = []
        end_value = 0.0
        for sample in by_thread[thread_id]:
            stack = []
            for frame in sample["frames"]:
                if frame not in frame_index:
                    frame_index[frame] = len(frames)
                    frames.append({"name": frame})
                stack.append(frame_index[frame])
            samples_out.append(stack)
            weights.append(float(sample["weight"]))
            end_value += float(sample["weight"])
        profiles.append(
            {
                "type": "sampled",
                "name": f"thread {thread_id}",
                "unit": "seconds",
                "startValue": 0.0,
                "endValue": end_value,
                "samples": samples_out,
                "weights": weights,
            }
        )
    return {
        "$schema": SPEEDSCOPE_SCHEMA,
        "name": name,
        "activeProfileIndex": 0,
        "exporter": "repro.profile",
        "shared": {"frames": frames},
        "profiles": profiles,
    }


def validate_speedscope(document: Any) -> dict[str, Any]:
    """Structural check of a speedscope document; returns it unchanged.

    Every frame index must resolve, every profile must have aligned
    ``samples`` / ``weights``.  Raises ``ValueError`` on the first gap.
    """
    if not isinstance(document, dict):
        raise ValueError("speedscope document must be a dict")
    if document.get("$schema") != SPEEDSCOPE_SCHEMA:
        raise ValueError(f"unexpected $schema {document.get('$schema')!r}")
    shared = document.get("shared")
    if not isinstance(shared, dict) or not isinstance(shared.get("frames"), list):
        raise ValueError("speedscope 'shared.frames' missing or not a list")
    n_frames = len(shared["frames"])
    for frame in shared["frames"]:
        if not isinstance(frame, dict) or not frame.get("name"):
            raise ValueError("every shared frame needs a non-empty 'name'")
    profiles = document.get("profiles")
    if not isinstance(profiles, list) or not profiles:
        raise ValueError("speedscope 'profiles' missing or empty")
    for p_index, profile in enumerate(profiles):
        if not isinstance(profile, dict) or profile.get("type") != "sampled":
            raise ValueError(f"profiles[{p_index}] is not a sampled profile")
        samples = profile.get("samples")
        weights = profile.get("weights")
        if not isinstance(samples, list) or not isinstance(weights, list):
            raise ValueError(f"profiles[{p_index}] samples/weights not lists")
        if len(samples) != len(weights):
            raise ValueError(
                f"profiles[{p_index}] has {len(samples)} samples but "
                f"{len(weights)} weights"
            )
        for s_index, stack in enumerate(samples):
            if not isinstance(stack, list) or not stack:
                raise ValueError(
                    f"profiles[{p_index}].samples[{s_index}] must be a "
                    "non-empty index list"
                )
            for idx in stack:
                if not isinstance(idx, int) or not 0 <= idx < n_frames:
                    raise ValueError(
                        f"profiles[{p_index}].samples[{s_index}] references "
                        f"unknown frame index {idx!r}"
                    )
    return document


# -- top-style aggregation -------------------------------------------------


def aggregate_samples(snapshot: dict[str, Any]) -> dict[str, Any]:
    """``top``-style reduction of a validated profile snapshot.

    Returns ``{"seconds", "samples", "frames", "spans", "activities"}``:
    per-frame rows carry ``self`` (leaf) and ``total`` (anywhere on
    stack) seconds; span/activity tables attribute sample time to the
    innermost tracer span / coarse activity marker active at sample
    time (``None`` keys rendered as ``"-"``).
    """
    validate_profile(snapshot)
    self_seconds: dict[str, float] = {}
    total_seconds: dict[str, float] = {}
    spans: dict[str, float] = {}
    activities: dict[str, float] = {}
    grand_total = 0.0
    for sample in snapshot["samples"]:
        weight = float(sample["weight"])
        grand_total += weight
        frames = sample["frames"]
        leaf = frames[-1]
        self_seconds[leaf] = self_seconds.get(leaf, 0.0) + weight
        for frame in dict.fromkeys(frames):  # dedupe recursion, keep order
            total_seconds[frame] = total_seconds.get(frame, 0.0) + weight
        span = sample["span"] or "-"
        spans[span] = spans.get(span, 0.0) + weight
        activity = sample["activity"] or "-"
        activities[activity] = activities.get(activity, 0.0) + weight
    frames_out = [
        {
            "frame": frame,
            "self": self_seconds.get(frame, 0.0),
            "total": total,
        }
        for frame, total in total_seconds.items()
    ]
    frames_out.sort(key=lambda row: (-row["self"], -row["total"], row["frame"]))
    return {
        "seconds": grand_total,
        "samples": len(snapshot["samples"]),
        "frames": frames_out,
        "spans": dict(sorted(spans.items(), key=lambda kv: -kv[1])),
        "activities": dict(sorted(activities.items(), key=lambda kv: -kv[1])),
    }


def render_top(aggregate: dict[str, Any], limit: int = 20) -> str:
    """Human-readable ``top`` table from :func:`aggregate_samples` output."""
    total = aggregate["seconds"] or 1.0
    header = f"{'self s':>9} {'self %':>7} {'total s':>9}  frame"
    lines = [
        f"{aggregate['samples']} samples, {aggregate['seconds']:.3f}s sampled time",
        header,
        "-" * len(header),
    ]
    for row in aggregate["frames"][:limit]:
        lines.append(
            f"{row['self']:>9.3f} {100.0 * row['self'] / total:>6.1f}% "
            f"{row['total']:>9.3f}  {row['frame']}"
        )
    attributed = {k: v for k, v in aggregate["spans"].items() if k != "-"}
    if attributed:
        lines.append("")
        lines.append("span attribution:")
        for span, seconds in attributed.items():
            lines.append(f"  {span:<34} {seconds:>9.3f}s")
    return "\n".join(lines)
