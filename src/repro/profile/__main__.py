"""Profiling toolbox: record a profiled smoke run, inspect, convert.

Usage::

    python -m repro.profile record --out run.prof.jsonl \\
        --timeseries-out run.ts.jsonl --seconds 2
    python -m repro.profile top run.prof.jsonl
    python -m repro.profile convert run.prof.jsonl run.collapsed
    python -m repro.profile convert run.prof.jsonl run.speedscope.json
    python -m repro.profile selfcheck

``record`` drives the built-in skimmed-join smoke workload (stream
engine ingest + join/self-join answers) under the sampling profiler,
the flight recorder and the span tracer, then writes the JSONL
artifacts.  ``top`` prints the aggregate hottest-frames report.
``convert`` emits collapsed stacks (flamegraph input) or speedscope
JSON, chosen by ``--format`` or inferred from the output extension.
``selfcheck`` proves the whole subsystem end to end (span attribution,
exporter round-trips, ring aging/byte bound, live HTTP endpoints) and
exits non-zero on the first failure — CI runs it via
``make profile-smoke``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Callable

from . import PROFILER, RECORDER
from .export import (
    aggregate_samples,
    parse_collapsed,
    profile_from_jsonl,
    profile_to_collapsed,
    profile_to_jsonl,
    profile_to_speedscope,
    read_profile_jsonl,
    render_top,
    validate_speedscope,
    write_profile_jsonl,
)
from .recorder import (
    TelemetryFrame,
    TelemetryRing,
    validate_timeseries,
    write_timeseries_jsonl,
)
from .sampler import DEFAULT_HZ

#: Span-name prefixes that count as "attributed to a skim/join phase".
JOIN_SPAN_PREFIXES = ("skim", "estimate", "engine.answer")


def _smoke_workload(
    domain: int,
    elements: int,
    seed: int,
    seconds: float,
    until: Callable[[], bool] | None = None,
) -> int:
    """Ingest-and-answer loop on a skimmed-synopsis engine.

    Runs for ``seconds`` of wall-clock (or until ``until()`` goes true),
    alternating bulk ingest with join / self-join answers so samples
    land in the update, SKIMDENSE and ESTSKIMJOINSIZE paths.  Returns
    the number of queries answered.  Imports numpy lazily — the package
    itself must stay importable without it.
    """
    import numpy as np

    from ..core.config import SketchParameters
    from ..streams.engine import StreamEngine
    from ..streams.query import JoinCountQuery, SelfJoinQuery

    rng = np.random.default_rng(seed)
    engine = StreamEngine(
        domain, SketchParameters(width=128, depth=5), synopsis="skimmed", seed=seed
    )
    for name in ("f", "g"):
        engine.register_stream(name)
    values = rng.integers(0, domain, size=elements)
    weights = rng.integers(1, 4, size=elements).astype(float)
    queries = [JoinCountQuery("f", "g"), SelfJoinQuery("f")]

    deadline = time.perf_counter() + seconds
    answered = 0
    while time.perf_counter() < deadline:
        if until is not None and until():
            break
        for name in ("f", "g"):
            engine.process_bulk(name, values, weights)
        for query in queries:
            engine.answer(query)
            answered += 1
    return answered


def _record(args: argparse.Namespace) -> int:
    from ..obs import METRICS
    from ..trace import TRACER

    for flag, path in (("--out", args.out), ("--timeseries-out", args.timeseries_out)):
        if path:
            try:
                with open(path, "a", encoding="utf-8"):
                    pass
            except OSError as exc:
                print(f"cannot write {flag} path: {exc}", file=sys.stderr)
                return 1

    PROFILER.reset()
    RECORDER.reset()
    METRICS.reset()
    METRICS.enable()
    TRACER.reset()
    TRACER.enable()
    PROFILER.start(hz=args.hz)
    RECORDER.start(interval=args.interval)
    try:
        answered = _smoke_workload(args.domain, args.elements, args.seed, args.seconds)
    finally:
        PROFILER.stop()
        RECORDER.stop()
        TRACER.disable()
        METRICS.disable()

    snapshot = PROFILER.snapshot()
    write_profile_jsonl(args.out, snapshot)
    print(
        f"recorded {len(snapshot['samples'])} samples at {snapshot['hz']:g} Hz "
        f"({answered} queries answered) -> {args.out}"
    )
    if args.timeseries_out:
        ts = RECORDER.snapshot()
        write_timeseries_jsonl(args.timeseries_out, ts)
        print(
            f"recorded {len(ts['frames'])} telemetry frames "
            f"({ts['aged']} aged) -> {args.timeseries_out}"
        )
    return 0


def _top(args: argparse.Namespace) -> int:
    try:
        snapshot = read_profile_jsonl(args.profile)
    except (OSError, ValueError) as exc:
        print(f"invalid profile {args.profile}: {exc}", file=sys.stderr)
        return 1
    print(render_top(aggregate_samples(snapshot), limit=args.limit))
    return 0


def _convert(args: argparse.Namespace) -> int:
    try:
        snapshot = read_profile_jsonl(args.profile)
    except (OSError, ValueError) as exc:
        print(f"invalid profile {args.profile}: {exc}", file=sys.stderr)
        return 1
    fmt = args.format
    if fmt is None:
        fmt = "speedscope" if args.out.endswith(".json") else "collapsed"
    try:
        with open(args.out, "w", encoding="utf-8") as fh:
            if fmt == "collapsed":
                fh.write(profile_to_collapsed(snapshot))
            else:
                json.dump(profile_to_speedscope(snapshot, name=args.profile), fh)
    except OSError as exc:
        print(f"cannot write {args.out}: {exc}", file=sys.stderr)
        return 1
    where = (
        "feed it to flamegraph.pl / speedscope"
        if fmt == "collapsed"
        else "open it at https://www.speedscope.app"
    )
    print(f"wrote {fmt} output to {args.out}; {where}")
    return 0


def _synthetic_frame(index: int, keys: int) -> TelemetryFrame:
    counts = {f"counter.{k}": float(index + k) for k in range(keys)}
    gauges = {f"gauge.{k}": float(k) / (index + 1) for k in range(keys // 2)}
    return TelemetryFrame(float(index), float(index + 1), counts, gauges)


def _check_ring_aging(fail: Callable[[str], None]) -> None:
    """Long synthetic run: the ring must stay within its byte bound while
    conserving every pushed window through aging."""
    ring = TelemetryRing(tier_capacity=4, tiers=3, max_bytes=8192)
    pushes = 500
    for index in range(pushes):
        ring.push(_synthetic_frame(index, keys=16))
        if ring.approx_bytes > ring.max_bytes:
            fail(
                f"ring byte bound violated after push {index}: "
                f"{ring.approx_bytes} > {ring.max_bytes}"
            )
            return
    frames = ring.frames()
    if ring.aged == 0:
        fail("ring never aged a frame over a 500-push run")
    if sum(f.merged for f in frames) != pushes:
        fail(
            f"aging lost windows: {sum(f.merged for f in frames)} accounted, "
            f"{pushes} pushed"
        )
    for older, newer in zip(frames, frames[1:]):
        if newer.t0 < older.t1 - 1e-9:
            fail(f"ring frames overlap: {older!r} then {newer!r}")
            return
    if max(f.res for f in frames) == 0:
        fail("no frame was coarsened despite aging")
    validate_timeseries(
        {
            "version": 1,
            "kind": "repro.timeseries",
            "interval": 1.0,
            "pushed": ring.pushed,
            "aged": ring.aged,
            "frames": [f.as_dict() for f in frames],
        }
    )


def _check_roundtrip(snapshot: dict[str, Any], fail: Callable[[str], None]) -> None:
    reparsed = profile_from_jsonl(profile_to_jsonl(snapshot))
    if len(reparsed["samples"]) != len(snapshot["samples"]):
        fail("JSONL round-trip changed the sample count")

    collapsed = profile_to_collapsed(snapshot)
    stacks = parse_collapsed(collapsed)
    if sum(stacks.values()) != len(snapshot["samples"]):
        fail(
            f"collapsed round-trip lost samples: {sum(stacks.values())} "
            f"counted, {len(snapshot['samples'])} recorded"
        )

    speedscope = validate_speedscope(profile_to_speedscope(snapshot))
    exported = sum(len(p["samples"]) for p in speedscope["profiles"])
    if exported != len(snapshot["samples"]):
        fail(
            f"speedscope round-trip lost samples: {exported} exported, "
            f"{len(snapshot['samples'])} recorded"
        )
    weight_in = sum(s["weight"] for s in snapshot["samples"])
    weight_out = sum(sum(p["weights"]) for p in speedscope["profiles"])
    if abs(weight_in - weight_out) > 1e-9 * max(1.0, weight_in):
        fail("speedscope round-trip changed total sampled seconds")


def _check_endpoints(fail: Callable[[str], None]) -> None:
    """``/dashboard`` + ``/profile`` + ``/timeseries`` must serve parseable
    bodies (and honour HEAD / reject bad params) while ingest is live."""
    import threading
    import urllib.error
    import urllib.request

    import numpy as np

    from ..core.config import SketchParameters
    from ..monitor.service import MonitorServer, live_source
    from ..obs import METRICS
    from ..streams.engine import StreamEngine

    engine = StreamEngine(
        1 << 10, SketchParameters(width=64, depth=3), synopsis="skimmed", seed=11
    )
    engine.register_stream("f")
    rng = np.random.default_rng(11)
    values = rng.integers(0, 1 << 10, size=2_000)
    weights = np.ones(values.size)

    stop = threading.Event()

    def ingest() -> None:
        while not stop.is_set():
            engine.process_bulk("f", values, weights)

    thread = threading.Thread(target=ingest, name="selfcheck-ingest", daemon=True)
    was_enabled = METRICS.enabled
    METRICS.enable()
    thread.start()
    server = MonitorServer(live_source()).start()
    try:
        for path, check in (
            ("/profile", lambda b: json.loads(b)["kind"] == "repro.profile"),
            ("/timeseries", lambda b: json.loads(b)["kind"] == "repro.timeseries"),
            ("/dashboard", lambda b: "<svg" in b or "repro monitor" in b),
        ):
            with urllib.request.urlopen(server.url + path, timeout=10) as response:
                body = response.read().decode("utf-8")
                if response.status != 200:
                    fail(f"GET {path} returned {response.status}")
                elif not check(body):
                    fail(f"GET {path} body failed its parse check")

        head = urllib.request.Request(server.url + "/dashboard", method="HEAD")
        with urllib.request.urlopen(head, timeout=10) as response:
            if response.status != 200:
                fail(f"HEAD /dashboard returned {response.status}")
            if int(response.headers.get("Content-Length", 0)) <= 0:
                fail("HEAD /dashboard missing Content-Length")
            if response.read():
                fail("HEAD /dashboard returned a body")

        try:
            with urllib.request.urlopen(
                server.url + "/audits?bogus=1", timeout=10
            ) as response:
                fail(f"GET /audits?bogus=1 returned {response.status}, wanted 400")
        except urllib.error.HTTPError as exc:
            if exc.code != 400:
                fail(f"GET /audits?bogus=1 returned {exc.code}, wanted 400")
    finally:
        server.stop()
        stop.set()
        thread.join(timeout=10)
        METRICS.enabled = was_enabled


def _selfcheck(args: argparse.Namespace) -> int:
    from ..obs import METRICS
    from ..trace import TRACER

    failures: list[str] = []

    def fail(message: str) -> None:
        failures.append(message)
        print(f"FAIL: {message}")

    def ok(message: str) -> None:
        print(f"ok: {message}")

    # 1. Profiled smoke run with span attribution.
    PROFILER.reset()
    RECORDER.reset()
    METRICS.reset()
    METRICS.enable()
    TRACER.reset()
    TRACER.enable()

    def attributed() -> list[Any]:
        return [
            s
            for s in PROFILER.samples()
            if s.span is not None and s.span.startswith(JOIN_SPAN_PREFIXES)
        ]

    def done() -> bool:
        return bool(attributed()) and RECORDER.ring.frame_count() >= 3

    PROFILER.start(hz=args.hz)
    RECORDER.start(interval=0.2)
    try:
        answered = _smoke_workload(
            args.domain, args.elements, args.seed, args.seconds, until=done
        )
    finally:
        PROFILER.stop()
        RECORDER.stop()
        TRACER.disable()
        METRICS.disable()

    samples = PROFILER.samples()
    if not samples:
        fail("profiled smoke run produced no samples")
    else:
        ok(f"smoke run: {len(samples)} samples over {answered} answered queries")
    hits = attributed()
    if hits:
        names = sorted({s.span for s in hits})
        ok(f"{len(hits)} samples attributed to skim/join spans ({', '.join(names)})")
    else:
        fail("no sample was attributed to a skim/join span")

    # 2. Exporter round-trips.
    if samples:
        snapshot = PROFILER.snapshot()
        before = len(failures)
        _check_roundtrip(snapshot, fail)
        if len(failures) == before:
            ok("collapsed + speedscope + JSONL exports round-trip")

    # 3. Live recorder frames from the same run.
    ts = RECORDER.snapshot()
    try:
        validate_timeseries(ts)
    except ValueError as exc:
        fail(f"recorder snapshot invalid: {exc}")
    if len(ts["frames"]) < 2:
        fail(f"recorder captured {len(ts['frames'])} frames, wanted >= 2")
    elif not any(f["counts"] for f in ts["frames"]):
        fail("no recorder frame captured any counter delta")
    else:
        ok(f"flight recorder captured {len(ts['frames'])} valid frames")

    # 4. Ring aging and byte bound under a long synthetic run.
    before = len(failures)
    _check_ring_aging(fail)
    if len(failures) == before:
        ok("telemetry ring ages within its byte bound (500-push synthetic run)")

    # 5. HTTP endpoints while ingest is live.
    before = len(failures)
    _check_endpoints(fail)
    if len(failures) == before:
        ok("/profile, /timeseries, /dashboard live (+ HEAD, /audits 400)")

    if failures:
        print(f"selfcheck: {len(failures)} failure(s)")
        return 1
    print("selfcheck: all checks passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.profile",
        description="Record, inspect and convert repro.profile artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_record = sub.add_parser(
        "record", help="profile the built-in smoke workload and write JSONL"
    )
    p_record.add_argument("--out", required=True, metavar="PATH",
                          help="samples JSONL output path")
    p_record.add_argument("--timeseries-out", metavar="PATH", default=None,
                          help="flight-recorder JSONL output path")
    p_record.add_argument("--hz", type=float, default=DEFAULT_HZ)
    p_record.add_argument("--interval", type=float, default=0.25,
                          help="recorder tick interval in seconds")
    p_record.add_argument("--seconds", type=float, default=2.0,
                          help="workload duration")
    p_record.add_argument("--domain", type=int, default=1 << 12)
    p_record.add_argument("--elements", type=int, default=20_000)
    p_record.add_argument("--seed", type=int, default=7)

    p_top = sub.add_parser("top", help="hottest-frames report of a JSONL profile")
    p_top.add_argument("profile", help="JSONL profile file")
    p_top.add_argument("--limit", type=int, default=20)

    p_convert = sub.add_parser(
        "convert", help="convert a JSONL profile to collapsed stacks or speedscope"
    )
    p_convert.add_argument("profile", help="JSONL profile file")
    p_convert.add_argument("out", help="output path")
    p_convert.add_argument(
        "--format",
        choices=("collapsed", "speedscope"),
        default=None,
        help="output format (default: speedscope for *.json, else collapsed)",
    )

    p_selfcheck = sub.add_parser(
        "selfcheck", help="end-to-end check of profiler, recorder and endpoints"
    )
    p_selfcheck.add_argument("--hz", type=float, default=250.0,
                             help="sampling rate during the smoke run")
    p_selfcheck.add_argument("--seconds", type=float, default=30.0,
                             help="max smoke-run duration (exits early once attributed)")
    p_selfcheck.add_argument("--domain", type=int, default=1 << 12)
    p_selfcheck.add_argument("--elements", type=int, default=20_000)
    p_selfcheck.add_argument("--seed", type=int, default=7)

    args = parser.parse_args(argv)
    if args.command == "record":
        return _record(args)
    if args.command == "top":
        return _top(args)
    if args.command == "convert":
        return _convert(args)
    return _selfcheck(args)


if __name__ == "__main__":
    sys.exit(main())
