"""Telemetry flight recorder: bounded time-series of obs/audit deltas.

A metrics snapshot is a point-in-time total; it cannot show *how*
throughput, shipped bytes, estimate coverage, or drift evolved over a
stream's lifetime.  The :class:`FlightRecorder` closes that gap: a
periodic ``tick()`` (manual or from a daemon thread) diffs the
``repro.obs`` counter totals since the previous tick, drains the
hot-path :meth:`FlightRecorder.pulse` accumulators, reads the
``repro.monitor`` audit ring's coverage/alert state, and folds it all
into one :class:`TelemetryFrame` — a timestamped window of deltas.

Frames land in a :class:`TelemetryRing` with **Hokusai-style aging**
(PAPERS.md): the ring is tiered, and when a tier fills, its two oldest
frames merge into one coarser frame in the next tier.  Recent history
stays at full tick resolution while old history degrades to 2x, 4x, …
coarser windows, so hours of telemetry fit a configured byte budget —
the same aged-resolution idea Hokusai applies to sketch time-series,
applied here to the telemetry about the sketches.

Contract matches the rest of the observability plane: one process-wide
instance (``repro.profile.RECORDER``), **off by default**, hot paths
call only :meth:`FlightRecorder.pulse` behind an ``enabled`` guard
(linter rule R12, budgeted in ``tests/test_obs_overhead.py``), and the
module imports nothing outside the standard library.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any

try:  # pragma: no cover - exercised via the standalone import test
    from ..obs import METRICS as _METRICS
except ImportError:  # standalone layout: `obs` next to `profile` on sys.path
    from obs import METRICS as _METRICS  # type: ignore

try:  # pragma: no cover - exercised via the standalone import test
    from ..monitor import AUDIT as _AUDIT
except ImportError:
    from monitor import AUDIT as _AUDIT  # type: ignore

#: Timeseries schema version emitted by :meth:`FlightRecorder.snapshot`.
TIMESERIES_VERSION = 1

#: Default seconds between daemon ticks.
DEFAULT_INTERVAL = 1.0

#: Default frames per resolution tier.
DEFAULT_TIER_CAPACITY = 64

#: Default number of resolution tiers (tier k holds ``2**k``-tick windows).
DEFAULT_TIERS = 4

#: Default byte budget for the ring (JSON-encoded frame sizes).
DEFAULT_MAX_BYTES = 512 * 1024


def _read_racy(read, fallback):
    """Best-effort read of an unsynchronised registry from the tick thread.

    The metrics registry and audit ring are deliberately lock-free on
    their hot paths, so iterating them while a hot path inserts a brand
    new metric can raise ``RuntimeError`` (size changed during
    iteration).  Ticks are periodic — retry a couple of times, then
    settle for ``fallback`` and let the next tick pick the delta up.
    """
    for _ in range(3):
        try:
            return read()
        except RuntimeError:
            continue
    return fallback


class TelemetryFrame:
    """One window of telemetry: counter deltas plus gauge readings.

    ``t0``/``t1`` bound the window (recorder-epoch seconds), ``res`` is
    the aging tier the frame sits in (0 = raw tick resolution, each
    merge bumps it), ``merged`` counts the raw ticks folded in.
    ``counts`` are deltas over the window (sum on merge); ``gauges`` are
    instantaneous readings (duration-weighted mean on merge).
    """

    __slots__ = ("t0", "t1", "res", "merged", "counts", "gauges")

    def __init__(
        self,
        t0: float,
        t1: float,
        counts: dict[str, float],
        gauges: dict[str, float],
        res: int = 0,
        merged: int = 1,
    ) -> None:
        if t1 < t0:
            raise ValueError(f"frame window inverted: t0={t0} > t1={t1}")
        self.t0 = t0
        self.t1 = t1
        self.res = res
        self.merged = merged
        self.counts = counts
        self.gauges = gauges

    @property
    def dt(self) -> float:
        """Window length in seconds."""
        return self.t1 - self.t0

    def rate(self, name: str) -> float:
        """Per-second rate of one counter over this window (0 if absent)."""
        dt = self.dt
        if dt <= 0.0:
            return 0.0
        return self.counts.get(name, 0.0) / dt

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready record (the JSONL wire format of one frame)."""
        return {
            "t0": self.t0,
            "t1": self.t1,
            "res": self.res,
            "merged": self.merged,
            "counts": self.counts,
            "gauges": self.gauges,
        }

    def encoded_size(self) -> int:
        """Bytes this frame costs on the JSONL wire (the ring's budget unit)."""
        return len(json.dumps(self.as_dict(), separators=(",", ":")))

    def merge(self, other: "TelemetryFrame") -> "TelemetryFrame":
        """Fold two adjacent windows into one coarser frame.

        Counter deltas add; gauges average weighted by each window's
        duration (an unweighted mean would let a 1 s window outvote a
        64 s one after repeated aging).
        """
        counts = dict(self.counts)
        for name, value in other.counts.items():
            counts[name] = counts.get(name, 0.0) + value
        w_self = max(self.dt, 1e-9)
        w_other = max(other.dt, 1e-9)
        gauges: dict[str, float] = {}
        for name in set(self.gauges) | set(other.gauges):
            in_self = name in self.gauges
            in_other = name in other.gauges
            if in_self and in_other:
                gauges[name] = (
                    self.gauges[name] * w_self + other.gauges[name] * w_other
                ) / (w_self + w_other)
            else:
                gauges[name] = self.gauges[name] if in_self else other.gauges[name]
        return TelemetryFrame(
            min(self.t0, other.t0),
            max(self.t1, other.t1),
            counts,
            gauges,
            res=max(self.res, other.res) + 1,
            merged=self.merged + other.merged,
        )

    def __repr__(self) -> str:
        return (
            f"TelemetryFrame([{self.t0:.2f}, {self.t1:.2f}], res={self.res}, "
            f"merged={self.merged}, counts={len(self.counts)})"
        )


class TelemetryRing:
    """Tiered frame store with Hokusai-style aged resolution.

    Tier 0 receives raw frames; when a tier exceeds ``tier_capacity``
    its two *oldest* frames merge into one frame pushed to the next
    tier, and the final tier merges in place — so no window is ever
    discarded, it only gets coarser.  On top of the structural bound, a
    ``max_bytes`` budget (JSON-encoded frame sizes) forces extra merges
    of the oldest frames when counter cardinality makes frames fat.
    """

    def __init__(
        self,
        tier_capacity: int = DEFAULT_TIER_CAPACITY,
        tiers: int = DEFAULT_TIERS,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        if tier_capacity < 2:
            raise ValueError(f"tier_capacity must be >= 2, got {tier_capacity}")
        if tiers < 1:
            raise ValueError(f"tiers must be >= 1, got {tiers}")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.tier_capacity = tier_capacity
        self.max_bytes = max_bytes
        self.pushed = 0
        self.aged = 0
        # _tiers[0] is the finest/newest tier; each list runs oldest -> newest.
        self._tiers: list[list[TelemetryFrame]] = [[] for _ in range(tiers)]
        self._bytes = 0

    def push(self, frame: TelemetryFrame) -> None:
        """Append a raw frame, then age/compact until within bounds."""
        self.pushed += 1
        self._tiers[0].append(frame)
        self._bytes += frame.encoded_size()
        self._age_overflow()
        while self._bytes > self.max_bytes and self._compact_once():
            pass

    def _merge_oldest_pair(self, tier: list[TelemetryFrame]) -> TelemetryFrame:
        first, second = tier[0], tier[1]
        merged = first.merge(second)
        self._bytes += (
            merged.encoded_size() - first.encoded_size() - second.encoded_size()
        )
        del tier[0:2]
        self.aged += 1
        return merged

    def _age_overflow(self) -> None:
        for index, tier in enumerate(self._tiers):
            while len(tier) > self.tier_capacity:
                merged = self._merge_oldest_pair(tier)
                if index + 1 < len(self._tiers):
                    # Newest frame of the next-coarser tier: append at end.
                    self._tiers[index + 1].append(merged)
                else:
                    tier.insert(0, merged)  # last tier coarsens in place
                    break

    def _compact_once(self) -> bool:
        """One forced merge of the oldest mergeable frames; False when the
        ring is down to a single frame and cannot shrink further."""
        # Oldest data lives in the highest-index non-empty tier.
        for index in range(len(self._tiers) - 1, -1, -1):
            tier = self._tiers[index]
            if len(tier) >= 2:
                tier.insert(0, self._merge_oldest_pair(tier))
                return True
        # Every tier holds <= 1 frame: merge across the two oldest tiers.
        occupied = [t for t in self._tiers if t]
        if len(occupied) >= 2:
            older, newer = occupied[-1], occupied[-2]
            older.append(newer.pop(0))
            older.insert(0, self._merge_oldest_pair(older))
            return True
        return False

    # -- reading -----------------------------------------------------------

    def frames(self) -> list[TelemetryFrame]:
        """All retained frames, oldest first (coarse tiers lead)."""
        out: list[TelemetryFrame] = []
        for tier in reversed(self._tiers):
            out.extend(tier)
        return out

    def frame_count(self) -> int:
        """Number of frames currently retained across every tier."""
        return sum(len(tier) for tier in self._tiers)

    @property
    def approx_bytes(self) -> int:
        """Tracked JSON-encoded size of every retained frame."""
        return self._bytes

    def clear(self) -> None:
        """Drop every retained frame and reset the push/age counters."""
        for tier in self._tiers:
            tier.clear()
        self._bytes = 0
        self.pushed = 0
        self.aged = 0

    def __repr__(self) -> str:
        return (
            f"TelemetryRing(frames={self.frame_count()}, "
            f"bytes={self._bytes}/{self.max_bytes}, aged={self.aged})"
        )


class FlightRecorder:
    """Process-wide telemetry recorder behind one enable switch.

    Usage (what ``--timeseries-out`` does under the hood)::

        from repro.profile import RECORDER

        RECORDER.enable()
        RECORDER.start(interval=1.0)   # or call RECORDER.tick() manually
        ...                            # run the workload
        RECORDER.stop()
        snapshot = RECORDER.snapshot()

    Hot paths publish deltas with :meth:`pulse` — one dict accumulate —
    so throughput/bytes series exist even when the full metrics registry
    is off; each built-in call site is guarded by
    ``if _RECORDER.enabled:`` (rule R12).  ``tick()`` additionally diffs
    ``repro.obs`` counter totals and reads the audit ring, then pushes
    the assembled frame into the aging ring.
    """

    __slots__ = (
        "enabled",
        "interval",
        "ring",
        "_pulses",
        "_last_counters",
        "_last_tick",
        "_thread",
        "_stop_event",
        "_epoch",
    )

    def __init__(
        self,
        enabled: bool = False,
        interval: float = DEFAULT_INTERVAL,
        tier_capacity: int = DEFAULT_TIER_CAPACITY,
        tiers: int = DEFAULT_TIERS,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.enabled = enabled
        self.interval = float(interval)
        self.ring = TelemetryRing(
            tier_capacity=tier_capacity, tiers=tiers, max_bytes=max_bytes
        )
        self._pulses: dict[str, float] = {}
        self._last_counters: dict[str, float] = {}
        self._last_tick = 0.0
        self._thread: threading.Thread | None = None
        self._stop_event = threading.Event()
        self._epoch = time.perf_counter()

    # -- switch ------------------------------------------------------------

    def enable(self) -> None:
        """Turn frame recording on (idempotent)."""
        self.enabled = True

    def disable(self) -> None:
        """Turn frame recording off; retained frames are kept."""
        self.enabled = False

    def reset(self) -> None:
        """Drop every frame and pulse, restart the epoch (flag kept)."""
        self.ring.clear()
        self._pulses.clear()
        self._last_counters.clear()
        self._epoch = time.perf_counter()
        self._last_tick = 0.0

    # -- hot-path hook -----------------------------------------------------

    def pulse(self, name: str, amount: float = 1.0) -> None:
        """Accumulate a delta for the current window (no-op while disabled).

        This is the only recorder method hot paths call; it must stay
        one dict accumulate.  Call sites guard it with
        ``if _RECORDER.enabled:`` (linter rule R12).
        """
        if self.enabled:
            self._pulses[name] = self._pulses.get(name, 0.0) + amount

    def pending_pulses(self) -> dict[str, float]:
        """Copy of the current window's undrained pulse deltas.

        Non-destructive (``tick()`` still owns the drain); the federation
        shipper reads this to carry pulse counters in a telemetry
        snapshot without stealing them from the local flight recorder.
        """
        return dict(self._pulses)

    # -- ticking -----------------------------------------------------------

    def tick(self) -> TelemetryFrame | None:
        """Close the current window into one frame (``None`` while disabled).

        The frame's ``counts`` combine the drained pulses with deltas of
        every ``repro.obs`` counter since the previous tick; ``gauges``
        take the registry's current gauge values plus the audit ring's
        coverage rate and cumulative alert count.
        """
        if not self.enabled:
            return None
        now = time.perf_counter() - self._epoch
        counts = self._pulses
        self._pulses = {}

        metric_counters = _read_racy(
            lambda: {n: c.value for n, c in _METRICS._counters.items()},
            self._last_counters,
        )
        for name, total in metric_counters.items():
            delta = total - self._last_counters.get(name, 0.0)
            if delta:
                counts[name] = counts.get(name, 0.0) + delta
        self._last_counters = metric_counters

        gauges = _read_racy(
            lambda: {n: g.value for n, g in _METRICS._gauges.items()}, {}
        )
        audits = _read_racy(_AUDIT.audits, [])
        decided = [a.covered for a in audits if a.covered is not None]
        if decided:
            gauges["audit.coverage"] = sum(decided) / len(decided)
        gauges["audit.alerts"] = float(len(_AUDIT.alerts))

        frame = TelemetryFrame(self._last_tick, max(now, self._last_tick), counts, gauges)
        self._last_tick = frame.t1
        self.ring.push(frame)
        return frame

    # -- daemon thread -----------------------------------------------------

    def start(self, interval: float | None = None) -> "FlightRecorder":
        """Enable and launch the ticking daemon thread; returns ``self``."""
        if self._thread is not None:
            raise RuntimeError("recorder already started")
        if interval is not None:
            if interval <= 0:
                raise ValueError(f"interval must be > 0, got {interval}")
            self.interval = float(interval)
        self.enable()
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-recorder", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the daemon (closing a final window) and disable (idempotent)."""
        thread = self._thread
        if thread is not None:
            self._stop_event.set()
            thread.join(timeout=5.0)
            self._thread = None
            self.tick()  # close the partial window so no telemetry is lost
        self.disable()

    def _run(self) -> None:
        while not self._stop_event.wait(self.interval):
            if self.enabled:
                self.tick()

    # -- reading -----------------------------------------------------------

    def frames(self) -> list[TelemetryFrame]:
        """Retained frames, oldest first."""
        return self.ring.frames()

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready dump: header fields plus every retained frame."""
        return {
            "version": TIMESERIES_VERSION,
            "kind": "repro.timeseries",
            "interval": self.interval,
            "pushed": self.ring.pushed,
            "aged": self.ring.aged,
            "frames": [f.as_dict() for f in self.ring.frames()],
        }

    def __repr__(self) -> str:
        return (
            f"FlightRecorder(enabled={self.enabled}, interval={self.interval}, "
            f"frames={self.ring.frame_count()})"
        )


# -- wire format -----------------------------------------------------------

_FRAME_FIELDS = ("t0", "t1", "res", "merged", "counts", "gauges")


def timeseries_to_jsonl(snapshot: dict[str, Any]) -> str:
    """Render a recorder snapshot as JSONL (header + one frame per line)."""
    header = {
        "version": snapshot.get("version", TIMESERIES_VERSION),
        "kind": snapshot.get("kind", "repro.timeseries"),
        "interval": snapshot.get("interval", DEFAULT_INTERVAL),
        "pushed": snapshot.get("pushed", 0),
        "aged": snapshot.get("aged", 0),
    }
    lines = [json.dumps(header)]
    for frame in snapshot.get("frames", []):
        lines.append(json.dumps(frame))
    return "\n".join(lines) + "\n"


def timeseries_from_jsonl(text: str) -> dict[str, Any]:
    """Parse and validate a JSONL timeseries (inverse of
    :func:`timeseries_to_jsonl`)."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError("empty timeseries file (no header line)")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ValueError(f"header line is not JSON: {exc}") from None
    frames = []
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            frames.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno} is not JSON: {exc}") from None
    snapshot = dict(header)
    snapshot["frames"] = frames
    return validate_timeseries(snapshot)


def validate_timeseries(snapshot: Any) -> dict[str, Any]:
    """Check a timeseries snapshot against the schema; returns it unchanged.

    Frames must be chronological and non-overlapping — the aging scheme
    preserves both, so a violation means a corrupted export.
    """
    if not isinstance(snapshot, dict):
        raise ValueError(f"timeseries must be a dict, got {type(snapshot).__name__}")
    if snapshot.get("version") != TIMESERIES_VERSION:
        raise ValueError(
            f"unsupported timeseries version {snapshot.get('version')!r} "
            f"(expected {TIMESERIES_VERSION})"
        )
    if snapshot.get("kind") != "repro.timeseries":
        raise ValueError(f"unexpected timeseries kind {snapshot.get('kind')!r}")
    frames = snapshot.get("frames")
    if not isinstance(frames, list):
        raise ValueError("timeseries section 'frames' missing or not a list")
    previous_end = float("-inf")
    for index, frame in enumerate(frames):
        if not isinstance(frame, dict):
            raise ValueError(f"frames[{index}] is not a dict")
        missing = [f for f in _FRAME_FIELDS if f not in frame]
        if missing:
            raise ValueError(f"frames[{index}] missing fields {missing}")
        t0, t1 = frame["t0"], frame["t1"]
        if not isinstance(t0, (int, float)) or not isinstance(t1, (int, float)):
            raise ValueError(f"frames[{index}] t0/t1 not numeric")
        if t1 < t0:
            raise ValueError(f"frames[{index}] window inverted ({t0} > {t1})")
        if t0 < previous_end - 1e-9:
            raise ValueError(
                f"frames[{index}] overlaps its predecessor "
                f"({t0} < {previous_end})"
            )
        previous_end = t1
        if not isinstance(frame["res"], int) or frame["res"] < 0:
            raise ValueError(f"frames[{index}]['res'] must be a non-negative int")
        if not isinstance(frame["merged"], int) or frame["merged"] < 1:
            raise ValueError(f"frames[{index}]['merged'] must be a positive int")
        for section in ("counts", "gauges"):
            mapping = frame[section]
            if not isinstance(mapping, dict):
                raise ValueError(f"frames[{index}][{section!r}] is not a dict")
            for key, value in mapping.items():
                if not isinstance(key, str) or not isinstance(value, (int, float)):
                    raise ValueError(
                        f"frames[{index}][{section!r}] must map str -> number"
                    )
    return snapshot


def write_timeseries_jsonl(path: str, snapshot: dict[str, Any]) -> None:
    """Write a recorder snapshot to ``path`` in the JSONL wire format."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(timeseries_to_jsonl(snapshot))


def read_timeseries_jsonl(path: str) -> dict[str, Any]:
    """Load and validate a JSONL timeseries file."""
    with open(path, encoding="utf-8") as fh:
        return timeseries_from_jsonl(fh.read())
