"""Accuracy-regression harness: run corpus workloads under full audit.

For each :class:`~repro.workloads.corpus.WorkloadInstance` the harness
builds a skimmed-sketch :class:`~repro.streams.engine.StreamEngine`
(optionally the sharded :class:`~repro.parallel.ParallelStreamEngine`),
attaches the ``repro.monitor`` shadow-exact auditor at ``sample_rate =
1.0`` (an exact mirror — every realized error is measured against the
true post-predicate join size, not an estimate of it), replays the
corpus batches, answers every declared query with audits enabled, and
condenses the per-query :class:`~repro.monitor.audit.QueryAudit` records
into one ACCURACY record per workload:

* realized relative error (max and mean over the workload's queries),
* CI-coverage rate (fraction of queries whose realized error fell
  inside the Lemma 4.1 a-posteriori confidence interval),
* the SKIMDENSE residual-contract verdict rate, and
* the number of shadow drift alerts raised.

Everything is seed-deterministic — corpus batches, hash families, and
the exact-mirror shadow — so the resulting numbers are bit-stable across
runs and machines, which is what lets ``python -m repro.workloads
compare`` exit-1-gate on them in CI (see :mod:`repro.workloads.schema`).
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import ParameterError, QueryError
from .corpus import WorkloadInstance, workloads_for
from .schema import ACCURACY_VERSION, validate_accuracy

#: Default sketch width for harness engines (matches the smoke corpus
#: domains: wide enough for meaningful skims, small enough to be fast).
DEFAULT_WIDTH = 256

#: Default sketch depth (odd, per the paper's median boosting).
DEFAULT_DEPTH = 5

#: Default hash-family seed for harness engines.
DEFAULT_ENGINE_SEED = 101


def run_workload(
    instance: WorkloadInstance,
    width: int = DEFAULT_WIDTH,
    depth: int = DEFAULT_DEPTH,
    engine_seed: int = DEFAULT_ENGINE_SEED,
    workers: int | None = None,
    mode: str = "thread",
) -> dict[str, Any]:
    """Run one workload fully audited; return its ACCURACY record.

    ``workers=None`` uses the serial :class:`StreamEngine`; an integer
    runs the same workload through :class:`ParallelStreamEngine` with
    that many shards (answers are bit-identical by linearity — the
    selfcheck CLI proves it).
    """
    # Imported lazily so ``python -m repro.workloads list`` works without
    # numpy (mirroring the repro.bench scenario contract).
    from ..core.config import SketchParameters
    from ..monitor import AUDIT
    from ..monitor.shadow import ShadowAuditor
    from ..streams.engine import StreamEngine
    from ..streams.query import JoinCountQuery, SelfJoinQuery

    parameters = SketchParameters(width=width, depth=depth)
    if workers is None:
        engine: StreamEngine = StreamEngine(
            instance.domain_size, parameters, synopsis="skimmed", seed=engine_seed
        )
        closer: Callable[[], None] = lambda: None
    else:
        from ..parallel import ParallelStreamEngine

        parallel_engine = ParallelStreamEngine(
            instance.domain_size,
            parameters,
            synopsis="skimmed",
            seed=engine_seed,
            workers=workers,
            mode=mode,
        )
        engine = parallel_engine
        closer = parallel_engine.close

    shadow = ShadowAuditor(sample_rate=1.0, seed=0)
    engine.attach_shadow(shadow)
    for name, predicate in instance.streams.items():
        engine.register_stream(name, predicate=predicate)

    was_enabled = AUDIT.enabled
    AUDIT.reset()
    AUDIT.enable()
    try:
        for batch in instance.batches:
            engine.process_bulk(batch.stream, batch.values, batch.weights)
        query_rows: list[dict[str, Any]] = []
        for left, right in instance.queries:
            query = (
                SelfJoinQuery(left) if left == right else JoinCountQuery(left, right)
            )
            estimate = engine.answer(query)
            audit = AUDIT.last()
            if audit is None or audit.streams != (left, right):
                raise QueryError(
                    f"workload {instance.name!r}: query ({left}, {right}) "
                    "produced no enriched audit"
                )
            if audit.shadow_exact == 0:
                raise ParameterError(
                    f"workload {instance.name!r}: query ({left}, {right}) has "
                    "an exactly-zero join size; relative error is undefined — "
                    "re-parameterise the family so every audited join is "
                    "non-empty"
                )
            query_rows.append(
                {
                    "left": left,
                    "right": right,
                    "estimate": float(estimate),
                    "exact": float(audit.shadow_exact),
                    "realized_relative_error": float(
                        audit.realized_relative_error
                    ),
                    "covered": bool(audit.covered),
                    "ci_halfwidth": float(audit.ci_halfwidth),
                    "residual_bound_ok": bool(audit.residual_bound_ok),
                }
            )
        alerts = shadow.alert_count
    finally:
        if not was_enabled:
            AUDIT.disable()
        AUDIT.reset()
        closer()

    errors = [row["realized_relative_error"] for row in query_rows]
    return {
        "workload": instance.name,
        "family": instance.family,
        "params": dict(instance.params),
        "seed": instance.seed,
        "updates": instance.total_updates(),
        "queries": query_rows,
        "max_realized_relative_error": max(errors),
        "mean_realized_relative_error": sum(errors) / len(errors),
        "coverage_rate": sum(row["covered"] for row in query_rows)
        / len(query_rows),
        "residual_ok_rate": sum(row["residual_bound_ok"] for row in query_rows)
        / len(query_rows),
        "drift_alerts": int(alerts),
    }


def run_suite(
    suite: str,
    seed: int = 0,
    width: int = DEFAULT_WIDTH,
    depth: int = DEFAULT_DEPTH,
    engine_seed: int = DEFAULT_ENGINE_SEED,
    workers: int | None = None,
    mode: str = "thread",
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Run every corpus family in ``suite``; return an ACCURACY document."""
    from ..bench.runner import detect_revision
    from ..monitor import AUDIT

    records: list[dict[str, Any]] = []
    for instance in workloads_for(suite, seed=seed):
        if progress is not None:
            progress(
                f"running {instance.name} "
                f"({instance.total_updates()} updates, "
                f"{len(instance.queries)} queries)"
            )
        records.append(
            run_workload(
                instance,
                width=width,
                depth=depth,
                engine_seed=engine_seed,
                workers=workers,
                mode=mode,
            )
        )
    return validate_accuracy(
        {
            "version": ACCURACY_VERSION,
            "kind": "repro.workloads",
            "suite": suite,
            "revision": detect_revision(),
            "engine": {
                "synopsis": "skimmed",
                "width": width,
                "depth": depth,
                "seed": engine_seed,
                "delta": AUDIT.delta,
                "workers": workers,
                "mode": mode if workers is not None else None,
            },
            "records": records,
        }
    )
