"""ACCURACY file schema, validation and the trajectory ``compare`` gate.

An ACCURACY file is one point on the repo's *estimate-quality*
trajectory — the accuracy analogue of ``repro.bench``'s BENCH files: a
versioned JSON document of per-workload records

.. code-block:: json

    {"version": 1, "kind": "repro.workloads", "suite": "smoke",
     "revision": "abc1234",
     "engine": {"width": 256, "depth": 5, "seed": 101, "delta": 0.05},
     "records": [{"workload": "delete_churn", "params": {...}, "seed": 0,
                  "updates": 38280,
                  "queries": [{"left": "f", "right": "g",
                               "estimate": 311.0, "exact": 309.0,
                               "realized_relative_error": 0.0065,
                               "covered": true, "ci_halfwidth": 120.5,
                               "residual_bound_ok": true}],
                  "max_realized_relative_error": 0.0065,
                  "mean_realized_relative_error": 0.0065,
                  "coverage_rate": 1.0,
                  "residual_ok_rate": 1.0,
                  "drift_alerts": 0}]}

Because the corpus and the engine seeds are fixed, every number is
bit-stable across runs and machines, so ``compare_accuracy`` gates are
meaningful in CI:

* **error**: ``max_realized_relative_error`` grew by more than
  ``max_error_increase`` (absolute delta);
* **coverage**: ``coverage_rate`` (fraction of audited queries whose
  realized error fell inside the theory CI) dropped by more than
  ``max_coverage_drop``;
* a workload disappearing from the current file is always a regression.

Records are matched across files by ``(workload, params, seed)``, so a
parameter change is a *new* trajectory point, never a silent comparison
of unlike workloads.
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import ParameterError

#: ACCURACY document schema version.
ACCURACY_VERSION = 1

#: Default tolerated absolute growth of a workload's max realized
#: relative error before ``compare`` fails.
DEFAULT_MAX_ERROR_INCREASE = 0.05

#: Default tolerated absolute drop of a workload's CI-coverage rate.
DEFAULT_MAX_COVERAGE_DROP = 0.05

_RATE_FIELDS = ("coverage_rate", "residual_ok_rate")
_ERROR_FIELDS = ("max_realized_relative_error", "mean_realized_relative_error")
_QUERY_FIELDS = (
    "left",
    "right",
    "estimate",
    "exact",
    "realized_relative_error",
    "covered",
    "ci_halfwidth",
    "residual_bound_ok",
)


def validate_accuracy(doc: Any) -> dict[str, Any]:
    """Check an ACCURACY document against the schema; returns it unchanged.

    Raises :class:`~repro.errors.ParameterError` describing the first
    violation.
    """
    if not isinstance(doc, dict):
        raise ParameterError(
            f"ACCURACY document must be a dict, got {type(doc).__name__}"
        )
    if doc.get("version") != ACCURACY_VERSION:
        raise ParameterError(
            f"unsupported ACCURACY version {doc.get('version')!r} "
            f"(expected {ACCURACY_VERSION})"
        )
    if doc.get("kind") != "repro.workloads":
        raise ParameterError(f"unexpected ACCURACY kind {doc.get('kind')!r}")
    for field in ("suite", "revision"):
        if not isinstance(doc.get(field), str) or not doc[field]:
            raise ParameterError(f"ACCURACY field {field!r} missing or empty")
    if not isinstance(doc.get("engine"), dict):
        raise ParameterError("ACCURACY section 'engine' missing or not a dict")
    records = doc.get("records")
    if not isinstance(records, list) or not records:
        raise ParameterError("ACCURACY section 'records' missing or empty")
    seen: set[str] = set()
    for index, record in enumerate(records):
        where = f"records[{index}]"
        if not isinstance(record, dict):
            raise ParameterError(f"{where} is not a dict")
        if not isinstance(record.get("workload"), str) or not record["workload"]:
            raise ParameterError(f"{where}['workload'] missing or empty")
        if not isinstance(record.get("params"), dict):
            raise ParameterError(f"{where}['params'] must be a dict")
        if not isinstance(record.get("seed"), int):
            raise ParameterError(f"{where}['seed'] must be an int")
        key = record_key(record)
        if key in seen:
            raise ParameterError(f"{where} duplicates {key}")
        seen.add(key)
        if not isinstance(record.get("updates"), int) or record["updates"] < 0:
            raise ParameterError(
                f"{where}['updates'] must be a non-negative int"
            )
        queries = record.get("queries")
        if not isinstance(queries, list) or not queries:
            raise ParameterError(f"{where}['queries'] missing or empty")
        for qindex, query in enumerate(queries):
            if not isinstance(query, dict):
                raise ParameterError(f"{where}['queries'][{qindex}] is not a dict")
            missing = [f for f in _QUERY_FIELDS if f not in query]
            if missing:
                raise ParameterError(
                    f"{where}['queries'][{qindex}] missing fields {missing}"
                )
        for field in _ERROR_FIELDS:
            value = record.get(field)
            if not isinstance(value, (int, float)) or value < 0:
                raise ParameterError(
                    f"{where}[{field!r}] must be a non-negative finite "
                    f"number, got {value!r}"
                )
        for field in _RATE_FIELDS:
            value = record.get(field)
            if not isinstance(value, (int, float)) or not 0.0 <= value <= 1.0:
                raise ParameterError(
                    f"{where}[{field!r}] must be a number in [0, 1], "
                    f"got {value!r}"
                )
        alerts = record.get("drift_alerts")
        if not isinstance(alerts, int) or alerts < 0:
            raise ParameterError(
                f"{where}['drift_alerts'] must be a non-negative int"
            )
    return doc


def record_key(record: dict[str, Any]) -> str:
    """Stable identity of one record: workload, canonical params, seed."""
    return (
        f"{record['workload']}"
        f"::{json.dumps(record['params'], sort_keys=True)}"
        f"::seed={record['seed']}"
    )


def compare_accuracy(
    baseline: dict[str, Any],
    current: dict[str, Any],
    max_error_increase: float = DEFAULT_MAX_ERROR_INCREASE,
    max_coverage_drop: float = DEFAULT_MAX_COVERAGE_DROP,
) -> tuple[list[dict[str, Any]], list[str]]:
    """Diff two validated ACCURACY documents.

    Returns ``(rows, regressions)``: one row per record key across both
    files (``status``: matched/added/removed plus per-axis deltas), and a
    list of human-readable regression descriptions (empty == pass).
    """
    validate_accuracy(baseline)
    validate_accuracy(current)
    base_by_key = {record_key(r): r for r in baseline["records"]}
    cur_by_key = {record_key(r): r for r in current["records"]}
    rows: list[dict[str, Any]] = []
    regressions: list[str] = []
    for key in sorted(set(base_by_key) | set(cur_by_key)):
        base, cur = base_by_key.get(key), cur_by_key.get(key)
        if base is None:
            rows.append({"key": key, "status": "added"})
            continue
        if cur is None:
            rows.append({"key": key, "status": "removed"})
            regressions.append(f"{key}: workload disappeared from current file")
            continue
        row: dict[str, Any] = {"key": key, "status": "matched"}
        base_err = base["max_realized_relative_error"]
        cur_err = cur["max_realized_relative_error"]
        delta = cur_err - base_err
        row["max_realized_relative_error"] = {
            "baseline": base_err, "current": cur_err, "delta": delta,
        }
        if delta > max_error_increase:
            regressions.append(
                f"{key}: max realized relative error grew {base_err:.4f} -> "
                f"{cur_err:.4f} (+{delta:.4f}, limit +{max_error_increase:.4f})"
            )
        base_cov = base["coverage_rate"]
        cur_cov = cur["coverage_rate"]
        drop = base_cov - cur_cov
        row["coverage_rate"] = {
            "baseline": base_cov, "current": cur_cov, "drop": drop,
        }
        if drop > max_coverage_drop:
            regressions.append(
                f"{key}: CI-coverage rate dropped {base_cov:.3f} -> "
                f"{cur_cov:.3f} (-{drop:.3f}, limit -{max_coverage_drop:.3f})"
            )
        row["residual_ok_rate"] = {
            "baseline": base["residual_ok_rate"],
            "current": cur["residual_ok_rate"],
        }
        if cur["residual_ok_rate"] < base["residual_ok_rate"]:
            regressions.append(
                f"{key}: residual-bound verdict rate dropped "
                f"{base['residual_ok_rate']:.3f} -> {cur['residual_ok_rate']:.3f}"
            )
        row["drift_alerts"] = {
            "baseline": base["drift_alerts"], "current": cur["drift_alerts"],
        }
        if cur["drift_alerts"] > base["drift_alerts"]:
            regressions.append(
                f"{key}: drift alerts grew {base['drift_alerts']} -> "
                f"{cur['drift_alerts']}"
            )
        rows.append(row)
    return rows, regressions


def render_compare(rows: list[dict[str, Any]], regressions: list[str]) -> str:
    """Human-readable report for ``python -m repro.workloads compare``."""
    lines = []
    for row in rows:
        if row["status"] != "matched":
            lines.append(f"{row['status']:>8}  {row['key']}")
            continue
        err = row["max_realized_relative_error"]
        cov = row["coverage_rate"]
        res = row["residual_ok_rate"]
        lines.append(
            f" matched  {row['key']}\n"
            f"          max err {err['baseline']:.4f} -> {err['current']:.4f}; "
            f"coverage {cov['baseline']:.3f} -> {cov['current']:.3f}; "
            f"residual-ok {res['baseline']:.3f} -> {res['current']:.3f}"
        )
    if regressions:
        lines.append("")
        lines.append(f"ACCURACY REGRESSIONS ({len(regressions)}):")
        lines.extend(f"  - {r}" for r in regressions)
    else:
        lines.append("")
        lines.append("no accuracy regressions")
    return "\n".join(lines)


def write_accuracy(path: str, doc: dict[str, Any]) -> None:
    """Validate and write an ACCURACY document as JSON."""
    validate_accuracy(doc)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def read_accuracy(path: str) -> dict[str, Any]:
    """Load and validate an ACCURACY document."""
    with open(path, encoding="utf-8") as fh:
        return validate_accuracy(json.load(fh))
