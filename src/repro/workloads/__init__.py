"""Adversarial workload corpus + accuracy-regression gate (``repro.workloads``).

``repro.bench`` made *throughput* a diffable, gated trajectory; this
package does the same for *estimate quality*.  A registry of named,
seed-deterministic adversarial corpus families (skew drift, delete
churn, Ting-style filtered subset sums, correlated/anti-correlated join
pairs — :mod:`repro.workloads.corpus`) is replayed through the stream
engines with the ``repro.monitor`` shadow-exact auditor attached
(:mod:`repro.workloads.harness`), emitting one versioned ACCURACY JSON
document per run::

    python -m repro.workloads run --suite smoke --json-out ACCURACY_<rev>.json
    python -m repro.workloads compare \\
        benchmarks/baselines/ACCURACY_baseline.json ACCURACY_abc.json

``compare`` exits non-zero when a workload's realized relative error,
CI-coverage rate, residual-contract verdict rate, or drift-alert count
regresses past tolerance — every number is seed-deterministic, so the
gate holds across machines.  ``selfcheck`` proves corpus determinism and
serial == sharded audit equality in-process.

Design contract (adapted from :mod:`repro.bench`): no module in this
package imports numpy or the engines at module level — they load lazily
only when workloads actually run, so ``list`` stays import-cheap.
"""

from .corpus import (
    FAMILIES,
    Family,
    WorkloadBatch,
    WorkloadInstance,
    build_workload,
    family_names,
    suite_names,
    workloads_for,
)
from .harness import run_suite, run_workload
from .schema import (
    ACCURACY_VERSION,
    compare_accuracy,
    read_accuracy,
    record_key,
    render_compare,
    validate_accuracy,
    write_accuracy,
)

__all__ = [
    "ACCURACY_VERSION",
    "FAMILIES",
    "Family",
    "WorkloadBatch",
    "WorkloadInstance",
    "build_workload",
    "compare_accuracy",
    "family_names",
    "read_accuracy",
    "record_key",
    "render_compare",
    "run_suite",
    "run_workload",
    "suite_names",
    "validate_accuracy",
    "workloads_for",
    "write_accuracy",
]
