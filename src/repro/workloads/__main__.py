"""CLI for the adversarial-workload accuracy harness.

Run a suite and write an ACCURACY document (``run`` may be omitted)::

    python -m repro.workloads --suite smoke --json-out ACCURACY_<rev>.json
    python -m repro.workloads run --suite full --json-out out/ACCURACY_<rev>.json

``<rev>`` in the output path is replaced with the detected revision.

Diff two ACCURACY documents (exit 1 on accuracy regression)::

    python -m repro.workloads compare \\
        benchmarks/baselines/ACCURACY_baseline.json ACCURACY_abc1234.json

List the corpus families::

    python -m repro.workloads list

Prove the corpus/harness invariants end-to-end (determinism, serial ==
sharded answers, audit coverage)::

    python -m repro.workloads selfcheck
"""

from __future__ import annotations

import argparse
import json
import sys

from .corpus import FAMILIES, build_workload, family_names, suite_names
from .harness import (
    DEFAULT_DEPTH,
    DEFAULT_ENGINE_SEED,
    DEFAULT_WIDTH,
    run_suite,
    run_workload,
)
from .schema import (
    DEFAULT_MAX_COVERAGE_DROP,
    DEFAULT_MAX_ERROR_INCREASE,
    compare_accuracy,
    read_accuracy,
    render_compare,
    write_accuracy,
)

_COMMANDS = ("run", "compare", "list", "selfcheck")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads",
        description="Run adversarial workload suites and gate their "
        "ACCURACY trajectories.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a suite and emit an ACCURACY document")
    run.add_argument(
        "--suite",
        default="smoke",
        choices=suite_names(),
        help="corpus suite to run (default: smoke)",
    )
    run.add_argument(
        "--seed", type=int, default=0, help="corpus seed (default: 0)"
    )
    run.add_argument(
        "--width",
        type=int,
        default=DEFAULT_WIDTH,
        help=f"sketch width (default: {DEFAULT_WIDTH})",
    )
    run.add_argument(
        "--depth",
        type=int,
        default=DEFAULT_DEPTH,
        help=f"sketch depth (default: {DEFAULT_DEPTH})",
    )
    run.add_argument(
        "--engine-seed",
        type=int,
        default=DEFAULT_ENGINE_SEED,
        help=f"hash-family seed (default: {DEFAULT_ENGINE_SEED})",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="run through ParallelStreamEngine with this many shards "
        "(default: serial StreamEngine)",
    )
    run.add_argument(
        "--json-out",
        metavar="PATH",
        help="write the ACCURACY document here; '<rev>' expands to the "
        "detected revision (default: print to stdout)",
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress per-workload progress"
    )

    compare = sub.add_parser(
        "compare", help="diff two ACCURACY documents; exit 1 on regression"
    )
    compare.add_argument("baseline", help="baseline ACCURACY JSON path")
    compare.add_argument("current", help="current ACCURACY JSON path")
    compare.add_argument(
        "--max-error-increase",
        type=float,
        default=DEFAULT_MAX_ERROR_INCREASE,
        help="fail if a workload's max realized relative error grows by "
        f"more than this (default: {DEFAULT_MAX_ERROR_INCREASE})",
    )
    compare.add_argument(
        "--max-coverage-drop",
        type=float,
        default=DEFAULT_MAX_COVERAGE_DROP,
        help="fail if a workload's CI-coverage rate drops by more than "
        f"this (default: {DEFAULT_MAX_COVERAGE_DROP})",
    )

    sub.add_parser("list", help="list corpus families and suites")

    selfcheck = sub.add_parser(
        "selfcheck",
        help="prove corpus determinism and serial==sharded audit equality",
    )
    selfcheck.add_argument(
        "--workers",
        type=int,
        default=2,
        help="shard count for the parallel leg (default: 2)",
    )
    return parser


def _cmd_list() -> int:
    for name in family_names():
        family = FAMILIES[name]
        suites = ", ".join(sorted(family.suites))
        print(f"{name}  [{suites}]")
        print(f"    {family.description}")
    return 0


def _cmd_selfcheck(workers: int) -> int:
    """Exercise the full corpus + harness contract; print PASS/FAIL lines."""
    failures = 0

    def check(label: str, ok: bool, detail: str = "") -> None:
        nonlocal failures
        status = "PASS" if ok else "FAIL"
        suffix = f"  ({detail})" if detail else ""
        print(f"  {status}  {label}{suffix}")
        if not ok:
            failures += 1

    print("repro.workloads selfcheck")
    for name in family_names():
        first = build_workload(name, seed=0)
        again = build_workload(name, seed=0)
        other = build_workload(name, seed=1)
        check(
            f"{name}: same seed => byte-identical corpus",
            first.fingerprint() == again.fingerprint(),
        )
        check(
            f"{name}: different seed => different corpus",
            first.fingerprint() != other.fingerprint(),
        )

    # One adversarial family through both engines: every query's
    # estimate, exact, and realized error must agree bit-for-bit.
    instance = build_workload("delete_churn", seed=0)
    serial = run_workload(instance)
    instance = build_workload("delete_churn", seed=0)
    sharded = run_workload(instance, workers=workers, mode="thread")
    check(
        f"delete_churn: serial == sharded({workers}) audited record",
        serial == sharded,
    )
    check(
        "delete_churn: every query audited with exact ground truth",
        all("exact" in q and "covered" in q for q in serial["queries"]),
        f"{len(serial['queries'])} queries",
    )
    check(
        "delete_churn: realized errors finite",
        all(
            q["realized_relative_error"] == q["realized_relative_error"]
            and q["realized_relative_error"] != float("inf")
            for q in serial["queries"]
        ),
        f"max={serial['max_realized_relative_error']:.4f}",
    )
    if failures:
        print(f"selfcheck FAILED ({failures} checks)")
        return 1
    print("selfcheck OK")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    # `run` is the default subcommand, mirroring `python -m repro.bench`.
    if argv and argv[0] not in _COMMANDS and argv[0] not in ("-h", "--help"):
        argv.insert(0, "run")
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        return _cmd_list()

    if args.command == "selfcheck":
        return _cmd_selfcheck(args.workers)

    if args.command == "run":
        try:
            progress = None if args.quiet else lambda msg: print(msg, file=sys.stderr)
            doc = run_suite(
                args.suite,
                seed=args.seed,
                width=args.width,
                depth=args.depth,
                engine_seed=args.engine_seed,
                workers=args.workers,
                progress=progress,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if args.json_out:
            from ..bench.runner import detect_revision

            path = args.json_out.replace("<rev>", detect_revision())
            try:
                write_accuracy(path, doc)
            except OSError as exc:
                print(f"error: cannot write {path}: {exc}", file=sys.stderr)
                return 1
            print(f"wrote {path} ({len(doc['records'])} records)")
        else:
            print(json.dumps(doc, indent=2, sort_keys=True))
        return 0

    # compare
    try:
        baseline = read_accuracy(args.baseline)
        current = read_accuracy(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    rows, regressions = compare_accuracy(
        baseline,
        current,
        max_error_increase=args.max_error_increase,
        max_coverage_drop=args.max_coverage_drop,
    )
    print(
        f"baseline {baseline['revision']} ({baseline['suite']}) vs "
        f"current {current['revision']} ({current['suite']})"
    )
    print(render_compare(rows, regressions))
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
