"""Adversarial workload corpus: named, seed-deterministic stream generators.

The paper's guarantees (Lemma 4.1's error bound, linearity under
insert/delete streams, predicate pushdown "prior to updating the
synopses") are easy to exercise on benign Zipf streams and easy to break
everywhere else.  This module is the repo's corpus of *adversarial*
workloads — each a named, parameterised generator producing a
deterministic sequence of per-stream update batches plus exact ground
truth, so estimate quality can be measured, tracked and **gated** per
workload (see :mod:`repro.workloads.harness` and the ``compare`` CLI).

Families
--------
``skew_drift``
    The Zipf exponent sweeps across phases (e.g. 0.4 -> 1.6): the stream
    the sketch was "sized for" at the start is not the stream it sees at
    the end.  Stresses the skim threshold's dependence on skew.
``delete_churn``
    Insert-then-delete waves that annihilate most of each wave: the net
    frequency vector stays tiny while gross domain pressure is high.
    Stresses linearity and the SKIMDENSE residual contract near ``f = 0``.
``filtered_subset_sum``
    Ting-style disaggregated subset sums: one element stream fanned into
    three predicate-filtered streams (Range / InSet / Modulo), joined
    pairwise.  Stresses predicate pushdown on the bulk path.
``join_correlated`` / ``join_anticorrelated``
    Join pairs with aligned vs. opposed heavy hitters (the anti pair maps
    values through ``domain - 1 - v``), with known exact join sizes.
    Correlated joins are the estimator's best case, anti-correlated its
    variance-dominated worst case.

Contract
--------
* This module imports without numpy (``python -m repro.workloads list``
  must work on a bare box); numpy and the stream generators are imported
  lazily inside each family's builder.
* Builders consume **only** their ``params`` and ``seed`` through seeded
  ``np.random.default_rng`` instances (linter rule R6), so the same
  ``(family, params, seed)`` triple always yields byte-identical batches
  — :meth:`WorkloadInstance.fingerprint` hashes the realized corpus and
  the selfcheck CLI proves the repeatability.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator

from ..errors import ParameterError
from ..streams.query import (
    InSetPredicate,
    ModuloPredicate,
    Predicate,
    RangePredicate,
    TruePredicate,
)

if TYPE_CHECKING:  # realized batches are numpy arrays
    import numpy as np

    from ..streams.model import FrequencyVector

__all__ = [
    "FAMILIES",
    "Family",
    "WorkloadBatch",
    "WorkloadInstance",
    "build_workload",
    "family_names",
    "suite_names",
    "workloads_for",
]


@dataclass(frozen=True)
class WorkloadBatch:
    """One ingestion step: a batch of weighted updates for one stream."""

    stream: str
    values: "np.ndarray"
    weights: "np.ndarray"

    def __len__(self) -> int:
        return int(self.values.size)


@dataclass
class WorkloadInstance:
    """A fully realized workload: streams, batches, queries, ground truth.

    ``streams`` maps each stream name onto the selection predicate the
    engine must register it with (predicates filter *before* synopsis
    maintenance, so ground truth applies the same mask).  ``queries``
    are ``(left, right)`` join pairs; ``left == right`` denotes a
    self-join.  ``batches`` is the ingestion order the harness replays —
    but linearity means any permutation or re-chunking must land the
    sketches in the same state (the metamorphic tests hold us to that).
    """

    name: str
    family: str
    params: dict[str, Any]
    seed: int
    domain_size: int
    streams: dict[str, Predicate]
    batches: list[WorkloadBatch]
    queries: list[tuple[str, str]]
    description: str = ""
    _exact: dict[str, "FrequencyVector"] = field(default_factory=dict, repr=False)

    # -- bookkeeping -------------------------------------------------------

    def total_updates(self) -> int:
        """Gross number of update records across every batch."""
        return sum(len(batch) for batch in self.batches)

    def gross_mass(self, stream: str) -> float:
        """``sum |w|`` over the stream's updates (domain pressure)."""
        total = 0.0
        for batch in self.batches:
            if batch.stream == stream:
                total += float(abs(batch.weights).sum())
        return total

    def net_weight(self, stream: str) -> float:
        """Signed weight sum over the stream's updates (pre-predicate)."""
        total = 0.0
        for batch in self.batches:
            if batch.stream == stream:
                total += float(batch.weights.sum())
        return total

    # -- ground truth ------------------------------------------------------

    def exact_frequencies(self, stream: str) -> "FrequencyVector":
        """Exact post-predicate net frequency vector of one stream."""
        cached = self._exact.get(stream)
        if cached is not None:
            return cached
        if stream not in self.streams:
            raise ParameterError(f"unknown stream {stream!r} in workload {self.name!r}")
        from ..streams.model import FrequencyVector

        vector = FrequencyVector.zeros(self.domain_size)
        predicate = self.streams[stream]
        for batch in self.batches:
            if batch.stream != stream:
                continue
            keep = predicate.accepts_bulk(batch.values)
            if keep.any():
                vector.apply_bulk(batch.values[keep], batch.weights[keep])
        self._exact[stream] = vector
        return vector

    def exact_join(self, left: str, right: str) -> float:
        """Exact join size (self-join size when ``left == right``)."""
        if left == right:
            return self.exact_frequencies(left).self_join_size()
        return self.exact_frequencies(left).join_size(self.exact_frequencies(right))

    def fingerprint(self) -> str:
        """SHA-256 over the realized corpus bytes (determinism witness).

        Covers stream names, batch order, and the exact bytes of every
        values/weights array — two instances with equal fingerprints
        produce bit-identical sketches.
        """
        digest = hashlib.sha256()
        digest.update(
            json.dumps(
                {"name": self.name, "family": self.family, "seed": self.seed,
                 "domain_size": self.domain_size},
                sort_keys=True,
            ).encode()
        )
        for batch in self.batches:
            digest.update(batch.stream.encode())
            digest.update(batch.values.tobytes())
            digest.update(batch.weights.tobytes())
        return digest.hexdigest()

    def __repr__(self) -> str:
        return (
            f"WorkloadInstance(name={self.name!r}, family={self.family!r}, "
            f"streams={list(self.streams)}, batches={len(self.batches)}, "
            f"updates={self.total_updates()})"
        )


# -- family registry -----------------------------------------------------------


@dataclass(frozen=True)
class Family:
    """One registered corpus family.

    ``suites`` maps suite name -> params (mirroring ``repro.bench``); a
    family absent from a suite simply does not run there.  ``build``
    realizes the family for concrete ``(params, seed)``.
    """

    name: str
    description: str
    suites: dict[str, dict[str, Any]]
    build: Callable[[dict[str, Any], int], WorkloadInstance]


FAMILIES: dict[str, Family] = {}


def _register(
    name: str, description: str, suites: dict[str, dict[str, Any]]
) -> Callable[
    [Callable[[dict[str, Any], int], WorkloadInstance]],
    Callable[[dict[str, Any], int], WorkloadInstance],
]:
    def decorate(
        fn: Callable[[dict[str, Any], int], WorkloadInstance]
    ) -> Callable[[dict[str, Any], int], WorkloadInstance]:
        FAMILIES[name] = Family(name, description, suites, fn)
        return fn

    return decorate


def family_names() -> list[str]:
    """All registered family names, sorted."""
    return sorted(FAMILIES)


def suite_names() -> list[str]:
    """All suite names any family participates in."""
    names: set[str] = set()
    for family in FAMILIES.values():
        names.update(family.suites)
    return sorted(names)


def build_workload(
    family: str, params: dict[str, Any] | None = None, seed: int = 0
) -> WorkloadInstance:
    """Realize one family with explicit params (default: its smoke params)."""
    spec = FAMILIES.get(family)
    if spec is None:
        raise ParameterError(
            f"unknown workload family {family!r}; known: {family_names()}"
        )
    if params is None:
        params = spec.suites.get("smoke")
        if params is None:
            raise ParameterError(f"family {family!r} has no smoke suite params")
    return spec.build(dict(params), seed)


def workloads_for(suite: str, seed: int = 0) -> Iterator[WorkloadInstance]:
    """Realize every family registered for ``suite`` (sorted by name)."""
    if suite not in suite_names():
        raise ParameterError(
            f"unknown suite {suite!r}; known: {suite_names()}"
        )
    for name in family_names():
        family = FAMILIES[name]
        if suite in family.suites:
            yield family.build(dict(family.suites[suite]), seed)


# -- builders ------------------------------------------------------------------


def _zipf_elements(rng: Any, domain: int, total: int, z: float) -> "np.ndarray":
    """``total`` i.i.d. Zipf(z) element draws over ``[0, domain)``."""
    import numpy as np

    from ..streams.generators import zipf_probabilities

    pmf = zipf_probabilities(domain, z)
    return rng.choice(domain, size=total, p=pmf).astype(np.int64)


def _ones(n: int) -> "np.ndarray":
    import numpy as np

    return np.ones(n, dtype=np.float64)


def _require(params: dict[str, Any], *names: str) -> list[Any]:
    missing = [name for name in names if name not in params]
    if missing:
        raise ParameterError(f"workload params missing {missing}")
    return [params[name] for name in names]


@_register(
    "skew_drift",
    "Zipf exponent sweeps across phases (skew the sketch was sized for "
    "at phase 0 is not the skew it sees at the end)",
    {
        "smoke": {
            "domain": 1 << 10, "phases": 5, "per_phase": 4_000,
            "z_start": 0.4, "z_end": 1.6, "shift": 32,
        },
        "full": {
            "domain": 1 << 14, "phases": 8, "per_phase": 25_000,
            "z_start": 0.2, "z_end": 1.8, "shift": 512,
        },
    },
)
def _build_skew_drift(params: dict[str, Any], seed: int) -> WorkloadInstance:
    import numpy as np

    domain, phases, per_phase, z_start, z_end, shift = _require(
        params, "domain", "phases", "per_phase", "z_start", "z_end", "shift"
    )
    if phases < 1:
        raise ParameterError(f"phases must be >= 1, got {phases}")
    rng = np.random.default_rng(seed)
    batches: list[WorkloadBatch] = []
    for phase in range(phases):
        frac = phase / (phases - 1) if phases > 1 else 0.0
        z = z_start + (z_end - z_start) * frac
        f_values = _zipf_elements(rng, domain, per_phase, z)
        g_values = (_zipf_elements(rng, domain, per_phase, z) + shift) % domain
        batches.append(WorkloadBatch("f", f_values, _ones(per_phase)))
        batches.append(WorkloadBatch("g", g_values.astype(np.int64), _ones(per_phase)))
    return WorkloadInstance(
        name="skew_drift",
        family="skew_drift",
        params=dict(params),
        seed=seed,
        domain_size=domain,
        streams={"f": TruePredicate(), "g": TruePredicate()},
        batches=batches,
        queries=[("f", "g"), ("f", "f"), ("g", "g")],
        description=FAMILIES["skew_drift"].description,
    )


@_register(
    "delete_churn",
    "insert-then-delete waves annihilating most of each wave: tiny net "
    "frequencies under high gross domain pressure (the near-annihilation "
    "stress for linearity and the SKIMDENSE residual contract)",
    {
        "smoke": {
            "domain": 1 << 10, "waves": 6, "per_wave": 3_000,
            "survivors": 60, "z": 1.1,
        },
        "full": {
            "domain": 1 << 14, "waves": 10, "per_wave": 20_000,
            "survivors": 250, "z": 1.1,
        },
    },
)
def _build_delete_churn(params: dict[str, Any], seed: int) -> WorkloadInstance:
    import numpy as np

    domain, waves, per_wave, survivors, z = _require(
        params, "domain", "waves", "per_wave", "survivors", "z"
    )
    if not 0 <= survivors <= per_wave:
        raise ParameterError(
            f"survivors must be in [0, per_wave={per_wave}], got {survivors}"
        )
    rng = np.random.default_rng(seed)
    batches: list[WorkloadBatch] = []
    for _ in range(waves):
        for stream in ("f", "g"):
            values = _zipf_elements(rng, domain, per_wave, z)
            batches.append(WorkloadBatch(stream, values, _ones(per_wave)))
            doomed = np.ones(per_wave, dtype=bool)
            doomed[rng.choice(per_wave, size=survivors, replace=False)] = False
            deleted = values[doomed]
            batches.append(
                WorkloadBatch(stream, deleted, -_ones(int(deleted.size)))
            )
    return WorkloadInstance(
        name="delete_churn",
        family="delete_churn",
        params=dict(params),
        seed=seed,
        domain_size=domain,
        streams={"f": TruePredicate(), "g": TruePredicate()},
        batches=batches,
        queries=[("f", "g"), ("f", "f"), ("g", "g")],
        description=FAMILIES["delete_churn"].description,
    )


@_register(
    "filtered_subset_sum",
    "one element stream fanned into Range/InSet/Modulo-filtered streams "
    "joined pairwise (Ting-style disaggregated subset sums; stresses "
    "predicate pushdown on the bulk ingest path)",
    {
        "smoke": {
            "domain": 1 << 10, "total": 16_000, "chunks": 4, "z": 0.9,
            "range_hi_fraction": 0.5, "modulus": 4, "remainder": 1,
            "inset_step": 3,
        },
        "full": {
            "domain": 1 << 14, "total": 120_000, "chunks": 8, "z": 0.9,
            "range_hi_fraction": 0.5, "modulus": 8, "remainder": 1,
            "inset_step": 5,
        },
    },
)
def _build_filtered_subset_sum(
    params: dict[str, Any], seed: int
) -> WorkloadInstance:
    import numpy as np

    domain, total, chunks, z, hi_fraction, modulus, remainder, inset_step = _require(
        params, "domain", "total", "chunks", "z", "range_hi_fraction",
        "modulus", "remainder", "inset_step",
    )
    if chunks < 1:
        raise ParameterError(f"chunks must be >= 1, got {chunks}")
    if inset_step < 1:
        raise ParameterError(f"inset_step must be >= 1, got {inset_step}")
    rng = np.random.default_rng(seed)
    elements = _zipf_elements(rng, domain, total, z)
    streams: dict[str, Predicate] = {
        "range": RangePredicate(0, max(1, int(domain * hi_fraction))),
        "inset": InSetPredicate(frozenset(range(0, domain, inset_step))),
        "mod": ModuloPredicate(modulus, remainder),
    }
    batches: list[WorkloadBatch] = []
    for chunk in np.array_split(elements, chunks):
        for stream in streams:
            batches.append(
                WorkloadBatch(stream, chunk.astype(np.int64), _ones(int(chunk.size)))
            )
    return WorkloadInstance(
        name="filtered_subset_sum",
        family="filtered_subset_sum",
        params=dict(params),
        seed=seed,
        domain_size=domain,
        streams=streams,
        batches=batches,
        queries=[("range", "mod"), ("inset", "mod"), ("range", "range")],
        description=FAMILIES["filtered_subset_sum"].description,
    )


def _build_join_pair(
    name: str, params: dict[str, Any], seed: int, anti: bool
) -> WorkloadInstance:
    import numpy as np

    domain, total, chunks, z = _require(params, "domain", "total", "chunks", "z")
    if chunks < 1:
        raise ParameterError(f"chunks must be >= 1, got {chunks}")
    rng = np.random.default_rng(seed)
    f_values = _zipf_elements(rng, domain, total, z)
    g_values = _zipf_elements(rng, domain, total, z)
    if anti:
        # Reflect g's ranks: its heavy hitters sit where f's lightest
        # values are, so the join is dominated by the tails (small exact
        # join, variance-dominated estimate) yet never exactly zero.
        g_values = (domain - 1 - g_values).astype(np.int64)
    batches: list[WorkloadBatch] = []
    for f_chunk, g_chunk in zip(
        np.array_split(f_values, chunks), np.array_split(g_values, chunks)
    ):
        batches.append(
            WorkloadBatch("f", f_chunk.astype(np.int64), _ones(int(f_chunk.size)))
        )
        batches.append(
            WorkloadBatch("g", g_chunk.astype(np.int64), _ones(int(g_chunk.size)))
        )
    return WorkloadInstance(
        name=name,
        family=name,
        params=dict(params),
        seed=seed,
        domain_size=domain,
        streams={"f": TruePredicate(), "g": TruePredicate()},
        batches=batches,
        queries=[("f", "g"), ("f", "f"), ("g", "g")],
        description=FAMILIES[name].description,
    )


_JOIN_PAIR_SUITES = {
    "smoke": {"domain": 1 << 10, "total": 16_000, "chunks": 4, "z": 1.0},
    "full": {"domain": 1 << 14, "total": 120_000, "chunks": 8, "z": 1.0},
}


@_register(
    "join_correlated",
    "independent equal-skew draws with aligned heavy hitters: the large-"
    "join best case (estimate dominated by the dense-dense exact term)",
    _JOIN_PAIR_SUITES,
)
def _build_join_correlated(params: dict[str, Any], seed: int) -> WorkloadInstance:
    return _build_join_pair("join_correlated", params, seed, anti=False)


@_register(
    "join_anticorrelated",
    "rank-reflected pair (g ingests domain-1-v): opposed heavy hitters, "
    "small exact join, variance-dominated estimate — the hard case",
    _JOIN_PAIR_SUITES,
)
def _build_join_anticorrelated(
    params: dict[str, Any], seed: int
) -> WorkloadInstance:
    return _build_join_pair("join_anticorrelated", params, seed, anti=True)
