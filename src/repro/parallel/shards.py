"""Sharded parallel ingestion with exact lazy merge.

A sketch is a *linear* projection of the stream's frequency vector, so
splitting a stream across N shard sketches built from the **same schema**
and summing their counters afterwards reproduces the serial sketch
exactly — shard-and-merge parallelism is exact, not approximate (the
property the paper's distributed setting is built on, applied here to
intra-process parallelism).

:class:`ShardedIngestor` owns N shard synopses plus an execution strategy:

* ``"serial"`` — no executor; one shard, plain ``update_bulk`` (the
  parallelism-off reference path, overhead-free by construction);
* ``"thread"`` — a persistent :class:`concurrent.futures.ThreadPoolExecutor`;
  shard updates run concurrently in-process (NumPy kernels release the
  GIL for parts of the work);
* ``"process"`` — one single-worker :class:`concurrent.futures.ProcessPoolExecutor`
  *per shard*, so each shard's batches always land in the same process.
  Workers receive a JSON schema spec once (schema-only construction —
  seeded randomness rebuilds identical hash families), accumulate their
  shard sketch locally, and ship counters back only at flush time.

Batches are partitioned by a deterministic multiplicative hash of the
value, so a given value always lands in the same shard regardless of
batch boundaries, worker count stays the only knob, and merge order is
fixed — with integer (or dyadic-rational) weights the merged counters are
bit-identical to serial ingestion.
"""

from __future__ import annotations

import json
from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import nullcontext
from typing import Any, Protocol, Sequence

import numpy as np

from ..errors import ParameterError
from ..obs import METRICS as _METRICS
from ..sketches.serialize import (
    AnySketch,
    merge_sketch_state,
    sketch_from_spec,
    sketch_spec,
    sketch_state,
)
from ..trace import TRACER as _TRACER

__all__ = ["INGEST_MODES", "ShardedIngestor", "partition_batch"]

#: Execution strategies :class:`ShardedIngestor` supports.
INGEST_MODES = ("serial", "thread", "process")

# Fibonacci-hash multiplier (2**64 / phi): spreads consecutive values
# uniformly across shards while keeping the value -> shard map pure.
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


class _SchemaLike(Protocol):
    """Any sketch schema: all we need is a fresh-synopsis factory."""

    def create_sketch(self) -> AnySketch:
        """A fresh empty synopsis bound to this schema."""
        ...


def partition_batch(
    values: np.ndarray, weights: np.ndarray | None, workers: int
) -> list[tuple[np.ndarray, np.ndarray | None] | None]:
    """Split a batch into per-shard sub-batches by hashing each value.

    Returns one ``(values, weights)`` pair per shard (``None`` for shards
    that receive nothing from this batch).  The map is a pure function of
    the value — independent of batch boundaries and ingestion order — so
    re-chunking a stream never changes which shard accumulates a value.
    """
    if workers < 1:
        raise ParameterError(f"workers must be >= 1, got {workers}")
    if workers == 1:
        return [(values, weights)]
    mixed = (values.astype(np.uint64) * _GOLDEN) >> np.uint64(33)
    shard_ids = (mixed % np.uint64(workers)).astype(np.int64)
    parts: list[tuple[np.ndarray, np.ndarray | None] | None] = []
    for shard in range(workers):
        mask = shard_ids == shard
        count = int(np.count_nonzero(mask))
        if not count:
            parts.append(None)
        elif count == values.size:
            parts.append((values, weights))
        else:
            parts.append(
                (values[mask], None if weights is None else weights[mask])
            )
    return parts


# -- process-mode worker side --------------------------------------------------
#
# These run inside the shard's dedicated worker process.  The accumulated
# shard sketch lives in module state keyed by its schema spec; because
# each ShardedIngestor gives every shard its own single-process executor,
# one key sees every batch of exactly one shard.

_WORKER_SKETCHES: dict[str, AnySketch] = {}

# Per-process ingest vitals the worker's own (disabled, process-local)
# observability singletons would otherwise discard.  Shipped to the
# parent at flush time alongside the sketch state, where the engine
# surfaces them as ``parallel.shard.N.*`` counters (repro.federate's
# answer to the process-local-singleton caveat).
_WORKER_STATS: dict[str, dict[str, float]] = {}


def _worker_ingest(
    spec_json: str, values: np.ndarray, weights: np.ndarray | None
) -> None:
    """Fold one sub-batch into this process's local shard sketch."""
    sketch = _WORKER_SKETCHES.get(spec_json)
    if sketch is None:
        sketch = sketch_from_spec(json.loads(spec_json))
        _WORKER_SKETCHES[spec_json] = sketch  # repro: noqa[R10] -- per-process worker-local accumulator; each key sees exactly one shard's batches
    sketch.update_bulk(values, weights)
    stats = _WORKER_STATS.get(spec_json)
    if stats is None:
        stats = _WORKER_STATS[spec_json] = {"worker.batches": 0.0, "worker.elements": 0.0}  # repro: noqa[R10] -- same per-process worker-local accumulator pattern as the sketch above
    stats["worker.batches"] += 1.0
    stats["worker.elements"] += float(values.size)


def _worker_collect(
    spec_json: str,
) -> tuple[dict[str, Any] | None, dict[str, float]]:
    """Return (and clear) this process's shard counters and ingest stats."""
    sketch = _WORKER_SKETCHES.pop(spec_json, None)  # repro: noqa[R10] -- drains this process's own shard at the flush seam itself
    stats = _WORKER_STATS.pop(spec_json, {})  # repro: noqa[R10] -- drained with the sketch at the same flush seam
    return (None if sketch is None else sketch_state(sketch)), stats


# -- execution strategies ------------------------------------------------------


class _SerialStrategy:
    """No executor: apply each sub-batch inline (the 1-worker fast path)."""

    def ingest(
        self,
        shards: list[AnySketch],
        parts: Sequence[tuple[np.ndarray, np.ndarray | None] | None],
    ) -> None:
        """Apply each shard's sub-batch directly."""
        for shard, part in zip(shards, parts):
            if part is not None:
                shard.update_bulk(part[0], part[1])

    def flush(self, shards: list[AnySketch]) -> list[AnySketch]:
        """Nothing pending: shards are always current."""
        return shards

    def drain_worker_telemetry(self) -> list[tuple[int, dict[str, float]]]:
        """Inline ingestion records into the parent's own singletons —
        there is no foreign-process state to surface."""
        return []

    def close(self) -> None:
        """Nothing to shut down."""


class _ThreadStrategy:
    """Persistent thread pool; shard updates run concurrently in-process."""

    def __init__(self, workers: int) -> None:
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-shard"
        )

    def ingest(
        self,
        shards: list[AnySketch],
        parts: Sequence[tuple[np.ndarray, np.ndarray | None] | None],
    ) -> None:
        """Submit one update task per non-empty shard and wait for all."""
        futures = [
            self._executor.submit(shards[i].update_bulk, part[0], part[1])
            for i, part in enumerate(parts)
            if part is not None
        ]
        _collect_results(futures)

    def flush(self, shards: list[AnySketch]) -> list[AnySketch]:
        """Every batch was awaited at ingest time: shards are current."""
        return shards

    def drain_worker_telemetry(self) -> list[tuple[int, dict[str, float]]]:
        """Threads share the parent's singletons — nothing to surface."""
        return []

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        self._executor.shutdown(wait=True)


class _ProcessStrategy:
    """One single-worker process pool per shard (shard/process affinity).

    The parent's shard sketches stay empty until :meth:`flush`, which
    collects each worker's accumulated counters and merges them in.
    """

    def __init__(self, workers: int, spec_json: str) -> None:
        self._spec_json = spec_json
        self._executors: list[Executor | None] = [None] * workers
        # shard -> ingest stats collected from the shard's worker process
        # at flush time, held until the engine drains them.
        self._pending_stats: dict[int, dict[str, float]] = {}

    def _executor_for(self, shard: int) -> Executor:
        executor = self._executors[shard]
        if executor is None:
            executor = ProcessPoolExecutor(max_workers=1)
            self._executors[shard] = executor
        return executor

    def ingest(
        self,
        shards: list[AnySketch],
        parts: Sequence[tuple[np.ndarray, np.ndarray | None] | None],
    ) -> None:
        """Ship each shard's sub-batch to its dedicated worker process."""
        futures = [
            self._executor_for(i).submit(
                _worker_ingest, self._spec_json, part[0], part[1]
            )
            for i, part in enumerate(parts)
            if part is not None
        ]
        _collect_results(futures)

    def flush(self, shards: list[AnySketch]) -> list[AnySketch]:
        """Pull accumulated counters out of every live worker and merge.

        Each worker also returns its ingest stats; they accumulate in
        ``_pending_stats`` until :meth:`drain_worker_telemetry` hands
        them to the engine (flush can run several times between drains).
        """
        current = list(shards)
        for i, executor in enumerate(self._executors):
            if executor is None:
                continue
            state, stats = executor.submit(_worker_collect, self._spec_json).result()
            if state is not None:
                current[i] = merge_sketch_state(current[i], state)
            if stats:
                held = self._pending_stats.setdefault(i, {})
                for key, value in stats.items():
                    held[key] = held.get(key, 0.0) + value
        return current

    def drain_worker_telemetry(self) -> list[tuple[int, dict[str, float]]]:
        """Hand over (and clear) per-shard worker stats gathered at flush."""
        drained = sorted(self._pending_stats.items())
        self._pending_stats = {}
        return drained

    def close(self) -> None:
        """Shut every per-shard pool down (idempotent)."""
        for executor in self._executors:
            if executor is not None:
                executor.shutdown(wait=True)
        self._executors = [None] * len(self._executors)


def _collect_results(futures: list["Future[None]"]) -> None:
    """Wait for every task; re-raise the first failure after all settle."""
    first_error: BaseException | None = None
    for future in futures:
        try:
            future.result()
        except BaseException as error:  # propagate DomainError etc. faithfully
            if first_error is None:
                first_error = error
    if first_error is not None:
        raise first_error


# -- the ingestor --------------------------------------------------------------


class ShardedIngestor:
    """Partition batches across N shard synopses; merge exactly on demand.

    Parameters
    ----------
    schema:
        Any sketch schema (hash / dyadic / AGMS / skimmed); every shard is
        ``schema.create_sketch()``, so shards — and therefore the merge —
        share one set of hash/sign families.
    workers:
        Number of shards (= executor parallelism).  ``workers=1`` always
        uses the serial no-executor path regardless of ``mode``.
    mode:
        ``"serial"`` | ``"thread"`` | ``"process"`` — see the module
        docstring for the trade-offs.

    The merged synopsis is computed lazily (:meth:`merged`) and cached
    behind a dirty flag, so interleaving ingestion and queries only pays
    the counter sum when new data actually arrived.
    """

    def __init__(
        self, schema: _SchemaLike, workers: int = 1, mode: str = "thread"
    ) -> None:
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        if mode not in INGEST_MODES:
            raise ParameterError(
                f"mode must be one of {INGEST_MODES}, got {mode!r}"
            )
        self._schema = schema
        self._workers = workers
        self._mode = mode
        self._shards: list[AnySketch] = [
            schema.create_sketch() for _ in range(workers)
        ]
        self._strategy = self._make_strategy()
        self._merged: AnySketch | None = None
        self._dirty = False
        self._batches = 0
        self._elements = 0

    def _make_strategy(self) -> "_SerialStrategy | _ThreadStrategy | _ProcessStrategy":
        if self._workers == 1 or self._mode == "serial":
            return _SerialStrategy()
        if self._mode == "thread":
            return _ThreadStrategy(self._workers)
        spec_json = json.dumps(sketch_spec(self._shards[0]), sort_keys=True)
        return _ProcessStrategy(self._workers, spec_json)

    @property
    def workers(self) -> int:
        """Number of shard synopses (= maximum ingest parallelism)."""
        return self._workers

    @property
    def mode(self) -> str:
        """The execution strategy name this ingestor runs."""
        return self._mode

    @property
    def batches_ingested(self) -> int:
        """Number of non-empty batches accepted so far."""
        return self._batches

    @property
    def elements_ingested(self) -> int:
        """Total elements accepted so far."""
        return self._elements

    def ingest(
        self, values: np.ndarray, weights: np.ndarray | None = None
    ) -> None:
        """Partition one batch across the shards and apply it.

        Synchronous: returns once every shard has folded its sub-batch in
        (worker-side for ``"process"`` mode).  Weight validation follows
        ``update_bulk``; a bad value aborts the offending shard's whole
        sub-batch.
        """
        values = np.asarray(values, dtype=np.int64)
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != values.shape:
                raise ParameterError("weights must have the same shape as values")
        if values.size == 0:
            return
        parts = partition_batch(values, weights, self._workers)
        with _TRACER.span(
            "parallel.ingest",
            elements=int(values.size),
            workers=self._workers,
            mode=self._mode,
        ) if _TRACER.enabled else nullcontext():
            self._strategy.ingest(self._shards, parts)
        self._dirty = True
        self._merged = None
        self._batches += 1
        self._elements += int(values.size)
        if _METRICS.enabled:
            _METRICS.count("parallel.batches")
            _METRICS.count("parallel.elements", int(values.size))
            _METRICS.gauge("parallel.shards", float(self._workers))
            for shard, part in enumerate(parts):
                depth = 0 if part is None else int(part[0].size)
                _METRICS.gauge(f"parallel.shard.{shard}.queue_depth", float(depth))

    def merged(self) -> AnySketch:
        """The exact merged synopsis of everything ingested so far.

        Lazy and cached: the counter sum (and, in ``"process"`` mode, the
        worker collect) only happens when new batches arrived since the
        last call.  With ``workers=1`` this is the live shard itself —
        zero merge cost, the parallelism-off reference path.
        """
        if self._merged is not None and not self._dirty:
            return self._merged
        with _METRICS.timer(
            "parallel.merge.seconds"
        ) if _METRICS.enabled else nullcontext():
            with _TRACER.span(
                "parallel.merge", workers=self._workers, mode=self._mode
            ) if _TRACER.enabled else nullcontext():
                self._shards = self._strategy.flush(self._shards)
                merged = self._shards[0]
                for shard in self._shards[1:]:
                    merged = merged.merged_with(shard)
        if _METRICS.enabled:
            _METRICS.count("parallel.merges")
        self._merged = merged
        self._dirty = False
        return merged

    def drain_worker_telemetry(self) -> list[tuple[int, dict[str, float]]]:
        """Per-shard ingest stats collected from worker processes.

        Non-empty only in ``"process"`` mode after a flush (``merged()``
        / ``reset()`` / ``close()``): each entry is ``(shard_index,
        {"worker.batches": ..., "worker.elements": ...})`` — the vitals
        the worker's process-local singletons couldn't publish.  Draining
        clears the pending stats, so each call reports new activity only.
        """
        return self._strategy.drain_worker_telemetry()

    def reset(self) -> None:
        """Drop all accumulated state (fresh shards, empty workers)."""
        self._shards = self._strategy.flush(self._shards)  # drain workers
        self._shards = [self._schema.create_sketch() for _ in range(self._workers)]
        self._merged = None
        self._dirty = False
        self._batches = 0
        self._elements = 0

    def close(self) -> None:
        """Shut down executor resources (idempotent).

        Pending worker-side state is folded into the parent-side shards
        first, so :meth:`merged` keeps working after close; further
        :meth:`ingest` calls on executor-backed modes are an error.
        """
        self._shards = self._strategy.flush(self._shards)
        self._strategy.close()

    def __enter__(self) -> "ShardedIngestor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardedIngestor(workers={self._workers}, mode={self._mode!r}, "
            f"batches={self._batches}, elements={self._elements})"
        )
