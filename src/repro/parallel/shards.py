"""Sharded parallel ingestion with exact lazy merge.

A sketch is a *linear* projection of the stream's frequency vector, so
splitting a stream across N shard sketches built from the **same schema**
and summing their counters afterwards reproduces the serial sketch
exactly — shard-and-merge parallelism is exact, not approximate (the
property the paper's distributed setting is built on, applied here to
intra-process parallelism).

:class:`ShardedIngestor` owns N shard synopses plus an execution strategy:

* ``"serial"`` — no executor; apply each sub-batch inline (the
  parallelism-off reference path, overhead-free by construction);
* ``"thread"`` — a persistent :class:`concurrent.futures.ThreadPoolExecutor`;
  shard updates run concurrently in-process (NumPy kernels release the
  GIL for parts of the work);
* ``"process"`` — one persistent worker process per shard, fed by a
  bounded queue (:class:`~repro.parallel.pool.PersistentWorkerPool`).
  Workers receive a JSON schema spec once (schema-only construction —
  seeded randomness rebuilds identical hash families), accumulate their
  shard sketch locally, and ship counters back as serialised state at
  flush time;
* ``"shm"`` — the same persistent pool, but each worker scatter-adds
  into a per-shard ``multiprocessing.shared_memory`` segment the parent
  has mapped too, so flush ships no counter state at all (zero-copy
  merge; see :mod:`repro.parallel.shm`).

``"serial"`` and ``"thread"`` ingest synchronously; the process-backed
modes pipeline batches through bounded queues and surface worker
failures at the next flush/merge barrier.

Batches are partitioned by a deterministic multiplicative hash of the
value, so a given value always lands in the same shard regardless of
batch boundaries, worker count stays the only knob, and merge order is
fixed — with integer (or dyadic-rational) weights the merged counters are
bit-identical to serial ingestion.
"""

from __future__ import annotations

import json
import traceback
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import nullcontext
from typing import Any, Protocol, Sequence

import numpy as np

from ..errors import ParameterError
from ..obs import METRICS as _METRICS
from ..sketches.serialize import (
    AnySketch,
    merge_sketch_state,
    sketch_from_spec,
    sketch_spec,
    sketch_state,
)
from ..trace import TRACER as _TRACER
from .pool import PersistentWorkerPool

__all__ = ["INGEST_MODES", "ShardedIngestor", "partition_batch"]

#: Execution strategies :class:`ShardedIngestor` supports.
INGEST_MODES = ("serial", "thread", "process", "shm")

# Fibonacci-hash multiplier (2**64 / phi): spreads consecutive values
# uniformly across shards while keeping the value -> shard map pure.
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


class _SchemaLike(Protocol):
    """Any sketch schema: all we need is a fresh-synopsis factory."""

    def create_sketch(self) -> AnySketch:
        """A fresh empty synopsis bound to this schema."""
        ...


def partition_batch(
    values: np.ndarray, weights: np.ndarray | None, workers: int
) -> list[tuple[np.ndarray, np.ndarray | None] | None]:
    """Split a batch into per-shard sub-batches by hashing each value.

    Returns one ``(values, weights)`` pair per shard (``None`` for shards
    that receive nothing from this batch).  The map is a pure function of
    the value — independent of batch boundaries and ingestion order — so
    re-chunking a stream never changes which shard accumulates a value.
    """
    if workers < 1:
        raise ParameterError(f"workers must be >= 1, got {workers}")
    if workers == 1:
        return [(values, weights)]
    mixed = (values.astype(np.uint64) * _GOLDEN) >> np.uint64(33)
    shard_ids = (mixed % np.uint64(workers)).astype(np.int64)
    parts: list[tuple[np.ndarray, np.ndarray | None] | None] = []
    for shard in range(workers):
        mask = shard_ids == shard
        count = int(np.count_nonzero(mask))
        if not count:
            parts.append(None)
        elif count == values.size:
            parts.append((values, weights))
        else:
            parts.append(
                (values[mask], None if weights is None else weights[mask])
            )
    return parts


# -- process-mode worker side --------------------------------------------------
#
# Runs inside the shard's persistent worker process.  All state lives in
# locals of the worker loop — no module-level accumulators — and the
# pool's shard <-> worker affinity guarantees one loop sees every batch
# of exactly one shard.  Per-process ingest vitals (the counters the
# worker's own disabled, process-local observability singletons would
# discard) ride the collect reply and resurface in the parent as
# ``parallel.shard.N.*`` metrics (repro.federate's answer to the
# process-local-singleton caveat).


def _worker_main_json(tasks, replies, config: dict) -> None:
    """Persistent ``"process"``-mode worker: accumulate one shard locally.

    Messages: ``("batch", values, weights)`` fire-and-forget;
    ``("collect",)`` replies ``(sketch_state | None, stats)`` and clears
    the local accumulator; ``("reset",)`` just clears; ``("stop",)``
    exits.  A failed batch parks its traceback and reports it at the
    next barrier (the pool's pipelined error model).
    """
    spec = json.loads(config["spec_json"])
    sketch: AnySketch | None = None
    stats = {"worker.batches": 0.0, "worker.elements": 0.0}
    failure: str | None = None
    while True:
        message = tasks.get()
        kind = message[0]
        if kind == "stop":
            replies.put(("ok", None))
            return
        if kind == "batch":
            if failure is not None:
                continue  # park until the next barrier reports it
            try:
                if sketch is None:
                    sketch = sketch_from_spec(spec)
                sketch.update_bulk(message[1], message[2])
                stats["worker.batches"] += 1.0
                stats["worker.elements"] += float(message[1].size)
            except Exception:
                failure = traceback.format_exc()
            continue
        # Barrier messages below always get exactly one reply.
        if failure is not None:
            replies.put(("error", failure))
            failure = None
            continue
        if kind == "collect":
            state = None if sketch is None else sketch_state(sketch)
            replies.put(("ok", (state, stats)))
            sketch = None
            stats = {"worker.batches": 0.0, "worker.elements": 0.0}
        elif kind == "reset":
            sketch = None
            stats = {"worker.batches": 0.0, "worker.elements": 0.0}
            replies.put(("ok", None))
        else:
            replies.put(("error", f"unknown message kind {kind!r}"))


# -- execution strategies ------------------------------------------------------


class _SerialStrategy:
    """No executor: apply each sub-batch inline (the 1-worker fast path)."""

    def ingest(
        self,
        shards: list[AnySketch],
        parts: Sequence[tuple[np.ndarray, np.ndarray | None] | None],
    ) -> None:
        """Apply each shard's sub-batch directly."""
        for shard, part in zip(shards, parts):
            if part is not None:
                shard.update_bulk(part[0], part[1])

    def flush(self, shards: list[AnySketch]) -> list[AnySketch]:
        """Nothing pending: shards are always current."""
        return shards

    def reset(self, schema: "_SchemaLike", shards: list[AnySketch]) -> list[AnySketch]:
        """Fresh shards; there is no worker-side state to discard."""
        return [schema.create_sketch() for _ in shards]

    def drain_worker_telemetry(self) -> list[tuple[int, dict[str, float]]]:
        """Inline ingestion records into the parent's own singletons —
        there is no foreign-process state to surface."""
        return []

    def close(self, shards: list[AnySketch]) -> list[AnySketch]:
        """Nothing to shut down."""
        return shards


class _ThreadStrategy:
    """Persistent thread pool; shard updates run concurrently in-process."""

    def __init__(self, workers: int) -> None:
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-shard"
        )

    def ingest(
        self,
        shards: list[AnySketch],
        parts: Sequence[tuple[np.ndarray, np.ndarray | None] | None],
    ) -> None:
        """Submit one update task per non-empty shard and wait for all."""
        futures = [
            self._executor.submit(shards[i].update_bulk, part[0], part[1])
            for i, part in enumerate(parts)
            if part is not None
        ]
        _collect_results(futures)

    def flush(self, shards: list[AnySketch]) -> list[AnySketch]:
        """Every batch was awaited at ingest time: shards are current."""
        return shards

    def reset(self, schema: "_SchemaLike", shards: list[AnySketch]) -> list[AnySketch]:
        """Fresh shards; threads hold no state between batches."""
        return [schema.create_sketch() for _ in shards]

    def drain_worker_telemetry(self) -> list[tuple[int, dict[str, float]]]:
        """Threads share the parent's singletons — nothing to surface."""
        return []

    def close(self, shards: list[AnySketch]) -> list[AnySketch]:
        """Shut the pool down (idempotent)."""
        self._executor.shutdown(wait=True)
        return shards


class _ProcessStrategy:
    """One shared persistent pool; worker ``i`` accumulates shard ``i``.

    The parent's shard sketches stay empty until :meth:`flush`, which
    collects each worker's accumulated counters (as serialised state —
    the JSON channel the shm strategy eliminates) and merges them in.
    Kept as the portable fallback where ``/dev/shm`` segments are
    unavailable or domains make the dense accumulator unattractive.
    """

    def __init__(self, workers: int, spec_json: str) -> None:
        self._pool = PersistentWorkerPool(
            workers, _worker_main_json, [{"spec_json": spec_json}] * workers
        )
        # shard -> ingest stats collected from the shard's worker process
        # at flush time, held until the engine drains them.
        self._pending_stats: dict[int, dict[str, float]] = {}
        self._strategy_closed = False

    def ingest(
        self,
        shards: list[AnySketch],
        parts: Sequence[tuple[np.ndarray, np.ndarray | None] | None],
    ) -> None:
        """Enqueue each shard's sub-batch on its worker (pipelined).

        Returns as soon as every sub-batch is queued; worker failures
        surface at the next flush barrier.
        """
        for worker, part in enumerate(parts):
            if part is not None:
                self._pool.submit(worker, ("batch", part[0], part[1]))

    def flush(self, shards: list[AnySketch]) -> list[AnySketch]:
        """Pull accumulated counters out of every worker and merge.

        Each worker also returns its ingest stats; they accumulate in
        ``_pending_stats`` until :meth:`drain_worker_telemetry` hands
        them to the engine (flush can run several times between drains).
        """
        if self._strategy_closed:
            return shards
        current = list(shards)
        for i, (state, stats) in enumerate(self._pool.barrier(("collect",))):
            if state is not None:
                current[i] = merge_sketch_state(current[i], state)
            if stats["worker.batches"]:
                held = self._pending_stats.setdefault(i, {})
                for key, value in stats.items():
                    held[key] = held.get(key, 0.0) + value
        return current

    def reset(self, schema: "_SchemaLike", shards: list[AnySketch]) -> list[AnySketch]:
        """Discard worker-side accumulators and hand back fresh shards."""
        if not self._strategy_closed:
            self._pool.barrier(("reset",))
        return [schema.create_sketch() for _ in shards]

    def drain_worker_telemetry(self) -> list[tuple[int, dict[str, float]]]:
        """Hand over (and clear) per-shard worker stats gathered at flush."""
        drained = sorted(self._pending_stats.items())
        self._pending_stats = {}
        return drained

    def close(self, shards: list[AnySketch]) -> list[AnySketch]:
        """Stop the pooled workers (idempotent)."""
        if not self._strategy_closed:
            self._strategy_closed = True
            self._pool.close()
        return shards


def _collect_results(futures: list["Future[None]"]) -> None:
    """Wait for every task; re-raise the first failure after all settle."""
    first_error: BaseException | None = None
    for future in futures:
        try:
            future.result()
        except BaseException as error:  # propagate DomainError etc. faithfully
            if first_error is None:
                first_error = error
    if first_error is not None:
        raise first_error


# -- the ingestor --------------------------------------------------------------


class ShardedIngestor:
    """Partition batches across N shard synopses; merge exactly on demand.

    Parameters
    ----------
    schema:
        Any sketch schema (hash / dyadic / AGMS / skimmed); every shard is
        ``schema.create_sketch()``, so shards — and therefore the merge —
        share one set of hash/sign families.
    workers:
        Number of shards (= executor parallelism).  ``workers=1`` always
        uses the serial no-executor path regardless of ``mode``.
    mode:
        ``"serial"`` | ``"thread"`` | ``"process"`` | ``"shm"`` — see
        the module docstring for the trade-offs.

    The merged synopsis is computed lazily (:meth:`merged`) and cached
    behind a dirty flag, so interleaving ingestion and queries only pays
    the counter sum when new data actually arrived.
    """

    def __init__(
        self, schema: _SchemaLike, workers: int = 1, mode: str = "thread"
    ) -> None:
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        if mode not in INGEST_MODES:
            raise ParameterError(
                f"mode must be one of {INGEST_MODES}, got {mode!r}"
            )
        self._schema = schema
        self._workers = workers
        self._mode = mode
        self._shards: list[AnySketch] = [
            schema.create_sketch() for _ in range(workers)
        ]
        self._strategy = self._make_strategy()
        self._merged: AnySketch | None = None
        self._dirty = False
        self._closed = False
        self._batches = 0
        self._elements = 0

    def _make_strategy(self) -> Any:
        if self._workers == 1 or self._mode == "serial":
            return _SerialStrategy()
        if self._mode == "thread":
            return _ThreadStrategy(self._workers)
        spec_json = json.dumps(sketch_spec(self._shards[0]), sort_keys=True)
        if self._mode == "shm":
            from .shm import _SharedMemoryStrategy

            return _SharedMemoryStrategy(self._workers, self._shards, spec_json)
        return _ProcessStrategy(self._workers, spec_json)

    @property
    def workers(self) -> int:
        """Number of shard synopses (= maximum ingest parallelism)."""
        return self._workers

    @property
    def mode(self) -> str:
        """The execution strategy name this ingestor runs."""
        return self._mode

    @property
    def batches_ingested(self) -> int:
        """Number of non-empty batches accepted so far."""
        return self._batches

    @property
    def elements_ingested(self) -> int:
        """Total elements accepted so far."""
        return self._elements

    def ingest(
        self, values: np.ndarray, weights: np.ndarray | None = None
    ) -> None:
        """Partition one batch across the shards and apply it.

        ``"serial"``/``"thread"`` apply sub-batches synchronously; the
        process-backed modes pipeline them through bounded queues, so a
        bad value aborts the offending shard's whole sub-batch at the
        next flush/merge barrier rather than here.  Weight validation
        follows ``update_bulk``.
        """
        if self._closed:
            raise RuntimeError("ShardedIngestor is closed")
        values = np.asarray(values, dtype=np.int64)
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != values.shape:
                raise ParameterError("weights must have the same shape as values")
        if values.size == 0:
            return
        parts = partition_batch(values, weights, self._workers)
        with _TRACER.span(
            "parallel.ingest",
            elements=int(values.size),
            workers=self._workers,
            mode=self._mode,
        ) if _TRACER.enabled else nullcontext():
            self._strategy.ingest(self._shards, parts)
        self._dirty = True
        self._merged = None
        self._batches += 1
        self._elements += int(values.size)
        if _METRICS.enabled:
            _METRICS.count("parallel.batches")
            _METRICS.count("parallel.elements", int(values.size))
            _METRICS.gauge("parallel.shards", float(self._workers))
            for shard, part in enumerate(parts):
                depth = 0 if part is None else int(part[0].size)
                _METRICS.gauge(f"parallel.shard.{shard}.queue_depth", float(depth))

    def merged(self) -> AnySketch:
        """The exact merged synopsis of everything ingested so far.

        Lazy and cached: the counter sum (and, in ``"process"`` mode, the
        worker collect) only happens when new batches arrived since the
        last call.  With ``workers=1`` this is the live shard itself —
        zero merge cost, the parallelism-off reference path.
        """
        if self._merged is not None and not self._dirty:
            return self._merged
        with _METRICS.timer(
            "parallel.merge.seconds"
        ) if _METRICS.enabled else nullcontext():
            with _TRACER.span(
                "parallel.merge", workers=self._workers, mode=self._mode
            ) if _TRACER.enabled else nullcontext():
                self._shards = self._strategy.flush(self._shards)
                merged = self._shards[0]
                for shard in self._shards[1:]:
                    merged = merged.merged_with(shard)
        if _METRICS.enabled:
            _METRICS.count("parallel.merges")
        self._merged = merged
        self._dirty = False
        return merged

    def drain_worker_telemetry(self) -> list[tuple[int, dict[str, float]]]:
        """Per-shard ingest stats collected from worker processes.

        Non-empty only in the process-backed modes (``"process"`` /
        ``"shm"``) after a flush (``merged()`` / ``reset()`` /
        ``close()``): each entry is ``(shard_index, {"worker.batches":
        ..., "worker.elements": ...})`` — the vitals the worker's
        process-local singletons couldn't publish.  Draining clears the
        pending stats, so each call reports new activity only.
        """
        return self._strategy.drain_worker_telemetry()

    def reset(self) -> None:
        """Drop all accumulated state (fresh shards, empty workers)."""
        self._shards = self._strategy.reset(self._schema, self._shards)
        self._merged = None
        self._dirty = False
        self._batches = 0
        self._elements = 0

    def close(self) -> None:
        """Shut down executor resources (idempotent, exception-safe).

        Pending worker-side state is folded into the parent-side shards
        first, so :meth:`merged` keeps working after close — even if the
        flush itself fails, the strategy is still torn down (workers
        stopped, shared-memory segments unlinked).  Further
        :meth:`ingest` calls are an error.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._shards = self._strategy.flush(self._shards)
        finally:
            self._shards = self._strategy.close(self._shards)

    def __enter__(self) -> "ShardedIngestor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardedIngestor(workers={self._workers}, mode={self._mode!r}, "
            f"batches={self._batches}, elements={self._elements})"
        )
