"""Shared-memory shard segments with zero-copy flush (the ``"shm"`` mode).

One ``multiprocessing.shared_memory`` segment per shard holds the shard
sketch's float64 counter blocks back to back — a single ``depth x
width`` block for a hash or AGMS sketch, one block per level for a
dyadic hierarchy (the skimmed wrapper delegates to whichever it wraps).
The parent *and* the shard's persistent worker process attach numpy
views over the same segment through the ``counters_view()`` /
``attach_counters()`` seam, so worker scatter-adds land directly in
memory the parent's ``merged()`` sums — a flush ships only a few floats
of tracked mass plus the worker's ingest vitals over the reply queue,
never counter state (contrast ``"process"`` mode's JSON round-trip).

Throughput model (why this wins even on a single core): each worker
owns its value partition exclusively, so it accumulates the shard's
*net* frequency vector in a dense domain-sized accumulator — one
``bincount`` per batch, O(n + domain) — and defers all hashing to the
flush barrier, where the accumulated prefix is applied through
``update_coalesced`` once.  Above the batch-size threshold documented
in docs/PERFORMANCE.md that is strictly less arithmetic than serial
per-batch ingest.  Domains larger than :data:`DENSE_DOMAIN_BUDGET`
fall back to per-batch ``update_bulk`` into the attached counters
(zero-copy at flush either way).  With integer weights every
intermediate sum is exact in float64, so both paths are bit-identical
to serial ingestion.

Lifecycle: segments are named ``repro_shm_*`` and unlinked exactly once
by the creating process — on ``close()``, or by a ``weakref.finalize``
hook (which doubles as an atexit handler, so crashed runs leak no
``/dev/shm`` entries).  ``close()`` is idempotent and first detaches
the parent's shard sketches into private arrays, so ``merged()`` keeps
working after the segments are gone.
"""

from __future__ import annotations

import json
import os
import traceback
import uuid
import weakref
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import DomainError
from .pool import PersistentWorkerPool

if TYPE_CHECKING:
    from ..sketches.serialize import AnySketch

__all__ = [
    "DENSE_DOMAIN_BUDGET",
    "SEGMENT_PREFIX",
    "active_segment_names",
]

#: Prefix of every segment this module creates (leak tests key off it).
SEGMENT_PREFIX = "repro_shm_"

#: Largest domain (in values) a worker accumulates densely: 1M float64
#: entries = 8 MiB per worker.  Beyond it, batches are applied per-batch
#: through ``update_bulk`` instead of deferred to flush.
DENSE_DOMAIN_BUDGET = 1 << 20

_FRESH_STATS = {"worker.batches": 0.0, "worker.elements": 0.0}


def active_segment_names() -> list[str]:
    """Live ``repro_shm_*`` segment names on this host (test helper)."""
    root = "/dev/shm"
    if not os.path.isdir(root):  # pragma: no cover - non-tmpfs platforms
        return []
    return sorted(
        name for name in os.listdir(root) if name.startswith(SEGMENT_PREFIX)
    )


# -- segment layout ------------------------------------------------------------


def _segment_layout(sketch: "AnySketch") -> list[tuple[int, ...]]:
    """Block shapes of one shard segment, derived from the sketch schema."""
    return [tuple(block.shape) for block in sketch.counters_view()]


def _layout_bytes(layout: list[tuple[int, ...]]) -> int:
    total = 0
    for shape in layout:
        entries = 1
        for dim in shape:
            entries *= dim
        total += entries * np.dtype(np.float64).itemsize
    return max(1, total)


def _attach_blocks(
    segment: shared_memory.SharedMemory, layout: list[tuple[int, ...]]
) -> list[np.ndarray]:
    """Float64 views over ``segment`` for each counter block, in order."""
    blocks: list[np.ndarray] = []
    offset = 0
    for shape in layout:
        block = np.ndarray(
            shape, dtype=np.float64, buffer=segment.buf, offset=offset
        )
        offset += block.nbytes
        blocks.append(block)
    return blocks


def _create_segment(nbytes: int) -> shared_memory.SharedMemory:
    for _ in range(16):
        name = f"{SEGMENT_PREFIX}{uuid.uuid4().hex[:16]}"
        try:
            return shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        except FileExistsError:  # pragma: no cover - 64-bit collision
            continue
    raise RuntimeError(  # pragma: no cover
        "could not allocate a uniquely-named shared-memory segment"
    )


def _unlink_all(segments: Sequence[shared_memory.SharedMemory]) -> None:
    """Close and unlink every segment; tolerant of double-release."""
    for segment in segments:
        try:
            segment.close()
        except Exception:  # pragma: no cover - buffer already released
            pass
        try:
            segment.unlink()
        except Exception:  # already unlinked (double close / racing atexit)
            pass


def _release(
    segments: Sequence[shared_memory.SharedMemory], pool: PersistentWorkerPool
) -> None:
    """Crash-safe cleanup: kill workers, then unlink every segment.

    Registered through ``weakref.finalize`` (which also runs at
    interpreter exit), so it is idempotent and never raises.
    """
    pool.terminate()
    _unlink_all(segments)


# -- worker side ---------------------------------------------------------------
#
# Runs inside the shard's persistent worker process.  All state is local
# to the worker function: the attached sketch writes this shard's own
# segment and nothing else (rule R10 guards the discipline).


def _worker_main_shm(tasks, replies, config: dict) -> None:
    """One shard's persistent shm worker: attach, accumulate, flush.

    Messages: ``("batch", values, weights)`` fire-and-forget;
    ``("flush",)`` drains the dense accumulator into the shared counters
    and replies ``(tracked_masses, stats)``; ``("reset",)`` zeroes
    everything; ``("stop",)`` exits.  A failed batch parks its traceback
    and reports it at the next barrier.
    """
    from ..sketches.serialize import sketch_from_spec

    segment = shared_memory.SharedMemory(name=config["segment"])
    try:
        sketch = sketch_from_spec(json.loads(config["spec_json"]))
        sketch.attach_counters(_attach_blocks(segment, config["layout"]))
        domain = int(config["domain_size"])
        dense = (
            np.zeros(domain, dtype=np.float64)
            if domain <= config["dense_budget"]
            else None
        )
        pending_mass = 0.0
        stats = dict(_FRESH_STATS)
        failure: str | None = None
        while True:
            message = tasks.get()
            kind = message[0]
            if kind == "stop":
                replies.put(("ok", None))
                return
            if kind == "batch":
                if failure is not None:
                    continue  # park until the next barrier reports it
                try:
                    values, weights = message[1], message[2]
                    if dense is None:
                        sketch.update_bulk(values, weights)
                    else:
                        low, high = int(values.min()), int(values.max())
                        if low < 0 or high >= domain:
                            raise DomainError(
                                f"value {low if low < 0 else high} outside "
                                f"domain [0, {domain})"
                            )
                        dense += np.bincount(
                            values, weights=weights, minlength=domain
                        )
                        pending_mass += (
                            float(values.size) if weights is None
                            else float(np.abs(weights).sum())
                        )
                    stats["worker.batches"] += 1.0
                    stats["worker.elements"] += float(values.size)
                except Exception:
                    failure = traceback.format_exc()
                continue
            # Barrier messages below always get exactly one reply.
            if failure is not None:
                replies.put(("error", failure))
                failure = None
                continue
            try:
                if kind == "flush":
                    if dense is not None:
                        pending_mass = _drain_dense(sketch, dense, pending_mass)
                    replies.put(("ok", (sketch.tracked_masses(), stats)))
                    stats = dict(_FRESH_STATS)
                elif kind == "reset":
                    if dense is not None:
                        dense[:] = 0.0
                        pending_mass = 0.0
                    for block in sketch.counters_view():
                        block[:] = 0.0
                    sketch.set_tracked_masses(
                        [0.0] * len(sketch.tracked_masses())
                    )
                    stats = dict(_FRESH_STATS)
                    replies.put(("ok", None))
                else:
                    replies.put(("error", f"unknown message kind {kind!r}"))
            except Exception:
                replies.put(("error", traceback.format_exc()))
    finally:
        # Bound-method call: keeps the name `close` out of the worker-plane
        # call closure (R10 resolves attribute calls by name; detaching the
        # segment is worker-local, not a coordinator shutdown).
        detach_segment = segment.close
        detach_segment()


def _drain_dense(
    sketch: "AnySketch", dense: np.ndarray, pending_mass: float
) -> float:
    """Apply the accumulated net frequencies through the linear algebra."""
    nonzero = np.nonzero(dense)[0]
    if nonzero.size:
        sketch.update_coalesced(nonzero, dense[nonzero], pending_mass)
    elif pending_mass:
        # Fully-cancelled accumulator: the observed mass still counts
        # toward the tracked stream size N.
        sketch.set_tracked_masses(
            [mass + pending_mass for mass in sketch.tracked_masses()]
        )
    dense[:] = 0.0
    return 0.0


# -- the strategy --------------------------------------------------------------


class _SharedMemoryStrategy:
    """Per-shard shm segments + persistent workers; flush is a barrier.

    The parent's shard sketches are attached to the same segments the
    workers write, so :meth:`flush` only synchronises (barrier + tracked
    masses + worker stats) and the subsequent counter sum in
    ``ShardedIngestor.merged()`` reads worker memory directly.
    """

    def __init__(
        self, workers: int, shards: list["AnySketch"], spec_json: str
    ) -> None:
        layout = _segment_layout(shards[0])
        nbytes = _layout_bytes(layout)
        segments = [_create_segment(nbytes) for _ in range(workers)]
        try:
            for shard, segment in zip(shards, segments):
                shard.attach_counters(_attach_blocks(segment, layout))
            configs = [
                {
                    "segment": segment.name,
                    "layout": layout,
                    "spec_json": spec_json,
                    "domain_size": int(shards[0].domain_size),
                    "dense_budget": DENSE_DOMAIN_BUDGET,
                }
                for segment in segments
            ]
            pool = PersistentWorkerPool(workers, _worker_main_shm, configs)
        except BaseException:
            _unlink_all(segments)
            raise
        self._segments = segments
        self._pool = pool
        self._pending_stats: dict[int, dict[str, float]] = {}
        self._strategy_closed = False
        # Crash-path cleanup: runs on GC or at interpreter exit,
        # whichever comes first; normal close() triggers it explicitly.
        self._finalizer = weakref.finalize(self, _release, segments, pool)

    def ingest(self, shards, parts) -> None:
        """Enqueue each shard's sub-batch on its worker (pipelined).

        Returns as soon as every sub-batch is queued; worker failures
        surface at the next flush/reset barrier.
        """
        for worker, part in enumerate(parts):
            if part is not None:
                self._pool.submit(worker, ("batch", part[0], part[1]))

    def flush(self, shards):
        """Barrier: every worker drains its queue and folds its dense
        accumulator into the shared counters; the parent installs the
        tracked masses (a few floats — the only per-flush IPC)."""
        if self._strategy_closed:
            return shards
        for worker, (masses, stats) in enumerate(self._pool.barrier(("flush",))):
            shards[worker].set_tracked_masses(masses)
            if stats["worker.batches"]:
                held = self._pending_stats.setdefault(worker, {})
                for key, value in stats.items():
                    held[key] = held.get(key, 0.0) + value
        return shards

    def reset(self, schema, shards):
        """Zero the shared counters in place (workers own the memory)."""
        if self._strategy_closed:
            return [schema.create_sketch() for _ in shards]
        self._pool.barrier(("reset",))
        for shard in shards:
            shard.set_tracked_masses([0.0] * len(shard.tracked_masses()))
        return shards

    def drain_worker_telemetry(self) -> list[tuple[int, dict[str, float]]]:
        """Hand over (and clear) per-shard worker stats gathered at flush."""
        drained = sorted(self._pending_stats.items())
        self._pending_stats = {}
        return drained

    def close(self, shards):
        """Detach the parent's shards into private arrays, stop workers,
        unlink the segments.  Idempotent; leaks no ``/dev/shm`` entries
        even when a worker already died."""
        if self._strategy_closed:
            return shards
        self._strategy_closed = True
        try:
            for shard in shards:
                shard.attach_counters(
                    [
                        np.empty(block.shape, dtype=np.float64)
                        for block in shard.counters_view()
                    ]
                )
        finally:
            self._pool.close()
            self._finalizer()  # terminate (a no-op now) + unlink segments
        return shards
