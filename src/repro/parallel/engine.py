"""A drop-in parallel variant of :class:`~repro.streams.engine.StreamEngine`.

:class:`ParallelStreamEngine` subclasses the serial engine and overrides
only its two ingestion hooks, routing filtered elements into one
:class:`~repro.parallel.ShardedIngestor` per registered stream.  Every
other behaviour — predicates, SQL front-end, metrics/trace/audit
instrumentation, shadow-exact drift auditing, query answering — is
inherited unchanged; before a query is answered the per-stream shard
synopses are merged (an exact counter sum, by linearity) into the
registered synopsis slot, so answers are computed by exactly the serial
code over exactly the serial counters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..errors import ParameterError
from ..obs import METRICS as _METRICS
from ..profile import PROFILER as _PROFILER, RECORDER as _RECORDER
from ..streams.engine import StreamEngine, _RegisteredStream
from ..streams.query import Predicate, Query
from .shards import INGEST_MODES, ShardedIngestor

if TYPE_CHECKING:
    from ..core.config import SketchParameters
    from ..sketches.serialize import AnySketch

__all__ = ["ParallelStreamEngine"]


class ParallelStreamEngine(StreamEngine):
    """Stream engine with sharded (optionally multi-process) ingestion.

    Parameters
    ----------
    domain_size, parameters, synopsis, seed, attribute_domains:
        As for :class:`~repro.streams.engine.StreamEngine`.
    workers:
        Shards (and executor parallelism) per registered stream.
    mode:
        ``"serial"`` | ``"thread"`` | ``"process"`` | ``"shm"`` — the
        :class:`~repro.parallel.ShardedIngestor` execution strategy.

    Use as a context manager (or call :meth:`close`) when running
    executor-backed modes, so worker pools shut down deterministically.
    """

    def __init__(
        self,
        domain_size: int,
        parameters: "SketchParameters",
        synopsis: str = "skimmed",
        seed: int = 0,
        attribute_domains: dict[str, int] | None = None,
        workers: int = 2,
        mode: str = "thread",
    ) -> None:
        super().__init__(
            domain_size,
            parameters,
            synopsis=synopsis,
            seed=seed,
            attribute_domains=attribute_domains,
        )
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        if mode not in INGEST_MODES:
            raise ParameterError(f"mode must be one of {INGEST_MODES}, got {mode!r}")
        self.workers = workers
        self.mode = mode
        self._ingestors: dict[str, ShardedIngestor] = {}

    # -- registration: give every stream its own sharded ingestor ---------------

    def register_stream(self, name: str, predicate: Predicate | None = None) -> None:
        """Declare a stream; its batches will be sharded across workers."""
        super().register_stream(name, predicate)
        self._ingestors[name] = ShardedIngestor(
            self._schema, workers=self.workers, mode=self.mode
        )

    # -- ingestion hooks ---------------------------------------------------------

    def _ingest_one(
        self, registered: _RegisteredStream, value: int, weight: float
    ) -> None:
        """Route one element through the stream's sharded ingestor."""
        self._ingestors[registered.name].ingest(
            np.asarray([value], dtype=np.int64),
            np.asarray([weight], dtype=np.float64),
        )

    def _ingest_bulk(
        self,
        registered: _RegisteredStream,
        values: np.ndarray,
        weights: np.ndarray | None,
    ) -> None:
        """Route a filtered batch through the stream's sharded ingestor."""
        if _PROFILER.enabled:
            _PROFILER.mark("parallel.ingest")
        if _RECORDER.enabled:
            _RECORDER.pulse("parallel.elements", int(values.size))
        self._ingestors[registered.name].ingest(values, weights)

    # -- query paths: merge shards before answering ------------------------------

    def flush(self) -> None:
        """Install every stream's exact merged synopsis for querying.

        Lazy underneath: streams with no new batches since their last
        merge cost nothing (dirty-flag caching in the ingestor).

        In the process-backed modes (``"process"`` / ``"shm"``) the
        merge also surfaces each worker process's ingest vitals —
        counters its own (process-local, disabled) singletons would have
        discarded — into this process's registry as
        ``parallel.shard.<N>.worker.*``; the shm strategy carries them
        on the flush ack, no JSON channel involved.
        """
        for name, ingestor in self._ingestors.items():
            self._streams[name].synopsis = ingestor.merged()
            telemetry = ingestor.drain_worker_telemetry()
            if _METRICS.enabled:
                for shard, stats in telemetry:
                    for key, value in stats.items():
                        _METRICS.count(f"parallel.shard.{shard}.{key}", value)

    def answer(self, query: Query) -> float:
        """Answer a query over the merged (serial-identical) synopses."""
        self.flush()
        return super().answer(query)

    def answer_sql(self, text: str) -> float:
        """Answer a predicate-free SQL-subset query (merging first)."""
        self.flush()
        return super().answer_sql(text)

    def synopsis_for(self, stream: str) -> "AnySketch":
        """Direct access to a stream's merged synopsis."""
        ingestor = self._ingestors.get(stream)
        if ingestor is not None:
            self._streams[stream].synopsis = ingestor.merged()
        return super().synopsis_for(stream)

    def total_space_in_counters(self) -> int:
        """Total *shard* synopsis space across all registered streams.

        Sharding costs ``workers``× the serial synopsis space while
        ingestion is running — that's the space/throughput trade the
        subsystem makes; see docs/PERFORMANCE.md.
        """
        return sum(
            ingestor.workers * self._streams[name].synopsis.size_in_counters()
            for name, ingestor in self._ingestors.items()
        )

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Shut down every stream's executor resources (idempotent)."""
        for ingestor in self._ingestors.values():
            ingestor.close()

    def __enter__(self) -> "ParallelStreamEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ParallelStreamEngine(domain_size={self.domain_size}, "
            f"synopsis={self.synopsis_kind!r}, workers={self.workers}, "
            f"mode={self.mode!r}, streams={list(self._streams)})"
        )
