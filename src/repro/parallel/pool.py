"""Persistent worker-process pool for the process-backed ingest strategies.

One long-lived worker process per shard, fed by its own bounded task
queue, replaces the single-worker ``ProcessPoolExecutor`` that the
process strategy used to spawn per shard: batches stream to workers
without per-submit ``Future`` bookkeeping, back-pressure falls out of
the queue bound, and every control message (flush / collect / reset /
stop) is a queue token answered on a per-worker reply queue.  Shard
``i`` always maps to worker ``i``, preserving the value -> shard ->
process affinity the exactness argument rests on.

Error model: batch messages are fire-and-forget (pipelined).  A worker
that fails a batch parks the traceback and reports it at the next
barrier (flush / reset), where :class:`WorkerError` re-raises it in the
parent — so a bad value aborts at the flush/merge seam rather than
mid-stream.

Workers are started with the ``fork`` method where available: forked
children share the parent's ``resource_tracker`` process, so shared-
memory segments are registered (and unlinked) exactly once, by the
parent.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_module
import time
from typing import Any, Callable

__all__ = ["PersistentWorkerPool", "WorkerError"]

#: Bounded batch-queue depth per worker: enough to keep the pipeline full,
#: small enough that a slow worker back-pressures the producer instead of
#: buffering the whole stream in pickled batches.
QUEUE_CAPACITY = 8

#: Seconds to wait for one barrier reply before declaring a worker hung.
_REPLY_TIMEOUT = 120.0

#: Seconds to wait for a graceful worker exit before terminating it.
_JOIN_TIMEOUT = 5.0


class WorkerError(RuntimeError):
    """A worker process failed; the message carries its traceback."""


def _pool_context() -> mp.context.BaseContext:
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else methods[0])


class PersistentWorkerPool:
    """``workers`` long-lived processes, one bounded task queue each.

    Each worker runs ``target(tasks, replies, config)`` — a loop reading
    message tuples from its task queue and answering barrier messages on
    its reply queue with ``("ok", payload)`` or ``("error", traceback)``.
    """

    def __init__(
        self,
        workers: int,
        target: Callable[..., None],
        configs: list[dict[str, Any]],
    ) -> None:
        ctx = _pool_context()
        self._tasks = [ctx.Queue(maxsize=QUEUE_CAPACITY) for _ in range(workers)]
        self._replies = [ctx.Queue() for _ in range(workers)]
        self._processes = [
            ctx.Process(
                target=target,
                args=(self._tasks[i], self._replies[i], configs[i]),
                daemon=True,
                name=f"repro-shard-{i}",
            )
            for i in range(workers)
        ]
        self._closed = False
        for process in self._processes:
            process.start()

    @property
    def workers(self) -> int:
        """Number of worker processes (= shards served)."""
        return len(self._processes)

    def submit(self, worker: int, message: tuple) -> None:
        """Enqueue one fire-and-forget message on ``worker``'s task queue.

        Blocks only when the worker is :data:`QUEUE_CAPACITY` batches
        behind (back-pressure); failures surface at the next barrier.
        """
        if self._closed:
            raise RuntimeError("worker pool is closed")
        self._tasks[worker].put(message)

    def barrier(self, message: tuple) -> list[Any]:
        """Send ``message`` to every worker; collect one reply from each.

        Replies come back in worker order.  An ``("error", ...)`` reply —
        or a dead/hung worker — raises :class:`WorkerError` carrying the
        worker-side traceback.
        """
        if self._closed:
            raise RuntimeError("worker pool is closed")
        for tasks in self._tasks:
            tasks.put(message)
        return [self._reply(worker) for worker in range(len(self._processes))]

    def _reply(self, worker: int) -> Any:
        deadline = time.monotonic() + _REPLY_TIMEOUT
        while True:
            try:
                reply = self._replies[worker].get(timeout=0.5)
                break
            except queue_module.Empty:
                process = self._processes[worker]
                if not process.is_alive():
                    raise WorkerError(
                        f"worker {worker} died (exitcode {process.exitcode})"
                    ) from None
                if time.monotonic() >= deadline:
                    raise WorkerError(
                        f"worker {worker} unresponsive after "
                        f"{_REPLY_TIMEOUT:.0f}s"
                    ) from None
        if reply[0] == "error":
            raise WorkerError(f"worker {worker} failed:\n{reply[1]}")
        return reply[1]

    def close(self) -> None:
        """Stop every worker gracefully; idempotent, never raises."""
        if self._closed:
            return
        self._closed = True
        for tasks in self._tasks:
            try:
                tasks.put(("stop",), timeout=_JOIN_TIMEOUT)
            except Exception:
                pass  # full queue on a hung worker; terminate below
        for process in self._processes:
            process.join(timeout=_JOIN_TIMEOUT)
        self.terminate()
        for q in (*self._tasks, *self._replies):
            q.cancel_join_thread()
            q.close()

    def terminate(self) -> None:
        """Kill any still-live workers (crash-path cleanup; idempotent)."""
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
