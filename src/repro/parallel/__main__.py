"""CLI for the parallel ingest subsystem.

Prove serial-vs-sharded exactness on a seeded stream (exit 1 on any
counter or query mismatch)::

    python -m repro.parallel selfcheck --workers 4 --modes thread,process

Measure ingest throughput as the worker count scales::

    python -m repro.parallel bench --workers-list 1,2,4
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import TYPE_CHECKING

from ..errors import ReproError

if TYPE_CHECKING:
    import numpy as np

    from ..sketches.serialize import AnySketch

_DEFAULT_MODES = "serial,thread,process"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.parallel",
        description="Self-check and benchmark the sharded parallel ingest path.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    selfcheck = sub.add_parser(
        "selfcheck",
        help="serial-vs-sharded equality on a seeded stream (exit 1 on mismatch)",
    )
    selfcheck.add_argument("--workers", type=int, default=4)
    selfcheck.add_argument(
        "--modes",
        default=_DEFAULT_MODES,
        help=f"comma-separated ingest modes to check (default: {_DEFAULT_MODES})",
    )
    selfcheck.add_argument("--domain", type=int, default=1 << 12)
    selfcheck.add_argument("--elements", type=int, default=20_000)
    selfcheck.add_argument("--seed", type=int, default=7)
    selfcheck.add_argument(
        "--synopsis", default="skimmed", choices=("skimmed", "agms", "hash")
    )

    bench = sub.add_parser(
        "bench", help="ingest-throughput table across worker counts"
    )
    bench.add_argument(
        "--workers-list",
        default="1,2,4",
        help="comma-separated worker counts to time (default: 1,2,4)",
    )
    bench.add_argument("--mode", default="thread", choices=("thread", "process"))
    bench.add_argument("--domain", type=int, default=1 << 14)
    bench.add_argument("--elements", type=int, default=200_000)
    bench.add_argument("--batch", type=int, default=8_192)
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument(
        "--synopsis", default="hash", choices=("skimmed", "agms", "hash")
    )
    return parser


def _seeded_stream(
    domain: int, elements: int, seed: int
) -> "tuple[np.ndarray, np.ndarray]":
    """Deterministic values + integer-valued weights (5% deletions)."""
    import numpy as np

    rng = np.random.default_rng(seed)
    values = rng.integers(0, domain, size=elements, dtype=np.int64)
    weights = np.ones(elements, dtype=np.float64)
    weights[rng.random(elements) < 0.05] = -1.0
    return values, weights


def _counters_equal(left: "AnySketch", right: "AnySketch") -> bool:
    """Bit-level equality of two synopses via their serialised states."""
    import numpy as np

    from ..sketches.serialize import sketch_state

    left_state, right_state = sketch_state(left), sketch_state(right)
    if left_state.keys() != right_state.keys():
        return False
    for key, left_value in left_state.items():
        right_value = right_state[key]
        if isinstance(left_value, np.ndarray):
            if not np.array_equal(left_value, right_value):
                return False
        elif left_value != right_value:
            return False
    return True


def _selfcheck(args: argparse.Namespace) -> int:
    import numpy as np

    from ..core.config import SketchParameters
    from ..parallel import ParallelStreamEngine
    from ..streams.engine import StreamEngine
    from ..streams.query import JoinCountQuery, PointQuery, SelfJoinQuery

    modes = [m.strip() for m in args.modes.split(",") if m.strip()]
    parameters = SketchParameters(width=128, depth=5)
    values, weights = _seeded_stream(args.domain, args.elements, args.seed)
    batches = np.array_split(np.arange(values.size), 8)

    serial = StreamEngine(
        args.domain, parameters, synopsis=args.synopsis, seed=args.seed
    )
    for name in ("f", "g"):
        serial.register_stream(name)
        for batch in batches:
            serial.process_bulk(name, values[batch], weights[batch])

    queries = [JoinCountQuery("f", "g"), SelfJoinQuery("f")]
    if args.synopsis != "agms":
        queries.append(PointQuery("f", int(values[0])))
    serial_answers = [serial.answer(q) for q in queries]

    failures = 0
    for mode in modes:
        with ParallelStreamEngine(
            args.domain,
            parameters,
            synopsis=args.synopsis,
            seed=args.seed,
            workers=args.workers,
            mode=mode,
        ) as engine:
            for name in ("f", "g"):
                engine.register_stream(name)
                for batch in batches:
                    engine.process_bulk(name, values[batch], weights[batch])
            for stream in ("f", "g"):
                if _counters_equal(
                    serial.synopsis_for(stream), engine.synopsis_for(stream)
                ):
                    print(f"[{mode}] stream {stream!r}: counters identical")
                else:
                    print(f"[{mode}] stream {stream!r}: COUNTER MISMATCH")
                    failures += 1
            for query, expected in zip(queries, serial_answers):
                got = engine.answer(query)
                label = type(query).__name__
                if got == expected:
                    print(f"[{mode}] {label}: {got:g} == serial")
                else:
                    print(f"[{mode}] {label}: {got:g} != serial {expected:g}")
                    failures += 1
    if failures:
        print(f"selfcheck FAILED: {failures} mismatch(es)")
        return 1
    print(f"selfcheck OK: {len(modes)} mode(s) x {args.workers} workers")
    return 0


def _bench(args: argparse.Namespace) -> int:
    import numpy as np

    from ..core.config import SketchParameters
    from ..parallel import ParallelStreamEngine

    worker_counts = [int(w) for w in args.workers_list.split(",") if w.strip()]
    parameters = SketchParameters(width=256, depth=7)
    values, weights = _seeded_stream(args.domain, args.elements, args.seed)
    splits = np.array_split(
        np.arange(values.size), max(1, values.size // args.batch)
    )

    print(f"mode={args.mode} synopsis={args.synopsis} "
          f"elements={args.elements} batch~{args.batch}")
    print(f"{'workers':>8} {'seconds':>10} {'updates/sec':>14}")
    for workers in worker_counts:
        with ParallelStreamEngine(
            args.domain,
            parameters,
            synopsis=args.synopsis,
            seed=args.seed,
            workers=workers,
            mode=args.mode,
        ) as engine:
            engine.register_stream("f")
            start = time.perf_counter()
            for batch in splits:
                engine.process_bulk("f", values[batch], weights[batch])
            engine.flush()
            elapsed = time.perf_counter() - start
        rate = args.elements / elapsed if elapsed else float("inf")
        print(f"{workers:>8} {elapsed:>10.4f} {rate:>14,.0f}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.parallel``."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "selfcheck":
            return _selfcheck(args)
        return _bench(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
