"""CLI for the parallel ingest subsystem.

Prove serial-vs-sharded exactness on a seeded stream (exit 1 on any
counter or query mismatch)::

    python -m repro.parallel selfcheck --workers 4 --modes thread,process,shm

Measure ingest throughput as the worker count scales::

    python -m repro.parallel bench --workers-list 1,2,4 --mode shm

Enforce the "parallel must win" contract (exit 1 if shared-memory
ingest at >1 worker does not beat serial throughput)::

    python -m repro.parallel scaling-gate --bench-json benchmarks/results/BENCH_pr10.json
    python -m repro.parallel scaling-gate            # live measurement
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import TYPE_CHECKING

from ..errors import ReproError

if TYPE_CHECKING:
    import numpy as np

    from ..sketches.serialize import AnySketch

_DEFAULT_MODES = "serial,thread,process,shm"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.parallel",
        description="Self-check and benchmark the sharded parallel ingest path.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    selfcheck = sub.add_parser(
        "selfcheck",
        help="serial-vs-sharded equality on a seeded stream (exit 1 on mismatch)",
    )
    selfcheck.add_argument("--workers", type=int, default=4)
    selfcheck.add_argument(
        "--modes",
        default=_DEFAULT_MODES,
        help=f"comma-separated ingest modes to check (default: {_DEFAULT_MODES})",
    )
    selfcheck.add_argument("--domain", type=int, default=1 << 12)
    selfcheck.add_argument("--elements", type=int, default=20_000)
    selfcheck.add_argument("--seed", type=int, default=7)
    selfcheck.add_argument(
        "--synopsis", default="skimmed", choices=("skimmed", "agms", "hash")
    )

    bench = sub.add_parser(
        "bench", help="ingest-throughput table across worker counts"
    )
    bench.add_argument(
        "--workers-list",
        default="1,2,4",
        help="comma-separated worker counts to time (default: 1,2,4)",
    )
    bench.add_argument(
        "--mode", default="thread", choices=("serial", "thread", "process", "shm")
    )
    bench.add_argument("--domain", type=int, default=1 << 14)
    bench.add_argument("--elements", type=int, default=200_000)
    bench.add_argument("--batch", type=int, default=8_192)
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument(
        "--synopsis", default="hash", choices=("skimmed", "agms", "hash")
    )

    gate = sub.add_parser(
        "scaling-gate",
        help="fail (exit 1) unless shm ingest at >1 worker beats serial",
    )
    gate.add_argument(
        "--bench-json",
        default=None,
        help="gate a committed BENCH document (ingest.parallel.shm records) "
        "instead of measuring live",
    )
    gate.add_argument(
        "--min-batch",
        type=int,
        default=8_192,
        help="only gate records at or above this batch size — the "
        "documented threshold where shm must win (default: 8192)",
    )
    gate.add_argument(
        "--workers-list",
        default="2,4",
        help="worker counts to gate / measure (default: 2,4)",
    )
    gate.add_argument("--domain", type=int, default=1 << 12)
    gate.add_argument("--elements", type=int, default=500_000)
    gate.add_argument("--batch", type=int, default=8_192)
    gate.add_argument("--seed", type=int, default=7)
    gate.add_argument("--repeats", type=int, default=3)
    return parser


def _seeded_stream(
    domain: int, elements: int, seed: int
) -> "tuple[np.ndarray, np.ndarray]":
    """Deterministic values + integer-valued weights (5% deletions)."""
    import numpy as np

    rng = np.random.default_rng(seed)
    values = rng.integers(0, domain, size=elements, dtype=np.int64)
    weights = np.ones(elements, dtype=np.float64)
    weights[rng.random(elements) < 0.05] = -1.0
    return values, weights


def _counters_equal(left: "AnySketch", right: "AnySketch") -> bool:
    """Bit-level equality of two synopses via their serialised states."""
    import numpy as np

    from ..sketches.serialize import sketch_state

    left_state, right_state = sketch_state(left), sketch_state(right)
    if left_state.keys() != right_state.keys():
        return False
    for key, left_value in left_state.items():
        right_value = right_state[key]
        if isinstance(left_value, np.ndarray):
            if not np.array_equal(left_value, right_value):
                return False
        elif left_value != right_value:
            return False
    return True


def _selfcheck(args: argparse.Namespace) -> int:
    import numpy as np

    from ..core.config import SketchParameters
    from ..parallel import ParallelStreamEngine
    from ..streams.engine import StreamEngine
    from ..streams.query import JoinCountQuery, PointQuery, SelfJoinQuery

    modes = [m.strip() for m in args.modes.split(",") if m.strip()]
    parameters = SketchParameters(width=128, depth=5)
    values, weights = _seeded_stream(args.domain, args.elements, args.seed)
    batches = np.array_split(np.arange(values.size), 8)

    serial = StreamEngine(
        args.domain, parameters, synopsis=args.synopsis, seed=args.seed
    )
    for name in ("f", "g"):
        serial.register_stream(name)
        for batch in batches:
            serial.process_bulk(name, values[batch], weights[batch])

    queries = [JoinCountQuery("f", "g"), SelfJoinQuery("f")]
    if args.synopsis != "agms":
        queries.append(PointQuery("f", int(values[0])))
    serial_answers = [serial.answer(q) for q in queries]

    failures = 0
    for mode in modes:
        with ParallelStreamEngine(
            args.domain,
            parameters,
            synopsis=args.synopsis,
            seed=args.seed,
            workers=args.workers,
            mode=mode,
        ) as engine:
            for name in ("f", "g"):
                engine.register_stream(name)
                for batch in batches:
                    engine.process_bulk(name, values[batch], weights[batch])
            for stream in ("f", "g"):
                if _counters_equal(
                    serial.synopsis_for(stream), engine.synopsis_for(stream)
                ):
                    print(f"[{mode}] stream {stream!r}: counters identical")
                else:
                    print(f"[{mode}] stream {stream!r}: COUNTER MISMATCH")
                    failures += 1
            for query, expected in zip(queries, serial_answers):
                got = engine.answer(query)
                label = type(query).__name__
                if got == expected:
                    print(f"[{mode}] {label}: {got:g} == serial")
                else:
                    print(f"[{mode}] {label}: {got:g} != serial {expected:g}")
                    failures += 1
    if failures:
        print(f"selfcheck FAILED: {failures} mismatch(es)")
        return 1
    print(f"selfcheck OK: {len(modes)} mode(s) x {args.workers} workers")
    return 0


def _bench(args: argparse.Namespace) -> int:
    import numpy as np

    from ..core.config import SketchParameters
    from ..parallel import ParallelStreamEngine

    worker_counts = [int(w) for w in args.workers_list.split(",") if w.strip()]
    parameters = SketchParameters(width=256, depth=7)
    values, weights = _seeded_stream(args.domain, args.elements, args.seed)
    splits = np.array_split(
        np.arange(values.size), max(1, values.size // args.batch)
    )

    print(f"mode={args.mode} synopsis={args.synopsis} "
          f"elements={args.elements} batch~{args.batch}")
    print(f"{'workers':>8} {'seconds':>10} {'updates/sec':>14}")
    for workers in worker_counts:
        with ParallelStreamEngine(
            args.domain,
            parameters,
            synopsis=args.synopsis,
            seed=args.seed,
            workers=workers,
            mode=args.mode,
        ) as engine:
            engine.register_stream("f")
            start = time.perf_counter()
            for batch in splits:
                engine.process_bulk("f", values[batch], weights[batch])
            engine.flush()
            elapsed = time.perf_counter() - start
        rate = args.elements / elapsed if elapsed else float("inf")
        print(f"{workers:>8} {elapsed:>10.4f} {rate:>14,.0f}")
    return 0


def _gate_from_file(args: argparse.Namespace) -> int:
    """Gate a committed BENCH document's ingest.parallel.shm records.

    Baselines are the series' own ``workers=1`` records (the serial
    no-executor path); a gated record passes when its ``updates_per_sec``
    strictly beats the baseline with matching stream parameters.
    Deterministic — CI can enforce the contract without re-measuring.
    """
    from ..bench.schema import read_bench

    doc = read_bench(args.bench_json)
    shm_records = [
        r for r in doc["records"] if r["scenario"] == "ingest.parallel.shm"
    ]

    def stream_key(record: dict) -> tuple:
        params = record["params"]
        return tuple(
            params.get(k) for k in ("n", "batch", "domain", "width", "depth", "seed")
        )

    baselines = {
        stream_key(r): r for r in shm_records if r["params"]["workers"] == 1
    }
    gated = [
        r
        for r in shm_records
        if r["params"]["workers"] > 1
        and r["params"].get("batch", 0) >= args.min_batch
    ]
    if not gated:
        print(
            f"scaling-gate FAILED: {args.bench_json} has no "
            f"ingest.parallel.shm records with workers>1 and "
            f"batch>={args.min_batch}"
        )
        return 1
    failures = 0
    print(f"{'workers':>8} {'shm upd/s':>14} {'serial upd/s':>14} {'speedup':>8}")
    for record in sorted(gated, key=lambda r: r["params"]["workers"]):
        baseline = baselines.get(stream_key(record))
        if baseline is None:
            print(f"scaling-gate FAILED: no workers=1 baseline for {record['params']}")
            failures += 1
            continue
        shm_rate = record["updates_per_sec"] or 0.0
        serial_rate = baseline["updates_per_sec"] or 0.0
        speedup = shm_rate / serial_rate if serial_rate else float("inf")
        verdict = "ok" if shm_rate > serial_rate else "FAIL"
        print(
            f"{record['params']['workers']:>8} {shm_rate:>14,.0f} "
            f"{serial_rate:>14,.0f} {speedup:>7.2f}x {verdict}"
        )
        if shm_rate <= serial_rate:
            failures += 1
    if failures:
        print(f"scaling-gate FAILED: {failures} record(s) did not beat serial")
        return 1
    print(f"scaling-gate OK: {len(gated)} shm record(s) beat serial")
    return 0


def _gate_live(args: argparse.Namespace) -> int:
    """Measure serial vs shm ingest throughput here and now; gate on it."""
    import numpy as np

    from ..sketches import HashSketchSchema
    from .shards import ShardedIngestor

    worker_counts = [int(w) for w in args.workers_list.split(",") if w.strip()]
    schema = HashSketchSchema(256, 7, args.domain, seed=args.seed)
    values, weights = _seeded_stream(args.domain, args.elements, args.seed)
    splits = np.array_split(
        np.arange(values.size), max(1, values.size // args.batch)
    )

    def best_rate(workers: int, mode: str) -> float:
        best = float("inf")
        for _ in range(args.repeats):
            with ShardedIngestor(schema, workers=workers, mode=mode) as ingestor:
                start = time.perf_counter()
                for batch in splits:
                    ingestor.ingest(values[batch], weights[batch])
                ingestor.merged()
                best = min(best, time.perf_counter() - start)
        return args.elements / best

    serial_rate = best_rate(1, "serial")
    print(f"elements={args.elements} batch={args.batch} domain={args.domain}")
    print(f"{'workers':>8} {'mode':>8} {'updates/sec':>14} {'speedup':>8}")
    print(f"{1:>8} {'serial':>8} {serial_rate:>14,.0f} {'1.00x':>8}")
    failures = 0
    for workers in worker_counts:
        shm_rate = best_rate(workers, "shm")
        verdict = "ok" if shm_rate > serial_rate else "FAIL"
        print(
            f"{workers:>8} {'shm':>8} {shm_rate:>14,.0f} "
            f"{shm_rate / serial_rate:>7.2f}x {verdict}"
        )
        if shm_rate <= serial_rate:
            failures += 1
    if failures:
        print(f"scaling-gate FAILED: {failures} worker count(s) did not beat serial")
        return 1
    print(f"scaling-gate OK: shm beat serial at {worker_counts} worker(s)")
    return 0


def _scaling_gate(args: argparse.Namespace) -> int:
    if args.bench_json:
        return _gate_from_file(args)
    return _gate_live(args)


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.parallel``."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "selfcheck":
            return _selfcheck(args)
        if args.command == "scaling-gate":
            return _scaling_gate(args)
        return _bench(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
