"""Parallel sharded ingestion for sketch synopses.

Because every synopsis in this library is a linear projection of the
stream's frequency vector, a stream can be partitioned across N shard
sketches built from one schema and merged later by summing counters —
**exactly**, not approximately.  This package packages that observation
as infrastructure:

* :class:`ShardedIngestor` — N shard synopses behind one strategy-driven
  executor (serial / thread pool / per-shard process pool), with
  deterministic value partitioning, lazy dirty-flag-cached exact merge,
  and ``parallel.*`` metrics/span instrumentation;
* :class:`ParallelStreamEngine` — the Figure-1 stream engine with its
  ingestion hooks rerouted through per-stream sharded ingestors; query
  answers are bit-identical (integer-weight regime) to the serial
  :class:`~repro.streams.engine.StreamEngine`;
* ``python -m repro.parallel selfcheck|bench`` — serial-vs-sharded
  equality proof on a seeded stream, and a worker-scaling throughput
  table.

See docs/PERFORMANCE.md for the sharding model, the exact-merge argument
and worker-count guidance.
"""

from .shards import INGEST_MODES, ShardedIngestor, partition_batch
from .engine import ParallelStreamEngine

__all__ = [
    "INGEST_MODES",
    "ParallelStreamEngine",
    "ShardedIngestor",
    "partition_batch",
]
