"""Benchmark scenario registry.

Each scenario wraps one of the repo's performance-relevant code paths —
sketch update throughput, SKIMDENSE, and the skimmed-join accuracy
comparisons behind ``benchmarks/bench_*.py`` — as a deterministic,
parameterised measurement the uniform runner in ``__main__`` can time.

Contract
--------
* This module imports without numpy (``python -m repro.bench list`` must
  work on a bare box); numpy and the repro kernels are imported lazily
  inside each scenario's ``run``.
* ``run(params)`` performs setup untimed, times exactly one execution of
  the operation of interest, and returns ``(elapsed_seconds, extras)``.
  ``extras`` may carry ``updates`` (elements processed, from which the
  runner derives updates/sec), ``relative_error`` and ``sketch_bytes``.
* Everything non-timing is seed-deterministic: frequency vectors are the
  deterministic (``rng=None``) generator variants or fixed-seed draws,
  and sketch schemas use fixed seeds — so ``relative_error`` and
  ``sketch_bytes`` are bit-stable across runs and machines, and the
  ``compare`` gates on them are meaningful in CI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

_BYTES_PER_COUNTER = 8  # all sketch counter arrays are float64


@dataclass(frozen=True)
class Scenario:
    """One registered benchmark scenario.

    ``suites`` maps suite name -> params; a scenario absent from a suite
    simply does not run there.
    """

    name: str
    description: str
    suites: dict[str, dict[str, Any]]
    run: Callable[[dict[str, Any]], tuple[float, dict[str, Any]]]


SCENARIOS: list[Scenario] = []


def _register(
    name: str, description: str, suites: dict[str, dict[str, Any]]
) -> Callable[
    [Callable[[dict[str, Any]], tuple[float, dict[str, Any]]]],
    Callable[[dict[str, Any]], tuple[float, dict[str, Any]]],
]:
    def decorate(
        fn: Callable[[dict[str, Any]], tuple[float, dict[str, Any]]]
    ) -> Callable[[dict[str, Any]], tuple[float, dict[str, Any]]]:
        SCENARIOS.append(Scenario(name, description, suites, fn))
        return fn

    return decorate


def scenarios_for(suite: str) -> list[tuple[Scenario, dict[str, Any]]]:
    """The (scenario, params) pairs making up a suite."""
    return [(s, s.suites[suite]) for s in SCENARIOS if suite in s.suites]


def suite_names() -> list[str]:
    """All suite names any scenario participates in."""
    names: set[str] = set()
    for scenario in SCENARIOS:
        names.update(scenario.suites)
    return sorted(names)


def _update_stream(params: dict[str, Any]):
    """Deterministic batch of update values for throughput scenarios."""
    import numpy as np

    rng = np.random.default_rng(params["seed"])
    return rng.integers(0, params["domain"], params["n"], dtype=np.int64)


@_register(
    "update.hash",
    "HashSketch.update_bulk throughput (paper's O(depth)-per-update synopsis)",
    {
        "smoke": {"n": 50_000, "domain": 1 << 12, "width": 256, "depth": 7, "seed": 7},
        "full": {"n": 500_000, "domain": 1 << 16, "width": 1024, "depth": 9, "seed": 7},
    },
)
def _run_update_hash(params: dict[str, Any]) -> tuple[float, dict[str, Any]]:
    from ..sketches import HashSketchSchema

    values = _update_stream(params)
    sketch = HashSketchSchema(
        params["width"], params["depth"], params["domain"], seed=params["seed"]
    ).create_sketch()
    start = time.perf_counter()
    sketch.update_bulk(values)
    elapsed = time.perf_counter() - start
    return elapsed, {
        "updates": params["n"],
        "sketch_bytes": sketch.size_in_counters() * _BYTES_PER_COUNTER,
    }


def _skewed_update_stream(params: dict[str, Any]):
    """Deterministic duplicate-heavy batch (Zipf-ish via modulo fold)."""
    import numpy as np

    rng = np.random.default_rng(params["seed"])
    draws = rng.zipf(params["z"], size=params["n"]).astype(np.int64)
    return draws % params["domain"]


@_register(
    "update.fused",
    "HashSketch.update_bulk throughput on a duplicate-heavy Zipf batch "
    "(exercises the coalescing fused kernel)",
    {
        "smoke": {
            "n": 50_000,
            "domain": 1 << 12,
            "z": 1.2,
            "width": 256,
            "depth": 7,
            "seed": 7,
        },
        "full": {
            "n": 500_000,
            "domain": 1 << 16,
            "z": 1.2,
            "width": 1024,
            "depth": 9,
            "seed": 7,
        },
    },
)
def _run_update_fused(params: dict[str, Any]) -> tuple[float, dict[str, Any]]:
    from ..sketches import HashSketchSchema

    values = _skewed_update_stream(params)
    sketch = HashSketchSchema(
        params["width"], params["depth"], params["domain"], seed=params["seed"]
    ).create_sketch()
    start = time.perf_counter()
    sketch.update_bulk(values)
    elapsed = time.perf_counter() - start
    return elapsed, {
        "updates": params["n"],
        "sketch_bytes": sketch.size_in_counters() * _BYTES_PER_COUNTER,
    }


@_register(
    "update.dyadic",
    "DyadicHashSketch.update_bulk throughput across all dyadic levels "
    "(the multi-level ingest cost the BulkHashCache coalescing amortises)",
    {
        "smoke": {"n": 50_000, "domain": 1 << 12, "width": 256, "depth": 7, "seed": 7},
        "full": {"n": 500_000, "domain": 1 << 16, "width": 1024, "depth": 9, "seed": 7},
    },
)
def _run_update_dyadic(params: dict[str, Any]) -> tuple[float, dict[str, Any]]:
    from ..sketches import DyadicSketchSchema

    values = _update_stream(params)
    sketch = DyadicSketchSchema(
        params["width"], params["depth"], params["domain"], seed=params["seed"]
    ).create_sketch()
    start = time.perf_counter()
    sketch.update_bulk(values)
    elapsed = time.perf_counter() - start
    return elapsed, {
        "updates": params["n"],
        "sketch_bytes": sketch.size_in_counters() * _BYTES_PER_COUNTER,
    }


def _run_ingest_parallel(params: dict[str, Any]) -> tuple[float, dict[str, Any]]:
    """Shared runner for the ingest.parallel worker-count series."""
    import numpy as np

    from ..parallel import ShardedIngestor
    from ..sketches import HashSketchSchema

    values = _update_stream(params)
    batches = np.array_split(values, max(1, params["n"] // params["batch"]))
    schema = HashSketchSchema(
        params["width"], params["depth"], params["domain"], seed=params["seed"]
    )
    with ShardedIngestor(
        schema, workers=params["workers"], mode=params["mode"]
    ) as ingestor:
        start = time.perf_counter()
        for batch in batches:
            ingestor.ingest(batch)
        merged = ingestor.merged()
        elapsed = time.perf_counter() - start
        return elapsed, {
            "updates": params["n"],
            "sketch_bytes": merged.size_in_counters() * _BYTES_PER_COUNTER,
        }


def _ingest_parallel_suites(workers: int) -> dict[str, dict[str, Any]]:
    """Suite params for one worker count of the ingest.parallel series."""
    mode = "serial" if workers == 1 else "thread"
    return {
        "smoke": {
            "n": 50_000,
            "batch": 8_192,
            "domain": 1 << 12,
            "width": 256,
            "depth": 7,
            "seed": 7,
            "workers": workers,
            "mode": mode,
        },
        "full": {
            "n": 500_000,
            "batch": 8_192,
            "domain": 1 << 16,
            "width": 1024,
            "depth": 9,
            "seed": 7,
            "workers": workers,
            "mode": mode,
        },
    }


def _ingest_parallel_shm_suites(workers: int) -> dict[str, dict[str, Any]]:
    """Suite params for one worker count of the shared-memory series.

    ``workers=1`` runs the serial no-executor path (the ingestor
    short-circuits), so that record is the honest single-core reference
    the parallel-scaling gate compares the shm records against.
    """
    suites = _ingest_parallel_suites(workers)
    for params in suites.values():
        params["mode"] = "serial" if workers == 1 else "shm"
    return suites


for _workers in (1, 2, 4):
    _register(
        "ingest.parallel",
        "ShardedIngestor batch ingest + exact merge at "
        f"{_workers} worker(s) (records are keyed by the workers param; "
        "compare against workers=1 for the scaling curve)",
        _ingest_parallel_suites(_workers),
    )(_run_ingest_parallel)
    _register(
        "ingest.parallel.shm",
        "ShardedIngestor shared-memory ingest (zero-copy flush, deferred "
        f"hashing) at {_workers} worker(s); the workers=1 record is the "
        "serial reference the parallel-scaling CI gate compares against",
        _ingest_parallel_shm_suites(_workers),
    )(_run_ingest_parallel)


@_register(
    "update.agms",
    "Basic AGMS update_bulk throughput at matched counter budget (the "
    "O(s1*s2) baseline the paper's hash sketches beat)",
    {
        "smoke": {"n": 2_000, "domain": 1 << 12, "averaging": 256, "median": 7, "seed": 7},
        "full": {"n": 20_000, "domain": 1 << 16, "averaging": 1024, "median": 9, "seed": 7},
    },
)
def _run_update_agms(params: dict[str, Any]) -> tuple[float, dict[str, Any]]:
    from ..sketches import AGMSSchema

    values = _update_stream(params)
    sketch = AGMSSchema(
        params["averaging"], params["median"], params["domain"], seed=params["seed"]
    ).create_sketch()
    start = time.perf_counter()
    sketch.update_bulk(values)
    elapsed = time.perf_counter() - start
    return elapsed, {
        "updates": params["n"],
        "sketch_bytes": sketch.size_in_counters() * _BYTES_PER_COUNTER,
    }


def _loaded_skimmed_sketch(params: dict[str, Any], dyadic: bool):
    from ..core import SkimmedSketchSchema
    from ..streams.generators import zipf_frequencies

    frequencies = zipf_frequencies(params["domain"], params["total"], params["z"])
    schema = SkimmedSketchSchema(
        params["width"],
        params["depth"],
        params["domain"],
        seed=params["seed"],
        dyadic=dyadic,
    )
    return schema.sketch_of(frequencies)


_SKIM_SUITES = {
    "smoke": {"domain": 1 << 10, "total": 20_000, "z": 1.0, "width": 128, "depth": 5, "seed": 11},
    "full": {"domain": 1 << 14, "total": 200_000, "z": 1.0, "width": 512, "depth": 7, "seed": 11},
}


@_register(
    "skim.flat",
    "SKIMDENSE via flat full-domain scan",
    _SKIM_SUITES,
)
def _run_skim_flat(params: dict[str, Any]) -> tuple[float, dict[str, Any]]:
    sketch = _loaded_skimmed_sketch(params, dyadic=False)
    start = time.perf_counter()
    sketch.skim()
    elapsed = time.perf_counter() - start
    return elapsed, {
        "sketch_bytes": sketch.size_in_counters() * _BYTES_PER_COUNTER
    }


@_register(
    "skim.dyadic",
    "SKIMDENSE via the Section 4.2 dyadic pruned descent",
    _SKIM_SUITES,
)
def _run_skim_dyadic(params: dict[str, Any]) -> tuple[float, dict[str, Any]]:
    sketch = _loaded_skimmed_sketch(params, dyadic=True)
    start = time.perf_counter()
    sketch.skim()
    elapsed = time.perf_counter() - start
    return elapsed, {
        "sketch_bytes": sketch.size_in_counters() * _BYTES_PER_COUNTER
    }


_JOIN_SUITES = {
    "smoke": {
        "domain": 1 << 10,
        "total": 20_000,
        "z": 1.0,
        "shift": 64,
        "width": 128,
        "depth": 5,
        "seed": 23,
    },
    "full": {
        "domain": 1 << 14,
        "total": 200_000,
        "z": 1.0,
        "shift": 1024,
        "width": 512,
        "depth": 7,
        "seed": 23,
    },
}


def _join_pair(params: dict[str, Any]):
    from ..streams.generators import shifted_zipf_pair

    return shifted_zipf_pair(
        params["domain"], params["total"], params["z"], params["shift"]
    )


def _relative_error(estimate: float, exact: float) -> float:
    return abs(estimate - exact) / exact if exact else 0.0


@_register(
    "join.skimmed",
    "Skimmed-sketch join estimate: accuracy vs exact and query latency "
    "(the paper's estimator on its shifted-Zipf workload)",
    _JOIN_SUITES,
)
def _run_join_skimmed(params: dict[str, Any]) -> tuple[float, dict[str, Any]]:
    from ..core import SkimmedSketchSchema

    f, g = _join_pair(params)
    schema = SkimmedSketchSchema(
        params["width"], params["depth"], params["domain"], seed=params["seed"]
    )
    sf, sg = schema.sketch_of(f), schema.sketch_of(g)
    start = time.perf_counter()
    estimate = sf.est_join_size(sg)
    elapsed = time.perf_counter() - start
    return elapsed, {
        "relative_error": _relative_error(estimate, f.join_size(g)),
        "sketch_bytes": sf.size_in_counters() * _BYTES_PER_COUNTER,
    }


@_register(
    "join.audited",
    "Skimmed-sketch join estimate with repro.monitor audits enabled: "
    "measures the audited-path overhead against join.skimmed (same "
    "workload, same estimate), including the per-query residual-norm "
    "scans and QueryAudit recording",
    _JOIN_SUITES,
)
def _run_join_audited(params: dict[str, Any]) -> tuple[float, dict[str, Any]]:
    from ..core import SkimmedSketchSchema
    from ..monitor import AUDIT

    f, g = _join_pair(params)
    schema = SkimmedSketchSchema(
        params["width"], params["depth"], params["domain"], seed=params["seed"]
    )
    sf, sg = schema.sketch_of(f), schema.sketch_of(g)
    was_enabled = AUDIT.enabled
    AUDIT.reset()
    AUDIT.enable()
    try:
        start = time.perf_counter()
        estimate = sf.est_join_size(sg)
        elapsed = time.perf_counter() - start
        audit_count = len(AUDIT)
    finally:
        if not was_enabled:
            AUDIT.disable()
        AUDIT.reset()
    if audit_count != 1:
        raise RuntimeError(f"expected exactly 1 audit, got {audit_count}")
    return elapsed, {
        "relative_error": _relative_error(estimate, f.join_size(g)),
        "sketch_bytes": sf.size_in_counters() * _BYTES_PER_COUNTER,
    }


@_register(
    "join.agms",
    "Basic AGMS join estimate at matched counter budget (Figure 5's "
    "comparison baseline)",
    _JOIN_SUITES,
)
def _run_join_agms(params: dict[str, Any]) -> tuple[float, dict[str, Any]]:
    from ..sketches import AGMSSchema

    f, g = _join_pair(params)
    schema = AGMSSchema(
        params["width"], params["depth"], params["domain"], seed=params["seed"]
    )
    sf, sg = schema.sketch_of(f), schema.sketch_of(g)
    start = time.perf_counter()
    estimate = sf.est_join_size(sg)
    elapsed = time.perf_counter() - start
    return elapsed, {
        "relative_error": _relative_error(estimate, f.join_size(g)),
        "sketch_bytes": sf.size_in_counters() * _BYTES_PER_COUNTER,
    }


@_register(
    "join.hash",
    "Unskimmed hash-sketch join estimate (what skimming improves on)",
    _JOIN_SUITES,
)
def _run_join_hash(params: dict[str, Any]) -> tuple[float, dict[str, Any]]:
    from ..sketches import HashSketchSchema

    f, g = _join_pair(params)
    schema = HashSketchSchema(
        params["width"], params["depth"], params["domain"], seed=params["seed"]
    )
    sf, sg = schema.sketch_of(f), schema.sketch_of(g)
    start = time.perf_counter()
    estimate = sf.est_join_size(sg)
    elapsed = time.perf_counter() - start
    return elapsed, {
        "relative_error": _relative_error(estimate, f.join_size(g)),
        "sketch_bytes": sf.size_in_counters() * _BYTES_PER_COUNTER,
    }


_FEDERATE_SUITES = {
    "smoke": {
        "domain": 1 << 12,
        "updates": 20_000,
        "width": 256,
        "depth": 11,
        "seed": 7,
    },
    "full": {
        "domain": 1 << 14,
        "updates": 200_000,
        "width": 512,
        "depth": 11,
        "seed": 7,
    },
}


@_register(
    "federate.overhead",
    "Telemetry piggyback cost on a distributed reporting round: a "
    "telemetry-carrying site closes one round with metrics + tracing "
    "enabled, and the snapshot bytes riding on the sketch payload must "
    "stay under 5% of the report bytes",
    _FEDERATE_SUITES,
)
def _run_federate_overhead(params: dict[str, Any]) -> tuple[float, dict[str, Any]]:
    import numpy as np

    from ..core import SkimmedSketchSchema
    from ..distributed import SketchSite
    from ..obs import METRICS
    from ..trace import TRACER

    schema = SkimmedSketchSchema(
        params["width"], params["depth"], params["domain"], seed=params["seed"]
    )
    site = SketchSite("bench-site", schema, streams=["R", "S"], telemetry=True)
    rng = np.random.default_rng(params["seed"])
    values = rng.integers(0, params["domain"], size=params["updates"], dtype=np.int64)
    weights = rng.normal(1.0, 0.25, size=params["updates"])
    metrics_was, tracer_was = METRICS.enabled, TRACER.enabled
    METRICS.reset()
    TRACER.reset()
    METRICS.enable()
    TRACER.enable()
    try:
        for stream in ("R", "S"):
            site.observe_bulk(stream, values, weights)
        start = time.perf_counter()
        reports = site.close_round()
        elapsed = time.perf_counter() - start
    finally:
        if not metrics_was:
            METRICS.disable()
        if not tracer_was:
            TRACER.disable()
        METRICS.reset()
        TRACER.reset()
    payload_bytes = sum(r.size_in_bytes() for r in reports)
    telemetry_bytes = sum(r.telemetry_size_in_bytes() for r in reports)
    ratio = telemetry_bytes / payload_bytes
    if telemetry_bytes == 0:
        raise RuntimeError("expected a telemetry snapshot on the round's reports")
    if ratio >= 0.05:
        raise RuntimeError(
            f"telemetry piggyback is {ratio:.1%} of the report payload "
            f"({telemetry_bytes}/{payload_bytes} bytes); bound is 5%"
        )
    return elapsed, {
        "payload_bytes": payload_bytes,
        "telemetry_bytes": telemetry_bytes,
        "overhead_ratio": ratio,
    }


def _run_workload_scenario(params: dict[str, Any]) -> tuple[float, dict[str, Any]]:
    """Shared runner for the workload.* adversarial-corpus series.

    Times the full StreamEngine path — bulk ingest of every corpus batch
    (predicate pushdown included) plus all declared join queries — on one
    ``repro.workloads`` family.  ``relative_error`` is the max realized
    relative error against the corpus's exact ground truth, which is
    seed-deterministic and therefore gateable in CI.
    """
    from ..core.config import SketchParameters
    from ..streams.engine import StreamEngine
    from ..streams.query import JoinCountQuery, SelfJoinQuery
    from ..workloads.corpus import FAMILIES

    family = FAMILIES[params["family"]]
    instance = family.build(
        dict(family.suites[params["corpus"]]), params["seed"]
    )
    engine = StreamEngine(
        instance.domain_size,
        SketchParameters(width=params["width"], depth=params["depth"]),
        synopsis="skimmed",
        seed=params["engine_seed"],
    )
    for name, predicate in instance.streams.items():
        engine.register_stream(name, predicate=predicate)
    worst = 0.0
    start = time.perf_counter()
    for batch in instance.batches:
        engine.process_bulk(batch.stream, batch.values, batch.weights)
    estimates = [
        engine.answer(
            SelfJoinQuery(left) if left == right else JoinCountQuery(left, right)
        )
        for left, right in instance.queries
    ]
    elapsed = time.perf_counter() - start
    for (left, right), estimate in zip(instance.queries, estimates):
        worst = max(
            worst, _relative_error(estimate, instance.exact_join(left, right))
        )
    return elapsed, {
        "updates": instance.total_updates(),
        "relative_error": worst,
        "sketch_bytes": engine.total_space_in_counters() * _BYTES_PER_COUNTER,
    }


def _workload_suites(family: str) -> dict[str, dict[str, Any]]:
    """Suite params for one family of the workload.* series."""
    common = {"family": family, "seed": 0, "engine_seed": 101}
    return {
        "smoke": {**common, "corpus": "smoke", "width": 256, "depth": 5},
        "full": {**common, "corpus": "full", "width": 1024, "depth": 7},
    }


for _family in (
    "skew_drift",
    "delete_churn",
    "filtered_subset_sum",
    "join_correlated",
    "join_anticorrelated",
):
    _register(
        f"workload.{_family}",
        f"StreamEngine ingest + query on the adversarial {_family!r} corpus "
        "family (repro.workloads): throughput under adversarial streams, "
        "with max realized relative error vs exact ground truth",
        _workload_suites(_family),
    )(_run_workload_scenario)
