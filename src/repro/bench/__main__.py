"""CLI for the benchmark harness.

Run a suite and write a BENCH document (``run`` may be omitted)::

    python -m repro.bench --suite smoke --json-out BENCH_<rev>.json
    python -m repro.bench run --suite full --json-out results/BENCH_<rev>.json

``<rev>`` in the output path is replaced with the detected revision.

Diff two BENCH documents (exit 1 on regression)::

    python -m repro.bench compare benchmarks/baselines/BENCH_baseline.json \\
        BENCH_abc1234.json --max-slowdown 0

List the registered scenarios::

    python -m repro.bench list
"""

from __future__ import annotations

import argparse
import json
import sys

from .runner import DEFAULT_REPEATS, detect_revision, run_suite
from .scenarios import SCENARIOS, suite_names
from .schema import compare_bench, read_bench, render_compare, write_bench

_COMMANDS = ("run", "compare", "list")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run benchmark suites and diff their BENCH documents.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a suite and emit a BENCH document")
    run.add_argument(
        "--suite",
        default="smoke",
        choices=suite_names(),
        help="scenario suite to run (default: smoke)",
    )
    run.add_argument(
        "--json-out",
        metavar="PATH",
        help="write the BENCH document here; '<rev>' expands to the "
        "detected revision (default: print to stdout)",
    )
    run.add_argument(
        "--repeats",
        type=int,
        default=DEFAULT_REPEATS,
        help=f"timing repeats per scenario (default: {DEFAULT_REPEATS})",
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress per-scenario progress"
    )
    run.add_argument(
        "--profile-out",
        metavar="PATH",
        help="run the suite under the repro.profile sampling profiler "
        "and write the stack samples here as JSONL",
    )
    run.add_argument(
        "--timeseries-out",
        metavar="PATH",
        help="run the suite under the repro.profile flight recorder "
        "and write the telemetry frames here as JSONL",
    )

    compare = sub.add_parser(
        "compare", help="diff two BENCH documents; exit 1 on regression"
    )
    compare.add_argument("baseline", help="baseline BENCH JSON path")
    compare.add_argument("current", help="current BENCH JSON path")
    compare.add_argument(
        "--max-slowdown",
        type=float,
        default=2.0,
        help="fail if a median is this many times the baseline; "
        "0 disables the timing gate, e.g. across machines (default: 2.0)",
    )
    compare.add_argument(
        "--max-error-increase",
        type=float,
        default=0.05,
        help="fail if relative error grows by more than this (default: 0.05)",
    )
    compare.add_argument(
        "--max-bytes-growth",
        type=float,
        default=1.05,
        help="fail if sketch bytes exceed this ratio of baseline "
        "(default: 1.05)",
    )

    sub.add_parser("list", help="list registered scenarios and suites")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    # `run` is the default subcommand: `python -m repro.bench --suite smoke`.
    if argv and argv[0] not in _COMMANDS and argv[0] not in ("-h", "--help"):
        argv.insert(0, "run")
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        for scenario in SCENARIOS:
            suites = ", ".join(sorted(scenario.suites))
            print(f"{scenario.name}  [{suites}]")
            print(f"    {scenario.description}")
        return 0

    if args.command == "run":
        profiling = bool(args.profile_out or args.timeseries_out)
        if profiling:
            from ..profile import (
                PROFILER,
                RECORDER,
                write_profile_jsonl,
                write_timeseries_jsonl,
            )

            if args.profile_out:
                PROFILER.reset()
                PROFILER.start()
            if args.timeseries_out:
                RECORDER.reset()
                RECORDER.start()
        try:
            progress = None if args.quiet else lambda msg: print(msg, file=sys.stderr)
            doc = run_suite(args.suite, repeats=args.repeats, progress=progress)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        finally:
            if profiling:
                PROFILER.stop()
                RECORDER.stop()
        if profiling:
            try:
                if args.profile_out:
                    snap = PROFILER.snapshot()
                    write_profile_jsonl(args.profile_out, snap)
                    print(
                        f"wrote {args.profile_out} "
                        f"({len(snap['samples'])} stack samples)"
                    )
                if args.timeseries_out:
                    snap = RECORDER.snapshot()
                    write_timeseries_jsonl(args.timeseries_out, snap)
                    print(
                        f"wrote {args.timeseries_out} "
                        f"({len(snap['frames'])} telemetry frames)"
                    )
            except OSError as exc:
                print(f"error: cannot write profile output: {exc}", file=sys.stderr)
                return 1
        if args.json_out:
            path = args.json_out.replace("<rev>", detect_revision())
            try:
                write_bench(path, doc)
            except OSError as exc:
                print(f"error: cannot write {path}: {exc}", file=sys.stderr)
                return 1
            print(f"wrote {path} ({len(doc['records'])} records)")
        else:
            print(json.dumps(doc, indent=2, sort_keys=True))
        return 0

    # compare
    try:
        baseline = read_bench(args.baseline)
        current = read_bench(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    rows, regressions = compare_bench(
        baseline,
        current,
        max_slowdown=args.max_slowdown,
        max_error_increase=args.max_error_increase,
        max_bytes_growth=args.max_bytes_growth,
    )
    print(
        f"baseline {baseline['revision']} ({baseline['suite']}) vs "
        f"current {current['revision']} ({current['suite']})"
    )
    print(render_compare(rows, regressions))
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
