"""Machine-readable performance-trajectory harness (``repro.bench``).

The ad-hoc ``benchmarks/bench_*.py`` scripts print tables for humans;
this package makes the same performance story *diffable across commits*.
A uniform runner executes a registered suite of deterministic scenarios
and emits one versioned JSON "BENCH" document per run::

    python -m repro.bench run --suite smoke --json-out BENCH_<rev>.json
    python -m repro.bench compare baselines/BENCH_baseline.json BENCH_abc.json

``compare`` exits non-zero when a record regresses past its threshold,
which is what lets CI hold the line on accuracy and sketch size (both
seed-deterministic) and lets a developer hold it on wall-clock locally.

Design contract (shared with :mod:`repro.obs` and :mod:`repro.trace`):
importing this package pulls in **no third-party dependencies** — numpy
and the repro kernels load lazily only when scenarios actually run.
"""

from .runner import DEFAULT_REPEATS, detect_revision, run_scenario, run_suite
from .scenarios import SCENARIOS, Scenario, scenarios_for, suite_names
from .schema import (
    BENCH_VERSION,
    compare_bench,
    read_bench,
    record_key,
    render_compare,
    validate_bench,
    write_bench,
)

__all__ = [
    "BENCH_VERSION",
    "DEFAULT_REPEATS",
    "SCENARIOS",
    "Scenario",
    "compare_bench",
    "detect_revision",
    "read_bench",
    "record_key",
    "render_compare",
    "run_scenario",
    "run_suite",
    "scenarios_for",
    "suite_names",
    "validate_bench",
    "write_bench",
]
