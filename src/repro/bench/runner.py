"""Uniform scenario runner: repeats, robust statistics, BENCH assembly."""

from __future__ import annotations

import os
import statistics
import subprocess
from typing import Any, Callable

from .schema import BENCH_VERSION, validate_bench
from .scenarios import Scenario, scenarios_for

#: Default timing repeats per scenario.
DEFAULT_REPEATS = 5


def detect_revision() -> str:
    """Best-effort identifier for the code under measurement.

    ``REPRO_REVISION`` wins (lets CI pin the value), then the git short
    hash, then ``"unknown"`` — a BENCH file is still useful without one.
    """
    env = os.environ.get("REPRO_REVISION")
    if env:
        return env
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except OSError:
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def run_scenario(
    scenario: Scenario, params: dict[str, Any], repeats: int = DEFAULT_REPEATS
) -> dict[str, Any]:
    """Run one scenario ``repeats`` times; return its BENCH record.

    Wall-clock is summarised as median and IQR over the repeats (robust
    to scheduler noise); the deterministic extras (relative error, sketch
    bytes) are taken from the last repeat — they are identical in all of
    them by the scenario contract.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    timings: list[float] = []
    extras: dict[str, Any] = {}
    for _ in range(repeats):
        elapsed, extras = scenario.run(dict(params))
        timings.append(elapsed)
    median = statistics.median(timings)
    if len(timings) >= 2:
        quartiles = statistics.quantiles(timings, n=4, method="inclusive")
        iqr = quartiles[2] - quartiles[0]
    else:
        iqr = 0.0
    updates = extras.get("updates")
    return {
        "scenario": scenario.name,
        "params": dict(params),
        "wall_clock": {"median": median, "iqr": iqr, "repeats": repeats},
        "updates_per_sec": (updates / median) if updates and median > 0 else None,
        "relative_error": extras.get("relative_error"),
        "sketch_bytes": extras.get("sketch_bytes"),
    }


def run_suite(
    suite: str,
    repeats: int = DEFAULT_REPEATS,
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Run every scenario registered for ``suite``; return a BENCH doc."""
    pairs = scenarios_for(suite)
    if not pairs:
        raise ValueError(f"unknown suite {suite!r}")
    records = []
    for scenario, params in pairs:
        if progress is not None:
            progress(f"running {scenario.name} {params}")
        records.append(run_scenario(scenario, params, repeats))
    return validate_bench(
        {
            "version": BENCH_VERSION,
            "kind": "repro.bench",
            "suite": suite,
            "revision": detect_revision(),
            "records": records,
        }
    )
