"""BENCH file schema, validation and the trajectory ``compare`` logic.

A BENCH file is one point on the repo's performance trajectory: a
versioned JSON document of per-scenario records

.. code-block:: json

    {"version": 1, "kind": "repro.bench", "suite": "smoke",
     "revision": "abc1234",
     "records": [{"scenario": "...", "params": {...},
                  "wall_clock": {"median": 0.01, "iqr": 0.001, "repeats": 5},
                  "updates_per_sec": 1e6,
                  "relative_error": 0.03,
                  "sketch_bytes": 14336}]}

``updates_per_sec`` / ``relative_error`` / ``sketch_bytes`` are ``null``
where a scenario has no such axis.  Records are matched across files by
``(scenario, params)``, so a parameter change is a *new* trajectory
point, never a silent comparison of unlike workloads.

``compare_bench`` diffs two documents and classifies regressions:

* wall-clock: current median beyond ``max_slowdown`` x baseline
  (``max_slowdown <= 0`` disables the timing gate — the right choice
  when baseline and current ran on different machines, e.g. CI);
* accuracy: ``relative_error`` grew by more than ``max_error_increase``
  (absolute delta; errors are seed-deterministic, so any growth is a
  real behaviour change);
* space: ``sketch_bytes`` grew beyond ``max_bytes_growth`` x baseline.

Like the rest of this package, stdlib-only.
"""

from __future__ import annotations

import json
from typing import Any

#: BENCH document schema version.
BENCH_VERSION = 1

_WALL_FIELDS = ("median", "iqr", "repeats")
_OPTIONAL_METRICS = ("updates_per_sec", "relative_error", "sketch_bytes")


def validate_bench(doc: Any) -> dict[str, Any]:
    """Check a BENCH document against the schema; returns it unchanged.

    Raises ``ValueError`` describing the first violation.
    """
    if not isinstance(doc, dict):
        raise ValueError(f"BENCH document must be a dict, got {type(doc).__name__}")
    if doc.get("version") != BENCH_VERSION:
        raise ValueError(
            f"unsupported BENCH version {doc.get('version')!r} "
            f"(expected {BENCH_VERSION})"
        )
    if doc.get("kind") != "repro.bench":
        raise ValueError(f"unexpected BENCH kind {doc.get('kind')!r}")
    for field in ("suite", "revision"):
        if not isinstance(doc.get(field), str) or not doc[field]:
            raise ValueError(f"BENCH field {field!r} missing or empty")
    records = doc.get("records")
    if not isinstance(records, list) or not records:
        raise ValueError("BENCH section 'records' missing or empty")
    seen: set[str] = set()
    for index, record in enumerate(records):
        if not isinstance(record, dict):
            raise ValueError(f"records[{index}] is not a dict")
        if not isinstance(record.get("scenario"), str) or not record["scenario"]:
            raise ValueError(f"records[{index}]['scenario'] missing or empty")
        if not isinstance(record.get("params"), dict):
            raise ValueError(f"records[{index}]['params'] must be a dict")
        key = record_key(record)
        if key in seen:
            raise ValueError(f"records[{index}] duplicates {key}")
        seen.add(key)
        wall = record.get("wall_clock")
        if not isinstance(wall, dict):
            raise ValueError(f"records[{index}]['wall_clock'] must be a dict")
        missing = [f for f in _WALL_FIELDS if f not in wall]
        if missing:
            raise ValueError(f"records[{index}]['wall_clock'] missing {missing}")
        for field in _WALL_FIELDS:
            if not isinstance(wall[field], (int, float)) or wall[field] < 0:
                raise ValueError(
                    f"records[{index}]['wall_clock'][{field!r}] must be "
                    f"a non-negative number, got {wall[field]!r}"
                )
        for field in _OPTIONAL_METRICS:
            if field not in record:
                raise ValueError(f"records[{index}] missing field {field!r}")
            value = record[field]
            if value is not None and (
                not isinstance(value, (int, float)) or value < 0
            ):
                raise ValueError(
                    f"records[{index}][{field!r}] must be null or a "
                    f"non-negative number, got {value!r}"
                )
    return doc


def record_key(record: dict[str, Any]) -> str:
    """Stable identity of one record: scenario plus canonicalised params."""
    return f"{record['scenario']}::{json.dumps(record['params'], sort_keys=True)}"


def compare_bench(
    baseline: dict[str, Any],
    current: dict[str, Any],
    max_slowdown: float = 2.0,
    max_error_increase: float = 0.05,
    max_bytes_growth: float = 1.05,
) -> tuple[list[dict[str, Any]], list[str]]:
    """Diff two validated BENCH documents.

    Returns ``(rows, regressions)``: one row per record key across both
    files (``status``: matched/added/removed plus per-axis deltas), and a
    list of human-readable regression descriptions (empty == pass).
    """
    validate_bench(baseline)
    validate_bench(current)
    base_by_key = {record_key(r): r for r in baseline["records"]}
    cur_by_key = {record_key(r): r for r in current["records"]}
    rows: list[dict[str, Any]] = []
    regressions: list[str] = []
    for key in sorted(set(base_by_key) | set(cur_by_key)):
        base, cur = base_by_key.get(key), cur_by_key.get(key)
        if base is None:
            rows.append({"key": key, "status": "added"})
            continue
        if cur is None:
            rows.append({"key": key, "status": "removed"})
            regressions.append(f"{key}: scenario disappeared from current file")
            continue
        row: dict[str, Any] = {"key": key, "status": "matched"}
        base_median = base["wall_clock"]["median"]
        cur_median = cur["wall_clock"]["median"]
        row["wall_clock"] = {"baseline": base_median, "current": cur_median}
        if base_median > 0:
            ratio = cur_median / base_median
            row["wall_clock"]["ratio"] = ratio
            if max_slowdown > 0 and ratio > max_slowdown:
                regressions.append(
                    f"{key}: wall-clock median {cur_median:.6f}s is "
                    f"{ratio:.2f}x baseline {base_median:.6f}s "
                    f"(limit {max_slowdown:.2f}x)"
                )
        for field in _OPTIONAL_METRICS:
            if base[field] is None or cur[field] is None:
                continue
            row[field] = {"baseline": base[field], "current": cur[field]}
        err = row.get("relative_error")
        if err is not None:
            delta = err["current"] - err["baseline"]
            err["delta"] = delta
            if delta > max_error_increase:
                regressions.append(
                    f"{key}: relative error grew {err['baseline']:.4f} -> "
                    f"{err['current']:.4f} (+{delta:.4f}, limit "
                    f"+{max_error_increase:.4f})"
                )
        size = row.get("sketch_bytes")
        if size is not None and size["baseline"] > 0:
            ratio = size["current"] / size["baseline"]
            size["ratio"] = ratio
            if ratio > max_bytes_growth:
                regressions.append(
                    f"{key}: sketch bytes grew {size['baseline']} -> "
                    f"{size['current']} ({ratio:.3f}x, limit "
                    f"{max_bytes_growth:.3f}x)"
                )
        rows.append(row)
    return rows, regressions


def render_compare(rows: list[dict[str, Any]], regressions: list[str]) -> str:
    """Human-readable report for ``python -m repro.bench compare``."""
    lines = []
    for row in rows:
        if row["status"] != "matched":
            lines.append(f"{row['status']:>8}  {row['key']}")
            continue
        wall = row["wall_clock"]
        ratio = wall.get("ratio")
        parts = [
            f"time {wall['baseline'] * 1e3:.3f}ms -> {wall['current'] * 1e3:.3f}ms"
            + (f" ({ratio:.2f}x)" if ratio is not None else "")
        ]
        if "relative_error" in row:
            err = row["relative_error"]
            parts.append(
                f"err {err['baseline']:.4f} -> {err['current']:.4f}"
            )
        if "sketch_bytes" in row:
            size = row["sketch_bytes"]
            parts.append(f"bytes {size['baseline']} -> {size['current']}")
        if "updates_per_sec" in row:
            ups = row["updates_per_sec"]
            parts.append(
                f"upd/s {ups['baseline']:.3g} -> {ups['current']:.3g}"
            )
        lines.append(f" matched  {row['key']}\n          {'; '.join(parts)}")
    if regressions:
        lines.append("")
        lines.append(f"REGRESSIONS ({len(regressions)}):")
        lines.extend(f"  - {r}" for r in regressions)
    else:
        lines.append("")
        lines.append("no regressions")
    return "\n".join(lines)


def write_bench(path: str, doc: dict[str, Any]) -> None:
    """Validate and write a BENCH document as JSON."""
    validate_bench(doc)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def read_bench(path: str) -> dict[str, Any]:
    """Load and validate a BENCH document."""
    with open(path, encoding="utf-8") as fh:
        return validate_bench(json.load(fh))
