"""Domain-partitioned AGMS sketching (Dobra, Garofalakis, Gehrke, Rastogi [5]).

The pre-skimming attempt at taming basic sketching's variance: split the
value domain into partitions, sketch each partition separately, and sum
the per-partition join estimates.  The error of each partition scales with
``sqrt(SJ(f_p) * SJ(g_p))``, so a good partitioning isolates the dense
values — *but* computing a good partitioning "requires a-priori knowledge
of the data distribution in the form of coarse frequency statistics",
which the paper (§1) calls out as the approach's serious limitation.  The
planner below therefore takes explicit frequency *hints* (histograms); the
E11 panel feeds it hints of varying quality to reproduce exactly that
sensitivity.

Planning follows [5]'s structure:

* values are sorted by the ratio ``f_hint / g_hint`` (the optimal
  contiguous-partition ordering for minimising the summed error term);
* partition boundaries are chosen by dynamic programming over a coarsened
  boundary grid to minimise ``sum_p sqrt(SJ_f(p) * SJ_g(p))``;
* the averaging-copy budget is divided across partitions proportionally to
  each partition's ``sqrt(SJ_f(p) * SJ_g(p))`` (the variance-optimal
  space allocation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DomainError, IncompatibleSketchError, ParameterError
from ..sketches.agms import AGMSSchema, AGMSSketch
from ..sketches.base import StreamSynopsis
from ..streams.model import FrequencyVector

#: Upper bound on boundary-candidate positions for the planner's DP.
_MAX_BOUNDARY_GRID = 256


@dataclass(frozen=True)
class PartitionPlan:
    """A domain partitioning plus its per-partition averaging allocation."""

    #: ``assignment[v]`` = partition index of domain value ``v``.
    assignment: np.ndarray
    #: Averaging copies (``s1``) allocated to each partition.
    averaging: tuple[int, ...]

    @property
    def num_partitions(self) -> int:
        """Number of partitions in the plan."""
        return len(self.averaging)


def plan_partitions(
    f_hint: FrequencyVector,
    g_hint: FrequencyVector,
    num_partitions: int,
    averaging_budget: int,
) -> PartitionPlan:
    """Choose partitions and a space split from coarse frequency hints.

    Parameters
    ----------
    f_hint, g_hint:
        A-priori frequency statistics (e.g. stale histograms).  Quality of
        the final estimate degrades gracefully with hint quality — the
        limitation the skimmed sketch removes.
    num_partitions:
        Number of domain partitions.
    averaging_budget:
        Total averaging copies (``sum of per-partition s1``) to allocate.
    """
    if f_hint.domain_size != g_hint.domain_size:
        raise ParameterError("hint domains differ")
    if num_partitions < 1:
        raise ParameterError(f"num_partitions must be >= 1, got {num_partitions}")
    if averaging_budget < num_partitions:
        raise ParameterError(
            f"averaging_budget {averaging_budget} cannot give every one of "
            f"{num_partitions} partitions a copy"
        )

    fc = np.clip(f_hint.counts, 0.0, None)
    gc = np.clip(g_hint.counts, 0.0, None)
    # Ratio ordering; values absent from both hints sort to the front
    # harmlessly (they contribute no hinted self-join mass anywhere).
    ratio = np.where(gc > 0, fc / np.maximum(gc, 1e-30), np.inf)
    ratio[(fc == 0) & (gc == 0)] = 0.0
    order = np.argsort(ratio, kind="stable")

    f2 = np.concatenate([[0.0], np.cumsum(fc[order] ** 2)])
    g2 = np.concatenate([[0.0], np.cumsum(gc[order] ** 2)])
    domain = f_hint.domain_size

    grid = np.unique(
        np.linspace(0, domain, min(_MAX_BOUNDARY_GRID, domain) + 1).astype(np.int64)
    )

    def segment_cost(a: int, b: int) -> float:
        return float(np.sqrt((f2[b] - f2[a]) * (g2[b] - g2[a])))

    # DP over the coarse grid: best[j][k] = min cost splitting grid[:j+1]
    # into k segments.
    num_nodes = grid.size
    k_max = min(num_partitions, num_nodes - 1)
    best = np.full((num_nodes, k_max + 1), np.inf)
    back = np.zeros((num_nodes, k_max + 1), dtype=np.int64)
    best[0, 0] = 0.0
    for j in range(1, num_nodes):
        for k in range(1, k_max + 1):
            for i in range(k - 1, j):
                cost = best[i, k - 1] + segment_cost(grid[i], grid[j])
                if cost < best[j, k]:
                    best[j, k] = cost
                    back[j, k] = i

    boundaries = [int(grid[-1])]
    j, k = num_nodes - 1, k_max
    while k > 0:
        j = int(back[j, k])
        boundaries.append(int(grid[j]))
        k -= 1
    boundaries = sorted(set(boundaries) | {0, domain})

    assignment = np.zeros(domain, dtype=np.int64)
    costs = []
    for part, (a, b) in enumerate(zip(boundaries[:-1], boundaries[1:])):
        assignment[order[a:b]] = part
        costs.append(segment_cost(a, b))

    averaging = _allocate_budget(np.asarray(costs), averaging_budget)
    return PartitionPlan(assignment=assignment, averaging=tuple(averaging))


def _allocate_budget(costs: np.ndarray, budget: int) -> list[int]:
    """Split ``budget`` copies across partitions proportionally to ``costs``.

    Every partition gets at least one copy; the remainder goes by largest
    fractional share (variance-optimal allocation of [5]).
    """
    num = costs.size
    baseline = np.ones(num, dtype=np.int64)
    spare = budget - num
    total_cost = costs.sum()
    if spare <= 0 or total_cost <= 0:
        baseline[0] += max(0, spare)
        return baseline.tolist()
    shares = costs / total_cost * spare
    extra = np.floor(shares).astype(np.int64)
    remainder = spare - int(extra.sum())
    order = np.argsort(-(shares - extra), kind="stable")
    extra[order[:remainder]] += 1
    return (baseline + extra).tolist()


class PartitionedAGMSSchema:
    """Shared randomness/shape for partition-routed AGMS sketches."""

    def __init__(self, plan: PartitionPlan, median: int, seed: int = 0):
        if median < 1:
            raise ParameterError(f"median must be >= 1, got {median}")
        self.plan = plan
        self.median = median
        self.seed = seed
        self.domain_size = int(plan.assignment.size)
        children = np.random.SeedSequence(seed).spawn(plan.num_partitions)
        self.partition_schemas = [
            AGMSSchema(
                averaging,
                median,
                self.domain_size,
                seed=int(child.generate_state(1)[0]),
            )
            for averaging, child in zip(plan.averaging, children)
        ]

    def create_sketch(self) -> "PartitionedAGMSSketch":
        """A fresh empty partitioned sketch bound to this schema."""
        return PartitionedAGMSSketch(self)

    def sketch_of(self, frequencies: FrequencyVector) -> "PartitionedAGMSSketch":
        """Convenience: a sketch pre-loaded with a whole frequency vector."""
        sketch = self.create_sketch()
        sketch.ingest_frequency_vector(frequencies)
        return sketch


class PartitionedAGMSSketch(StreamSynopsis):
    """One stream's partitioned AGMS synopsis: values routed per partition."""

    def __init__(self, schema: PartitionedAGMSSchema):
        self._schema = schema
        self._partitions = [s.create_sketch() for s in schema.partition_schemas]

    @property
    def schema(self) -> PartitionedAGMSSchema:
        """The partitioned schema this sketch was created from."""
        return self._schema

    @property
    def domain_size(self) -> int:
        """Size of the integer value domain this synopsis covers."""
        return self._schema.domain_size

    def update(self, value: int, weight: float = 1.0) -> None:
        if not 0 <= value < self.domain_size:
            raise DomainError(f"value {value} outside domain [0, {self.domain_size})")
        partition = int(self._schema.plan.assignment[value])
        self._partitions[partition].update(value, weight)

    def update_bulk(self, values: np.ndarray, weights: np.ndarray | None = None) -> None:
        values = np.asarray(values, dtype=np.int64)
        if values.size == 0:
            return
        if values.min() < 0 or values.max() >= self.domain_size:
            raise DomainError("values fall outside the domain")
        if weights is None:
            weights = np.ones(values.size)
        else:
            weights = np.asarray(weights, dtype=np.float64)
        routed = self._schema.plan.assignment[values]
        for partition, sketch in enumerate(self._partitions):
            mask = routed == partition
            if mask.any():
                sketch.update_bulk(values[mask], weights[mask])

    def size_in_counters(self) -> int:
        return sum(p.size_in_counters() for p in self._partitions)

    def est_join_size(self, other: "PartitionedAGMSSketch") -> float:
        """Sum of per-partition ESTJOINSIZE estimates (Dobra et al.)."""
        if not isinstance(other, PartitionedAGMSSketch):
            raise IncompatibleSketchError(
                f"cannot combine PartitionedAGMSSketch with {type(other).__name__}"
            )
        if other._schema is not self._schema:
            raise IncompatibleSketchError(
                "partitioned sketches must share one schema object"
            )
        return float(
            sum(
                mine.est_join_size(theirs)
                for mine, theirs in zip(self._partitions, other._partitions)
            )
        )

    def __repr__(self) -> str:
        return (
            f"PartitionedAGMSSketch(partitions={len(self._partitions)}, "
            f"domain_size={self.domain_size})"
        )
