"""Reservoir-sampling join estimator (Vitter [13]) — the sampling baseline.

Section 2 of the paper recalls why sampling loses to sketches for join
queries: the cross-product estimator has enormous variance when the join
is a small fraction of the cross product ([14, 4, 15]), and a sample
cannot survive deletions.  Both weaknesses are deliberately preserved
here: this estimator exists so the E11 baseline panel can show them.

Estimator: with uniform samples ``S_F`` (size ``k_F`` from ``N_F``
elements) and ``S_G``, the number of value-matching pairs between the
samples, scaled by ``(N_F * N_G) / (k_F * k_G)``, is an unbiased estimate
of ``<f, g>``.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from ..errors import DeletionUnsupportedError, ParameterError
from ..sketches.base import StreamSynopsis


class ReservoirSample(StreamSynopsis):
    """Classic size-``k`` uniform reservoir over an insert-only stream."""

    def __init__(self, capacity: int, domain_size: int, seed: int = 0):
        if capacity < 1:
            raise ParameterError(f"capacity must be >= 1, got {capacity}")
        if domain_size < 1:
            raise ParameterError(f"domain_size must be >= 1, got {domain_size}")
        self.capacity = capacity
        self._domain_size = domain_size
        self._rng = np.random.default_rng(seed)
        self._reservoir: list[int] = []
        self._seen = 0

    @property
    def domain_size(self) -> int:
        """Size of the integer value domain this synopsis covers."""
        return self._domain_size

    @property
    def stream_size(self) -> int:
        """Number of elements observed so far (``N``)."""
        return self._seen

    @property
    def sample(self) -> list[int]:
        """The current reservoir contents (copy)."""
        return list(self._reservoir)

    def update(self, value: int, weight: float = 1.0) -> None:
        if weight != 1.0:
            raise DeletionUnsupportedError(
                "reservoir samples only support unit-weight inserts; "
                "a deletion would silently bias the sample (paper §1)"
            )
        self._seen += 1
        if len(self._reservoir) < self.capacity:
            self._reservoir.append(value)
            return
        slot = int(self._rng.integers(0, self._seen))
        if slot < self.capacity:
            self._reservoir[slot] = value

    def update_bulk(self, values: np.ndarray, weights: np.ndarray | None = None) -> None:
        values = np.asarray(values, dtype=np.int64)
        if weights is not None and not np.all(np.asarray(weights) == 1.0):
            raise DeletionUnsupportedError(
                "reservoir samples only support unit-weight inserts"
            )
        for value in values:
            self.update(int(value))

    def size_in_counters(self) -> int:
        return self.capacity

    def est_join_size(self, other: "ReservoirSample") -> float:
        """Cross-product scaled match count between the two reservoirs."""
        if not isinstance(other, ReservoirSample):
            raise TypeError(f"expected ReservoirSample, got {type(other).__name__}")
        if not self._reservoir or not other._reservoir:
            return 0.0
        mine = Counter(self._reservoir)
        matches = sum(
            count * mine.get(value, 0) for value, count in Counter(other._reservoir).items()
        )
        scale = (self._seen * other._seen) / (
            len(self._reservoir) * len(other._reservoir)
        )
        return float(matches * scale)

    def __repr__(self) -> str:
        return (
            f"ReservoirSample(capacity={self.capacity}, seen={self._seen}, "
            f"held={len(self._reservoir)})"
        )


def sample_join_estimate(
    f_counts: np.ndarray,
    g_counts: np.ndarray,
    capacity: int,
    rng: np.random.Generator,
) -> float:
    """Join estimate from fresh uniform samples of two frequency vectors.

    Draws a with-replacement size-``capacity`` sample from each stream's
    element multiset (the distribution a reservoir of an ``N``-element
    stream holds) and applies the cross-product estimator.  The evaluation
    harness uses this instead of replaying millions of elements through
    :class:`ReservoirSample`; the estimator and its variance are the same.
    """
    if capacity < 1:
        raise ParameterError(f"capacity must be >= 1, got {capacity}")
    f_counts = np.clip(np.asarray(f_counts, dtype=np.float64), 0.0, None)
    g_counts = np.clip(np.asarray(g_counts, dtype=np.float64), 0.0, None)
    n_f, n_g = f_counts.sum(), g_counts.sum()
    if n_f <= 0 or n_g <= 0:
        return 0.0
    sample_f = rng.multinomial(capacity, f_counts / n_f)
    sample_g = rng.multinomial(capacity, g_counts / n_g)
    matches = float(np.dot(sample_f, sample_g))
    return matches * (n_f * n_g) / (capacity * capacity)
