"""Bifocal sampling (Ganguly, Gibbons, Matias, Silberschatz [16]).

The intellectual ancestor of skimming: estimate a join by treating
*dense* and *sparse* frequencies separately, with samples instead of
sketches.  The paper stresses (§1) why bifocal sampling is **unsuitable
for streams**: the sparse-side sub-joins "assume the existence of indices
to access (possibly multiple times) relation tuples to determine sparse
frequency counts".  We therefore implement it honestly as an *offline
comparator*: it receives the exact frequency vectors to play the role of
those relation indices.  Its appearance in the E11 baseline panel is
precisely to show what the skimmed sketch achieves *without* that access.

Algorithm (adapted to our value-stream model):

1. draw a size-``k`` frequency-proportional sample from each relation;
2. classify a value *dense* in a relation if it occurs at least
   ``dense_sample_count`` times in that relation's sample (an implicit
   frequency threshold of about ``dense_sample_count * N / k``);
3. dense-dense: product of scaled sample frequencies, summed over values
   dense in both;
4. dense-sparse / sparse-dense: scaled sample frequency of the dense side
   times the *indexed* (exact) frequency on the other side;
5. sparse-sparse: for each sparse sampled element of ``F``, probe the
   index of ``G`` for its (sparse) frequency and scale by ``N_F / k_F``.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from ..streams.model import FrequencyVector
from ..errors import ParameterError


class BifocalEstimator:
    """Offline bifocal-sampling join-size estimator (comparator only).

    Parameters
    ----------
    sample_size:
        Sample size ``k`` drawn from each relation.
    dense_sample_count:
        Minimum number of sample occurrences for a value to be classified
        dense in a relation (default 3, a common choice: it puts the
        implicit dense threshold at ``3 N / k``).
    """

    def __init__(self, sample_size: int, dense_sample_count: int = 3):
        if sample_size < 1:
            raise ParameterError(f"sample_size must be >= 1, got {sample_size}")
        if dense_sample_count < 1:
            raise ParameterError(
                f"dense_sample_count must be >= 1, got {dense_sample_count}"
            )
        self.sample_size = sample_size
        self.dense_sample_count = dense_sample_count

    def size_in_counters(self) -> int:
        """Sample slots per relation (for the space-parity bookkeeping)."""
        return self.sample_size

    def estimate(
        self,
        f: FrequencyVector,
        g: FrequencyVector,
        rng: np.random.Generator,
    ) -> float:
        """Bifocal estimate of ``COUNT(F join G)``.

        ``f`` and ``g`` double as the "relation indices" the original
        algorithm probes for sparse frequency counts.
        """
        n_f, n_g = f.total_count(), g.total_count()
        if n_f <= 0 or n_g <= 0:
            return 0.0

        sample_f = self._draw_sample(f, rng)
        sample_g = self._draw_sample(g, rng)
        scale_f = n_f / self.sample_size
        scale_g = n_g / self.sample_size

        dense_f = {v: c for v, c in sample_f.items() if c >= self.dense_sample_count}
        dense_g = {v: c for v, c in sample_g.items() if c >= self.dense_sample_count}

        # Dense-dense: both frequencies estimated from the samples.
        dd = sum(
            (count_f * scale_f) * (dense_g[v] * scale_g)
            for v, count_f in dense_f.items()
            if v in dense_g
        )

        # Dense-sparse: dense estimate on one side, index probe on the other.
        ds = sum(
            (count_f * scale_f) * g[v]
            for v, count_f in dense_f.items()
            if v not in dense_g
        )
        sd = sum(
            (count_g * scale_g) * f[v]
            for v, count_g in dense_g.items()
            if v not in dense_f
        )

        # Sparse-sparse: probe G's index for each sparse sampled F element.
        ss = scale_f * sum(
            count_f * g[v]
            for v, count_f in sample_f.items()
            if v not in dense_f and v not in dense_g
        )

        return float(dd + ds + sd + ss)

    def _draw_sample(self, vec: FrequencyVector, rng: np.random.Generator) -> Counter:
        """Frequency-proportional with-replacement sample as value counts."""
        counts = np.clip(vec.counts, 0.0, None)
        total = counts.sum()
        if total <= 0:
            return Counter()
        drawn = rng.multinomial(self.sample_size, counts / total)
        support = np.flatnonzero(drawn)
        return Counter({int(v): int(drawn[v]) for v in support})

    def __repr__(self) -> str:
        return (
            f"BifocalEstimator(sample_size={self.sample_size}, "
            f"dense_sample_count={self.dense_sample_count})"
        )
