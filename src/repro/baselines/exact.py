"""Exact (unbounded-memory) reference answers for evaluation.

Ground truth for every experiment: the exact join size, self-join sizes,
and per-value frequencies, computed from full frequency vectors.  This is
what a conventional DBMS with unrestricted memory would return; every
approximate estimator in the library is scored against it.
"""

from __future__ import annotations

import numpy as np

from ..streams.model import FrequencyVector


def exact_join_size(f: FrequencyVector, g: FrequencyVector) -> float:
    """``COUNT(F join G) = <f, g>`` exactly."""
    return f.join_size(g)


def exact_self_join_size(f: FrequencyVector) -> float:
    """Second moment ``F2(f)`` exactly."""
    return f.self_join_size()


def exact_sub_join_sizes(
    f: FrequencyVector, g: FrequencyVector, threshold_f: float, threshold_g: float
) -> dict[str, float]:
    """Exact values of the four dense/sparse sub-joins of Section 3.

    A value is *dense* in a stream when its frequency reaches that stream's
    threshold; the dict keys are ``"dense_dense"``, ``"dense_sparse"``,
    ``"sparse_dense"`` and ``"sparse_sparse"``.  Used by tests to check the
    estimator's decomposition against truth.
    """
    fc, gc = f.counts, g.counts
    f_dense = np.where(fc >= threshold_f, fc, 0.0)
    f_sparse = fc - f_dense
    g_dense = np.where(gc >= threshold_g, gc, 0.0)
    g_sparse = gc - g_dense
    return {
        "dense_dense": float(np.dot(f_dense, g_dense)),
        "dense_sparse": float(np.dot(f_dense, g_sparse)),
        "sparse_dense": float(np.dot(f_sparse, g_dense)),
        "sparse_sparse": float(np.dot(f_sparse, g_sparse)),
    }


def exact_top_k(f: FrequencyVector, k: int) -> list[tuple[int, float]]:
    """The true top-``k`` (value, frequency) pairs, decreasing frequency."""
    counts = f.counts
    order = np.argsort(-counts, kind="stable")[:k]
    return [(int(v), float(counts[v])) for v in order if counts[v] > 0]
