"""Comparator estimators: exact ground truth, reservoir sampling, bifocal
sampling, and domain-partitioned AGMS (every alternative the paper
discusses in Sections 1-3)."""

from .exact import (
    exact_join_size,
    exact_self_join_size,
    exact_sub_join_sizes,
    exact_top_k,
)
from .sampling import ReservoirSample
from .bifocal import BifocalEstimator
from .partitioned import (
    PartitionPlan,
    PartitionedAGMSSchema,
    PartitionedAGMSSketch,
    plan_partitions,
)

__all__ = [
    "BifocalEstimator",
    "PartitionPlan",
    "PartitionedAGMSSchema",
    "PartitionedAGMSSketch",
    "ReservoirSample",
    "exact_join_size",
    "exact_self_join_size",
    "exact_sub_join_sizes",
    "exact_top_k",
    "plan_partitions",
]
