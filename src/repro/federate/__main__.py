"""CLI for the federated telemetry plane.

Subcommands::

    python -m repro.federate selfcheck
        Prove the merge algebra and wire contracts end to end with three
        emulated origins (no numpy needed): capture -> JSON round-trip ->
        validate, merge commutativity and counter associativity, registry
        merge order-insensitivity, span-import nesting, per-origin
        Perfetto lanes.  Exit 0 when every check passes.

    python -m repro.federate validate FILE...
        Validate telemetry snapshot files against the wire schema.

    python -m repro.federate merge FILE... [--out OUT]
        Merge snapshot files into one (printed or written to OUT).

    python -m repro.federate run --sites N --rounds R --out-dir DIR
        Multi-site distributed demo (needs numpy): N telemetry-enabled
        sites ingest and report over R coordinator-minted rounds; writes
        DIR/metrics.json (merged, per-origin prefixed), DIR/trace.chrome.json
        (one stitched Perfetto timeline, one lane per site), and
        DIR/telemetry.<origin>.json (per-origin accumulated snapshots).
        Process boundaries are emulated by resetting the global
        singletons between per-site segments — the shipper's watermarks
        detect the resets, exactly as fresh per-process singletons would
        behave.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

try:  # package layout
    from ..obs.registry import MetricsRegistry
    from ..trace.export import trace_to_chrome
    from ..trace.tracer import SpanTracer
    from .snapshot import (
        TelemetryShipper,
        merge_all_telemetry,
        merge_telemetry,
        telemetry_from_json,
        telemetry_to_json,
        validate_telemetry,
    )
except ImportError:  # pragma: no cover - standalone layout
    from obs.registry import MetricsRegistry  # type: ignore
    from trace.export import trace_to_chrome  # type: ignore
    from trace.tracer import SpanTracer  # type: ignore
    from federate.snapshot import (  # type: ignore
        TelemetryShipper,
        merge_all_telemetry,
        merge_telemetry,
        telemetry_from_json,
        telemetry_to_json,
        validate_telemetry,
    )


def _emulated_origin(name: str, seed: int) -> tuple[dict[str, Any], TelemetryShipper]:
    """One in-process "site": private registry + tracer, one capture."""
    registry = MetricsRegistry(enabled=True)
    tracer = SpanTracer(enabled=True)
    for i in range(1 + seed):
        registry.count("demo.updates", 10 + i)
    registry.gauge("demo.round", seed + 1)
    for i in range(5):
        registry.observe("demo.latency", 0.01 * (seed + 1) * (i + 1))
    with tracer.span("demo.round", site=name):
        with tracer.span("demo.ingest"):
            tracer.instant("demo.mark", step=seed)
    shipper = TelemetryShipper(
        name, registry=registry, tracer=tracer, recorder=None, audit=None
    )
    return shipper.capture_telemetry(), shipper  # repro: noqa[R13] -- private always-enabled registry, not a singleton


def _cmd_selfcheck(_args: argparse.Namespace) -> int:
    failures = 0

    def check(ok: bool, label: str) -> None:
        nonlocal failures
        print(f"{'ok' if ok else 'FAIL'} - {label}")
        if not ok:
            failures += 1

    docs = {}
    for seed, name in enumerate(["site.alpha", "site.beta", "site.gamma"]):
        doc, _ = _emulated_origin(name, seed)
        docs[name] = doc
    a, b, c = docs["site.alpha"], docs["site.beta"], docs["site.gamma"]

    # 1. Wire round-trip.
    try:
        round_tripped = all(
            telemetry_from_json(telemetry_to_json(doc)) == doc
            for doc in docs.values()
        )
    except ValueError as exc:
        round_tripped = False
        print(f"     round-trip raised: {exc}")
    check(round_tripped, "wire schema validates and JSON round-trips exactly")

    # 2. Merge commutativity (whole document).
    check(
        merge_telemetry(a, b) == merge_telemetry(b, a),
        "merge_telemetry(a, b) == merge_telemetry(b, a)",
    )

    # 3. Counter associativity (integer-valued counters are exact).
    left = merge_telemetry(merge_telemetry(a, b), c)["counters"]
    right = merge_telemetry(a, merge_telemetry(b, c))["counters"]
    check(left == right, "counter merge is associative across three origins")

    # 4. Registry merge is order-insensitive for disjoint origins.
    forward, backward = MetricsRegistry(), MetricsRegistry()
    for name in sorted(docs):
        forward.merge_snapshot(docs[name], prefix=name)
    for name in sorted(docs, reverse=True):
        backward.merge_snapshot(docs[name], prefix=name)
    check(
        {n: k.value for n, k in forward._counters.items()}
        == {n: k.value for n, k in backward._counters.items()},
        "MetricsRegistry.merge_snapshot is order-insensitive (disjoint origins)",
    )

    # 5. Span import preserves nesting under the anchor span.
    sink = SpanTracer(enabled=True)
    with sink.span("coordinator.round") as anchor:
        for name, doc in sorted(docs.items()):
            sink.import_spans(doc["spans"], origin=name, parent_id=anchor.span_id)
    imported = [s for s in sink.spans() if "origin" in s.attributes]
    roots = [s for s in imported if s.name == "demo.round"]
    nested_ok = (
        len(roots) == 3
        and all(r.parent_id == anchor.span_id for r in roots)
        and all(
            any(
                child.parent_id == root.span_id and child.name == "demo.ingest"
                for child in imported
            )
            for root in roots
        )
    )
    check(nested_ok, "import_spans keeps nesting and anchors under the round span")

    # 6. Perfetto export gives every origin its own lane.
    chrome = trace_to_chrome(sink.snapshot())
    pids = {
        event["pid"]
        for event in chrome["traceEvents"]
        if event.get("ph") in ("X", "i")
    }
    check(len(pids) == 4, "chrome export has one lane per origin plus local")

    print(f"selfcheck: {6 - failures}/6 checks passed")
    return 1 if failures else 0


def _cmd_validate(args: argparse.Namespace) -> int:
    status = 0
    for path in args.files:
        try:
            with open(path, encoding="utf-8") as fh:
                validate_telemetry(json.load(fh))
        except (OSError, ValueError) as exc:
            print(f"FAIL - {path}: {exc}")
            status = 1
        else:
            print(f"ok - {path}")
    return status


def _cmd_merge(args: argparse.Namespace) -> int:
    docs = []
    for path in args.files:
        with open(path, encoding="utf-8") as fh:
            docs.append(json.load(fh))
    try:
        merged = merge_all_telemetry(docs)
    except ValueError as exc:
        print(f"merge failed: {exc}", file=sys.stderr)
        return 1
    text = telemetry_to_json(merged)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(
            f"merged {len(docs)} snapshots -> {args.out} "
            f"(origin {merged['origin']!r})"
        )
    else:
        print(text)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    import os

    import numpy as np

    from .. import obs, trace
    from ..core.estimator import SkimmedSketchSchema
    from ..distributed import SketchCoordinator, SketchSite
    from ..obs import METRICS, write_snapshot
    from ..trace import TRACER, write_trace_chrome

    os.makedirs(args.out_dir, exist_ok=True)
    schema = SkimmedSketchSchema(
        width=128, depth=7, domain_size=1 << 12, seed=args.seed
    )
    coordinator = SketchCoordinator(schema)
    sites = [
        SketchSite(f"edge-{i}", schema, streams=["R", "S"], telemetry=True)
        for i in range(args.sites)
    ]
    obs.enable()
    trace.enable()
    METRICS.reset()
    TRACER.reset()
    try:
        batches = []
        for round_index in range(args.rounds):
            context = coordinator.mint_trace_context()
            batch = []
            for site_index, site in enumerate(sites):
                # Emulate the process boundary between sites sharing this
                # interpreter: each site's segment starts from clean
                # singletons, as a real per-site process would.
                METRICS.reset()
                TRACER.reset()
                rng = np.random.default_rng(
                    args.seed + round_index * args.sites + site_index
                )
                for stream in ("R", "S"):
                    values = rng.integers(0, schema.domain_size, args.updates)
                    site.observe_bulk(stream, values.astype(np.int64))
                batch.extend(site.close_round(context))
            batches.append((context, batch))
        # The coordinator's own "process".
        METRICS.reset()
        TRACER.reset()
        summaries = [coordinator.receive_all(batch) for _, batch in batches]
        estimate = coordinator.est_join_size("R", "S")
    finally:
        for site in sites:
            site.close()
        obs.disable()
        trace.disable()

    metrics_path = os.path.join(args.out_dir, "metrics.json")
    write_snapshot(metrics_path, METRICS.snapshot())
    chrome_path = os.path.join(args.out_dir, "trace.chrome.json")
    write_trace_chrome(chrome_path, TRACER.snapshot())
    telemetry_paths = {}
    for origin, doc in sorted(coordinator.telemetry_by_origin().items()):
        path = os.path.join(args.out_dir, f"telemetry.{origin}.json")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(telemetry_to_json(doc) + "\n")
        telemetry_paths[origin] = path

    reports, payload_bytes = coordinator.communication_stats()
    telemetry_reports, telemetry_bytes = coordinator.telemetry_stats()
    last = summaries[-1]
    print(
        f"rounds={len(summaries)} sites={len(sites)} "
        f"reports={reports} payload_bytes={payload_bytes} "
        f"telemetry_snapshots={telemetry_reports} "
        f"telemetry_bytes={telemetry_bytes}"
    )
    print(
        f"last round: number={last.round_number} "
        f"sites={','.join(last.sites_reporting)} "
        f"telemetry_bytes={last.telemetry_bytes}"
    )
    print(f"est |R join S| = {estimate:.1f}")
    print(f"wrote {metrics_path}")
    print(f"wrote {chrome_path}")
    for origin, path in telemetry_paths.items():
        print(f"wrote {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.federate",
        description="Federated cross-process telemetry tools.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("selfcheck", help="prove merge algebra and wire contracts")

    p_validate = sub.add_parser("validate", help="validate telemetry files")
    p_validate.add_argument("files", nargs="+", help="telemetry JSON files")

    p_merge = sub.add_parser("merge", help="merge telemetry files into one")
    p_merge.add_argument("files", nargs="+", help="telemetry JSON files")
    p_merge.add_argument("--out", help="write merged snapshot here")

    p_run = sub.add_parser("run", help="multi-site federated demo (needs numpy)")
    p_run.add_argument("--sites", type=int, default=3)
    p_run.add_argument("--rounds", type=int, default=2)
    p_run.add_argument("--updates", type=int, default=2000, help="per stream per round")
    p_run.add_argument("--seed", type=int, default=7)
    p_run.add_argument("--out-dir", required=True)

    args = parser.parse_args(argv)
    handler = {
        "selfcheck": _cmd_selfcheck,
        "validate": _cmd_validate,
        "merge": _cmd_merge,
        "run": _cmd_run,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
