"""Multi-origin federation: scrape many telemetry sources, expose one.

A :class:`FederatedSource` owns a set of named origins, each backed by a
loader (a JSON file on disk or an HTTP endpoint serving JSON).  Each
origin may serve either wire format the repo emits:

* a **telemetry snapshot** (``repro.telemetry``, :mod:`.snapshot`) —
  what a site's shipper writes / piggybacks on sketch reports;
* a **metrics snapshot** (version-1 ``repro.obs`` shape) — what
  ``--metrics-out`` files and a plain monitor's ``/metrics.json`` hold.

Both are normalised to the metrics-snapshot shape, then rendered into
one Prometheus text exposition where every sample carries an
``origin="..."`` label and each metric family is declared exactly once
even when several origins report it.  :meth:`FederatedSource.topology`
summarises the fleet (per origin: reachability, staleness, rounds,
report/telemetry bytes) for the monitor's ``/topology`` endpoint and the
dashboard's per-origin rows.

Stdlib-only, like the rest of the observability plane.
"""

from __future__ import annotations

import json
import os
import time
import urllib.request
from typing import Any, Callable, Mapping

try:  # package layout
    from ..obs.export import _prom_name, _prom_value
except ImportError:  # standalone layout: `obs` next to `federate`
    from obs.export import _prom_name, _prom_value  # type: ignore

try:
    from .snapshot import TELEMETRY_KIND, telemetry_to_metrics, validate_telemetry
except ImportError:  # pragma: no cover - standalone layout
    from federate.snapshot import (  # type: ignore
        TELEMETRY_KIND,
        telemetry_to_metrics,
        validate_telemetry,
    )

#: Topology document schema version (the ``/topology`` endpoint payload).
TOPOLOGY_VERSION = 1


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class _FileLoader:
    """Reads one JSON document from disk; age = file mtime."""

    kind = "file"

    def __init__(self, path: str) -> None:
        self.target = path

    def load(self) -> tuple[dict[str, Any], float | None]:
        with open(self.target, encoding="utf-8") as fh:
            doc = json.load(fh)
        age = max(0.0, time.time() - os.path.getmtime(self.target))
        return doc, age

    def __repr__(self) -> str:
        return f"_FileLoader({self.target!r})"


class _HttpLoader:
    """Fetches one JSON document over HTTP(S); age unknown (live scrape)."""

    kind = "http"

    def __init__(self, url: str, timeout: float = 5.0) -> None:
        self.target = url
        self.timeout = timeout

    def load(self) -> tuple[dict[str, Any], float | None]:
        with urllib.request.urlopen(self.target, timeout=self.timeout) as resp:
            doc = json.loads(resp.read().decode("utf-8"))
        return doc, 0.0

    def __repr__(self) -> str:
        return f"_HttpLoader({self.target!r})"


def _make_loader(target: str) -> Any:
    if target.startswith(("http://", "https://")):
        return _HttpLoader(target)
    return _FileLoader(target)


class FederatedSource:
    """Named origins, each scraped into one normalised metrics view.

    ``origins`` maps an origin name (``site.edge-0``) to a target string
    (path or URL) or to an already-built loader / zero-arg callable
    returning ``(document, age_seconds | None)``.
    """

    def __init__(self, origins: Mapping[str, Any]) -> None:
        if not origins:
            raise ValueError("a FederatedSource needs at least one origin")
        self._loaders: dict[str, Any] = {}
        for origin, target in origins.items():
            if not origin:
                raise ValueError("origin names must be non-empty")
            if isinstance(target, str):
                self._loaders[origin] = _make_loader(target)
            else:
                self._loaders[origin] = target

    @property
    def origins(self) -> list[str]:
        """The configured origin names, sorted."""
        return sorted(self._loaders)

    def _scrape(self, origin: str) -> dict[str, Any]:
        """One origin's raw document plus scrape bookkeeping."""
        loader = self._loaders[origin]
        entry: dict[str, Any] = {
            "origin": origin,
            "kind": getattr(loader, "kind", "callable"),
            "target": getattr(loader, "target", repr(loader)),
            "ok": False,
            "error": None,
            "age_seconds": None,
            "doc": None,
        }
        try:
            if callable(loader) and not hasattr(loader, "load"):
                doc, age = loader()
            else:
                doc, age = loader.load()
            entry["doc"] = doc
            entry["age_seconds"] = age
            entry["ok"] = True
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            entry["error"] = f"{type(exc).__name__}: {exc}"
        return entry

    @staticmethod
    def _normalise(doc: dict[str, Any]) -> tuple[dict[str, Any], dict[str, Any] | None]:
        """(metrics snapshot, telemetry doc or None) for one raw document."""
        if doc.get("kind") == TELEMETRY_KIND:
            telemetry = validate_telemetry(doc)
            return telemetry_to_metrics(telemetry), telemetry
        if "counters" in doc and "gauges" in doc:
            return doc, None
        raise ValueError(
            "document is neither a telemetry snapshot nor a metrics snapshot"
        )

    def metrics_by_origin(self) -> dict[str, dict[str, Any]]:
        """Scrape every origin; metrics snapshot per *reachable* origin.

        Unreachable or malformed origins are skipped here (they still
        show up, flagged, in :meth:`topology`) — one dead site must not
        take down the federated exposition.
        """
        out: dict[str, dict[str, Any]] = {}
        for origin in self.origins:
            entry = self._scrape(origin)
            if not entry["ok"]:
                continue
            try:
                metrics, _ = self._normalise(entry["doc"])
            except ValueError:
                continue
            out[origin] = metrics
        return out

    def prometheus(self, prefix: str = "repro") -> str:
        """One text exposition over all reachable origins.

        Every sample is labelled ``{origin="..."}``; each family gets a
        single ``# TYPE`` declaration even when several origins carry
        it.  An extra ``<prefix>_federation_up`` gauge reports per-origin
        scrape health (1 reachable, 0 not), so the exposition itself
        records partial scrapes.
        """
        families: dict[str, tuple[str, str]] = {}  # family -> (type, source name)
        samples: dict[str, list[str]] = {}  # family -> rendered sample lines
        up: dict[str, bool] = {}

        def _declare(family: str, prom_type: str, source: str) -> None:
            held = families.get(family)
            if held is None:
                families[family] = (prom_type, source)
                samples[family] = []
            elif held[0] != prom_type or held[1] != source:
                raise ValueError(
                    f"metric names {held[1]!r} and {source!r} both sanitise "
                    f"to exposition family {family!r}"
                )

        for origin in self.origins:
            entry = self._scrape(origin)
            if not entry["ok"]:
                up[origin] = False
                continue
            try:
                metrics, _ = self._normalise(entry["doc"])
            except ValueError:
                up[origin] = False
                continue
            up[origin] = True
            label = f'origin="{_escape_label(origin)}"'
            for name, value in sorted(metrics.get("counters", {}).items()):
                family = f"{prefix}_{_prom_name(name)}_total"
                _declare(family, "counter", name)
                samples[family].append(
                    f"{family}{{{label}}} {_prom_value(float(value))}"
                )
            for name, value in sorted(metrics.get("gauges", {}).items()):
                family = f"{prefix}_{_prom_name(name)}"
                _declare(family, "gauge", name)
                samples[family].append(
                    f"{family}{{{label}}} {_prom_value(float(value))}"
                )
            for name, summary in sorted(metrics.get("histograms", {}).items()):
                family = f"{prefix}_{_prom_name(name)}"
                _declare(family, "summary", name)
                for quantile, field in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
                    samples[family].append(
                        f'{family}{{{label},quantile="{quantile}"}} '
                        f"{_prom_value(float(summary[field]))}"
                    )
                samples[family].append(
                    f"{family}_sum{{{label}}} {_prom_value(float(summary['sum']))}"
                )
                samples[family].append(
                    f"{family}_count{{{label}}} {int(float(summary['count']))}"
                )
        lines: list[str] = []
        up_family = f"{prefix}_federation_up"
        lines.append(f"# TYPE {up_family} gauge")
        for origin in self.origins:
            lines.append(
                f'{up_family}{{origin="{_escape_label(origin)}"}} '
                f"{1 if up.get(origin) else 0}"
            )
        for family in sorted(families):
            prom_type, _ = families[family]
            lines.append(f"# TYPE {family} {prom_type}")
            lines.extend(samples[family])
        return "\n".join(lines) + "\n"

    def topology(self) -> dict[str, Any]:
        """Fleet summary for the ``/topology`` endpoint.

        Per origin: loader kind and target, scrape health, last-report
        age, and the distributed-protocol vitals derived from the
        origin's own ``dist.*`` metrics — rounds closed, reports and
        payload bytes sent/received, and the telemetry piggyback bytes
        (the federation's own overhead, satellite #1's counters).
        """
        origins: dict[str, dict[str, Any]] = {}
        for origin in self.origins:
            entry = self._scrape(origin)
            row: dict[str, Any] = {
                "kind": entry["kind"],
                "target": entry["target"],
                "ok": entry["ok"],
                "error": entry["error"],
                "age_seconds": entry["age_seconds"],
                "rounds": 0,
                "reports": 0,
                "bytes": 0,
                "telemetry_bytes": 0,
            }
            if entry["ok"]:
                try:
                    metrics, _ = self._normalise(entry["doc"])
                except ValueError as exc:
                    row["ok"] = False
                    row["error"] = f"ValueError: {exc}"
                    origins[origin] = row
                    continue
                counters = metrics.get("counters", {})
                gauges = metrics.get("gauges", {})

                def _take(*names: str) -> float:
                    return sum(float(counters.get(name, 0.0)) for name in names)

                row["rounds"] = int(
                    _take("dist.rounds.closed", "dist.rounds.merged")
                    or float(gauges.get("dist.round.max", 0.0))
                )
                row["reports"] = int(
                    _take("dist.reports.sent", "dist.reports.received")
                )
                row["bytes"] = int(_take("dist.bytes.sent", "dist.bytes.received"))
                row["telemetry_bytes"] = int(
                    _take(
                        "dist.telemetry.bytes.sent",
                        "dist.telemetry.bytes.received",
                    )
                )
            origins[origin] = row
        return {
            "version": TOPOLOGY_VERSION,
            "kind": "repro.topology",
            "origins": origins,
        }


def federation_from_args(specs: list[str]) -> FederatedSource:
    """Build a :class:`FederatedSource` from ``ORIGIN=PATH_OR_URL`` specs
    (the ``--federate`` CLI flag, repeatable)."""
    origins: dict[str, str] = {}
    for spec in specs:
        origin, sep, target = spec.partition("=")
        if not sep or not origin or not target:
            raise ValueError(
                f"--federate spec {spec!r} must look like ORIGIN=PATH_OR_URL"
            )
        if origin in origins:
            raise ValueError(f"duplicate federation origin {origin!r}")
        origins[origin] = target
    return FederatedSource(origins)


__all__ = [
    "TOPOLOGY_VERSION",
    "FederatedSource",
    "federation_from_args",
]
