"""The ``TelemetrySnapshot`` envelope: capture, wire schema, merge.

The observability plane (``repro.obs`` / ``repro.trace`` /
``repro.profile`` / ``repro.monitor``) is process-local by design — its
singletons see only their own process.  The paper's deployment (§1) is
the opposite: many network sites, one coordinator.  This module is the
bridge: a **versioned JSON envelope** that one process captures and
another merges, riding piggyback on the distributed protocol's sketch
reports (or shipped as a standalone file).

Wire schema (version 1)::

    {
      "version": 1,
      "kind": "repro.telemetry",
      "origin": "site.edge-0",          # who captured this
      "seq": 3,                          # capture sequence at the origin
      "counters": {name: delta},         # since the previous capture
      "gauges": {name: [value, ts]},     # wall-clock write timestamps
      "histograms": {name: {"count", "sum", "min", "max", "samples"}},
      "spans": [span records],           # bounded batch, origin-local ids
      "spans_dropped": 0,
      "pulses": {name: delta},           # flight-recorder pulse deltas
    }

Everything shipped is a **delta** relative to the shipper's previous
capture, so merging successive snapshots by summation is exact for
counters and pulses; gauges carry write timestamps so last-write-wins
stays well-defined across processes; histograms ship exact count/sum
deltas plus a bounded, evenly-strided reservoir excerpt (the reservoir
itself is lifetime state, so the shipped excerpt is representative
rather than window-exact — the one approximate section, and it only
affects quantile estimates, never counts or sums).

Merging lives in three places, all consistent with each other:

* :func:`merge_telemetry` — pure snapshot x snapshot -> snapshot (what
  ``python -m repro.federate merge`` and the coordinator's per-origin
  accumulation use); commutative and associative on counters/pulses.
* :meth:`repro.obs.MetricsRegistry.merge_snapshot` — snapshot into a
  live registry.
* :meth:`repro.trace.SpanTracer.import_spans` — the span batch into a
  live tracer, ids remapped, ``origin=`` preserved.

Imports are stdlib-only (the same contract as every other observability
package), with the standalone-layout fallbacks used across
``repro.monitor``.
"""

from __future__ import annotations

import json
import time
from typing import Any, Iterable, Mapping

#: Telemetry envelope schema version.
TELEMETRY_VERSION = 1

#: The envelope ``kind`` discriminator.
TELEMETRY_KIND = "repro.telemetry"

#: Default cap on spans shipped per capture (a site round emits a
#: handful; the cap bounds pathological always-on tracing).
DEFAULT_SPAN_BATCH = 512

#: Default cap on reservoir samples shipped per histogram.
DEFAULT_HISTOGRAM_SAMPLES = 64

_SPAN_FIELDS = ("name", "id", "parent", "start", "end", "attrs")
_HISTOGRAM_FIELDS = ("count", "sum", "min", "max", "samples")

#: Sentinel distinguishing "use the process singleton" (default) from an
#: explicit ``None`` ("skip this section").
_UNSET: Any = object()


def empty_telemetry(origin: str, seq: int = 0) -> dict[str, Any]:
    """A structurally valid snapshot carrying nothing."""
    return {
        "version": TELEMETRY_VERSION,
        "kind": TELEMETRY_KIND,
        "origin": origin,
        "seq": seq,
        "counters": {},
        "gauges": {},
        "histograms": {},
        "spans": [],
        "spans_dropped": 0,
        "pulses": {},
    }


def validate_telemetry(snapshot: Any) -> dict[str, Any]:
    """Check a telemetry snapshot against the wire schema.

    Returns the snapshot unchanged; raises ``ValueError`` describing the
    first violation.  Span parent references may point *outside* the
    batch (a parent still open at capture time ships in a later batch) —
    the importer re-parents those — so unlike ``validate_trace`` only id
    uniqueness is required, not parent resolution.
    """
    if not isinstance(snapshot, dict):
        raise ValueError(
            f"telemetry must be a dict, got {type(snapshot).__name__}"
        )
    if snapshot.get("version") != TELEMETRY_VERSION:
        raise ValueError(
            f"unsupported telemetry version {snapshot.get('version')!r} "
            f"(expected {TELEMETRY_VERSION})"
        )
    if snapshot.get("kind") != TELEMETRY_KIND:
        raise ValueError(f"unexpected telemetry kind {snapshot.get('kind')!r}")
    origin = snapshot.get("origin")
    if not isinstance(origin, str) or not origin:
        raise ValueError(f"'origin' must be a non-empty string, got {origin!r}")
    seq = snapshot.get("seq")
    if not isinstance(seq, int) or seq < 0:
        raise ValueError(f"'seq' must be a non-negative int, got {seq!r}")
    for section in ("counters", "pulses"):
        values = snapshot.get(section)
        if not isinstance(values, dict):
            raise ValueError(f"section {section!r} missing or not a dict")
        for name, value in values.items():
            if not isinstance(name, str) or not name:
                raise ValueError(f"bad metric name {name!r} in {section}")
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"{section}[{name!r}] is not numeric: {value!r}")
    gauges = snapshot.get("gauges")
    if not isinstance(gauges, dict):
        raise ValueError("section 'gauges' missing or not a dict")
    for name, pair in gauges.items():
        if not isinstance(name, str) or not name:
            raise ValueError(f"bad metric name {name!r} in gauges")
        if (
            not isinstance(pair, (list, tuple))
            or len(pair) != 2
            or not all(isinstance(v, (int, float)) for v in pair)
        ):
            raise ValueError(
                f"gauges[{name!r}] must be a [value, timestamp] pair, got {pair!r}"
            )
    histograms = snapshot.get("histograms")
    if not isinstance(histograms, dict):
        raise ValueError("section 'histograms' missing or not a dict")
    for name, state in histograms.items():
        if not isinstance(state, dict):
            raise ValueError(f"histograms[{name!r}] must be a dict")
        missing = [f for f in _HISTOGRAM_FIELDS if f not in state]
        if missing:
            raise ValueError(f"histograms[{name!r}] missing fields {missing}")
        if not isinstance(state["count"], int) or state["count"] < 0:
            raise ValueError(
                f"histograms[{name!r}]['count'] must be a non-negative int"
            )
        for field in ("sum", "min", "max"):
            if not isinstance(state[field], (int, float)):
                raise ValueError(f"histograms[{name!r}][{field!r}] is not numeric")
        samples = state["samples"]
        if not isinstance(samples, list) or not all(
            isinstance(v, (int, float)) for v in samples
        ):
            raise ValueError(
                f"histograms[{name!r}]['samples'] must be a list of numbers"
            )
    spans = snapshot.get("spans")
    if not isinstance(spans, list):
        raise ValueError("section 'spans' missing or not a list")
    seen_ids: set[int] = set()
    for index, span in enumerate(spans):
        if not isinstance(span, dict):
            raise ValueError(f"spans[{index}] is not a dict")
        missing = [f for f in _SPAN_FIELDS if f not in span]
        if missing:
            raise ValueError(f"spans[{index}] missing fields {missing}")
        if not isinstance(span["name"], str) or not span["name"]:
            raise ValueError(f"spans[{index}]['name'] must be a non-empty string")
        if not isinstance(span["id"], int) or span["id"] < 1:
            raise ValueError(f"spans[{index}]['id'] must be a positive int")
        if span["id"] in seen_ids:
            raise ValueError(f"spans[{index}] reuses span id {span['id']}")
        seen_ids.add(span["id"])
        parent = span["parent"]
        if parent is not None and (not isinstance(parent, int) or parent < 1):
            raise ValueError(
                f"spans[{index}]['parent'] must be null or a positive int"
            )
        for field in ("start", "end"):
            if not isinstance(span[field], (int, float)):
                raise ValueError(f"spans[{index}][{field!r}] is not numeric")
        if span["end"] < span["start"]:
            raise ValueError(f"spans[{index}] ends before it starts")
        if not isinstance(span["attrs"], dict):
            raise ValueError(f"spans[{index}]['attrs'] must be a dict")
    dropped = snapshot.get("spans_dropped")
    if not isinstance(dropped, int) or dropped < 0:
        raise ValueError(
            f"'spans_dropped' must be a non-negative int, got {dropped!r}"
        )
    return snapshot


def telemetry_to_json(snapshot: Mapping[str, Any]) -> str:
    """Serialise a telemetry snapshot compactly (the wire bytes)."""
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":"))


def telemetry_from_json(text: str) -> dict[str, Any]:
    """Parse and validate a snapshot (inverse of :func:`telemetry_to_json`)."""
    return validate_telemetry(json.loads(text))


def telemetry_size_in_bytes(snapshot: Mapping[str, Any]) -> int:
    """Wire size of a snapshot — the federation overhead the
    ``federate.overhead`` bench scenario budgets against report payloads."""
    return len(telemetry_to_json(snapshot).encode("utf-8"))


# -- pure merge -----------------------------------------------------------


def _merge_numeric(
    a: Mapping[str, float], b: Mapping[str, float]
) -> dict[str, float]:
    out = dict(a)
    for name, value in b.items():
        out[name] = out.get(name, 0) + value
    return out


def _merge_gauges(
    a: Mapping[str, Any], b: Mapping[str, Any]
) -> dict[str, list[float]]:
    out = {name: list(pair) for name, pair in a.items()}
    for name, pair in b.items():
        held = out.get(name)
        # Last write by timestamp; ties break on value so the pick stays
        # order-independent.
        if held is None or (pair[1], pair[0]) > (held[1], held[0]):
            out[name] = list(pair)
    return out


def _merge_histograms(
    a: Mapping[str, Any], b: Mapping[str, Any], max_samples: int
) -> dict[str, dict[str, Any]]:
    out: dict[str, dict[str, Any]] = {
        name: dict(state, samples=list(state["samples"])) for name, state in a.items()
    }
    for name, state in b.items():
        held = out.get(name)
        if held is None:
            out[name] = dict(state, samples=list(state["samples"]))
            continue
        if state["count"] == 0:
            continue
        if held["count"] == 0:
            out[name] = dict(state, samples=list(state["samples"]))
            continue
        samples = sorted(held["samples"] + list(state["samples"]))
        if len(samples) > max_samples:
            step = len(samples) / max_samples
            samples = [samples[int(i * step)] for i in range(max_samples)]
        out[name] = {
            "count": held["count"] + state["count"],
            "sum": held["sum"] + state["sum"],
            "min": min(held["min"], state["min"]),
            "max": max(held["max"], state["max"]),
            "samples": samples,
        }
    return out


def _merge_spans(
    a: Mapping[str, Any], b: Mapping[str, Any]
) -> list[dict[str, Any]]:
    """Combine two span batches, remapping ids into one id space.

    Batches are ordered by origin name so the combined list — and the
    id assignment — is independent of argument order.  Parent links are
    remapped within each batch; references outside a batch become null
    (the live importer re-parents those under its own anchor instead).
    """
    batches = sorted(
        [(a["origin"], a["spans"]), (b["origin"], b["spans"])],
        key=lambda pair: pair[0],
    )
    out: list[dict[str, Any]] = []
    next_id = 1
    for batch_origin, spans in batches:
        id_map = {span["id"]: next_id + i for i, span in enumerate(spans)}
        next_id += len(spans)
        for span in spans:
            attrs = dict(span.get("attrs") or {})
            attrs.setdefault("origin", batch_origin)
            record = dict(span)
            record["id"] = id_map[span["id"]]
            parent = span.get("parent")
            record["parent"] = id_map.get(parent) if parent is not None else None
            record["attrs"] = attrs
            out.append(record)
    return out


def merge_telemetry(
    a: Mapping[str, Any],
    b: Mapping[str, Any],
    max_histogram_samples: int = DEFAULT_HISTOGRAM_SAMPLES,
) -> dict[str, Any]:
    """Merge two validated snapshots into one (pure; inputs untouched).

    Counters and pulses **sum** — commutative and associative, so a
    coordinator can fold successive or sibling snapshots in any order
    (``python -m repro.federate selfcheck`` proves it, the hypothesis
    suite fuzzes it).  Gauges take the last write by timestamp;
    histograms add count/sum and combine bounded reservoirs; span
    batches concatenate with ids remapped and per-span ``origin=``
    attribution preserved.  The merged ``origin`` joins the two names
    with ``+`` (sorted) when they differ.
    """
    a = validate_telemetry(dict(a))
    b = validate_telemetry(dict(b))
    if a["origin"] == b["origin"]:
        origin = a["origin"]
    else:
        origin = "+".join(sorted({a["origin"], b["origin"]}))
    return {
        "version": TELEMETRY_VERSION,
        "kind": TELEMETRY_KIND,
        "origin": origin,
        "seq": max(a["seq"], b["seq"]),
        "counters": _merge_numeric(a["counters"], b["counters"]),
        "gauges": _merge_gauges(a["gauges"], b["gauges"]),
        "histograms": _merge_histograms(
            a["histograms"], b["histograms"], max_histogram_samples
        ),
        "spans": _merge_spans(a, b),
        "spans_dropped": a["spans_dropped"] + b["spans_dropped"],
        "pulses": _merge_numeric(a["pulses"], b["pulses"]),
    }


def merge_all_telemetry(snapshots: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Left-fold :func:`merge_telemetry` over any number of snapshots."""
    merged: dict[str, Any] | None = None
    for snapshot in snapshots:
        doc = validate_telemetry(dict(snapshot))
        merged = doc if merged is None else merge_telemetry(merged, doc)
    if merged is None:
        raise ValueError("nothing to merge (no snapshots given)")
    return merged


def telemetry_to_metrics(snapshot: Mapping[str, Any]) -> dict[str, Any]:
    """Project a telemetry snapshot onto the version-1 metrics-snapshot
    shape (counters include pulses; histogram states become summaries).

    This is what the federated ``/metrics`` exposition renders per
    origin, so a telemetry file is scrapeable exactly like a
    ``--metrics-out`` file.
    """
    snapshot = validate_telemetry(dict(snapshot))
    counters = _merge_numeric(snapshot["counters"], snapshot["pulses"])
    histograms: dict[str, dict[str, float]] = {}
    for name, state in snapshot["histograms"].items():
        count = state["count"]
        samples = sorted(state["samples"])

        def _pct(p: float) -> float:
            if not samples:
                return 0.0
            rank = max(
                0, min(len(samples) - 1, round(p / 100.0 * (len(samples) - 1)))
            )
            return float(samples[rank])

        histograms[name] = {
            "count": count,
            "sum": float(state["sum"]),
            "min": float(state["min"]),
            "max": float(state["max"]),
            "mean": float(state["sum"]) / count if count else 0.0,
            "p50": _pct(50),
            "p95": _pct(95),
            "p99": _pct(99),
        }
    return {
        "version": 1,
        "counters": {n: float(v) for n, v in counters.items()},
        "gauges": {n: float(pair[0]) for n, pair in snapshot["gauges"].items()},
        "histograms": histograms,
    }


# -- capture --------------------------------------------------------------


def _default_metrics() -> Any:
    try:  # pragma: no cover - exercised via the standalone import test
        from ..obs import METRICS
    except ImportError:  # standalone layout: `obs` next to `federate`
        from obs import METRICS  # type: ignore
    return METRICS


def _default_tracer() -> Any:
    try:  # pragma: no cover
        from ..trace import TRACER
    except ImportError:
        from trace import TRACER  # type: ignore
    return TRACER


def _default_recorder() -> Any:
    try:  # pragma: no cover
        from ..profile import RECORDER
    except ImportError:
        from profile import RECORDER  # type: ignore
    return RECORDER


def _default_audit() -> Any:
    try:  # pragma: no cover
        from ..monitor import AUDIT
    except ImportError:
        from monitor import AUDIT  # type: ignore
    return AUDIT


class TelemetryShipper:
    """Stateful capturer turning singleton state into delta snapshots.

    One shipper per origin per process (a :class:`SketchSite` owns one
    when constructed with ``telemetry=True``).  Each
    :meth:`capture_telemetry` call diffs the registries against the
    previous capture, so successive snapshots are disjoint deltas and a
    coordinator merging them by summation reconstructs the origin's
    totals exactly.

    The source singletons default to the process-wide ones; tests (and
    the ``selfcheck`` CLI) inject private registries to emulate separate
    processes inside one.  Passing ``recorder=None`` / ``audit=None``
    explicitly skips those sections entirely.

    Call sites must guard on the owning singletons' ``enabled`` flags —
    an unguarded ``capture_telemetry`` serialised into a protocol
    message is exactly what linter rule R13 rejects.
    """

    def __init__(
        self,
        origin: str,
        registry: Any | None = None,
        tracer: Any | None = None,
        recorder: Any = _UNSET,
        audit: Any = _UNSET,
        max_spans: int = DEFAULT_SPAN_BATCH,
        max_histogram_samples: int = DEFAULT_HISTOGRAM_SAMPLES,
    ) -> None:
        if not origin:
            raise ValueError("origin must be a non-empty string")
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.origin = origin
        self.registry = registry if registry is not None else _default_metrics()
        self.tracer = tracer if tracer is not None else _default_tracer()
        self.recorder = _default_recorder() if recorder is _UNSET else recorder
        self.audit = _default_audit() if audit is _UNSET else audit
        self.max_spans = max_spans
        self.max_histogram_samples = max_histogram_samples
        self._seq = 0
        self._last_counters: dict[str, float] = {}
        self._last_histograms: dict[str, tuple[int, float]] = {}
        self._last_pulses: dict[str, float] = {}
        self._span_cursor = 0
        self._registry_generation = getattr(self.registry, "generation", 0)
        self._tracer_epoch = getattr(self.tracer, "_epoch", 0.0)

    @property
    def seq(self) -> int:
        """Number of captures taken so far."""
        return self._seq

    def capture_telemetry(self) -> dict[str, Any]:
        """Assemble one delta snapshot and advance the capture cursor."""
        self._seq += 1
        doc = empty_telemetry(self.origin, seq=self._seq)
        self._capture_metrics(doc)
        self._capture_spans(doc)
        self._capture_pulses(doc)
        self._capture_audit(doc)
        return doc

    def _capture_metrics(self, doc: dict[str, Any]) -> None:
        registry = self.registry
        # A registry reset() since the last capture invalidates every
        # watermark — everything currently held is new.
        generation = getattr(registry, "generation", 0)
        if generation != self._registry_generation:
            self._registry_generation = generation
            self._last_counters = {}
            self._last_histograms = {}
        current = {n: c.value for n, c in registry._counters.items()}
        for name, total in sorted(current.items()):
            delta = total - self._last_counters.get(name, 0.0)
            if delta:
                doc["counters"][name] = delta
        self._last_counters = current
        for name, gauge in sorted(registry._gauges.items()):
            doc["gauges"][name] = [gauge.value, gauge.ts]
        for name, histogram in sorted(registry._histograms.items()):
            seen_count, seen_sum = self._last_histograms.get(name, (0, 0.0))
            delta_count = histogram.count - seen_count
            if delta_count <= 0:
                continue
            state = histogram.state(max_samples=self.max_histogram_samples)
            state["count"] = delta_count
            state["sum"] = histogram.sum - seen_sum
            doc["histograms"][name] = state
            self._last_histograms[name] = (histogram.count, histogram.sum)

    def _capture_spans(self, doc: dict[str, Any]) -> None:
        tracer = self.tracer
        # A tracer reset() restarts the epoch (and drops spans) — the
        # epoch comparison catches it even when the span count happens to
        # match the cursor; the length check backstops tracers without one.
        epoch = getattr(tracer, "_epoch", 0.0)
        if epoch != self._tracer_epoch:
            self._tracer_epoch = epoch
            self._span_cursor = 0
        finished = tracer.spans()
        if len(finished) < self._span_cursor:
            self._span_cursor = 0
        fresh = finished[self._span_cursor :]
        self._span_cursor = len(finished)
        batch = fresh[: self.max_spans]
        doc["spans"] = [span.as_dict() for span in batch]
        for record in doc["spans"]:
            attrs = dict(record["attrs"])
            attrs.setdefault("origin", self.origin)
            record["attrs"] = attrs
        doc["spans_dropped"] = len(fresh) - len(batch)

    def _capture_pulses(self, doc: dict[str, Any]) -> None:
        recorder = self.recorder
        if recorder is None:
            return
        current = recorder.pending_pulses()
        for name, total in sorted(current.items()):
            seen = self._last_pulses.get(name, 0.0)
            # The recorder's tick() drains pulses to zero between our
            # captures; a total below the watermark means everything
            # current is new.
            delta = total - seen if total >= seen else total
            if delta:
                doc["pulses"][name] = delta
        self._last_pulses = current

    def _capture_audit(self, doc: dict[str, Any]) -> None:
        audit = self.audit
        if audit is None:
            return
        now = time.time()
        try:
            audits = audit.audits()
            alerts = len(audit.alerts)
        except (AttributeError, RuntimeError):
            return
        decided = [a.covered for a in audits if a.covered is not None]
        if decided:
            doc["gauges"]["audit.coverage"] = [sum(decided) / len(decided), now]
        doc["gauges"]["audit.alerts"] = [float(alerts), now]


__all__ = [
    "DEFAULT_HISTOGRAM_SAMPLES",
    "DEFAULT_SPAN_BATCH",
    "TELEMETRY_KIND",
    "TELEMETRY_VERSION",
    "TelemetryShipper",
    "empty_telemetry",
    "merge_all_telemetry",
    "merge_telemetry",
    "telemetry_from_json",
    "telemetry_size_in_bytes",
    "telemetry_to_json",
    "telemetry_to_metrics",
    "validate_telemetry",
]
