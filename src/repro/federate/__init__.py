"""repro.federate — cross-process telemetry for the distributed fleet.

The observability singletons (``repro.obs.METRICS``,
``repro.trace.TRACER``, ``repro.profile.RECORDER``,
``repro.monitor.AUDIT``) are process-local; the paper's deployment (§1)
is many sites and one coordinator.  This package federates the two:

* :class:`TelemetryShipper` captures a site's singleton state into a
  versioned, delta-encoded **telemetry snapshot**
  (:func:`validate_telemetry` / :func:`telemetry_to_json` round-trip it);
* :class:`~repro.distributed.SketchSite` piggybacks that snapshot on its
  sketch reports (``telemetry=True``) together with the
  coordinator-minted :class:`~repro.distributed.TraceContext`, and
  :class:`~repro.distributed.SketchCoordinator` folds it back into its
  own registry (counters sum, gauges last-write-by-timestamp, histograms
  merge reservoirs) and tracer (span trees stitched under the receiving
  round span, per-origin Perfetto lanes);
* :class:`FederatedSource` scrapes many such outputs — live monitor
  endpoints or files — into one origin-labelled Prometheus exposition
  and a fleet ``/topology`` summary for ``python -m repro.monitor serve
  --federate``.

``python -m repro.federate`` hosts the CLI: ``selfcheck`` (merge
algebra + wire round-trips), ``validate`` / ``merge`` for snapshot
files, and ``run`` (a multi-site demo producing merged metrics, a
stitched trace, and per-origin telemetry files).

Everything importable here is standard-library only; the ``run``
demo imports the sketch machinery (numpy) lazily.
"""

from __future__ import annotations

from .federation import TOPOLOGY_VERSION, FederatedSource, federation_from_args
from .snapshot import (
    DEFAULT_HISTOGRAM_SAMPLES,
    DEFAULT_SPAN_BATCH,
    TELEMETRY_KIND,
    TELEMETRY_VERSION,
    TelemetryShipper,
    empty_telemetry,
    merge_all_telemetry,
    merge_telemetry,
    telemetry_from_json,
    telemetry_size_in_bytes,
    telemetry_to_json,
    telemetry_to_metrics,
    validate_telemetry,
)

__all__ = [
    "DEFAULT_HISTOGRAM_SAMPLES",
    "DEFAULT_SPAN_BATCH",
    "FederatedSource",
    "TELEMETRY_KIND",
    "TELEMETRY_VERSION",
    "TOPOLOGY_VERSION",
    "TelemetryShipper",
    "empty_telemetry",
    "federation_from_args",
    "merge_all_telemetry",
    "merge_telemetry",
    "telemetry_from_json",
    "telemetry_size_in_bytes",
    "telemetry_to_json",
    "telemetry_to_metrics",
    "validate_telemetry",
]
