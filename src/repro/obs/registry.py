"""Dependency-free runtime metrics: counters, gauges, histograms, timers.

The registry is the library's single telemetry sink.  Instrumentation
sites in the hot paths (sketch updates, skims, join estimation, the
stream engine, the distributed protocol) guard every recording with a
plain attribute read::

    if METRICS.enabled:
        METRICS.count("sketch.update.elements")

so a disabled registry costs one attribute load and one branch per
*instrumentation site* (not per metric), which is unmeasurable next to
the numpy work those sites wrap.  Every recording method additionally
no-ops when disabled, so a call site that forgets the guard still cannot
pollute a disabled registry.

Design constraints (enforced by the test suite):

* **no third-party imports** — ``repro.obs`` must be importable without
  numpy so embedding it in a collection agent costs nothing;
* histograms keep a bounded deterministic reservoir, so memory is O(1)
  per metric regardless of stream length and snapshots are reproducible
  for a fixed recording sequence;
* ``snapshot()`` returns plain dicts of plain floats — JSON-ready.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Iterator, Mapping

#: Reservoir size for histogram percentile estimation.
DEFAULT_RESERVOIR_SIZE = 2048


class Counter:
    """A monotonically adjusted sum (increments may be any float)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount


class Gauge:
    """A last-written-wins scalar (thresholds, round numbers, sizes).

    Each write stamps ``ts`` with the wall-clock time so last-write-wins
    stays well-defined when gauges from several *processes* are merged
    (:meth:`MetricsRegistry.merge_snapshot`): wall-clock timestamps are
    the only ordering that is comparable across process boundaries.
    """

    __slots__ = ("name", "value", "ts")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.ts = 0.0

    def set(self, value: float, ts: float | None = None) -> None:
        """Overwrite the gauge with ``value`` (stamping the write time)."""
        self.value = float(value)
        self.ts = time.time() if ts is None else float(ts)


class Histogram:
    """Streaming distribution summary with bounded memory.

    Tracks exact ``count`` / ``sum`` / ``min`` / ``max`` and estimates
    percentiles from a reservoir.  Reservoir replacement uses an internal
    xorshift generator (seeded from the metric name) instead of the
    global ``random`` state, so recordings are deterministic and the
    registry never perturbs user-level randomness.
    """

    __slots__ = ("name", "count", "sum", "min", "max", "_samples", "_cap", "_state")

    def __init__(self, name: str, reservoir_size: int = DEFAULT_RESERVOIR_SIZE):
        if reservoir_size < 1:
            raise ValueError(f"reservoir_size must be >= 1, got {reservoir_size}")
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: list[float] = []
        self._cap = reservoir_size
        # Non-zero 64-bit xorshift seed derived from the name.
        self._state = (hash(name) & 0xFFFFFFFFFFFFFFFF) or 0x9E3779B97F4A7C15

    def _next_rand(self) -> int:
        x = self._state
        x ^= (x << 13) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 7
        x ^= (x << 17) & 0xFFFFFFFFFFFFFFFF
        self._state = x
        return x

    def record(self, value: float) -> None:
        """Fold one observation into the summary statistics and reservoir."""
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._samples) < self._cap:
            self._samples.append(value)
        else:
            slot = self._next_rand() % self.count
            if slot < self._cap:
                self._samples[slot] = value

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the reservoir (``nan`` when empty)."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._samples:
            return float("nan")
        ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def state(self, max_samples: int | None = None) -> dict[str, Any]:
        """Reservoir-carrying dump for cross-process merging.

        Unlike :meth:`summary` (quantiles only, not mergeable) the state
        keeps raw reservoir samples, so two histograms built in different
        processes can be folded together with :meth:`merge_state`.
        ``max_samples`` bounds the shipped reservoir with an even stride
        across the sorted samples, preserving the spread.
        """
        samples = sorted(self._samples)
        if max_samples is not None and len(samples) > max_samples:
            step = len(samples) / max_samples
            samples = [samples[int(i * step)] for i in range(max_samples)]
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "samples": samples,
        }

    def merge_state(self, state: Mapping[str, Any]) -> None:
        """Fold a foreign histogram :meth:`state` into this one.

        Count/sum add exactly; min/max combine; foreign reservoir samples
        are folded through the same deterministic replacement policy as
        :meth:`record`, so the merged reservoir stays bounded at ``_cap``
        and remains an (approximate) sample of the union distribution.
        """
        count = int(state.get("count", 0))
        if count <= 0:
            return
        self.sum += float(state.get("sum", 0.0))
        low, high = float(state.get("min", 0.0)), float(state.get("max", 0.0))
        if low < self.min:
            self.min = low
        if high > self.max:
            self.max = high
        self.count += count
        for value in state.get("samples", ()):
            value = float(value)
            if len(self._samples) < self._cap:
                self._samples.append(value)
            else:
                slot = self._next_rand() % self.count
                if slot < self._cap:
                    self._samples[slot] = value

    def summary(self) -> dict[str, float]:
        """JSON-ready summary: count/sum/min/max/mean and p50/p95/p99."""
        if self.count == 0:
            return {
                "count": 0,
                "sum": 0.0,
                "min": 0.0,
                "max": 0.0,
                "mean": 0.0,
                "p50": 0.0,
                "p95": 0.0,
                "p99": 0.0,
            }
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.sum / self.count,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class Timer:
    """Measure a code block (or decorated function) in seconds.

    The measurement itself always happens — ``elapsed`` is valid even
    with the registry disabled, so callers can print wall-clock figures
    unconditionally — but the duration is *recorded* into the registry's
    histogram only when the registry is enabled at exit time.

    Usable as a context manager::

        with METRICS.timer("skim.seconds") as t:
            ...
        print(t.elapsed)

    or as a decorator::

        @METRICS.timer("engine.answer.seconds")
        def answer(...): ...
    """

    __slots__ = ("name", "elapsed", "_registry", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str):
        self._registry = registry
        self.name = name
        self.elapsed: float | None = None
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start
            self._start = None
            if self._registry.enabled:
                self._registry.observe(self.name, self.elapsed)

    def __call__(self, fn: Callable) -> Callable:
        def wrapper(*args, **kwargs):
            with Timer(self._registry, self.name):
                return fn(*args, **kwargs)

        wrapper.__name__ = getattr(fn, "__name__", "wrapped")
        wrapper.__doc__ = fn.__doc__
        return wrapper


class MetricsRegistry:
    """Named counters, gauges and histograms behind one enable switch.

    Metrics are created lazily on first use; names are free-form
    dot-separated strings (see ``docs/OBSERVABILITY.md`` for the
    catalogue the library itself emits).
    """

    __slots__ = (
        "enabled",
        "_counters",
        "_gauges",
        "_histograms",
        "reservoir_size",
        "_lock",
        "generation",
    )

    def __init__(self, enabled: bool = False, reservoir_size: int = DEFAULT_RESERVOIR_SIZE):
        self.enabled = enabled
        self.reservoir_size = reservoir_size
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()
        self.generation = 0

    # -- switch ------------------------------------------------------------

    def enable(self) -> None:
        """Turn recording on (idempotent)."""
        self.enabled = True

    def disable(self) -> None:
        """Turn recording off; existing metric values are kept."""
        self.enabled = False

    # -- recording ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The named counter, created (at 0) if absent."""
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter(name)
        return found

    def count(self, name: str, amount: float = 1.0) -> None:
        """Increment a counter (no-op while disabled)."""
        if self.enabled:
            self.counter(name).inc(amount)

    def gauge(self, name: str, value: float | None = None) -> Gauge:
        """The named gauge; also sets it when ``value`` is given (and enabled)."""
        found = self._gauges.get(name)
        if found is None:
            found = self._gauges[name] = Gauge(name)
        if value is not None and self.enabled:
            found.set(value)
        return found

    def gauge_max(self, name: str, value: float) -> None:
        """Raise a gauge to ``value`` if it is currently below it.

        No-op while disabled.  The read-modify-write runs under the
        registry lock, so concurrent writers (e.g. report receipt racing
        a threaded ``/metrics`` scrape) cannot interleave a lower value
        over a higher one the way an unsynchronised compare-then-set can.
        """
        if not self.enabled:
            return
        with self._lock:
            found = self.gauge(name)
            if float(value) > found.value or found.ts == 0.0:
                found.set(value)

    def histogram(self, name: str) -> Histogram:
        """The named histogram, created empty if absent."""
        found = self._histograms.get(name)
        if found is None:
            found = self._histograms[name] = Histogram(name, self.reservoir_size)
        return found

    def observe(self, name: str, value: float) -> None:
        """Record one histogram observation (no-op while disabled)."""
        if self.enabled:
            self.histogram(name).record(value)

    def timer(self, name: str) -> Timer:
        """A :class:`Timer` feeding the named histogram."""
        return Timer(self, name)

    # -- reading -----------------------------------------------------------

    def counter_value(self, name: str) -> float:
        """Current value of a counter (0.0 if it was never touched)."""
        found = self._counters.get(name)
        return found.value if found is not None else 0.0

    def gauge_value(self, name: str) -> float:
        """Current value of a gauge (0.0 if it was never set)."""
        found = self._gauges.get(name)
        return found.value if found is not None else 0.0

    def metric_names(self) -> Iterator[str]:
        """All metric names currently registered, sorted."""
        yield from sorted(
            set(self._counters) | set(self._gauges) | set(self._histograms)
        )

    def snapshot(self) -> dict:
        """JSON-ready dump of every metric (readable even while disabled)."""
        return {
            "version": 1,
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
        }

    def merge_snapshot(
        self, snapshot: Mapping[str, Any], prefix: str | None = None
    ) -> None:
        """Fold a foreign process's metric state into this registry.

        The inverse operation of shipping a telemetry snapshot
        (:mod:`repro.federate`): **counters sum** (the foreign values are
        deltas, so repeated merges of successive snapshots accumulate
        exactly), **gauges take the last write by wall-clock timestamp**
        (foreign gauges may arrive as ``[value, ts]`` pairs; a plain
        number merges with timestamp 0, i.e. it never overrides a local
        write), and **histograms merge reservoirs** via
        :meth:`Histogram.merge_state`.

        This is an administrative operation like :meth:`snapshot` — it
        applies even while the registry is disabled, because the caller
        (coordinator / parallel flush) decides whether federation is on
        and guards with ``enabled`` at the call site.  ``prefix`` is
        prepended (dot-joined) to every merged metric name, which is how
        per-shard worker telemetry lands under ``parallel.shard.N.*``.
        """
        qualify = (lambda n: f"{prefix}.{n}") if prefix else (lambda n: n)
        for name, value in snapshot.get("counters", {}).items():
            self.counter(qualify(name)).inc(float(value))
        for name, value in snapshot.get("gauges", {}).items():
            if isinstance(value, (list, tuple)):
                level, ts = float(value[0]), float(value[1])
            else:
                level, ts = float(value), 0.0
            found = self.gauge(qualify(name))
            if ts >= found.ts:
                found.set(level, ts=ts)
        for name, state in snapshot.get("histograms", {}).items():
            if isinstance(state, Mapping) and "samples" in state:
                self.histogram(qualify(name)).merge_state(state)

    def reset(self) -> None:
        """Drop every metric (the enabled flag is left as-is).

        Bumps ``generation`` so delta-tracking readers (the federation
        shipper's watermarks) can tell a reset from mere inactivity.
        """
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self.generation += 1

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(enabled={self.enabled}, "
            f"counters={len(self._counters)}, gauges={len(self._gauges)}, "
            f"histograms={len(self._histograms)})"
        )
