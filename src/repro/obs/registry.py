"""Dependency-free runtime metrics: counters, gauges, histograms, timers.

The registry is the library's single telemetry sink.  Instrumentation
sites in the hot paths (sketch updates, skims, join estimation, the
stream engine, the distributed protocol) guard every recording with a
plain attribute read::

    if METRICS.enabled:
        METRICS.count("sketch.update.elements")

so a disabled registry costs one attribute load and one branch per
*instrumentation site* (not per metric), which is unmeasurable next to
the numpy work those sites wrap.  Every recording method additionally
no-ops when disabled, so a call site that forgets the guard still cannot
pollute a disabled registry.

Design constraints (enforced by the test suite):

* **no third-party imports** — ``repro.obs`` must be importable without
  numpy so embedding it in a collection agent costs nothing;
* histograms keep a bounded deterministic reservoir, so memory is O(1)
  per metric regardless of stream length and snapshots are reproducible
  for a fixed recording sequence;
* ``snapshot()`` returns plain dicts of plain floats — JSON-ready.
"""

from __future__ import annotations

import time
from typing import Callable, Iterator

#: Reservoir size for histogram percentile estimation.
DEFAULT_RESERVOIR_SIZE = 2048


class Counter:
    """A monotonically adjusted sum (increments may be any float)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount


class Gauge:
    """A last-written-wins scalar (thresholds, round numbers, sizes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self.value = float(value)


class Histogram:
    """Streaming distribution summary with bounded memory.

    Tracks exact ``count`` / ``sum`` / ``min`` / ``max`` and estimates
    percentiles from a reservoir.  Reservoir replacement uses an internal
    xorshift generator (seeded from the metric name) instead of the
    global ``random`` state, so recordings are deterministic and the
    registry never perturbs user-level randomness.
    """

    __slots__ = ("name", "count", "sum", "min", "max", "_samples", "_cap", "_state")

    def __init__(self, name: str, reservoir_size: int = DEFAULT_RESERVOIR_SIZE):
        if reservoir_size < 1:
            raise ValueError(f"reservoir_size must be >= 1, got {reservoir_size}")
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: list[float] = []
        self._cap = reservoir_size
        # Non-zero 64-bit xorshift seed derived from the name.
        self._state = (hash(name) & 0xFFFFFFFFFFFFFFFF) or 0x9E3779B97F4A7C15

    def _next_rand(self) -> int:
        x = self._state
        x ^= (x << 13) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 7
        x ^= (x << 17) & 0xFFFFFFFFFFFFFFFF
        self._state = x
        return x

    def record(self, value: float) -> None:
        """Fold one observation into the summary statistics and reservoir."""
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._samples) < self._cap:
            self._samples.append(value)
        else:
            slot = self._next_rand() % self.count
            if slot < self._cap:
                self._samples[slot] = value

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the reservoir (``nan`` when empty)."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._samples:
            return float("nan")
        ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def summary(self) -> dict[str, float]:
        """JSON-ready summary: count/sum/min/max/mean and p50/p95/p99."""
        if self.count == 0:
            return {
                "count": 0,
                "sum": 0.0,
                "min": 0.0,
                "max": 0.0,
                "mean": 0.0,
                "p50": 0.0,
                "p95": 0.0,
                "p99": 0.0,
            }
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.sum / self.count,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class Timer:
    """Measure a code block (or decorated function) in seconds.

    The measurement itself always happens — ``elapsed`` is valid even
    with the registry disabled, so callers can print wall-clock figures
    unconditionally — but the duration is *recorded* into the registry's
    histogram only when the registry is enabled at exit time.

    Usable as a context manager::

        with METRICS.timer("skim.seconds") as t:
            ...
        print(t.elapsed)

    or as a decorator::

        @METRICS.timer("engine.answer.seconds")
        def answer(...): ...
    """

    __slots__ = ("name", "elapsed", "_registry", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str):
        self._registry = registry
        self.name = name
        self.elapsed: float | None = None
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start
            self._start = None
            if self._registry.enabled:
                self._registry.observe(self.name, self.elapsed)

    def __call__(self, fn: Callable) -> Callable:
        def wrapper(*args, **kwargs):
            with Timer(self._registry, self.name):
                return fn(*args, **kwargs)

        wrapper.__name__ = getattr(fn, "__name__", "wrapped")
        wrapper.__doc__ = fn.__doc__
        return wrapper


class MetricsRegistry:
    """Named counters, gauges and histograms behind one enable switch.

    Metrics are created lazily on first use; names are free-form
    dot-separated strings (see ``docs/OBSERVABILITY.md`` for the
    catalogue the library itself emits).
    """

    __slots__ = ("enabled", "_counters", "_gauges", "_histograms", "reservoir_size")

    def __init__(self, enabled: bool = False, reservoir_size: int = DEFAULT_RESERVOIR_SIZE):
        self.enabled = enabled
        self.reservoir_size = reservoir_size
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- switch ------------------------------------------------------------

    def enable(self) -> None:
        """Turn recording on (idempotent)."""
        self.enabled = True

    def disable(self) -> None:
        """Turn recording off; existing metric values are kept."""
        self.enabled = False

    # -- recording ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The named counter, created (at 0) if absent."""
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter(name)
        return found

    def count(self, name: str, amount: float = 1.0) -> None:
        """Increment a counter (no-op while disabled)."""
        if self.enabled:
            self.counter(name).inc(amount)

    def gauge(self, name: str, value: float | None = None) -> Gauge:
        """The named gauge; also sets it when ``value`` is given (and enabled)."""
        found = self._gauges.get(name)
        if found is None:
            found = self._gauges[name] = Gauge(name)
        if value is not None and self.enabled:
            found.set(value)
        return found

    def histogram(self, name: str) -> Histogram:
        """The named histogram, created empty if absent."""
        found = self._histograms.get(name)
        if found is None:
            found = self._histograms[name] = Histogram(name, self.reservoir_size)
        return found

    def observe(self, name: str, value: float) -> None:
        """Record one histogram observation (no-op while disabled)."""
        if self.enabled:
            self.histogram(name).record(value)

    def timer(self, name: str) -> Timer:
        """A :class:`Timer` feeding the named histogram."""
        return Timer(self, name)

    # -- reading -----------------------------------------------------------

    def counter_value(self, name: str) -> float:
        """Current value of a counter (0.0 if it was never touched)."""
        found = self._counters.get(name)
        return found.value if found is not None else 0.0

    def gauge_value(self, name: str) -> float:
        """Current value of a gauge (0.0 if it was never set)."""
        found = self._gauges.get(name)
        return found.value if found is not None else 0.0

    def metric_names(self) -> Iterator[str]:
        """All metric names currently registered, sorted."""
        yield from sorted(
            set(self._counters) | set(self._gauges) | set(self._histograms)
        )

    def snapshot(self) -> dict:
        """JSON-ready dump of every metric (readable even while disabled)."""
        return {
            "version": 1,
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every metric (the enabled flag is left as-is)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(enabled={self.enabled}, "
            f"counters={len(self._counters)}, gauges={len(self._gauges)}, "
            f"histograms={len(self._histograms)})"
        )
