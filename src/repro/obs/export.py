"""Exporters and schema validation for metrics snapshots.

Two wire formats:

* **JSON** — the snapshot dict verbatim (versioned, round-trippable);
  this is what ``python -m repro.eval ... --metrics-out m.json`` writes
  and what ``make metrics-smoke`` validates.
* **Prometheus text exposition** — counters as ``*_total``, gauges
  verbatim, histograms as summaries (``_count`` / ``_sum`` plus
  ``quantile`` samples), all under a configurable name prefix with
  metric names sanitised to ``[a-zA-Z0-9_]``.

Both exporters operate on the *snapshot* (plain dicts), not on the
registry, so a snapshot can be captured in-process and exported later —
or shipped across a wire and exported coordinator-side.
"""

from __future__ import annotations

import json
import math
from typing import Any

#: Snapshot schema version emitted by :meth:`MetricsRegistry.snapshot`.
SNAPSHOT_VERSION = 1

_HISTOGRAM_FIELDS = ("count", "sum", "min", "max", "mean", "p50", "p95", "p99")


def snapshot_to_json(snapshot: dict, indent: int | None = 2) -> str:
    """Serialise a snapshot as JSON (non-finite floats become strings)."""

    def _default(obj: Any):
        raise TypeError(f"snapshot contains non-serialisable value {obj!r}")

    return json.dumps(_jsonable(snapshot), indent=indent, default=_default)


def snapshot_from_json(text: str) -> dict:
    """Parse and validate a JSON snapshot (inverse of :func:`snapshot_to_json`)."""
    return validate_snapshot(json.loads(text), _restore_nonfinite=True)


def _jsonable(value: Any) -> Any:
    """Recursively replace non-finite floats (JSON has no inf/nan)."""
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)  # "inf" / "-inf" / "nan"
    return value


def _definite(value: Any) -> float:
    """Undo :func:`_jsonable`'s non-finite encoding."""
    if isinstance(value, str):
        return float(value)
    return float(value)


def validate_snapshot(snapshot: Any, _restore_nonfinite: bool = False) -> dict:
    """Check a snapshot against the schema; returns it (normalised).

    Raises ``ValueError`` describing the first violation.  Used by the
    ``make metrics-smoke`` target and the JSON round-trip path.
    """
    if not isinstance(snapshot, dict):
        raise ValueError(f"snapshot must be a dict, got {type(snapshot).__name__}")
    if snapshot.get("version") != SNAPSHOT_VERSION:
        raise ValueError(
            f"unsupported snapshot version {snapshot.get('version')!r} "
            f"(expected {SNAPSHOT_VERSION})"
        )
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(snapshot.get(section), dict):
            raise ValueError(f"snapshot section {section!r} missing or not a dict")
    out: dict = {"version": SNAPSHOT_VERSION, "counters": {}, "gauges": {}, "histograms": {}}
    for section in ("counters", "gauges"):
        for name, value in snapshot[section].items():
            if not isinstance(name, str) or not name:
                raise ValueError(f"bad metric name {name!r} in {section}")
            try:
                out[section][name] = _definite(value)
            except (TypeError, ValueError):
                raise ValueError(
                    f"{section}[{name!r}] is not numeric: {value!r}"
                ) from None
    for name, summary in snapshot["histograms"].items():
        if not isinstance(name, str) or not name:
            raise ValueError(f"bad metric name {name!r} in histograms")
        if not isinstance(summary, dict):
            raise ValueError(f"histograms[{name!r}] must be a dict")
        missing = [f for f in _HISTOGRAM_FIELDS if f not in summary]
        if missing:
            raise ValueError(f"histograms[{name!r}] missing fields {missing}")
        fields = {}
        for field in _HISTOGRAM_FIELDS:
            try:
                fields[field] = _definite(summary[field])
            except (TypeError, ValueError):
                raise ValueError(
                    f"histograms[{name!r}][{field!r}] is not numeric: "
                    f"{summary[field]!r}"
                ) from None
        if fields["count"] < 0 or fields["count"] != int(fields["count"]):
            raise ValueError(f"histograms[{name!r}]['count'] must be a whole number >= 0")
        fields["count"] = int(fields["count"])
        out["histograms"][name] = fields
    if not _restore_nonfinite:
        return snapshot
    return out


def _prom_name(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def _prom_value(value: float) -> str:
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def snapshot_to_prometheus(snapshot: dict, prefix: str = "repro") -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Raises ``ValueError`` if two metric names sanitise to the same
    exposition family (e.g. ``a.b`` and ``a_b``) — silently emitting a
    duplicated ``# TYPE`` family is invalid exposition text.
    """
    validate_snapshot(snapshot)
    lines: list[str] = []
    families: dict[str, str] = {}

    def _family(full: str, source: str) -> str:
        if full in families:
            raise ValueError(
                f"metric names {families[full]!r} and {source!r} both "
                f"sanitise to exposition family {full!r}"
            )
        families[full] = source
        return full

    for name, value in snapshot["counters"].items():
        full = _family(f"{prefix}_{_prom_name(name)}_total", name)
        lines.append(f"# TYPE {full} counter")
        lines.append(f"{full} {_prom_value(_definite(value))}")
    for name, value in snapshot["gauges"].items():
        full = _family(f"{prefix}_{_prom_name(name)}", name)
        lines.append(f"# TYPE {full} gauge")
        lines.append(f"{full} {_prom_value(_definite(value))}")
    for name, summary in snapshot["histograms"].items():
        full = _family(f"{prefix}_{_prom_name(name)}", name)
        lines.append(f"# TYPE {full} summary")
        for quantile, field in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            lines.append(
                f'{full}{{quantile="{quantile}"}} '
                f"{_prom_value(_definite(summary[field]))}"
            )
        lines.append(f"{full}_sum {_prom_value(_definite(summary['sum']))}")
        lines.append(f"{full}_count {int(_definite(summary['count']))}")
    return "\n".join(lines) + "\n"


def diff_snapshots(old: dict, new: dict) -> dict:
    """Delta of two snapshots (``new`` relative to ``old``).

    Counters are *subtracted* (a metric absent from one side counts as
    zero, so freshly appearing counters show their full value and
    vanished ones go negative — both worth seeing in a diff).  Gauges
    report old/new/delta of their level.  Histograms are merged-compared:
    the event ``count`` and ``sum`` deltas say how much *new* activity
    happened between the snapshots, while the distribution fields
    (mean/p50/p95/p99) are shown side by side — summaries are not
    subtractable, so the comparison is the honest operation.
    """
    old = validate_snapshot(old)
    new = validate_snapshot(new)
    out: dict = {
        "version": SNAPSHOT_VERSION,
        "kind": "repro.obs-diff",
        "counters": {},
        "gauges": {},
        "histograms": {},
    }
    for name in sorted(set(old["counters"]) | set(new["counters"])):
        before = _definite(old["counters"].get(name, 0.0))
        after = _definite(new["counters"].get(name, 0.0))
        out["counters"][name] = {
            "old": before,
            "new": after,
            "delta": after - before,
        }
    for name in sorted(set(old["gauges"]) | set(new["gauges"])):
        entry: dict = {}
        if name in old["gauges"]:
            entry["old"] = _definite(old["gauges"][name])
        if name in new["gauges"]:
            entry["new"] = _definite(new["gauges"][name])
        if "old" in entry and "new" in entry:
            entry["delta"] = entry["new"] - entry["old"]
        out["gauges"][name] = entry
    for name in sorted(set(old["histograms"]) | set(new["histograms"])):
        entry = {}
        before_h = old["histograms"].get(name)
        after_h = new["histograms"].get(name)
        if before_h is not None and after_h is not None:
            entry["count_delta"] = int(
                _definite(after_h["count"]) - _definite(before_h["count"])
            )
            entry["sum_delta"] = _definite(after_h["sum"]) - _definite(
                before_h["sum"]
            )
        for field in ("mean", "p50", "p95", "p99"):
            entry[field] = {
                "old": _definite(before_h[field]) if before_h else None,
                "new": _definite(after_h[field]) if after_h else None,
            }
        out["histograms"][name] = entry
    return out


def render_diff(diff: dict) -> str:
    """Human-readable rendering of a :func:`diff_snapshots` result."""
    lines: list[str] = []
    if diff["counters"]:
        lines.append("counters:")
        for name, entry in diff["counters"].items():
            lines.append(
                f"  {name}: {entry['old']:g} -> {entry['new']:g} "
                f"({entry['delta']:+g})"
            )
    if diff["gauges"]:
        lines.append("gauges:")
        for name, entry in diff["gauges"].items():
            old_s = f"{entry['old']:g}" if "old" in entry else "-"
            new_s = f"{entry['new']:g}" if "new" in entry else "-"
            delta_s = f" ({entry['delta']:+g})" if "delta" in entry else ""
            lines.append(f"  {name}: {old_s} -> {new_s}{delta_s}")
    if diff["histograms"]:
        lines.append("histograms:")
        for name, entry in diff["histograms"].items():
            lines.append(f"  {name}:")
            if "count_delta" in entry:
                lines.append(
                    f"    events: {entry['count_delta']:+d}, "
                    f"sum: {entry['sum_delta']:+g}"
                )
            for field in ("mean", "p50", "p95", "p99"):
                old_v, new_v = entry[field]["old"], entry[field]["new"]
                old_s = f"{old_v:g}" if old_v is not None else "-"
                new_s = f"{new_v:g}" if new_v is not None else "-"
                lines.append(f"    {field}: {old_s} -> {new_s}")
    if not lines:
        lines.append("(both snapshots empty)")
    return "\n".join(lines)


def write_snapshot(path: str, snapshot: dict) -> None:
    """Write a snapshot to ``path`` as JSON (the ``--metrics-out`` format)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(snapshot_to_json(snapshot))
        fh.write("\n")
