"""repro.obs — dependency-free observability for the sketching library.

One process-wide :class:`MetricsRegistry` (``METRICS``) collects
counters, gauges and latency histograms from instrumentation hooks wired
through the hot paths — sketch updates, SKIMDENSE passes, join
estimation, the stream engine, and the distributed sketch protocol.
Recording is **off by default**; every hook is guarded by a single
``METRICS.enabled`` attribute read, so disabled instrumentation is free
for all practical purposes (see ``tests/test_obs_overhead.py``).

Typical use::

    from repro.obs import METRICS, snapshot_to_json

    METRICS.enable()
    ...  # run sketches / engine / coordinator
    print(snapshot_to_json(METRICS.snapshot()))

or scoped::

    from repro.obs import capturing

    with capturing() as registry:
        ...
    snap = registry.snapshot()

This package imports **only the standard library** (no numpy) so it can
ride along in the thinnest collection agent; the test suite enforces
that.  The metric catalogue the library emits is documented in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from .export import (
    SNAPSHOT_VERSION,
    diff_snapshots,
    render_diff,
    snapshot_from_json,
    snapshot_to_json,
    snapshot_to_prometheus,
    validate_snapshot,
    write_snapshot,
)
from .registry import Counter, Gauge, Histogram, MetricsRegistry, Timer

#: The process-wide registry every built-in instrumentation hook records to.
METRICS = MetricsRegistry(enabled=False)


def enable() -> None:
    """Turn on recording into the global registry."""
    METRICS.enable()


def disable() -> None:
    """Turn off recording into the global registry (values are kept)."""
    METRICS.disable()


def is_enabled() -> bool:
    """Whether the global registry is currently recording."""
    return METRICS.enabled


def snapshot() -> dict:
    """JSON-ready dump of the global registry."""
    return METRICS.snapshot()


def reset() -> None:
    """Clear all metrics in the global registry."""
    METRICS.reset()


@contextmanager
def capturing(fresh: bool = True) -> Iterator[MetricsRegistry]:
    """Enable the global registry within a ``with`` block.

    ``fresh=True`` (default) resets the registry on entry so the captured
    snapshot reflects only the block.  On exit the previous enabled state
    is restored; recorded values are kept for inspection.
    """
    was_enabled = METRICS.enabled
    if fresh:
        METRICS.reset()
    METRICS.enable()
    try:
        yield METRICS
    finally:
        METRICS.enabled = was_enabled


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "METRICS",
    "MetricsRegistry",
    "SNAPSHOT_VERSION",
    "Timer",
    "capturing",
    "disable",
    "diff_snapshots",
    "enable",
    "is_enabled",
    "render_diff",
    "reset",
    "snapshot",
    "snapshot_from_json",
    "snapshot_to_json",
    "snapshot_to_prometheus",
    "validate_snapshot",
    "write_snapshot",
]
