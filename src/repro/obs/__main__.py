"""Validate or diff metrics snapshot files.

Validate (what ``make metrics-smoke`` runs after a ``--metrics-out``
benchmark)::

    python -m repro.obs snapshot.json [required-metric ...]

Exits non-zero if the file is not a valid version-1 snapshot or if any of
the listed metric names is absent (counters, gauges and histograms are
all searched).

Diff two snapshots (counters subtracted, gauges before/after, histogram
activity deltas plus side-by-side distributions)::

    python -m repro.obs diff before.json after.json [--json]
"""

from __future__ import annotations

import json
import sys

from .export import diff_snapshots, render_diff, snapshot_to_json, validate_snapshot

_USAGE = (
    "usage: python -m repro.obs snapshot.json [required-metric ...]\n"
    "       python -m repro.obs diff before.json after.json [--json]"
)


def _load(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return validate_snapshot(json.load(fh))


def _diff_main(argv: list[str]) -> int:
    as_json = "--json" in argv
    paths = [a for a in argv if a != "--json"]
    if len(paths) != 2:
        print(_USAGE, file=sys.stderr)
        return 2
    # Compare the raw schema versions first: two files that disagree on
    # the schema must fail loudly as a *mismatch*, not be half-compared
    # or blamed on whichever file happens to be the unsupported one.
    try:
        raws = []
        for path in paths:
            with open(path, encoding="utf-8") as fh:
                raws.append(json.load(fh))
    except (OSError, ValueError) as exc:
        print(f"invalid snapshot: {exc}", file=sys.stderr)
        return 1
    versions = [r.get("version") if isinstance(r, dict) else None for r in raws]
    if versions[0] != versions[1]:
        print(
            f"snapshot schema-version mismatch: {paths[0]} has version "
            f"{versions[0]!r} but {paths[1]} has version {versions[1]!r}; "
            "refusing to diff",
            file=sys.stderr,
        )
        return 1
    try:
        old, new = validate_snapshot(raws[0]), validate_snapshot(raws[1])
    except ValueError as exc:
        print(f"invalid snapshot: {exc}", file=sys.stderr)
        return 1
    diff = diff_snapshots(old, new)
    if as_json:
        print(snapshot_to_json(diff))
    else:
        print(f"diff: {paths[0]} -> {paths[1]}")
        print(render_diff(diff))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print(_USAGE, file=sys.stderr)
        return 2
    if argv[0] == "diff":
        return _diff_main(argv[1:])
    path, required = argv[0], argv[1:]
    try:
        snapshot = _load(path)
    except (OSError, ValueError) as exc:
        print(f"invalid snapshot {path}: {exc}", file=sys.stderr)
        return 1
    names = (
        set(snapshot["counters"])
        | set(snapshot["gauges"])
        | set(snapshot["histograms"])
    )
    missing = [metric for metric in required if metric not in names]
    if missing:
        print(f"{path}: missing required metrics {missing}", file=sys.stderr)
        return 1
    print(f"ok: {path} ({len(names)} metrics)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
