"""Validate a metrics snapshot file against the schema.

Usage::

    python -m repro.obs snapshot.json [required-metric ...]

Exits non-zero if the file is not a valid version-1 snapshot or if any of
the listed metric names is absent (counters, gauges and histograms are
all searched).  This is what ``make metrics-smoke`` runs after a
``--metrics-out`` benchmark.
"""

from __future__ import annotations

import json
import sys

from .export import validate_snapshot


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print(
            "usage: python -m repro.obs snapshot.json [required-metric ...]",
            file=sys.stderr,
        )
        return 2
    path, required = argv[0], argv[1:]
    try:
        with open(path, encoding="utf-8") as fh:
            snapshot = validate_snapshot(json.load(fh))
    except (OSError, ValueError) as exc:
        print(f"invalid snapshot {path}: {exc}", file=sys.stderr)
        return 1
    names = (
        set(snapshot["counters"])
        | set(snapshot["gauges"])
        | set(snapshot["histograms"])
    )
    missing = [metric for metric in required if metric not in names]
    if missing:
        print(f"{path}: missing required metrics {missing}", file=sys.stderr)
        return 1
    print(f"ok: {path} ({len(names)} metrics)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
