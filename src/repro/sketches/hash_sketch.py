"""The hash sketch data structure (paper Section 4.1).

A hash sketch is ``depth`` hash tables (paper's ``s2``) of ``width``
counter buckets each (paper's ``s1``).  Table ``i`` carries a pairwise
independent bucket hash ``h_i`` and a four-wise independent ±1 family
``xi_i``; processing element ``(v, w)`` performs, for each table,

    C[i, h_i(v)] += w * xi_i(v)

so each bucket counter is itself an atomic AGMS sketch of the substream of
values hashing into it.  The per-element cost is ``O(depth)`` — *one*
counter per table — which is the paper's logarithmic update-time claim,
versus ``O(width * depth)`` for basic AGMS.

The structure is a linear projection of the stream's frequency vector, so
it supports deletions, merging, and — crucially for skimming — *subtracting
a known frequency vector* (:meth:`HashSketch.subtract_frequencies`), which
is how ``SKIMDENSE`` removes extracted dense frequencies.

Estimators provided here:

* :meth:`HashSketch.point_estimate` — the COUNTSKETCH frequency estimate
  ``median_i C[i, h_i(v)] * xi_i(v)`` (paper Theorem 3);
* :meth:`HashSketch.est_join_size` — the bucket-wise inner product
  ``median_i sum_b C_F[i, b] * C_G[i, b]``, used both as the "Fast-AGMS"
  join estimator and as the sparse-sparse sub-join term of
  ``ESTSKIMJOINSIZE``;
* :meth:`HashSketch.est_self_join_size` — second-moment estimate.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import TYPE_CHECKING

import numpy as np

from ..errors import DomainError, IncompatibleSketchError, ParameterError
from ..hashing import FourWiseSignFamily, PairwiseBucketHash
from ..hashing.bulk import coalesce_updates
from ..obs import METRICS as _METRICS
from ..trace import TRACER as _TRACER
from .base import StreamSynopsis

if TYPE_CHECKING:  # type-only: repro.streams imports repro.sketches at runtime
    from ..streams.model import FrequencyVector

# Auto-precompute ceiling: hash/sign lookup tables are built on demand
# (all_point_estimates, SKIMDENSE flat scans) only while the table size
# ``depth * domain_size`` stays under this many entries (int32 buckets +
# int8 signs => at most ~20 MiB).  Larger domains keep evaluating the
# Carter--Wegman polynomials directly; call ``precompute()`` to override.
AUTO_PRECOMPUTE_MAX_ENTRIES = 1 << 22


class HashSketchSchema:
    """Shared hash/sign randomness and shape for join-compatible hash sketches.

    The paper requires the two joined sketches to "use identical hash
    functions h_i" (Section 4.3); creating both from one schema guarantees
    it.

    Parameters
    ----------
    width:
        Buckets per hash table (paper's ``s1``; 50..250 in the experiments).
    depth:
        Number of hash tables median-selected over (paper's ``s2``;
        11..59 in the experiments — odd values keep the median unique).
    domain_size:
        Size of the integer value domain.
    seed:
        Seed determining all hash and sign families.
    """

    def __init__(self, width: int, depth: int, domain_size: int, seed: int = 0) -> None:
        if width < 1:
            raise ParameterError(f"width must be >= 1, got {width}")
        if depth < 1:
            raise ParameterError(f"depth must be >= 1, got {depth}")
        if domain_size < 1:
            raise ParameterError(f"domain_size must be >= 1, got {domain_size}")
        self.width = width
        self.depth = depth
        self.domain_size = domain_size
        self.seed = seed
        rng = np.random.default_rng(seed)
        self.buckets = PairwiseBucketHash(depth, width, rng)
        self.signs = FourWiseSignFamily(depth, rng)
        self._bucket_table: np.ndarray | None = None
        self._sign_table: np.ndarray | None = None

    # -- precomputed hash/sign tables -----------------------------------------

    @property
    def precomputed(self) -> bool:
        """True once the full-domain hash/sign lookup tables are built."""
        return self._bucket_table is not None

    def precompute(self) -> None:
        """Materialise ``(depth, domain_size)`` bucket/sign lookup tables.

        After this, every bulk hash evaluation over in-domain values is a
        table gather instead of mod-p polynomial arithmetic — the
        ``precompute(domain)`` small-domain cache used by point
        estimation, ``all_point_estimates`` and SKIMDENSE flat
        extraction.  Tables are exact (same polynomial evaluations, made
        once); buckets are stored as ``int32`` and signs as ``int8`` so a
        table of ``AUTO_PRECOMPUTE_MAX_ENTRIES`` entries stays ~20 MiB.
        Idempotent.
        """
        if self._bucket_table is not None:
            return
        domain = np.arange(self.domain_size, dtype=np.int64)
        self._bucket_table = self.buckets.buckets(domain).astype(np.int32)
        self._sign_table = self.signs.signs(domain).astype(np.int8)

    def ensure_precomputed(
        self, max_entries: int = AUTO_PRECOMPUTE_MAX_ENTRIES
    ) -> bool:
        """Build the lookup tables iff the domain is small enough.

        Returns True when the tables are available (already built or just
        built), False when ``depth * domain_size > max_entries`` and the
        schema stays in polynomial-evaluation mode.
        """
        if self._bucket_table is not None:
            return True
        if self.depth * self.domain_size > max_entries:
            return False
        self.precompute()
        return True

    def clear_precomputed(self) -> None:
        """Drop the lookup tables (frees memory; evaluation stays correct)."""
        self._bucket_table = None
        self._sign_table = None

    def bulk_tables(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(depth, n)`` bucket indices and ±1 signs for ``values``.

        Uses the precomputed lookup tables when they exist and every value
        is in-domain (out-of-domain inputs — possible on the unchecked
        estimation path — fall back to direct polynomial evaluation, which
        is defined for any integer).  Either path returns bit-identical
        hashes; only the dtypes differ (table hits return ``int32``
        buckets / ``int8`` signs, both exact under NumPy's promotion).
        """
        values = np.asarray(values, dtype=np.int64)
        if (
            self._bucket_table is not None
            and self._sign_table is not None
            and values.size
            and int(values.min()) >= 0
            and int(values.max()) < self.domain_size
        ):
            return self._bucket_table[:, values], self._sign_table[:, values]
        return self.buckets.buckets(values), self.signs.signs(values)

    def create_sketch(self) -> "HashSketch":
        """A fresh empty sketch bound to this schema."""
        return HashSketch(self)

    def sketch_of(self, frequencies: "FrequencyVector") -> "HashSketch":
        """Convenience: a sketch pre-loaded with a whole frequency vector."""
        sketch = self.create_sketch()
        sketch.ingest_frequency_vector(frequencies)
        return sketch

    def is_compatible(self, other: "HashSketchSchema") -> bool:
        """True if sketches from ``other`` may be combined with ours."""
        return (
            self.width == other.width
            and self.depth == other.depth
            and self.domain_size == other.domain_size
            and self.buckets == other.buckets
            and self.signs == other.signs
        )

    def __repr__(self) -> str:
        return (
            f"HashSketchSchema(width={self.width}, depth={self.depth}, "
            f"domain_size={self.domain_size}, seed={self.seed})"
        )


class HashSketch(StreamSynopsis):
    """One stream's hash-sketch synopsis (``depth`` tables x ``width`` buckets)."""

    def __init__(self, schema: HashSketchSchema) -> None:
        self._schema = schema
        self._counters = np.zeros((schema.depth, schema.width), dtype=np.float64)
        self._absolute_mass = 0.0
        self._table_index = np.arange(schema.depth, dtype=np.int64)
        self._flat_offsets = self._table_index * np.int64(schema.width)

    # -- synopsis contract ---------------------------------------------------

    @property
    def schema(self) -> HashSketchSchema:
        """The schema (shared randomness) this sketch was created from."""
        return self._schema

    @property
    def domain_size(self) -> int:
        """Size of the integer value domain this synopsis covers."""
        return self._schema.domain_size

    @property
    def width(self) -> int:
        """Buckets per table (paper's ``s1``)."""
        return self._schema.width

    @property
    def depth(self) -> int:
        """Number of tables (paper's ``s2``)."""
        return self._schema.depth

    @property
    def counters(self) -> np.ndarray:
        """Read-only ``(depth, width)`` view of the bucket counters."""
        view = self._counters.view()
        view.flags.writeable = False
        return view

    @property
    def absolute_mass(self) -> float:
        """Sum of ``|weight|`` over processed updates — the tracked stream
        size ``N`` that the skimming threshold ``theta = c N / sqrt(width)``
        is computed from.  Unchanged by :meth:`subtract_frequencies`, which
        removes *already counted* mass rather than observing new elements.
        """
        return self._absolute_mass

    def update(self, value: int, weight: float = 1.0) -> None:
        """O(depth): exactly one counter per table is touched (paper §4.1)."""
        self._check_value(value)
        buckets = self._schema.buckets.buckets(value)[:, 0]
        signs = self._schema.signs.signs(value)[:, 0]
        # The O(depth) single-element fast path the paper's update-time
        # claim rests on; the bincount primitive costs O(depth * width).
        self._counters[self._table_index, buckets] += weight * signs  # repro: noqa[R9] -- O(depth) per-element hot path; linear by inspection
        self._absolute_mass += abs(weight)
        if _METRICS.enabled:
            _METRICS.count("sketch.update.elements")
            if weight < 0:
                _METRICS.count("sketch.update.deletions")
        if _TRACER.enabled:
            _TRACER.instant("sketch.update", tables=self._schema.depth)

    def update_bulk(self, values: np.ndarray, weights: np.ndarray | None = None) -> None:
        values = np.asarray(values, dtype=np.int64)
        if values.size == 0:
            return
        self._check_value(int(values.min()))
        self._check_value(int(values.max()))
        if weights is None:
            weights = np.ones(values.size, dtype=np.float64)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != values.shape:
                raise ParameterError("weights must have the same shape as values")
        with _TRACER.span(
            "sketch.update_bulk", elements=int(values.size)
        ) if _TRACER.enabled else nullcontext():
            self._apply_point_masses(values, weights)
            self._absolute_mass += float(np.abs(weights).sum())
        if _METRICS.enabled:
            _METRICS.count("sketch.update.elements", int(values.size))
            _METRICS.count("sketch.update.batches")
            deletions = int(np.count_nonzero(weights < 0))
            if deletions:
                _METRICS.count("sketch.update.deletions", deletions)

    def size_in_counters(self) -> int:
        return int(self._counters.size)

    def seed_words(self) -> int:
        return self._schema.buckets.state_words() + self._schema.signs.state_words()

    # -- point (frequency) estimation: COUNTSKETCH / Theorem 3 -----------------

    def point_estimates(self, values: np.ndarray) -> np.ndarray:
        """COUNTSKETCH frequency estimates for each value.

        ``EST(v) = median_i C[i, h_i(v)] * xi_i(v)``; additive error is
        ``O(sqrt(F2 / width))`` with probability ``1 - 2^{-Theta(depth)}``
        (paper Theorem 3).  Vectorised over ``values``.
        """
        values = np.asarray(values, dtype=np.int64)
        if values.size == 0:
            return np.zeros(0, dtype=np.float64)
        buckets, signs = self._schema.bulk_tables(values)
        per_table = self._counters[self._table_index[:, None], buckets] * signs
        return np.median(per_table, axis=0)

    def point_estimate(self, value: int) -> float:
        """Frequency estimate for a single domain value."""
        self._check_value(value)
        return float(self.point_estimates(np.asarray([value], dtype=np.int64))[0])

    def all_point_estimates(self) -> np.ndarray:
        """Frequency estimates for every value of the domain.

        Linear in ``domain_size * depth`` — the cost the dyadic skim
        optimisation of Section 4.2 exists to avoid for huge domains, but
        entirely practical (and exact in coverage) for materialisable ones.
        Warms the schema's hash/sign lookup tables first (small domains),
        so repeated full scans pay the polynomial evaluation only once.
        """
        self._schema.ensure_precomputed()
        return self.point_estimates(np.arange(self.domain_size, dtype=np.int64))

    # -- join estimation ---------------------------------------------------------

    def table_join_estimates(self, other: "HashSketch") -> np.ndarray:
        """Per-table join estimates ``Y_i = sum_b C_F[i, b] * C_G[i, b]``.

        Because both sketches share ``h_i``, the values mapping to bucket
        ``b`` are identical on both sides and each ``Y_i`` is an unbiased
        estimate of ``<f, g>`` (Steps 3-7 of ``ESTSKIMJOINSIZE``).
        """
        self._check_compatible(other)
        return np.einsum("ij,ij->i", self._counters, other._counters)

    def est_join_size(self, other: "HashSketch") -> float:
        """Median-boosted binary-join size estimate from two hash sketches."""
        with _TRACER.span(
            "estimate.median_boost", tables=self._schema.depth
        ) if _TRACER.enabled else nullcontext() as sp:
            estimate = float(np.median(self.table_join_estimates(other)))
            if sp is not None:
                sp.set(median=estimate)
        return estimate

    def est_self_join_size(self) -> float:
        """Second-moment estimate ``median_i sum_b C[i, b]^2``."""
        return float(np.median(np.einsum("ij,ij->i", self._counters, self._counters)))

    def join_error_bound(self, other: "HashSketch") -> float:
        """Estimated maximum additive error of :meth:`est_join_size`.

        Theorem-2-style bound ``2 sqrt(SJ(f) SJ(g) / width)``, with the
        self-join sizes themselves estimated from the sketches; holds with
        the usual median-boosted probability.  This is the quantity that
        explodes under skew and that skimming shrinks.
        """
        self._check_compatible(other)
        sj_product = max(self.est_self_join_size(), 0.0) * max(
            other.est_self_join_size(), 0.0
        )
        return float(2.0 * np.sqrt(sj_product / self.width))

    # -- linearity: merge / subtract -----------------------------------------------

    def merged_with(self, other: "HashSketch") -> "HashSketch":
        """Sketch of the concatenation of both underlying streams."""
        self._check_compatible(other)
        result = HashSketch(self._schema)
        result._counters = self._counters + other._counters
        result._absolute_mass = self._absolute_mass + other._absolute_mass
        return result

    def subtract_frequencies(self, values: np.ndarray, frequencies: np.ndarray) -> None:
        """Remove a known frequency assignment from the sketch, in place.

        After the call the sketch equals the sketch of the *residual*
        frequency vector ``f - fhat`` where ``fhat`` puts ``frequencies[k]``
        on ``values[k]`` — exactly Steps 8-9 of ``SKIMDENSE`` (Figure 3).
        """
        values = np.asarray(values, dtype=np.int64)
        frequencies = np.asarray(frequencies, dtype=np.float64)
        if frequencies.shape != values.shape:
            raise ParameterError("frequencies must have the same shape as values")
        if values.size == 0:
            return
        self._check_value(int(values.min()))
        self._check_value(int(values.max()))
        self._apply_point_masses(values, -frequencies)

    def copy(self) -> "HashSketch":
        """Independent deep copy (used to keep the unskimmed sketch around)."""
        result = HashSketch(self._schema)
        result._counters = self._counters.copy()
        result._absolute_mass = self._absolute_mass
        return result

    def update_coalesced(
        self,
        values: np.ndarray,
        masses: np.ndarray,
        observed_mass: float | None = None,
    ) -> None:
        """Ingest a pre-coalesced batch: distinct ``values``, summed ``masses``.

        Kernel entry point for callers that coalesce one batch and feed
        many sketches (dyadic hierarchies, parallel shard workers) —
        typically via :class:`repro.hashing.BulkHashCache`.
        ``observed_mass`` is ``sum(|weight|)`` over the *original* batch
        (default: ``sum(|masses|)``); passing it keeps
        :attr:`absolute_mass` identical to element-wise ingestion even
        when coalescing cancels opposite-signed weights.  Records no
        metrics or spans — the caller owns instrumentation.
        """
        values = np.asarray(values, dtype=np.int64)
        masses = np.asarray(masses, dtype=np.float64)
        if masses.shape != values.shape:
            raise ParameterError("masses must have the same shape as values")
        if values.size == 0:
            return
        self._check_value(int(values.min()))
        self._check_value(int(values.max()))
        self._apply_point_masses(values, masses, coalesced=True)
        self._absolute_mass += (
            float(np.abs(masses).sum()) if observed_mass is None
            else float(observed_mass)
        )

    # -- external counter storage (shared-memory seam) --------------------------

    def counters_view(self) -> list[np.ndarray]:
        """Writable views of the raw counter blocks backing this sketch.

        The shared-memory ingest plane uses this to size segments and to
        sum shard counters without copying.  Counter *mutations* must
        still flow through the sanctioned linear primitives (rule R9);
        this seam only exposes the storage.
        """
        return [self._counters]

    def attach_counters(self, buffers: list[np.ndarray]) -> None:
        """Re-home the counters into caller-provided float64 buffers.

        Copies the current counter state into ``buffers`` and rebinds the
        sketch's storage to them, so the sketch can live inside e.g. a
        ``multiprocessing.shared_memory`` segment.  Every update/merge
        primitive mutates in place afterwards; the projection itself is
        unchanged, so linearity and all estimates are preserved
        bit-for-bit.
        """
        if len(buffers) != 1:
            raise ParameterError(
                f"HashSketch.attach_counters takes exactly 1 buffer, "
                f"got {len(buffers)}"
            )
        buffer = buffers[0]
        if buffer.shape != self._counters.shape or buffer.dtype != np.float64:
            raise ParameterError(
                f"attach_counters needs a float64 buffer of shape "
                f"{self._counters.shape}, got {buffer.dtype} {buffer.shape}"
            )
        buffer[...] = self._counters
        self._counters = buffer

    def tracked_masses(self) -> list[float]:
        """Tracked ``sum |weight|`` per counter block (a single entry)."""
        return [self._absolute_mass]

    def set_tracked_masses(self, masses: list[float]) -> None:
        """Install tracked masses captured by :meth:`tracked_masses`."""
        if len(masses) != 1:
            raise ParameterError(
                f"HashSketch.set_tracked_masses takes exactly 1 mass, "
                f"got {len(masses)}"
            )
        self._absolute_mass = float(masses[0])

    # -- internals -------------------------------------------------------------------

    def _apply_point_masses(
        self, values: np.ndarray, masses: np.ndarray, *, coalesced: bool = False
    ) -> None:
        """Add ``masses[k] * xi_i(values[k])`` into bucket ``h_i(values[k])``.

        Fused kernel: duplicates are coalesced once (``np.unique`` +
        segment sum — skipped when the caller passes already-distinct
        values), all ``depth`` hash/sign functions are evaluated in a
        single vectorised pass (lookup tables when precomputed), and the
        whole ``(depth, n)`` update lands with one flat ``bincount``
        scatter-add instead of a Python loop over tables.
        """
        if not coalesced:
            values, masses = coalesce_updates(values, masses)
        if values.size == 0:
            return
        buckets, signs = self._schema.bulk_tables(values)
        flat = (buckets + self._flat_offsets[:, None]).ravel()
        self._counters += np.bincount(
            flat, weights=(signs * masses).ravel(), minlength=self._counters.size
        ).reshape(self._schema.depth, self._schema.width)

    def _check_value(self, value: int) -> None:
        if not 0 <= value < self.domain_size:
            raise DomainError(f"value {value} outside domain [0, {self.domain_size})")

    def _check_compatible(self, other: "HashSketch") -> None:
        if not isinstance(other, HashSketch):
            raise IncompatibleSketchError(
                f"cannot combine HashSketch with {type(other).__name__}"
            )
        if other._schema is not self._schema and not self._schema.is_compatible(
            other._schema
        ):
            raise IncompatibleSketchError(
                "sketches come from different hash-sketch schemas (randomness differs)"
            )

    def __repr__(self) -> str:
        return (
            f"HashSketch(width={self.width}, depth={self.depth}, "
            f"N={self._absolute_mass:g})"
        )
